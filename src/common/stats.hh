/**
 * @file
 * Lightweight statistics containers used by the simulator: scalar
 * summaries, time-weighted occupancy histograms (for the MSHR-utilization
 * figures), and an aligned text-table printer for benchmark output.
 */

#ifndef MPC_COMMON_STATS_HH
#define MPC_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mpc
{

/**
 * Running summary of a sampled quantity (count, sum, min, max, mean).
 */
class StatSummary
{
  public:
    /** Record one sample. */
    void
    sample(double value)
    {
        ++count_;
        sum_ += value;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Merge another summary into this one. */
    void
    merge(const StatSummary &other)
    {
        count_ += other.count_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Time-weighted occupancy histogram. Tracks, for an integer-valued level
 * (e.g., number of occupied MSHRs), how many ticks were spent at each
 * level. Used to produce the "fraction of time at least N MSHRs busy"
 * curves of Figure 4.
 */
class OccupancyHistogram
{
  public:
    /** @param max_level Largest trackable level; higher values clamp. */
    explicit OccupancyHistogram(int max_level = 0)
        : ticksAtLevel_(static_cast<size_t>(max_level) + 1, 0)
    {}

    /** Account @p ticks of simulated time spent at @p level. */
    void
    record(int level, Tick ticks)
    {
        if (level < 0)
            level = 0;
        const size_t idx =
            std::min(static_cast<size_t>(level), ticksAtLevel_.size() - 1);
        ticksAtLevel_[idx] += ticks;
        totalTicks_ += ticks;
    }

    int maxLevel() const { return static_cast<int>(ticksAtLevel_.size()) - 1; }
    Tick totalTicks() const { return totalTicks_; }

    /** Ticks spent exactly at @p level. */
    Tick
    ticksAt(int level) const
    {
        if (level < 0 || level > maxLevel())
            return 0;
        return ticksAtLevel_[static_cast<size_t>(level)];
    }

    /**
     * Fraction of total time spent at level >= @p level (the Figure 4
     * utilization metric). Returns 0 if no time was recorded.
     */
    double
    fracAtLeast(int level) const
    {
        if (totalTicks_ == 0)
            return 0.0;
        Tick at_least = 0;
        for (int l = std::max(level, 0); l <= maxLevel(); ++l)
            at_least += ticksAt(l);
        return static_cast<double>(at_least) /
               static_cast<double>(totalTicks_);
    }

    /** Time-weighted mean level. */
    double
    meanLevel() const
    {
        if (totalTicks_ == 0)
            return 0.0;
        double weighted = 0.0;
        for (int l = 0; l <= maxLevel(); ++l)
            weighted += static_cast<double>(ticksAt(l)) * l;
        return weighted / static_cast<double>(totalTicks_);
    }

    /**
     * Mean level conditioned on level >= @p floor. With floor 1 on the
     * read-MSHR histogram this is the measured MLP of the paper:
     * average outstanding read misses over the time at least one is
     * outstanding. Returns 0 when no time was spent at or above floor.
     */
    double
    meanLevelAtLeast(int floor) const
    {
        Tick ticks = 0;
        double weighted = 0.0;
        for (int l = std::max(floor, 0); l <= maxLevel(); ++l) {
            ticks += ticksAt(l);
            weighted += static_cast<double>(ticksAt(l)) * l;
        }
        return ticks > 0 ? weighted / static_cast<double>(ticks) : 0.0;
    }

    /** Merge another histogram (levels clamp to this one's max). */
    void
    merge(const OccupancyHistogram &other)
    {
        for (int l = 0; l <= other.maxLevel(); ++l)
            record(l, other.ticksAt(l));
    }

  private:
    std::vector<Tick> ticksAtLevel_;
    Tick totalTicks_ = 0;
};

/**
 * Event-count histogram over small non-negative integer values (e.g.,
 * miss-cluster sizes). Unlike OccupancyHistogram the weight of each
 * record is one event, not a span of simulated time. The value range
 * grows on demand; values are clamped to @p max_value when one is given.
 */
class CountHistogram
{
  public:
    explicit CountHistogram(int max_value = -1) : maxValue_(max_value) {}

    /** Record one event with value @p value (negatives clamp to 0). */
    void
    record(int value)
    {
        if (value < 0)
            value = 0;
        if (maxValue_ >= 0)
            value = std::min(value, maxValue_);
        if (static_cast<size_t>(value) >= counts_.size())
            counts_.resize(static_cast<size_t>(value) + 1, 0);
        ++counts_[static_cast<size_t>(value)];
        ++total_;
    }

    std::uint64_t total() const { return total_; }
    int maxRecorded() const { return static_cast<int>(counts_.size()) - 1; }

    std::uint64_t
    countAt(int value) const
    {
        if (value < 0 || static_cast<size_t>(value) >= counts_.size())
            return 0;
        return counts_[static_cast<size_t>(value)];
    }

    double
    mean() const
    {
        if (total_ == 0)
            return 0.0;
        double weighted = 0.0;
        for (size_t v = 0; v < counts_.size(); ++v)
            weighted += static_cast<double>(counts_[v]) *
                        static_cast<double>(v);
        return weighted / static_cast<double>(total_);
    }

    void
    merge(const CountHistogram &other)
    {
        for (int v = 0; v <= other.maxRecorded(); ++v) {
            const std::uint64_t n = other.countAt(v);
            if (n == 0)
                continue;
            int value = v;
            if (maxValue_ >= 0)
                value = std::min(value, maxValue_);
            if (static_cast<size_t>(value) >= counts_.size())
                counts_.resize(static_cast<size_t>(value) + 1, 0);
            counts_[static_cast<size_t>(value)] += n;
            total_ += n;
        }
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    int maxValue_;
};

/**
 * Aligned plain-text table printer for benchmark harness output.
 */
class TablePrinter
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append one data row. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals decimal places. */
std::string fmtDouble(double value, int decimals = 2);

/** Format a percentage (0.1234 -> "12.3%"). */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace mpc

#endif // MPC_COMMON_STATS_HH
