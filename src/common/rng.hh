/**
 * @file
 * Deterministic pseudo-random number generation for workload data
 * initialization (splitmix64 / xoshiro256**). Simulation results must be
 * reproducible across hosts, so we do not use std::random devices.
 */

#ifndef MPC_COMMON_RNG_HH
#define MPC_COMMON_RNG_HH

#include <cstdint>

namespace mpc
{

/**
 * xoshiro256** generator seeded via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-seed the generator deterministically. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace mpc

#endif // MPC_COMMON_RNG_HH
