/**
 * @file
 * Minimal JSON support shared by the report/serialization layers: a
 * recursive-descent parser for the subset our own emitters produce
 * (objects, arrays, strings with the common escapes, numbers, bools),
 * plus the escaping/number-formatting helpers those emitters share.
 *
 * This is deliberately not a general JSON library: inputs are our own
 * BENCH_*.json / PipelineReport / autotune-cache files, and the parser
 * accepts exactly what the writers emit (plus whitespace). Promoted
 * from transform/pipeline.cc when the autotuner result cache became a
 * second consumer.
 */

#ifndef MPC_COMMON_JSON_HH
#define MPC_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpc::json
{

/** A parsed JSON value (tagged union over the supported subset). */
struct Value
{
    enum class T { Null, Bool, Num, Str, Arr, Obj };
    T t = T::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    field(const std::string &name) const
    {
        const auto it = obj.find(name);
        return it == obj.end() ? nullptr : &it->second;
    }
};

/** Parse @p text into @p out. @return false on malformed input. */
bool parse(const std::string &text, Value &out);

/** Append @p s to @p out as a quoted, escaped JSON string literal. */
void escape(std::string &out, const std::string &s);

/** Render a double so it round-trips exactly (%.17g), keeping a
 *  float-looking literal ("1.0", not "1"). */
std::string num(double v);

// --- typed field accessors (tolerant: default on absent/mistyped) ----

double numField(const Value &v, const std::string &name,
                double dflt = 0.0);
std::string strField(const Value &v, const std::string &name);
bool boolField(const Value &v, const std::string &name);

/** Render @p v as a fixed-width 16-digit lowercase hex string (the
 *  format every manifest hash uses, so hashes diff cleanly). */
std::string hex64(std::uint64_t v);

/**
 * Incremental JSON object builder: the one shared writer behind every
 * artifact emitter that embeds a RunManifest (BENCH_*.json,
 * MODEL_VS_MEASURED_*.json, FIG4_mshr.json, tune caches, SAMPLES
 * time series). Fields render in call order; strings are escaped;
 * `raw` splices pre-rendered JSON (a nested object or array) without
 * quoting. str() yields the complete object, no trailing newline.
 */
class ObjectWriter
{
  public:
    ObjectWriter &field(const std::string &name, const std::string &v);
    ObjectWriter &field(const std::string &name, const char *v);
    ObjectWriter &field(const std::string &name, double v);
    ObjectWriter &field(const std::string &name, std::uint64_t v);
    ObjectWriter &field(const std::string &name, int v);
    ObjectWriter &field(const std::string &name, bool v);

    /** Splice @p json (already-rendered value) under @p name. */
    ObjectWriter &raw(const std::string &name, const std::string &json);

    std::string str() const { return "{" + body_ + "}"; }

  private:
    void key(const std::string &name);
    std::string body_;
};

} // namespace mpc::json

#endif // MPC_COMMON_JSON_HH
