#include "common/stats.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace mpc
{

void
TablePrinter::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    // Compute per-column widths across the header and all rows.
    std::vector<size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream out;
    auto emit = [&out, &widths](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            out << row[i];
            if (i + 1 < row.size())
                out << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
fmtDouble(double value, int decimals)
{
    return strprintf("%.*f", decimals, value);
}

std::string
fmtPercent(double fraction, int decimals)
{
    return strprintf("%.*f%%", decimals, fraction * 100.0);
}

} // namespace mpc
