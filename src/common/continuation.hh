/**
 * @file
 * Pool-backed continuation: the hot-path replacement for the
 * std::function completion callbacks threaded through the memory
 * system (MSHR targets, downstream fill notifications).
 *
 * A Continuation is a move-only callable invoked with the completion
 * tick. Small trivially-copyable captures (a cache pointer plus an MSHR
 * id, a core pointer plus a window sequence — everything the per-miss
 * lifecycle creates) are stored inline, so constructing, moving and
 * destroying them never touches the heap. Larger or non-trivially-
 * copyable captures go into fixed-size blocks recycled through a
 * thread-local free list, the same discipline as the calendar-wheel
 * event nodes: after warm-up, steady-state simulation performs zero
 * heap allocations per miss (asserted by tests/test_hotpath.cc).
 *
 * Thread safety: the free lists are thread-local, matching the
 * simulator's threading model — harness::ParallelRunner runs each
 * independent simulation on one thread. Sharded stepping
 * (System::run with shards > 1) moves continuations between threads:
 * a fill callback is created on a shard worker and invoked/destroyed
 * on the replay thread, whose release() parks the block on *its* free
 * list. That migration is safe because chunk storage is immortal — a
 * process-wide store that is never freed, so a block outlives the
 * thread that allocated it. Blocks stranded on an exited worker's
 * free list are simply unreachable (bounded by the worker's high-water
 * mark), never dangling.
 */

#ifndef MPC_COMMON_CONTINUATION_HH
#define MPC_COMMON_CONTINUATION_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mpc
{

namespace detail
{

/**
 * Thread-local free list of fixed-size capture blocks. Blocks are
 * carved out of chunk allocations that live until thread exit and are
 * recycled forever; the heap is touched only when the free list is
 * empty (warm-up, or a deeper-than-ever nesting of pooled captures).
 */
class ContinuationPool
{
  public:
    static constexpr std::size_t blockBytes = 64;
    static constexpr std::size_t blocksPerChunk = 64;

    struct Counters
    {
        std::uint64_t blocksInUse = 0;   ///< live pooled captures
        std::uint64_t blocksFree = 0;    ///< recycled blocks on the list
        std::uint64_t chunkAllocs = 0;   ///< heap trips ever taken
        std::uint64_t totalAllocs = 0;   ///< pooled captures ever made
    };

    static void *
    alloc()
    {
        State &s = state();
        if (s.freeList == nullptr)
            addChunk(s);
        Block *b = s.freeList;
        s.freeList = b->next;
        ++s.counters.blocksInUse;
        --s.counters.blocksFree;
        ++s.counters.totalAllocs;
        return b;
    }

    static void
    release(void *p) noexcept
    {
        State &s = state();
        Block *b = static_cast<Block *>(p);
        b->next = s.freeList;
        s.freeList = b;
        --s.counters.blocksInUse;
        ++s.counters.blocksFree;
    }

    static const Counters &counters() { return state().counters; }

  private:
    union Block
    {
        Block *next;
        alignas(std::max_align_t) unsigned char bytes[blockBytes];
    };

    struct State
    {
        Block *freeList = nullptr;
        Counters counters;
    };

    static State &
    state()
    {
        thread_local State s;
        return s;
    }

    static void
    addChunk(State &s)
    {
        // Chunk storage is immortal (see file comment): blocks may be
        // released on a different thread than allocated them under
        // sharded stepping, so no thread's exit may free them. The
        // deliberate leak is bounded by each thread's high-water mark.
        Block *chunk = new Block[blocksPerChunk];
        for (std::size_t i = 0; i < blocksPerChunk; ++i) {
            chunk[i].next = s.freeList;
            s.freeList = &chunk[i];
        }
        ++s.counters.chunkAllocs;
        s.counters.blocksFree += blocksPerChunk;
    }
};

} // namespace detail

/**
 * Move-only completion callback invoked with the completion tick.
 * Accepts any callable invocable as f(Tick) or f(); see file comment
 * for the storage discipline.
 */
class Continuation
{
  public:
    /** Captures at most this large (and trivially copyable) are stored
     *  inline; everything else takes one pool block. */
    static constexpr std::size_t inlineBytes = 16;
    static constexpr std::size_t pooledBytes =
        detail::ContinuationPool::blockBytes;

    /** True if a callable of type F is stored inline (tests). */
    template <typename F>
    static constexpr bool storedInline =
        std::is_trivially_copyable_v<F> && sizeof(F) <= inlineBytes &&
        alignof(F) <= alignof(std::max_align_t);

    Continuation() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Continuation>>>
    Continuation(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn &, Tick> ||
                          std::is_invocable_v<Fn &>,
                      "Continuation callable must accept (Tick) or ()");
        if constexpr (storedInline<Fn>) {
            new (stash_) Fn(std::forward<F>(fn));
            invoke_ = &invokeInline<Fn>;
        } else {
            static_assert(sizeof(Fn) <= pooledBytes &&
                              alignof(Fn) <= alignof(std::max_align_t),
                          "Continuation capture exceeds the pool block "
                          "size; shrink the lambda capture");
            void *block = detail::ContinuationPool::alloc();
            new (block) Fn(std::forward<F>(fn));
            std::memcpy(stash_, &block, sizeof(block));
            invoke_ = &invokePooled<Fn>;
            release_ = &releasePooled<Fn>;
        }
    }

    Continuation(Continuation &&other) noexcept
        : invoke_(other.invoke_), release_(other.release_)
    {
        std::memcpy(stash_, other.stash_, sizeof(stash_));
        other.invoke_ = nullptr;
        other.release_ = nullptr;
    }

    Continuation &
    operator=(Continuation &&other) noexcept
    {
        if (this != &other) {
            reset();
            invoke_ = other.invoke_;
            release_ = other.release_;
            std::memcpy(stash_, other.stash_, sizeof(stash_));
            other.invoke_ = nullptr;
            other.release_ = nullptr;
        }
        return *this;
    }

    Continuation(const Continuation &) = delete;
    Continuation &operator=(const Continuation &) = delete;

    ~Continuation() { reset(); }

    /** Drop the callable (releasing its pool block if any). */
    void
    reset() noexcept
    {
        if (release_ != nullptr)
            release_(stash_);
        invoke_ = nullptr;
        release_ = nullptr;
    }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** Invoke with the completion tick. The callable stays live (and
     *  any pool block stays held) until destruction or reset. */
    void
    operator()(Tick now)
    {
        MPC_ASSERT(invoke_ != nullptr, "empty Continuation invoked");
        invoke_(stash_, now);
    }

    /** Pool introspection for the hot-path tests. */
    static const detail::ContinuationPool::Counters &
    poolCounters()
    {
        return detail::ContinuationPool::counters();
    }

  private:
    template <typename Fn>
    static void
    call(Fn &fn, Tick now)
    {
        if constexpr (std::is_invocable_v<Fn &, Tick>)
            fn(now);
        else
            fn();
    }

    template <typename Fn>
    static void
    invokeInline(void *stash, Tick now)
    {
        call(*std::launder(reinterpret_cast<Fn *>(stash)), now);
    }

    template <typename Fn>
    static void
    invokePooled(void *stash, Tick now)
    {
        void *block;
        std::memcpy(&block, stash, sizeof(block));
        call(*std::launder(reinterpret_cast<Fn *>(block)), now);
    }

    template <typename Fn>
    static void
    releasePooled(void *stash) noexcept
    {
        void *block;
        std::memcpy(&block, stash, sizeof(block));
        std::launder(reinterpret_cast<Fn *>(block))->~Fn();
        detail::ContinuationPool::release(block);
    }

    void (*invoke_)(void *, Tick) = nullptr;
    void (*release_)(void *) noexcept = nullptr;
    alignas(std::max_align_t) unsigned char stash_[inlineBytes];
};

static_assert(sizeof(Continuation) <= 48,
              "Continuation (plus a Tick) must fit the event queue's "
              "inline callback buffer");

} // namespace mpc

#endif // MPC_COMMON_CONTINUATION_HH
