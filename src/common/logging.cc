#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mpc
{

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
logAndAbort(const char *tag, const std::string &msg, bool core_dump)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
    if (core_dump)
        std::abort();
    std::exit(1);
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace mpc
