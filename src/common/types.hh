/**
 * @file
 * Fundamental scalar types shared by the simulator and the compiler.
 */

#ifndef MPC_COMMON_TYPES_HH
#define MPC_COMMON_TYPES_HH

#include <cstdint>

namespace mpc
{

/** Simulated time, measured in processor clock cycles. */
using Tick = std::uint64_t;

/** A simulated physical byte address. */
using Addr = std::uint64_t;

/** Identifier of a node (processor + caches + memory slice) in the system. */
using NodeId = int;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = ~Tick(0);

/** Sentinel for an invalid address. */
constexpr Addr invalidAddr = ~Addr(0);

/**
 * Round @p value down to a multiple of @p align (a power of two).
 */
constexpr Addr
alignDown(Addr value, Addr align)
{
    return value & ~(align - 1);
}

/**
 * Round @p value up to a multiple of @p align (a power of two).
 */
constexpr Addr
alignUp(Addr value, Addr align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Integer ceiling division for non-negative operands. */
constexpr std::int64_t
ceilDiv(std::int64_t num, std::int64_t den)
{
    return (num + den - 1) / den;
}

/** True if @p value is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2 for a power-of-two value. */
constexpr int
log2Floor(std::uint64_t value)
{
    int result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

} // namespace mpc

#endif // MPC_COMMON_TYPES_HH
