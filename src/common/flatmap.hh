/**
 * @file
 * Open-addressed hash and dense array maps for the simulation hot path.
 *
 * FlatAddrMap replaces std::unordered_map<Addr, V> where entries are
 * never erased (the coherence directory): power-of-two capacity, linear
 * probing, invalidAddr as the empty-slot sentinel, so a lookup is a
 * multiplicative hash plus a short contiguous scan with no per-node
 * indirection. DenseRefMap replaces per-refId maps: refIds are small
 * dense integers assigned by the code generator, so a plain array
 * indexed by refId is both the fastest lookup and — by construction —
 * sorted iteration for deterministic report output.
 */

#ifndef MPC_COMMON_FLATMAP_HH
#define MPC_COMMON_FLATMAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mpc
{

/**
 * Open-addressed map from Addr to V. Keys must not be invalidAddr (the
 * empty sentinel); erase is intentionally unsupported (no tombstones).
 */
template <typename V>
class FlatAddrMap
{
  public:
    explicit FlatAddrMap(std::size_t initial_slots = 1024)
    {
        MPC_ASSERT(isPowerOf2(initial_slots), "slot count not a power of 2");
        slots_.resize(initial_slots);
        mask_ = initial_slots - 1;
    }

    /** Value for @p key, default-constructed on first use. */
    V &
    operator[](Addr key)
    {
        MPC_ASSERT(key != invalidAddr, "invalidAddr used as map key");
        Slot *slot = probe(key);
        if (slot->key == key)
            return slot->value;
        if ((count_ + 1) * 4 > slots_.size() * 3) {
            grow();
            slot = probe(key);
        }
        slot->key = key;
        ++count_;
        return slot->value;
    }

    /** Pointer to @p key's value, or null if absent. */
    const V *
    find(Addr key) const
    {
        const Slot *slot = const_cast<FlatAddrMap *>(this)->probe(key);
        return slot->key == key ? &slot->value : nullptr;
    }

    std::size_t size() const { return count_; }

    /** Iterate occupied slots: fn(key, const V&). Slot order — stable
     *  for a given insertion history but not sorted. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots_)
            if (slot.key != invalidAddr)
                fn(slot.key, slot.value);
    }

  private:
    struct Slot
    {
        Addr key = invalidAddr;
        V value{};
    };

    static std::size_t
    hash(Addr key)
    {
        return static_cast<std::size_t>(
            (key * 0x9E3779B97F4A7C15ull) >> 17);
    }

    /** First slot holding @p key or the empty slot to claim for it. */
    Slot *
    probe(Addr key)
    {
        std::size_t i = hash(key) & mask_;
        while (slots_[i].key != key && slots_[i].key != invalidAddr)
            i = (i + 1) & mask_;
        return &slots_[i];
    }

    void
    grow()
    {
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.resize(old.size() * 2);
        mask_ = slots_.size() - 1;
        for (Slot &slot : old) {
            if (slot.key == invalidAddr)
                continue;
            std::size_t i = hash(slot.key) & mask_;
            while (slots_[i].key != invalidAddr)
                i = (i + 1) & mask_;
            slots_[i].key = slot.key;
            slots_[i].value = std::move(slot.value);
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t count_ = 0;
};

/**
 * Map from a small dense id (static memory-reference id) to V, stored
 * as a flat array with presence flags. Iteration is ascending by id.
 */
template <typename V>
class DenseRefMap
{
  public:
    /** Value for @p id, default-constructed (and marked present) on
     *  first use. */
    V &
    operator[](std::uint32_t id)
    {
        if (id >= values_.size()) {
            values_.resize(id + 1);
            present_.resize(id + 1, 0);
        }
        if (!present_[id]) {
            present_[id] = 1;
            ++count_;
        }
        return values_[id];
    }

    const V *
    find(std::uint32_t id) const
    {
        return id < values_.size() && present_[id] ? &values_[id]
                                                   : nullptr;
    }

    bool contains(std::uint32_t id) const { return find(id) != nullptr; }

    const V &
    at(std::uint32_t id) const
    {
        const V *v = find(id);
        MPC_ASSERT(v != nullptr, "DenseRefMap::at of absent id");
        return *v;
    }

    /** Number of present ids. */
    std::size_t size() const { return count_; }

    /** Iterate present ids in ascending order: fn(id, const V&). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint32_t id = 0; id < values_.size(); ++id)
            if (present_[id])
                fn(id, values_[id]);
    }

  private:
    std::vector<V> values_;
    std::vector<std::uint8_t> present_;
    std::size_t count_ = 0;
};

} // namespace mpc

#endif // MPC_COMMON_FLATMAP_HH
