/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic convention:
 * fatal() for user errors (bad configuration), panic() for internal bugs.
 */

#ifndef MPC_COMMON_LOGGING_HH
#define MPC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mpc
{

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal: print a tagged message to stderr and terminate. */
[[noreturn]] void logAndAbort(const char *tag, const std::string &msg,
                              bool core_dump);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/**
 * Report an unrecoverable user-level error (bad configuration, invalid
 * arguments) and exit(1). Not a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    logAndAbort("fatal", strprintf(fmt, std::forward<Args>(args)...), false);
}

/**
 * Report an internal invariant violation (a bug in mpclust itself) and
 * abort(), possibly dumping core.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    logAndAbort("panic", strprintf(fmt, std::forward<Args>(args)...), true);
}

/** panic() with a description when @p cond is false. */
#define MPC_ASSERT(cond, msg)                                                \
    do {                                                                     \
        if (!(cond))                                                         \
            ::mpc::panic("assertion '%s' failed: %s", #cond, (msg));         \
    } while (0)

} // namespace mpc

#endif // MPC_COMMON_LOGGING_HH
