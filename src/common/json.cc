#include "common/json.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mpc::json
{

void
escape(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

std::string
num(double v)
{
    // %.17g round-trips IEEE doubles exactly.
    std::string s = strprintf("%.17g", v);
    if (s.find_first_of(".eEn") == std::string::npos)
        s += ".0";  // keep a float-looking literal
    return s;
}

namespace
{

struct Parser
{
    const std::string &s;
    size_t i = 0;
    bool ok = true;

    void skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n' ||
                                s[i] == '\t' || s[i] == '\r'))
            ++i;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        ok = false;
        return false;
    }

    Value
    parseValue()
    {
        Value v;
        skipWs();
        if (!ok || i >= s.size()) {
            ok = false;
            return v;
        }
        const char c = s[i];
        if (c == '{') {
            ++i;
            v.t = Value::T::Obj;
            skipWs();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return v;
            }
            for (;;) {
                Value key = parseValue();
                if (!ok || key.t != Value::T::Str || !consume(':')) {
                    ok = false;
                    return v;
                }
                v.obj[key.str] = parseValue();
                if (!ok)
                    return v;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                consume('}');
                return v;
            }
        } else if (c == '[') {
            ++i;
            v.t = Value::T::Arr;
            skipWs();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return v;
            }
            for (;;) {
                v.arr.push_back(parseValue());
                if (!ok)
                    return v;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                consume(']');
                return v;
            }
        } else if (c == '"') {
            ++i;
            v.t = Value::T::Str;
            while (i < s.size() && s[i] != '"') {
                if (s[i] == '\\' && i + 1 < s.size()) {
                    ++i;
                    switch (s[i]) {
                      case 'n': v.str += '\n'; break;
                      case 't': v.str += '\t'; break;
                      case 'u':
                        if (i + 4 < s.size()) {
                            v.str += static_cast<char>(
                                std::strtol(s.substr(i + 1, 4).c_str(),
                                            nullptr, 16));
                            i += 4;
                        } else {
                            ok = false;
                        }
                        break;
                      default: v.str += s[i]; break;
                    }
                    ++i;
                } else {
                    v.str += s[i++];
                }
            }
            if (!consume('"'))
                ok = false;
            return v;
        } else if (c == 't' || c == 'f') {
            const std::string word = c == 't' ? "true" : "false";
            if (s.compare(i, word.size(), word) == 0) {
                v.t = Value::T::Bool;
                v.b = c == 't';
                i += word.size();
            } else {
                ok = false;
            }
            return v;
        } else {
            char *end = nullptr;
            v.t = Value::T::Num;
            v.num = std::strtod(s.c_str() + i, &end);
            if (end == s.c_str() + i)
                ok = false;
            else
                i = static_cast<size_t>(end - s.c_str());
            return v;
        }
    }
};

} // namespace

bool
parse(const std::string &text, Value &out)
{
    Parser parser{text};
    out = parser.parseValue();
    return parser.ok;
}

double
numField(const Value &v, const std::string &name, double dflt)
{
    const Value *f = v.field(name);
    return f != nullptr && f->t == Value::T::Num ? f->num : dflt;
}

std::string
strField(const Value &v, const std::string &name)
{
    const Value *f = v.field(name);
    return f != nullptr && f->t == Value::T::Str ? f->str
                                                 : std::string();
}

bool
boolField(const Value &v, const std::string &name)
{
    const Value *f = v.field(name);
    return f != nullptr && f->t == Value::T::Bool && f->b;
}

std::string
hex64(std::uint64_t v)
{
    return strprintf("%016llx", static_cast<unsigned long long>(v));
}

// --- ObjectWriter ----------------------------------------------------

void
ObjectWriter::key(const std::string &name)
{
    if (!body_.empty())
        body_ += ", ";
    escape(body_, name);
    body_ += ": ";
}

ObjectWriter &
ObjectWriter::field(const std::string &name, const std::string &v)
{
    key(name);
    escape(body_, v);
    return *this;
}

ObjectWriter &
ObjectWriter::field(const std::string &name, const char *v)
{
    return field(name, std::string(v != nullptr ? v : ""));
}

ObjectWriter &
ObjectWriter::field(const std::string &name, double v)
{
    key(name);
    body_ += num(v);
    return *this;
}

ObjectWriter &
ObjectWriter::field(const std::string &name, std::uint64_t v)
{
    key(name);
    body_ += strprintf("%llu", static_cast<unsigned long long>(v));
    return *this;
}

ObjectWriter &
ObjectWriter::field(const std::string &name, int v)
{
    key(name);
    body_ += strprintf("%d", v);
    return *this;
}

ObjectWriter &
ObjectWriter::field(const std::string &name, bool v)
{
    key(name);
    body_ += v ? "true" : "false";
    return *this;
}

ObjectWriter &
ObjectWriter::raw(const std::string &name, const std::string &json)
{
    key(name);
    body_ += json;
    return *this;
}

} // namespace mpc::json
