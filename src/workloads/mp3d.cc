/**
 * @file
 * Mp3d (SPLASH): rarefied-fluid particle simulation. The dominant
 * `move` loop has a large body (position/velocity updates over six
 * particle arrays) plus irregular accesses to the space cell the
 * particle lands in. Particles are pre-sorted by position (the paper
 * applies Mellor-Crummey et al. sorting), so cell accesses have decent
 * locality (moderate P_m). No recurrences: this is the window-
 * constraint workload — inner unrolling plus clustering-aware
 * scheduling provide the benefit (Section 3.3).
 */

#include "workloads/workload.hh"

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeMp3d(const SizeParams &size)
{
    const std::int64_t nparticles = size.scale <= 1 ? 2048
                                    : size.scale == 2 ? 12288 : 32768;
    const std::int64_t cells_per_dim = size.scale <= 1 ? 8 : 16;
    const std::int64_t ncells =
        cells_per_dim * cells_per_dim * cells_per_dim;
    const int steps = size.scale <= 1 ? 2 : 3;

    Workload w;
    w.name = "mp3d";
    w.pattern = "large loop body, irregular cell access, no recurrence";
    w.defaultProcs = 8;
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "mp3d";

    // Particles are an array of structs, as in the original SPLASH
    // code: one 64-byte record per particle with fields
    // {x, y, z, vx, vy, vz, energy, pad}. Each particle's move misses
    // once on its record — no recurrence, one miss per (large) body,
    // the paper's window-constraint case.
    Array *part =
        w.kernel.addArray("part", ScalType::F64, {nparticles, 8});
    Array *cellcnt =
        w.kernel.addArray("cellcnt", ScalType::F64, {ncells});
    Array *accel = w.kernel.addArray("accel", ScalType::F64, {ncells});
    for (const char *v : {"nx", "ny", "nz", "ke", "drag"})
        w.kernel.declareScalar(v, ScalType::F64);
    for (const char *v : {"cx", "cy", "cz", "ci"})
        w.kernel.declareScalar(v, ScalType::I64);
    w.kernel.declareScalar("ac", ScalType::F64);

    const double dt = 0.001;
    const double scale =
        static_cast<double>(cells_per_dim);  // unit box -> cells

    enum Field { FX = 0, FY, FZ, FVX, FVY, FVZ, FEN };
    auto fld = [&](int f) {
        return aref(part, subs(varref("i"), iconst(f)));
    };
    auto clamp_cell = [&](const char *dst, const char *src_f) {
        // c = min(max(trunc(pos * scale), 0), cells_per_dim - 1)
        return assign(
            varref(dst),
            minx(bin(ir::BinOp::Max,
                     un(ir::UnOp::Trunc,
                        mul(varref(src_f), fconst(scale))),
                     iconst(0)),
                 iconst(cells_per_dim - 1)));
    };

    // The move loop (parallel over particles). The body follows the
    // natural per-dimension source order of a physics move loop, so
    // its loads are interleaved with computation across far more
    // instructions than one window holds — the paper's Section 3.3
    // scenario (misses spread over a large loop body). The clustering
    // scheduler's job is to pack them back together.
    auto body = block(
        // x dimension: integrate, clamp, store, energy term.
        assign(varref("nx"), add(fld(FX),
                                 mul(fld(FVX),
                                     fconst(dt)))),
        assign(varref("nx"), minx(bin(ir::BinOp::Max, varref("nx"),
                                      fconst(0.0)),
                                  fconst(0.999))),
        assign(fld(FX), varref("nx")),
        assign(varref("ke"), mul(fld(FVX),
                                 fld(FVX))),
        // y dimension.
        assign(varref("ny"), add(fld(FY),
                                 mul(fld(FVY),
                                     fconst(dt)))),
        assign(varref("ny"), minx(bin(ir::BinOp::Max, varref("ny"),
                                      fconst(0.0)),
                                  fconst(0.999))),
        assign(fld(FY), varref("ny")),
        assign(varref("ke"), add(varref("ke"),
                                 mul(fld(FVY),
                                     fld(FVY)))),
        // z dimension.
        assign(varref("nz"), add(fld(FZ),
                                 mul(fld(FVZ),
                                     fconst(dt)))),
        assign(varref("nz"), minx(bin(ir::BinOp::Max, varref("nz"),
                                      fconst(0.0)),
                                  fconst(0.999))),
        assign(fld(FZ), varref("nz")),
        assign(varref("ke"), add(varref("ke"),
                                 mul(fld(FVZ),
                                     fld(FVZ)))),
        // Cell index from the new position.
        clamp_cell("cx", "nx"), clamp_cell("cy", "ny"),
        clamp_cell("cz", "nz"),
        assign(varref("ci"),
               add(mul(add(mul(varref("cx"), iconst(cells_per_dim)),
                           varref("cy")),
                       iconst(cells_per_dim)),
                   varref("cz"))),
        // Irregular cell census and acceleration pickup.
        assign(aref(cellcnt, subs(varref("ci"))),
               add(aref(cellcnt, subs(varref("ci"))), fconst(1.0))),
        assign(varref("ac"), aref(accel, subs(varref("ci")))),
        // Drag-scaled velocity updates and the energy-census stream.
        assign(varref("drag"),
               sub(fconst(1.0), mul(fconst(0.0001), varref("ke")))),
        assign(fld(FVX),
               mul(add(fld(FVX),
                       mul(varref("ac"), fconst(dt))),
                   varref("drag"))),
        assign(fld(FVY),
               mul(add(fld(FVY),
                       mul(varref("ac"), fconst(dt))),
                   varref("drag"))),
        assign(fld(FVZ),
               mul(sub(fld(FVZ),
                       mul(varref("ac"), fconst(dt))),
                   varref("drag"))),
        assign(fld(FEN),
               add(fld(FEN),
                   mul(fconst(0.5), varref("ke")))));

    auto move = forLoop("i", iconst(0), iconst(nparticles),
                        std::move(body), 1, /*parallel=*/true);
    w.kernel.body.push_back(forLoop(
        "t", iconst(0), iconst(steps),
        block(std::move(move), barrier())));
    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr part_b = part->base;
    const Addr accel_b = accel->base;
    w.init = [nparticles, ncells, part_b, accel_b](kisa::MemoryImage &mem) {
        Rng rng(0x3d);
        // Sorted by position (paper: sorted by physical location):
        // particle i sits near position i / nparticles along a sweep.
        for (std::int64_t i = 0; i < nparticles; ++i) {
            const Addr rec = part_b + Addr(i) * 64;
            const double s = static_cast<double>(i) /
                             static_cast<double>(nparticles);
            mem.stF64(rec + 0, s);
            mem.stF64(rec + 8, 0.5 + 0.3 * (rng.uniform() - 0.5));
            mem.stF64(rec + 16, 0.5 + 0.3 * (rng.uniform() - 0.5));
            for (int f = 3; f < 6; ++f)
                mem.stF64(rec + Addr(f) * 8, rng.uniform() - 0.5);
        }
        for (std::int64_t c = 0; c < ncells; ++c)
            mem.stF64(accel_b + Addr(c) * 8, rng.uniform() * 0.1);
    };
    w.place = [part, cellcnt, accel](coherence::PlacementPolicy &policy) {
        for (const Array *arr : {part, cellcnt, accel})
            policy.addBlockRegion(arr->base, arr->sizeBytes());
    };
    return w;
}

} // namespace mpc::workloads
