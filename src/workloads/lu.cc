/**
 * @file
 * LU (SPLASH-2 flavor): right-looking dense factorization. Each step k
 * normalizes column k into a shared column buffer (computed redundantly
 * by every processor — all writers store identical values, which keeps
 * the run deterministic and removes the producer-consumer sync the
 * paper's flag optimization targets), publishes a per-step flag, then
 * performs the rank-1 interior update partitioned over rows.
 *
 * The interior update's inner j loop is the unroll-and-jam target:
 * A[i][j] self-spatial, col[i] invariant (scalar replacement), A[k][j]
 * a shared spatial stream.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeLu(const SizeParams &size)
{
    const std::int64_t n = size.scale <= 1 ? 32
                           : size.scale == 2 ? 128 : 192;

    Workload w;
    w.name = "lu";
    w.pattern = "rank-1 update: self-spatial rows, invariant pivots";
    w.defaultProcs = 8;
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "lu";

    Array *a = w.kernel.addArray("A", ScalType::F64, {n, n});
    Array *col = w.kernel.addArray("col", ScalType::F64, {n});
    Array *flags = w.kernel.addArray("flags", ScalType::I64, {n});

    // Normalize column k below the diagonal, partitioned across
    // processors (each writes only its chunk of col):
    //   for i in k+1..n: col[i] = A[i][k] / A[k][k]; A[i][k] = col[i]
    auto norm = forLoop(
        "i", add(varref("k"), iconst(1)), iconst(n),
        block(assign(aref(col, subs(varref("i"))),
                     divx(aref(a, subs(varref("i"), varref("k"))),
                          aref(a, subs(varref("k"), varref("k"))))),
              assign(aref(a, subs(varref("i"), varref("k"))),
                     aref(col, subs(varref("i"))))),
        1, /*parallel=*/true);

    // Publish the column (exercises the release path); the consumers
    // below synchronize with a barrier.
    auto publish = flagSet(aref(flags, subs(varref("k"))), iconst(1));

    // Interior rank-1 update, parallel over rows i:
    //   for i in k+1..n (parallel): for j in k+1..n:
    //       A[i][j] = A[i][j] - col[i] * A[k][j]
    auto jloop = forLoop(
        "j", add(varref("k"), iconst(1)), iconst(n),
        block(assign(
            aref(a, subs(varref("i"), varref("j"))),
            sub(aref(a, subs(varref("i"), varref("j"))),
                mul(aref(col, subs(varref("i"))),
                    aref(a, subs(varref("k"), varref("j"))))))));
    auto update = forLoop("i", add(varref("k"), iconst(1)), iconst(n),
                          block(std::move(jloop)), 1, /*parallel=*/true);

    w.kernel.body.push_back(
        forLoop("k", iconst(0), iconst(n - 1),
                block(std::move(norm), std::move(publish), barrier(),
                      std::move(update), barrier())));
    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr a_base = a->base;
    w.init = [n, a_base](kisa::MemoryImage &mem) {
        Rng rng(0x10);
        for (std::int64_t r = 0; r < n; ++r) {
            for (std::int64_t c = 0; c < n; ++c) {
                // Diagonally dominant for numerical stability.
                const double v = r == c ? static_cast<double>(n) + 1.0
                                        : rng.uniform();
                mem.stF64(a_base + Addr(r * n + c) * 8, v);
            }
        }
    };
    w.place = [a](coherence::PlacementPolicy &policy) {
        policy.addBlockRegion(a->base, a->sizeBytes());
    };
    return w;
}

} // namespace mpc::workloads
