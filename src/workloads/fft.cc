/**
 * @file
 * FFT (SPLASH-2 six-step flavor): an n = m*m point dataset viewed as an
 * m x m complex matrix. Phases: blocked transpose, per-column radix-2
 * butterfly stages, twiddle scaling, transpose, butterflies, final
 * transpose. The transposes are the clustering targets (the paper's
 * "block 8" input); the butterfly stages contribute scalar-replacement
 * and CPU benefits.
 */

#include "workloads/workload.hh"

#include <cmath>

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

namespace
{

/** Blocked transpose dst[j][i] = src[i][j], block b. */
StmtPtr
blockedTranspose(Array *dst_re, Array *dst_im, Array *src_re,
                 Array *src_im, std::int64_t m, std::int64_t b)
{
    auto body = block(
        assign(aref(dst_re, subs(varref("j"), varref("i"))),
               aref(src_re, subs(varref("i"), varref("j")))),
        assign(aref(dst_im, subs(varref("j"), varref("i"))),
               aref(src_im, subs(varref("i"), varref("j")))));
    auto iloop = forLoop("i", varref("ib"),
                         add(varref("ib"), iconst(b)), std::move(body));
    auto jloop = forLoop("j", varref("jb"),
                         add(varref("jb"), iconst(b)),
                         block(std::move(iloop)));
    auto ibloop = forLoop("ib", iconst(0), iconst(m),
                          block(std::move(jloop)), b);
    return forLoop("jb", iconst(0), iconst(m),
                   block(std::move(ibloop)), b, /*parallel=*/true);
}

/**
 * Radix-2 butterfly stages applied to all m columns at once (the
 * vectorized multi-column form): for each stage s, for each pair
 * index g (parallel), the innermost loop runs over columns c — so the
 * four row accesses are unit-stride regular streams, the twiddle is
 * loop-invariant (scalar replacement), and unroll-and-jam over g can
 * cluster the row misses. half = halftab[s]; the pair/twiddle indexing
 * uses Div/Mod on g outside the inner loop.
 */
StmtPtr
columnButterflies(Array *re, Array *im, Array *tw_re, Array *tw_im,
                  Array *halftab, std::int64_t m, int stages)
{
    // p0 = (g / half) * 2 * half + (g % half); p1 = p0 + half
    // w = (g % half) * (m / (2 * half))
    auto g_div = [] { return divx(varref("g"), varref("half")); };
    auto g_mod = [] { return modx(varref("g"), varref("half")); };
    auto cbody = block(
        assign(varref("ar"), aref(re, subs(varref("p0"), varref("c")))),
        assign(varref("ai"), aref(im, subs(varref("p0"), varref("c")))),
        assign(varref("br"), aref(re, subs(varref("p1"), varref("c")))),
        assign(varref("bi"), aref(im, subs(varref("p1"), varref("c")))),
        // t = w * b (complex); a' = a + t; b' = a - t
        assign(varref("tr"), sub(mul(varref("wr"), varref("br")),
                                 mul(varref("wim"), varref("bi")))),
        assign(varref("ti"), add(mul(varref("wr"), varref("bi")),
                                 mul(varref("wim"), varref("br")))),
        assign(aref(re, subs(varref("p0"), varref("c"))),
               add(varref("ar"), varref("tr"))),
        assign(aref(im, subs(varref("p0"), varref("c"))),
               add(varref("ai"), varref("ti"))),
        assign(aref(re, subs(varref("p1"), varref("c"))),
               sub(varref("ar"), varref("tr"))),
        assign(aref(im, subs(varref("p1"), varref("c"))),
               sub(varref("ai"), varref("ti"))));
    auto cloop = forLoop("c", iconst(0), iconst(m), std::move(cbody));
    auto gbody = block(
        assign(varref("p0"),
               add(mul(mul(g_div(), iconst(2)), varref("half")),
                   g_mod())),
        assign(varref("p1"), add(varref("p0"), varref("half"))),
        assign(varref("wi"),
               mul(g_mod(), divx(iconst(m / 2), varref("half")))),
        assign(varref("wr"), aref(tw_re, subs(varref("wi")))),
        assign(varref("wim"), aref(tw_im, subs(varref("wi")))),
        std::move(cloop));
    auto gloop = forLoop("g", iconst(0), iconst(m / 2),
                         std::move(gbody), 1, /*parallel=*/true);
    // Stage s+1 reads rows written by other processors' g-chunks at
    // stage s: a barrier separates the stages.
    return forLoop(
        "s", iconst(0), iconst(stages),
        block(assign(varref("half"),
                     aref(halftab, subs(varref("s")))),
              std::move(gloop), barrier()));
}

} // namespace

Workload
makeFft(const SizeParams &size)
{
    const std::int64_t m = size.scale <= 1 ? 16
                           : size.scale == 2 ? 64 : 128;
    const std::int64_t b = 8;  // transpose block, per Table 2
    int stages = 0;
    while ((std::int64_t(1) << (stages + 1)) <= m)
        ++stages;

    Workload w;
    w.name = "fft";
    w.pattern = "strided transposes + butterfly stages";
    w.defaultProcs = 16;
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "fft";

    Array *xre = w.kernel.addArray("xre", ScalType::F64, {m, m});
    Array *xim = w.kernel.addArray("xim", ScalType::F64, {m, m});
    Array *yre = w.kernel.addArray("yre", ScalType::F64, {m, m});
    Array *yim = w.kernel.addArray("yim", ScalType::F64, {m, m});
    Array *twre = w.kernel.addArray("twre", ScalType::F64, {m});
    Array *twim = w.kernel.addArray("twim", ScalType::F64, {m});
    Array *halftab = w.kernel.addArray("halftab", ScalType::I64,
                                       {stages});
    for (const char *v : {"half", "p0", "p1", "wi"})
        w.kernel.declareScalar(v, ScalType::I64);
    for (const char *v :
         {"ar", "ai", "br", "bi", "wr", "wim", "tr", "ti"})
        w.kernel.declareScalar(v, ScalType::F64);

    // Six-step structure (data movement faithful; see file comment).
    w.kernel.body.push_back(blockedTranspose(yre, yim, xre, xim, m, b));
    w.kernel.body.push_back(barrier());
    w.kernel.body.push_back(
        columnButterflies(yre, yim, twre, twim, halftab, m, stages));
    w.kernel.body.push_back(barrier());
    w.kernel.body.push_back(blockedTranspose(xre, xim, yre, yim, m, b));
    w.kernel.body.push_back(barrier());
    w.kernel.body.push_back(
        columnButterflies(xre, xim, twre, twim, halftab, m, stages));
    w.kernel.body.push_back(barrier());
    w.kernel.body.push_back(blockedTranspose(yre, yim, xre, xim, m, b));
    w.kernel.body.push_back(barrier());

    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr xre_b = xre->base, xim_b = xim->base;
    const Addr twre_b = twre->base, twim_b = twim->base;
    const Addr half_b = halftab->base;
    w.init = [m, stages, xre_b, xim_b, twre_b, twim_b,
              half_b](kisa::MemoryImage &mem) {
        Rng rng(0xff7);
        for (std::int64_t e = 0; e < m * m; ++e) {
            mem.stF64(xre_b + Addr(e) * 8, rng.uniform() * 2.0 - 1.0);
            mem.stF64(xim_b + Addr(e) * 8, rng.uniform() * 2.0 - 1.0);
        }
        for (std::int64_t e = 0; e < m; ++e) {
            const double angle =
                -2.0 * 3.14159265358979323846 *
                static_cast<double>(e) / static_cast<double>(m);
            mem.stF64(twre_b + Addr(e) * 8, std::cos(angle));
            mem.stF64(twim_b + Addr(e) * 8, std::sin(angle));
        }
        for (int s = 0; s < stages; ++s)
            mem.st64(half_b + Addr(s) * 8,
                     static_cast<std::uint64_t>(1) << s);
    };
    w.place = [xre, xim, yre, yim](coherence::PlacementPolicy &policy) {
        for (const Array *arr : {xre, xim, yre, yim})
            policy.addBlockRegion(arr->base, arr->sizeBytes());
    };
    return w;
}

} // namespace mpc::workloads
