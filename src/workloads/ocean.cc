/**
 * @file
 * Ocean (SPLASH-2): the dominant red/black relaxation is modeled as
 * Jacobi 5-point stencil sweeps over a 2-D grid. The base version
 * already exhibits some clustering (the j-1 and j+1 rows are separate
 * cache lines), so the transformations help least here — exactly the
 * behaviour the paper reports (smallest benefit, conflict-miss risk).
 */

#include "workloads/workload.hh"

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeOcean(const SizeParams &size)
{
    // Power-of-two rows (16 lines each), mirroring the paper's
    // 258x258 grid scaled down; the interior is n-2 points per side.
    const std::int64_t n = size.scale <= 1 ? 32
                           : size.scale == 2 ? 128 : 256;
    const int sweeps = size.scale <= 1 ? 2 : 4;

    Workload w;
    w.name = "ocean";
    w.pattern = "5-point stencil; base already partially clustered";
    w.defaultProcs = 8;
    w.l2Bytes = size.scale >= 3 ? (1u << 20) : 128 * 1024;
    w.kernel.name = "ocean";

    Array *ga = w.kernel.addArray("ga", ScalType::F64, {n, n});
    Array *gb = w.kernel.addArray("gb", ScalType::F64, {n, n});

    auto stencil = [&](Array *dst, Array *src) {
        auto at = [&](ExprPtr j, ExprPtr i) {
            return aref(src, subs(std::move(j), std::move(i)));
        };
        auto inner = forLoop(
            "i", iconst(1), iconst(n - 1),
            block(assign(
                aref(dst, subs(varref("j"), varref("i"))),
                mul(fconst(0.2),
                    add(add(at(varref("j"), varref("i")),
                            add(at(varref("j"),
                                   sub(varref("i"), iconst(1))),
                                at(varref("j"),
                                   add(varref("i"), iconst(1))))),
                        add(at(sub(varref("j"), iconst(1)), varref("i")),
                            at(add(varref("j"), iconst(1)),
                               varref("i"))))))));
        return forLoop("j", iconst(1), iconst(n - 1),
                       block(std::move(inner)), 1, /*parallel=*/true);
    };

    for (int s = 0; s < sweeps; ++s) {
        w.kernel.body.push_back(
            s % 2 == 0 ? stencil(gb, ga) : stencil(ga, gb));
        w.kernel.body.push_back(barrier());
    }
    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr a_base = ga->base, b_base = gb->base;
    const std::int64_t elems = n * n;
    w.init = [a_base, b_base, elems](kisa::MemoryImage &mem) {
        Rng rng(0x0cea);
        for (std::int64_t e = 0; e < elems; ++e) {
            mem.stF64(a_base + Addr(e) * 8, rng.uniform());
            mem.stF64(b_base + Addr(e) * 8, 0.0);
        }
    };
    w.place = [ga, gb](coherence::PlacementPolicy &policy) {
        policy.addBlockRegion(ga->base, ga->sizeBytes());
        policy.addBlockRegion(gb->base, gb->sizeBytes());
    };
    return w;
}

} // namespace mpc::workloads
