#include "workloads/workload.hh"

#include "common/logging.hh"

namespace mpc::workloads
{

std::vector<Workload>
makeAllApps(const SizeParams &size)
{
    std::vector<Workload> apps;
    apps.push_back(makeEm3d(size));
    apps.push_back(makeErlebacher(size));
    apps.push_back(makeFft(size));
    apps.push_back(makeLu(size));
    apps.push_back(makeMp3d(size));
    apps.push_back(makeMst(size));
    apps.push_back(makeOcean(size));
    return apps;
}

Workload
makeByName(const std::string &name, const SizeParams &size)
{
    if (name == "latbench")
        return makeLatbench(size);
    if (name == "em3d")
        return makeEm3d(size);
    if (name == "erlebacher")
        return makeErlebacher(size);
    if (name == "fft")
        return makeFft(size);
    if (name == "lu")
        return makeLu(size);
    if (name == "mp3d")
        return makeMp3d(size);
    if (name == "mst")
        return makeMst(size);
    if (name == "ocean")
        return makeOcean(size);
    fatal("unknown workload '%s'", name.c_str());
}

bool
isKnownWorkload(const std::string &name)
{
    for (const char *known :
         {"latbench", "em3d", "erlebacher", "fft", "lu", "mp3d", "mst",
          "ocean"})
        if (name == known)
            return true;
    return false;
}

} // namespace mpc::workloads
