/**
 * @file
 * Erlebacher (ICASE): ADI-style compact-difference solver. The dominant
 * kernels are tridiagonal sweeps along z with a loop-carried recurrence
 * on the sweep direction and unit-stride vectorized inner loops — the
 * canonical self-spatial cache-line recurrence the clustering
 * transformations target, plus a pointwise derivative phase.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeErlebacher(const SizeParams &size)
{
    // Power-of-two extents keep rows line-aligned, as in the paper's
    // inputs (64x64x64 cube).
    const std::int64_t n = size.scale <= 1 ? 16
                           : size.scale == 2 ? 32 : 48;

    Workload w;
    w.name = "erlebacher";
    w.pattern = "z-sweep recurrences over unit-stride planes";
    w.defaultProcs = size.scale >= 3 ? 16 : 8;
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "erlebacher";

    Array *x = w.kernel.addArray("x", ScalType::F64, {n, n, n});
    Array *a = w.kernel.addArray("a", ScalType::F64, {n, n, n});
    Array *b = w.kernel.addArray("b", ScalType::F64, {n, n, n});
    Array *d = w.kernel.addArray("d", ScalType::F64, {n, n, n});

    auto at = [&](Array *arr, ExprPtr k, ExprPtr j, ExprPtr i) {
        return aref(arr, subs(std::move(k), std::move(j), std::move(i)));
    };

    // Forward elimination along k (sequential), parallel over j:
    //   x[k][j][i] -= a[k][j][i] * x[k-1][j][i]
    {
        auto inner = forLoop(
            "i", iconst(0), iconst(n),
            block(assign(
                at(x, varref("k"), varref("j"), varref("i")),
                sub(at(x, varref("k"), varref("j"), varref("i")),
                    mul(at(a, varref("k"), varref("j"), varref("i")),
                        at(x, sub(varref("k"), iconst(1)), varref("j"),
                           varref("i")))))));
        auto jloop = forLoop("j", iconst(0), iconst(n),
                             block(std::move(inner)), 1, true);
        w.kernel.body.push_back(forLoop("k", iconst(1), iconst(n),
                                        block(std::move(jloop))));
        w.kernel.body.push_back(barrier());
    }

    // Second sweep (same shape, models the y-direction solve):
    //   d[k][j][i] = x[k][j][i] - b[k][j][i] * d[k-1][j][i]
    {
        auto inner = forLoop(
            "i", iconst(0), iconst(n),
            block(assign(
                at(d, varref("k"), varref("j"), varref("i")),
                sub(at(x, varref("k"), varref("j"), varref("i")),
                    mul(at(b, varref("k"), varref("j"), varref("i")),
                        at(d, sub(varref("k"), iconst(1)), varref("j"),
                           varref("i")))))));
        auto jloop = forLoop("j", iconst(0), iconst(n),
                             block(std::move(inner)), 1, true);
        w.kernel.body.push_back(forLoop("k", iconst(1), iconst(n),
                                        block(std::move(jloop))));
        w.kernel.body.push_back(barrier());
    }

    // Pointwise derivative combination (no recurrence):
    //   b[k][j][i] = 0.5 * (x[k][j][i] + d[k][j][i])
    {
        auto inner = forLoop(
            "i", iconst(0), iconst(n),
            block(assign(
                at(b, varref("k"), varref("j"), varref("i")),
                mul(fconst(0.5),
                    add(at(x, varref("k"), varref("j"), varref("i")),
                        at(d, varref("k"), varref("j"), varref("i")))))));
        auto jloop = forLoop("j", iconst(0), iconst(n),
                             block(std::move(inner)), 1, true);
        w.kernel.body.push_back(forLoop("k", iconst(0), iconst(n),
                                        block(std::move(jloop))));
    }

    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr bases[4] = {x->base, a->base, b->base, d->base};
    const std::int64_t elems = n * n * n;
    w.init = [bases, elems](kisa::MemoryImage &mem) {
        Rng rng(0xad1);
        for (const Addr base : bases)
            for (std::int64_t e = 0; e < elems; ++e)
                mem.stF64(base + Addr(e) * 8,
                          rng.uniform() * 0.125);
    };
    w.place = [x, a, b, d](coherence::PlacementPolicy &policy) {
        // Parallelized over j (the middle dimension): interleaved-line
        // placement approximates the plane distribution; register the
        // arrays anyway so homes are spread evenly.
        for (const Array *arr : {x, a, b, d})
            policy.addBlockRegion(arr->base, arr->sizeBytes());
    };
    return w;
}

} // namespace mpc::workloads
