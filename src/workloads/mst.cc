/**
 * @file
 * MST (Olden): the dominant cost is linked-list traversal of hash-table
 * buckets during neighbor lookups. The kernel walks the chain of each
 * vertex's bucket, accumulating node weights — a per-chain address
 * recurrence with no locality across nodes. Unroll-and-jam interleaves
 * independent chains, jamming to the minimum length with per-chain
 * epilogues (Section 4.2). Uniprocessor only, as in the paper.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeMst(const SizeParams &size)
{
    const std::int64_t nvertices = size.scale <= 1 ? 192
                                   : size.scale == 2 ? 1024 : 2048;
    const std::int64_t nbuckets = nvertices / 4;
    const std::int64_t avg_chain = 6;
    const int rounds = size.scale <= 1 ? 2 : 4;

    Workload w;
    w.name = "mst";
    w.pattern = "hash-bucket chain walks (address recurrences)";
    w.defaultProcs = 0;  // uniprocessor only, as in the paper
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "mst";

    Array *keys = w.kernel.addArray("keys", ScalType::I64, {nvertices});
    Array *buckets =
        w.kernel.addArray("buckets", ScalType::I64, {nbuckets});
    Array *dist = w.kernel.addArray("dist", ScalType::F64, {nvertices});
    w.kernel.declareScalar("b", ScalType::I64);
    w.kernel.declareScalar("p", ScalType::I64);

    // for r: for v (independent): b = keys[v] % nbuckets;
    //   for (p = buckets[b]; p; p = p->next)
    //       dist[v] = dist[v] + p->weight
    auto chain_body = block(assign(
        aref(dist, subs(varref("v"))),
        add(aref(dist, subs(varref("v"))),
            deref(varref("p"), 8, ScalType::F64))));
    auto chase = ptrLoop("p", aref(buckets, subs(varref("b"))), 0,
                         std::move(chain_body));
    auto vloop = forLoop(
        "v", iconst(0), iconst(nvertices),
        block(assign(varref("b"),
                     modx(aref(keys, subs(varref("v"))),
                          iconst(nbuckets))),
              std::move(chase)),
        1, /*parallel=*/true);  // paper: outer loop marked parallel
    w.kernel.body.push_back(forLoop("r", iconst(0), iconst(rounds),
                                    block(std::move(vloop))));
    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr keys_b = keys->base, buckets_b = buckets->base;
    w.init = [nvertices, nbuckets, avg_chain, keys_b,
              buckets_b](kisa::MemoryImage &mem) {
        Rng rng(0x357);
        // Hash nodes: 2 words used (next, weight), one per cache line,
        // randomly placed to kill locality.
        const std::int64_t total_nodes = nbuckets * avg_chain;
        std::vector<std::int64_t> slots(
            static_cast<size_t>(total_nodes));
        for (std::int64_t s = 0; s < total_nodes; ++s)
            slots[size_t(s)] = s;
        for (std::int64_t s = total_nodes - 1; s > 0; --s)
            std::swap(slots[size_t(s)],
                      slots[rng.below(std::uint64_t(s + 1))]);
        const Addr node_base = 0x60000000;
        auto node_addr = [&](std::int64_t slot) {
            return node_base + Addr(slot) * 64;
        };
        std::int64_t cursor = 0;
        for (std::int64_t bkt = 0; bkt < nbuckets; ++bkt) {
            // Chain length varies around the mean (hash tables balance
            // reasonably), bounded by the remaining node pool (each
            // node belongs to exactly one chain).
            std::int64_t len =
                (avg_chain - 2) +
                static_cast<std::int64_t>(rng.below(5));
            len = std::min(len, total_nodes - cursor);
            Addr prev = 0;
            for (std::int64_t n = 0; n < len; ++n, ++cursor) {
                const Addr node = node_addr(slots[size_t(cursor)]);
                mem.st64(node, prev);
                mem.stF64(node + 8, rng.uniform());
                prev = node;
            }
            mem.st64(buckets_b + Addr(bkt) * 8, prev);
        }
        for (std::int64_t v = 0; v < nvertices; ++v)
            mem.st64(keys_b + Addr(v) * 8, rng.below(1u << 30));
    };
    return w;
}

} // namespace mpc::workloads
