/**
 * @file
 * The evaluation workloads (Table 2 of the paper), built from scratch
 * with the same dominant loop and memory structure as the originals:
 *
 *  - Latbench:   lat_mem_rd-style pointer-chase latency microbenchmark
 *                wrapped in an outer loop over independent chains.
 *  - Em3d:       bipartite-graph relaxation (Split-C Em3d): indirect
 *                gathers through an edge list.
 *  - Erlebacher: ADI-style tridiagonal sweeps over a 3D cube.
 *  - FFT:        six-step radix-2 FFT (SPLASH-2): blocked transposes
 *                plus per-column butterfly stages.
 *  - LU:         right-looking dense LU with flag-based pipelining
 *                (SPLASH-2 LU uses flags in the paper's variant).
 *  - Mp3d:       particle-move loop with a large body and irregular
 *                cell accesses (sorted for locality, as in the paper).
 *  - MST:        hash-bucket linked-list walks (Olden MST's dominant
 *                structure).
 *  - Ocean:      5-point stencil relaxation sweeps (SPLASH-2 Ocean's
 *                dominant kernel).
 *
 * Input sizes are scaled below the paper's so a cycle-level run takes
 * seconds, with caches scaled alongside (the paper itself scales caches
 * per Woo et al.); see DESIGN.md section 3.
 */

#ifndef MPC_WORKLOADS_WORKLOAD_HH
#define MPC_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coherence/directory.hh"
#include "ir/kernel.hh"
#include "kisa/memimage.hh"

namespace mpc::workloads
{

/**
 * A ready-to-run workload: the base (untransformed) kernel plus data
 * initialization and placement. The harness derives the clustered
 * variant by running the transformation driver on a clone.
 */
struct Workload
{
    std::string name;
    ir::Kernel kernel;

    /** Initialize array contents (arrays already laid out). */
    std::function<void(kisa::MemoryImage &)> init;

    /**
     * Register data placement for CC-NUMA runs (block placement
     * matching the iteration partition); optional.
     */
    std::function<void(coherence::PlacementPolicy &)> place;

    /** Scaled L2 size for this input (Woo et al. methodology). */
    std::uint64_t l2Bytes = 1 << 20;

    /** Default processor count for the multiprocessor experiments
     *  (paper: 16 or 8 by scalability; 0 = uniprocessor only). */
    int defaultProcs = 16;

    /** Expected dominant-pattern note (documentation / reports). */
    std::string pattern;
};

/** Size scale: 1 = test (sub-second), 2 = bench default, 3 = large. */
struct SizeParams
{
    int scale = 2;
};

Workload makeLatbench(const SizeParams &size = {});
Workload makeEm3d(const SizeParams &size = {});
Workload makeErlebacher(const SizeParams &size = {});
Workload makeFft(const SizeParams &size = {});
Workload makeLu(const SizeParams &size = {});
Workload makeMp3d(const SizeParams &size = {});
Workload makeMst(const SizeParams &size = {});
Workload makeOcean(const SizeParams &size = {});

/** All scientific applications (everything but Latbench). */
std::vector<Workload> makeAllApps(const SizeParams &size = {});

/** Factory by name ("latbench", "em3d", ..., "ocean"). */
Workload makeByName(const std::string &name, const SizeParams &size = {});

/** True when makeByName() knows @p name (it fatals otherwise). */
bool isKnownWorkload(const std::string &name);

// --- small IR construction helpers shared by the builders -----------

/** Variadic subscript vector builder. */
template <typename... Exprs>
std::vector<ir::ExprPtr>
subs(Exprs... exprs)
{
    std::vector<ir::ExprPtr> v;
    (v.push_back(std::move(exprs)), ...);
    return v;
}

/** Variadic statement vector builder. */
template <typename... Stmts>
std::vector<ir::StmtPtr>
block(Stmts... stmts)
{
    std::vector<ir::StmtPtr> v;
    (v.push_back(std::move(stmts)), ...);
    return v;
}

} // namespace mpc::workloads

#endif // MPC_WORKLOADS_WORKLOAD_HH
