/**
 * @file
 * Em3d (Split-C): electromagnetic wave propagation on a bipartite
 * graph. Each E node gathers from `deg` H nodes through an edge index
 * list (and vice versa) — regular streams over the edge arrays plus
 * irregular gathers through them (cache-line and address dependences,
 * but only cache-line recurrences, as the paper notes).
 */

#include "workloads/workload.hh"

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeEm3d(const SizeParams &size)
{
    const std::int64_t nodes = size.scale <= 1 ? 256
                               : size.scale == 2 ? 2048 : 8192;
    const std::int64_t deg = size.scale <= 1 ? 4 : 8;
    const int iters = size.scale <= 1 ? 2 : 3;
    const double remote_frac = 0.20;   // 20% remote, per Table 2

    Workload w;
    w.name = "em3d";
    w.pattern = "indirect gathers; cache-line recurrences only";
    w.defaultProcs = 16;
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "em3d";

    Array *eval = w.kernel.addArray("eval", ScalType::F64, {nodes});
    Array *hval = w.kernel.addArray("hval", ScalType::F64, {nodes});
    Array *efrom =
        w.kernel.addArray("efrom", ScalType::I64, {nodes, deg});
    Array *ecoef =
        w.kernel.addArray("ecoef", ScalType::F64, {nodes, deg});
    Array *hfrom =
        w.kernel.addArray("hfrom", ScalType::I64, {nodes, deg});
    Array *hcoef =
        w.kernel.addArray("hcoef", ScalType::F64, {nodes, deg});

    auto gather = [&](Array *dst, Array *src, Array *from, Array *coef) {
        // for n (parallel): for d:
        //     dst[n] = dst[n] - coef[n][d] * src[from[n][d]]
        auto body = block(assign(
            aref(dst, subs(varref("n"))),
            sub(aref(dst, subs(varref("n"))),
                mul(aref(coef, subs(varref("n"), varref("d"))),
                    aref(src, subs(aref(from, subs(varref("n"),
                                                   varref("d")))))))));
        auto dloop = forLoop("d", iconst(0), iconst(deg),
                             std::move(body));
        return forLoop("n", iconst(0), iconst(nodes),
                       block(std::move(dloop)), 1, /*parallel=*/true);
    };

    auto tloop_body = block(gather(eval, hval, efrom, ecoef), barrier(),
                            gather(hval, eval, hfrom, hcoef), barrier());
    w.kernel.body.push_back(forLoop("t", iconst(0), iconst(iters),
                                    std::move(tloop_body)));
    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr eval_b = eval->base, hval_b = hval->base;
    const Addr efrom_b = efrom->base, ecoef_b = ecoef->base;
    const Addr hfrom_b = hfrom->base, hcoef_b = hcoef->base;
    w.init = [nodes, deg, remote_frac, eval_b, hval_b, efrom_b, ecoef_b,
              hfrom_b, hcoef_b](kisa::MemoryImage &mem) {
        Rng rng(0xe3d);
        auto fill = [&](Addr from_base, Addr coef_base, Addr val_base) {
            for (std::int64_t n = 0; n < nodes; ++n) {
                mem.stF64(val_base + Addr(n) * 8,
                          rng.uniform() * 2.0 - 1.0);
                for (std::int64_t d = 0; d < deg; ++d) {
                    // Mostly-local neighbors with a 20% remote tail.
                    std::int64_t src;
                    if (rng.uniform() < remote_frac) {
                        src = static_cast<std::int64_t>(
                            rng.below(std::uint64_t(nodes)));
                    } else {
                        const std::int64_t radius = 32;
                        const std::int64_t lo =
                            std::max<std::int64_t>(0, n - radius);
                        const std::int64_t hi = std::min<std::int64_t>(
                            nodes, n + radius + 1);
                        src = lo + static_cast<std::int64_t>(
                                       rng.below(std::uint64_t(hi - lo)));
                    }
                    const Addr slot = Addr(n * deg + d) * 8;
                    mem.st64(from_base + slot,
                             static_cast<std::uint64_t>(src));
                    mem.stF64(coef_base + slot,
                              rng.uniform() * 0.01);
                }
            }
        };
        fill(efrom_b, ecoef_b, hval_b);
        fill(hfrom_b, hcoef_b, eval_b);
    };

    w.place = [eval, hval, efrom, ecoef, hfrom, hcoef](
                  coherence::PlacementPolicy &policy) {
        for (const Array *a :
             {eval, hval, efrom, ecoef, hfrom, hcoef})
            policy.addBlockRegion(a->base, a->sizeBytes());
    };
    return w;
}

} // namespace mpc::workloads
