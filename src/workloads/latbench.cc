/**
 * @file
 * Latbench (Section 4.2): lat_mem_rd's dependent pointer chase wrapped
 * in an outer loop over independent chains with no locality within or
 * across chains. The base version serializes every miss (the paper
 * measures 171 ns per miss on the simulated system); unroll-and-jam of
 * the outer chain loop overlaps lp chases.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"

namespace mpc::workloads
{

using namespace mpc::ir;

Workload
makeLatbench(const SizeParams &size)
{
    const int chains = size.scale <= 1 ? 10 : size.scale == 2 ? 20 : 40;
    const int len = size.scale <= 1 ? 64 : size.scale == 2 ? 400 : 1600;
    // One node per cache line (8 words) so every dereference misses.
    const std::int64_t node_words = 8;
    const std::int64_t total_nodes =
        static_cast<std::int64_t>(chains) * len;

    Workload w;
    w.name = "latbench";
    w.pattern = "address recurrence (pointer chase), no locality";
    w.defaultProcs = 0;  // uniprocessor only, as in the paper
    w.l2Bytes = 64 * 1024;
    w.kernel.name = "latbench";

    Array *heads =
        w.kernel.addArray("heads", ScalType::I64, {chains});
    Array *nodes = w.kernel.addArray("nodes", ScalType::I64,
                                     {total_nodes * node_words});
    Array *sink = w.kernel.addArray("sink", ScalType::I64, {8});
    w.kernel.declareScalar("p", ScalType::I64);

    // for j: p = heads[j]; for i in 0..len: p = *(p + 0); sink[0] = p
    auto inner = forLoop(
        "i", iconst(0), iconst(len),
        block(assign(varref("p"), deref(varref("p"), 0))));
    auto outer = forLoop(
        "j", iconst(0), iconst(chains),
        block(assign(varref("p"), aref(heads, subs(varref("j")))),
              std::move(inner),
              assign(aref(sink, subs(iconst(0))), varref("p"))),
        1, /*parallel=*/true);
    w.kernel.body.push_back(std::move(outer));
    assignRefIds(w.kernel);
    layoutArrays(w.kernel);

    const Addr nodes_base = nodes->base;
    const Addr heads_base = heads->base;
    w.init = [chains, len, total_nodes, nodes_base,
              heads_base](kisa::MemoryImage &mem) {
        // Random global permutation of node slots kills all spatial
        // locality, within and across chains (Section 4.2).
        Rng rng(0x1a7b);
        std::vector<std::int64_t> slots(
            static_cast<size_t>(total_nodes));
        for (std::int64_t s = 0; s < total_nodes; ++s)
            slots[static_cast<size_t>(s)] = s;
        for (std::int64_t s = total_nodes - 1; s > 0; --s)
            std::swap(slots[static_cast<size_t>(s)],
                      slots[rng.below(static_cast<std::uint64_t>(s + 1))]);
        auto node_addr = [&](std::int64_t slot) {
            return nodes_base + static_cast<Addr>(slot) * 64;
        };
        std::int64_t cursor = 0;
        for (int j = 0; j < chains; ++j) {
            const std::int64_t first = slots[size_t(cursor)];
            mem.st64(heads_base + Addr(j) * 8,
                     node_addr(first));
            for (int n = 0; n < len; ++n, ++cursor) {
                const std::int64_t cur = slots[size_t(cursor)];
                const bool last = n == len - 1;
                const std::int64_t next =
                    last ? 0 : slots[size_t(cursor + 1)];
                mem.st64(node_addr(cur),
                         last ? 0 : node_addr(next));
            }
        }
    };
    return w;
}

} // namespace mpc::workloads
