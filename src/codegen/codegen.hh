/**
 * @file
 * Lowering from the loop-nest IR to KISA programs.
 *
 * Beyond straightforward lowering (bottom-tested loops, displacement
 * folding for unrolled copies, per-array base registers), the code
 * generator implements the paper's Section 3.3 local scheduling: in
 * `clusteredSchedule` mode, straight-line regions are list-scheduled
 * with loads hoisted as early as their dependences allow and stores
 * sunk late, packing independent miss references together within the
 * instruction window (the balanced-scheduling effect).
 *
 * For multiprocessor runs, loops marked `parallel` are block-
 * partitioned across cores at lowering time (one program per core),
 * and Barrier/FlagSet/FlagWait statements lower to the corresponding
 * KISA synchronization operations.
 */

#ifndef MPC_CODEGEN_CODEGEN_HH
#define MPC_CODEGEN_CODEGEN_HH

#include <set>

#include "ir/kernel.hh"
#include "kisa/program.hh"

namespace mpc::codegen
{

struct CodegenOptions
{
    /** Pack independent miss loads together (Section 3.3 scheduling). */
    bool clusteredSchedule = false;

    /**
     * refIds of leading references (from the analysis): the scheduler
     * packs these loads first, since only they start misses. Empty =
     * treat every load as a potential miss.
     */
    std::set<std::uint32_t> leadingRefs;

    /** This core's id and the total core count; parallel-marked loops
     *  are block-partitioned by iteration. */
    int procId = 0;
    int numProcs = 1;
};

/**
 * Lower @p kernel to a KISA program. Arrays must be laid out
 * (ir::layoutArrays) first.
 */
kisa::Program lower(const ir::Kernel &kernel,
                    const CodegenOptions &options = {});

/** Convenience: one program per core. */
std::vector<kisa::Program> lowerForCores(
    const ir::Kernel &kernel, int num_procs, bool clustered_schedule,
    const std::set<std::uint32_t> &leading_refs = {});

/**
 * Static instruction count of one iteration of @p loop when lowered —
 * the `i` parameter of the analysis (Equation 1). Works on loops whose
 * bounds reference not-yet-bound outer variables.
 */
int loweredBodySize(const ir::Kernel &kernel, const ir::Stmt &loop);

} // namespace mpc::codegen

#endif // MPC_CODEGEN_CODEGEN_HH
