#include "codegen/codegen.hh"

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/affine.hh"
#include "common/logging.hh"

namespace mpc::codegen
{

using ir::Expr;
using ir::Kernel;
using ir::ScalType;
using ir::Stmt;
using kisa::AsmBuilder;
using kisa::Instr;
using kisa::Op;
using kisa::Reg;

namespace
{

/**
 * Decompose @p v into (1 << hi) + (1 << lo) or, with the bool set,
 * (1 << hi) - (1 << lo), so constant multiplies by such values (array
 * pitches with one line of padding, say) lower to two shifts and one
 * add/sub of single-cycle ALU ops instead of a multi-cycle multiply.
 */
std::optional<std::tuple<std::int64_t, std::int64_t, bool>>
shiftPairSplit(std::uint64_t v)
{
    if (v < 3)
        return std::nullopt;
    // Sum of two powers of two: exactly two bits set.
    if ((v & (v - 1)) != 0 &&
        ((v & (v - 1)) & ((v & (v - 1)) - 1)) == 0) {
        const std::int64_t lo = log2Floor(v & ~(v - 1));
        const std::int64_t hi = log2Floor(v);
        return std::make_tuple(hi, lo, false);
    }
    // Difference of two powers of two: v + lowbit(v) a power of two.
    const std::uint64_t low_bit = v & ~(v - 1);
    if (isPowerOf2(v + low_bit)) {
        const std::int64_t hi = log2Floor(v + low_bit);
        const std::int64_t lo = log2Floor(low_bit);
        return std::make_tuple(hi, lo, true);
    }
    return std::nullopt;
}

/**
 * Alias information for a memory instruction, used by the scheduler's
 * memory-dependence test. Two same-array references with the same
 * affine index shape and different constants are provably distinct
 * (e.g. unrolled copies A[i] vs A[i+1]); different shapes on the same
 * array are conservatively assumed to alias.
 */
struct AliasInfo
{
    bool any = true;            ///< pointer deref: may alias anything
    int arrayId = -1;
    std::size_t shapeHash = 0;
    std::int64_t c = 0;
    bool shapeKnown = false;

    static bool
    mayAlias(const AliasInfo &a, const AliasInfo &b)
    {
        if (a.any || b.any)
            return true;
        if (a.arrayId != b.arrayId)
            return false;
        if (!a.shapeKnown || !b.shapeKnown ||
            a.shapeHash != b.shapeHash)
            return true;
        return a.c == b.c;
    }
};

/** Register def/use sets of one instruction. */
struct DefUse
{
    std::vector<Reg> intReads, fpReads;
    Reg intWrite = kisa::noReg;
    Reg fpWrite = kisa::noReg;
};

DefUse
defUse(const Instr &in)
{
    DefUse du;
    const bool is_store = in.op == Op::StI || in.op == Op::StF;
    const bool is_branch = kisa::isBranch(in.op);
    if (in.ra != kisa::noReg) {
        if (kisa::srcAIsFp(in.op))
            du.fpReads.push_back(in.ra);
        else
            du.intReads.push_back(in.ra);
    }
    if (in.rb != kisa::noReg) {
        if (kisa::srcBIsFp(in.op))
            du.fpReads.push_back(in.rb);
        else
            du.intReads.push_back(in.rb);
    }
    if (in.rd != kisa::noReg && !is_store && !is_branch &&
        in.op != Op::FlagWait) {
        if (kisa::destIsFp(in.op))
            du.fpWrite = in.rd;
        else
            du.intWrite = in.rd;
    }
    return du;
}

/**
 * The lowering engine. One instance produces one core's program.
 */
class Lowerer
{
  public:
    Lowerer(const Kernel &kernel, const CodegenOptions &options)
        : kernel_(kernel), opts_(options),
          builder_(kernel.name + (options.numProcs > 1
                                      ? ".p" + std::to_string(options.procId)
                                      : ""))
    {}

    kisa::Program
    lower()
    {
        prologue();
        for (const auto &stmt : kernel_.body)
            lowerStmt(*stmt);
        flushRegion();
        builder_.halt();
        return builder_.finish();
    }

    /** Measure the lowered per-iteration size of @p loop. */
    int
    measure(const Stmt &loop)
    {
        measureTarget_ = &loop;
        prologue();
        lowerStmt(loop);
        flushRegion();
        return measuredBody_ > 0 ? measuredBody_ : 8;
    }

  private:
    // --- registers ----------------------------------------------------
    static constexpr Reg regZero = 0;

    Reg
    allocPersistentInt()
    {
        MPC_ASSERT(nextInt_ < tempBaseInt_,
                   "out of integer registers (persistent)");
        return static_cast<Reg>(nextInt_++);
    }

    Reg
    allocPersistentFp()
    {
        MPC_ASSERT(nextFp_ < tempBaseFp_,
                   "out of FP registers (persistent)");
        return static_cast<Reg>(nextFp_++);
    }

    Reg
    intVarReg(const std::string &name)
    {
        auto it = intVars_.find(name);
        if (it != intVars_.end())
            return it->second;
        const Reg r = allocPersistentInt();
        intVars_[name] = r;
        return r;
    }

    Reg
    fpVarReg(const std::string &name)
    {
        auto it = fpVars_.find(name);
        if (it != fpVars_.end())
            return it->second;
        const Reg r = allocPersistentFp();
        fpVars_[name] = r;
        return r;
    }

    bool
    varIsFp(const std::string &name) const
    {
        const auto it = kernel_.scalars.find(name);
        return it != kernel_.scalars.end() &&
               it->second == ScalType::F64;
    }

    /** A value held in a register; temps are returned to the pool. */
    struct Operand
    {
        Reg reg = kisa::noReg;
        bool isFp = false;
        bool isTemp = false;
    };

    // In clustered-schedule mode, temps within a region are allocated
    // fresh-first so register reuse does not impose WAR/WAW false
    // dependences on the list scheduler (a real compiler allocates
    // registers after scheduling); the pool falls back to reuse when
    // exhausted, then resets at region boundaries.
    Reg
    allocTempInt()
    {
        if (opts_.clusteredSchedule &&
            intTempNext_ < kisa::numIntRegs)
            return static_cast<Reg>(intTempNext_++);
        if (!intFree_.empty()) {
            const Reg r = intFree_.back();
            intFree_.pop_back();
            return r;
        }
        MPC_ASSERT(intTempNext_ < kisa::numIntRegs,
                   "out of integer registers (temps)");
        return static_cast<Reg>(intTempNext_++);
    }

    Reg
    allocTempFp()
    {
        if (opts_.clusteredSchedule && fpTempNext_ < kisa::numFpRegs)
            return static_cast<Reg>(fpTempNext_++);
        if (!fpFree_.empty()) {
            const Reg r = fpFree_.back();
            fpFree_.pop_back();
            return r;
        }
        MPC_ASSERT(fpTempNext_ < kisa::numFpRegs,
                   "out of FP registers (temps)");
        return static_cast<Reg>(fpTempNext_++);
    }

    void
    release(const Operand &operand)
    {
        if (!operand.isTemp)
            return;
        if (operand.isFp)
            fpFree_.push_back(operand.reg);
        else
            intFree_.push_back(operand.reg);
    }

    // --- emission and scheduling ---------------------------------------
    void
    emit(Instr in, AliasInfo alias = {})
    {
        alias.any = alias.arrayId < 0;
        region_.push_back(in);
        aliasClass_.push_back(alias);
    }

    void
    emit(Instr in, std::nullptr_t) = delete;

    /** Emit the region buffer, list-scheduling it in clustered mode. */
    void
    flushRegion()
    {
        if (region_.empty())
            return;
        if (!opts_.clusteredSchedule || region_.size() < 3) {
            for (const auto &in : region_)
                builder_.emit(in);
        } else {
            scheduleAndEmit();
        }
        region_.clear();
        aliasClass_.clear();
        if (opts_.clusteredSchedule) {
            // Region boundary: the fresh-temp window restarts.
            intTempNext_ = tempBaseInt_;
            fpTempNext_ = tempBaseFp_;
            intFree_.clear();
            fpFree_.clear();
        }
    }

    void
    scheduleAndEmit()
    {
        const size_t n = region_.size();
        std::vector<std::vector<int>> succs(n);
        std::vector<int> preds(n, 0);
        std::vector<DefUse> dus;
        dus.reserve(n);
        for (const auto &in : region_)
            dus.push_back(defUse(in));
        auto is_load = [this](size_t i) {
            return region_[i].op == Op::LdI || region_[i].op == Op::LdF;
        };
        auto is_store = [this](size_t i) {
            return region_[i].op == Op::StI || region_[i].op == Op::StF;
        };
        auto overlaps = [](const std::vector<Reg> &a, Reg w) {
            if (w == kisa::noReg)
                return false;
            for (Reg r : a)
                if (r == w)
                    return true;
            return false;
        };
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
                bool dep = false;
                // RAW / WAW / WAR on both files.
                dep |= overlaps(dus[j].intReads, dus[i].intWrite);
                dep |= overlaps(dus[j].fpReads, dus[i].fpWrite);
                dep |= dus[i].intWrite != kisa::noReg &&
                       dus[i].intWrite == dus[j].intWrite;
                dep |= dus[i].fpWrite != kisa::noReg &&
                       dus[i].fpWrite == dus[j].fpWrite;
                dep |= overlaps(dus[i].intReads, dus[j].intWrite);
                dep |= overlaps(dus[i].fpReads, dus[j].fpWrite);
                // Memory ordering: loads may pass loads always, and
                // any pair of provably distinct references.
                if (!dep && (is_store(i) || is_store(j)) &&
                    (is_store(i) || is_load(i)) &&
                    (is_store(j) || is_load(j))) {
                    dep = AliasInfo::mayAlias(aliasClass_[i],
                                              aliasClass_[j]);
                }
                if (dep) {
                    succs[i].push_back(static_cast<int>(j));
                    ++preds[j];
                }
            }
        }
        // List schedule keyed by the earliest load an instruction
        // (transitively) feeds: a load's key is its original position,
        // address arithmetic inherits the key of the load it feeds,
        // compute chains that feed only stores sink late, and stores
        // sink last. The effect is the Section 3.3 packing: the
        // independent miss loads (and only their address chains) bunch
        // at the top of the body, compute and stores follow. Edges
        // point forward, so original order is a topological order for
        // the backward key propagation.
        const int big = static_cast<int>(n);
        auto is_leading = [this](size_t i) {
            return opts_.leadingRefs.empty() ||
                   opts_.leadingRefs.count(region_[i].refId) != 0;
        };
        std::vector<int> key(n);
        for (size_t i = 0; i < n; ++i) {
            if (is_load(i) && is_leading(i))
                key[i] = static_cast<int>(i);
            else if (is_store(i))
                key[i] = 2 * big + static_cast<int>(i);
            else
                key[i] = big + static_cast<int>(i);
        }
        for (size_t i = n; i-- > 0;) {
            if ((is_load(i) && is_leading(i)) || is_store(i))
                continue;
            for (int s : succs[i])
                key[i] = std::min(key[i], key[static_cast<size_t>(s)]);
        }
        auto priority = [&](size_t i) { return key[i]; };
        std::vector<char> done(n, 0);
        for (size_t emitted = 0; emitted < n; ++emitted) {
            int best = -1;
            for (size_t i = 0; i < n; ++i) {
                if (done[i] || preds[i] != 0)
                    continue;
                if (best < 0 ||
                    priority(i) < priority(static_cast<size_t>(best)))
                    best = static_cast<int>(i);
            }
            MPC_ASSERT(best >= 0, "scheduler dependence cycle");
            done[best] = 1;
            preds[best] = -1;
            for (int s : succs[static_cast<size_t>(best)])
                --preds[s];
            builder_.emit(region_[static_cast<size_t>(best)]);
        }
    }

    AsmBuilder::Label
    newLabel()
    {
        return builder_.newLabel();
    }

    void
    bindLabel(AsmBuilder::Label label)
    {
        flushRegion();
        builder_.bind(label);
    }

    void
    emitBranch(Op op, Reg ra, Reg rb, AsmBuilder::Label target)
    {
        flushRegion();
        switch (op) {
          case Op::BEq: builder_.bEq(ra, rb, target); break;
          case Op::BNe: builder_.bNe(ra, rb, target); break;
          case Op::BLt: builder_.bLt(ra, rb, target); break;
          case Op::BGe: builder_.bGe(ra, rb, target); break;
          case Op::Jmp: builder_.jmp(target); break;
          default: panic("emitBranch: not a branch");
        }
    }

    // --- prologue -------------------------------------------------------
    void
    prologue()
    {
        // r0 is the hardwired-by-convention zero.
        Instr zero;
        zero.op = Op::ILoadImm;
        zero.rd = regZero;
        zero.imm = 0;
        emit(zero);
        nextInt_ = 1;
        // Reserved partitioning variables (see partitionParallelLoops).
        for (const auto &[name, value] :
             {std::pair<const char *, int>{"__procid", opts_.procId},
              {"__nprocs", opts_.numProcs}}) {
            Instr li;
            li.op = Op::ILoadImm;
            li.rd = intVarReg(name);
            li.imm = value;
            emit(li);
        }
        // A base register per array.
        int alias_id = 1;
        for (const auto &array : kernel_.arrays) {
            const Reg r = allocPersistentInt();
            baseRegs_[&array] = r;
            aliasIds_[&array] = alias_id++;
            Instr li;
            li.op = Op::ILoadImm;
            li.rd = r;
            li.imm = static_cast<std::int64_t>(array.base);
            emit(li);
        }
        flushRegion();
    }

    // --- expressions ----------------------------------------------------
    /** Split `expr` into (non-constant part, constant) for displacement
     *  folding. The non-constant part may be null (pure constant). */
    static std::pair<const Expr *, std::int64_t>
    splitConst(const Expr &expr)
    {
        if (const auto c = analysis::constEval(expr))
            return {nullptr, *c};
        if (expr.kind == Expr::Kind::Bin &&
            (expr.bop == ir::BinOp::Add || expr.bop == ir::BinOp::Sub)) {
            const auto rc = analysis::constEval(*expr.children[1]);
            if (rc) {
                auto [inner, c] = splitConst(*expr.children[0]);
                const std::int64_t sign =
                    expr.bop == ir::BinOp::Add ? 1 : -1;
                if (inner == nullptr && c == 0)
                    return {expr.children[0].get(), sign * *rc};
                return {inner != nullptr ? inner
                                         : expr.children[0].get(),
                        c + sign * *rc};
            }
            const auto lc = analysis::constEval(*expr.children[0]);
            if (lc && expr.bop == ir::BinOp::Add)
                return {expr.children[1].get(), *lc};
        }
        return {&expr, 0};
    }

    /** Address of a memory reference as (base reg, displacement,
     *  released-on-use temp). */
    struct Address
    {
        Reg base = kisa::noReg;
        std::int64_t disp = 0;
        Operand temp;   ///< holds base when it is a temp
        AliasInfo alias;
    };

    Address
    lowerAddress(const Expr &ref)
    {
        Address out;
        if (ref.kind == Expr::Kind::Deref) {
            Operand ptr = lowerExpr(*ref.children[0]);
            out.base = ptr.reg;
            out.disp = ref.ival;
            out.temp = ptr;
            out.alias.any = true;
            return out;
        }
        MPC_ASSERT(ref.kind == Expr::Kind::ArrayRef, "not a memory ref");
        const ir::Array &array = *ref.array;
        if (!baseRegs_.count(&array)) {
            // Measurement mode may lower loops referencing arrays of a
            // cloned kernel; register them on demand.
            const Reg r = allocPersistentInt();
            baseRegs_[&array] = r;
            aliasIds_[&array] = static_cast<int>(baseRegs_.size());
            Instr li;
            li.op = Op::ILoadImm;
            li.rd = r;
            li.imm = static_cast<std::int64_t>(array.base);
            emit(li);
        }
        out.alias.any = false;
        out.alias.arrayId = aliasIds_.at(&array);
        if (auto form = analysis::linearIndexForm(ref)) {
            std::string shape;
            for (const auto &[v, coef] : form->coefs) {
                if (coef != 0)
                    shape += v + ":" + std::to_string(coef) + ";";
            }
            out.alias.shapeKnown = true;
            out.alias.shapeHash = std::hash<std::string>{}(shape);
            out.alias.c = form->c;
        }

        // index = sum over dims of (nonconst_d * rowstride_d), with the
        // constant parts folded into the displacement.
        Operand index;
        std::int64_t const_index = 0;
        for (size_t d = 0; d < ref.children.size(); ++d) {
            auto [part, c] = splitConst(*ref.children[d]);
            const std::int64_t dim = array.dims[d];
            // Scale the accumulator by this dimension. Constants of
            // the form 2^a +/- 2^b (e.g. padded row pitches) are
            // strength-reduced to two shifts and an add/sub of 1-cycle
            // ALU ops instead of a multi-cycle multiply.
            if (index.reg != kisa::noReg && d > 0) {
                const Reg scaled = index.isTemp ? index.reg
                                                : allocTempInt();
                const auto two_term = shiftPairSplit(
                    static_cast<std::uint64_t>(dim));
                if (isPowerOf2(static_cast<std::uint64_t>(dim))) {
                    Instr sc;
                    sc.op = Op::IShlImm;
                    sc.imm = log2Floor(static_cast<std::uint64_t>(dim));
                    sc.rd = scaled;
                    sc.ra = index.reg;
                    emit(sc);
                } else if (two_term) {
                    const auto [hi_sh, lo_sh, negate] = *two_term;
                    const Reg hi = allocTempInt();
                    Instr sh;
                    sh.op = Op::IShlImm;
                    sh.rd = hi;
                    sh.ra = index.reg;
                    sh.imm = hi_sh;
                    emit(sh);
                    Instr sl;
                    sl.op = Op::IShlImm;
                    sl.rd = scaled;
                    sl.ra = index.reg;
                    sl.imm = lo_sh;
                    emit(sl);
                    Instr comb;
                    comb.op = negate ? Op::ISub : Op::IAdd;
                    comb.rd = scaled;
                    comb.ra = hi;
                    comb.rb = scaled;
                    emit(comb);
                    intFree_.push_back(hi);
                } else {
                    Instr sc;
                    sc.op = Op::IMulImm;
                    sc.imm = dim;
                    sc.rd = scaled;
                    sc.ra = index.reg;
                    emit(sc);
                }
                index.reg = scaled;
                index.isTemp = true;
            }
            const_index = const_index * dim + c;
            if (part != nullptr) {
                Operand sub = lowerExpr(*part);
                MPC_ASSERT(!sub.isFp, "FP value used as subscript");
                if (index.reg == kisa::noReg) {
                    index = sub;
                } else {
                    Instr addi;
                    addi.op = Op::IAdd;
                    addi.rd = index.isTemp ? index.reg : allocTempInt();
                    addi.ra = index.reg;
                    addi.rb = sub.reg;
                    emit(addi);
                    if (!index.isTemp) {
                        index.reg = addi.rd;
                        index.isTemp = true;
                    }
                    release(sub);
                }
            }
        }
        const Reg base_reg = baseRegs_.at(&array);
        if (index.reg == kisa::noReg) {
            out.base = base_reg;
            out.disp = const_index * 8;
            return out;
        }
        // byte address = base + (index << 3)
        const Reg bytes = index.isTemp ? index.reg : allocTempInt();
        Instr shl;
        shl.op = Op::IShlImm;
        shl.rd = bytes;
        shl.ra = index.reg;
        shl.imm = 3;
        emit(shl);
        Instr addb;
        addb.op = Op::IAdd;
        addb.rd = bytes;
        addb.ra = bytes;
        addb.rb = base_reg;
        emit(addb);
        out.base = bytes;
        out.disp = const_index * 8;
        out.temp = Operand{bytes, false, true};
        return out;
    }

    Operand
    lowerExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::IntConst: {
            if (expr.ival == 0)
                return {regZero, false, false};
            const Reg r = allocTempInt();
            Instr li;
            li.op = Op::ILoadImm;
            li.rd = r;
            li.imm = expr.ival;
            emit(li);
            return {r, false, true};
          }
          case Expr::Kind::FloatConst: {
            const Reg r = allocTempFp();
            Instr li;
            li.op = Op::FLoadImm;
            li.rd = r;
            li.imm = std::bit_cast<std::int64_t>(expr.fval);
            emit(li);
            return {r, true, true};
          }
          case Expr::Kind::VarRef:
            if (varIsFp(expr.var))
                return {fpVarReg(expr.var), true, false};
            return {intVarReg(expr.var), false, false};
          case Expr::Kind::ArrayRef:
          case Expr::Kind::Deref: {
            const bool fp = expr.kind == Expr::Kind::ArrayRef
                                ? expr.array->elem == ScalType::F64
                                : expr.vtype == ScalType::F64;
            Address addr = lowerAddress(expr);
            const Reg dest = fp ? allocTempFp() : allocTempInt();
            Instr ld;
            ld.op = fp ? Op::LdF : Op::LdI;
            ld.rd = dest;
            ld.ra = addr.base;
            ld.imm = addr.disp;
            ld.refId = static_cast<std::uint32_t>(expr.refId);
            emit(ld, addr.alias);
            release(addr.temp);
            return {dest, fp, true};
          }
          case Expr::Kind::Bin: {
            Operand a = lowerExpr(*expr.children[0]);
            Operand b = lowerExpr(*expr.children[1]);
            const bool fp = a.isFp || b.isFp;
            if (fp) {
                a = coerceFp(a);
                b = coerceFp(b);
            }
            const Reg dest = fp ? allocTempFp() : allocTempInt();
            Instr in;
            switch (expr.bop) {
              case ir::BinOp::Add: in.op = fp ? Op::FAdd : Op::IAdd; break;
              case ir::BinOp::Sub: in.op = fp ? Op::FSub : Op::ISub; break;
              case ir::BinOp::Mul: in.op = fp ? Op::FMul : Op::IMul; break;
              case ir::BinOp::Div: in.op = fp ? Op::FDiv : Op::IDiv; break;
              case ir::BinOp::Mod:
                MPC_ASSERT(!fp, "FP modulo not supported in codegen");
                in.op = Op::IRem;
                break;
              case ir::BinOp::Min: in.op = fp ? Op::FMin : Op::IMin; break;
              case ir::BinOp::Max: in.op = fp ? Op::FMax : Op::IMax; break;
            }
            in.rd = dest;
            in.ra = a.reg;
            in.rb = b.reg;
            emit(in);
            release(a);
            release(b);
            return {dest, fp, true};
          }
          case Expr::Kind::Un: {
            Operand a = lowerExpr(*expr.children[0]);
            switch (expr.uop) {
              case ir::UnOp::Neg: {
                if (a.isFp) {
                    const Reg dest = allocTempFp();
                    Instr in;
                    in.op = Op::FNeg;
                    in.rd = dest;
                    in.ra = a.reg;
                    emit(in);
                    release(a);
                    return {dest, true, true};
                }
                const Reg dest = allocTempInt();
                Instr in;
                in.op = Op::ISub;
                in.rd = dest;
                in.ra = regZero;
                in.rb = a.reg;
                emit(in);
                release(a);
                return {dest, false, true};
              }
              case ir::UnOp::Sqrt: {
                a = coerceFp(a);
                const Reg dest = allocTempFp();
                Instr in;
                in.op = Op::FSqrt;
                in.rd = dest;
                in.ra = a.reg;
                emit(in);
                release(a);
                return {dest, true, true};
              }
              case ir::UnOp::Abs: {
                a = coerceFp(a);
                const Reg dest = allocTempFp();
                Instr in;
                in.op = Op::FAbs;
                in.rd = dest;
                in.ra = a.reg;
                emit(in);
                release(a);
                return {dest, true, true};
              }
              case ir::UnOp::Trunc: {
                if (!a.isFp)
                    return a;
                const Reg dest = allocTempInt();
                Instr in;
                in.op = Op::CvtFI;
                in.rd = dest;
                in.ra = a.reg;
                emit(in);
                release(a);
                return {dest, false, true};
              }
            }
            panic("lowerExpr: bad unary op");
          }
        }
        panic("lowerExpr: bad expression kind");
    }

    Operand
    coerceFp(Operand operand)
    {
        if (operand.isFp)
            return operand;
        const Reg dest = allocTempFp();
        Instr in;
        in.op = Op::CvtIF;
        in.rd = dest;
        in.ra = operand.reg;
        emit(in);
        release(operand);
        return {dest, true, true};
    }

    /** Lower @p expr, placing the result in the given register. The
     *  destination is only written by the final instruction, so the
     *  destination may appear inside @p expr. */
    void
    lowerInto(const Expr &expr, Reg dest, bool dest_fp)
    {
        // Binary roots can write the destination directly: operands are
        // fully evaluated before the final instruction writes dest.
        if (expr.kind == Expr::Kind::Bin && expr.bop != ir::BinOp::Mod) {
            Operand a = lowerExpr(*expr.children[0]);
            Operand b = lowerExpr(*expr.children[1]);
            const bool fp = a.isFp || b.isFp;
            if (fp == dest_fp) {
                if (fp) {
                    a = coerceFp(a);
                    b = coerceFp(b);
                }
                Instr in;
                switch (expr.bop) {
                  case ir::BinOp::Add: in.op = fp ? Op::FAdd : Op::IAdd; break;
                  case ir::BinOp::Sub: in.op = fp ? Op::FSub : Op::ISub; break;
                  case ir::BinOp::Mul: in.op = fp ? Op::FMul : Op::IMul; break;
                  case ir::BinOp::Div: in.op = fp ? Op::FDiv : Op::IDiv; break;
                  case ir::BinOp::Min: in.op = fp ? Op::FMin : Op::IMin; break;
                  case ir::BinOp::Max: in.op = fp ? Op::FMax : Op::IMax; break;
                  default: panic("unreachable binop");
                }
                in.rd = dest;
                in.ra = a.reg;
                in.rb = b.reg;
                emit(in);
                release(a);
                release(b);
                return;
            }
            release(a);
            release(b);
            // Type mismatch: fall through to the generic path below
            // (re-lowering the children; rare).
        }
        Operand v = lowerExpr(expr);
        if (dest_fp && !v.isFp)
            v = coerceFp(v);
        if (!dest_fp && v.isFp) {
            Instr cv;
            cv.op = Op::CvtFI;
            cv.rd = dest;
            cv.ra = v.reg;
            emit(cv);
            release(v);
            return;
        }
        if (v.reg == dest) {
            release(v);
            return;
        }
        Instr mv;
        if (dest_fp) {
            mv.op = Op::FMov;
            mv.rd = dest;
            mv.ra = v.reg;
        } else {
            mv.op = Op::IAddImm;
            mv.rd = dest;
            mv.ra = v.reg;
            mv.imm = 0;
        }
        emit(mv);
        release(v);
    }

    // --- statements -----------------------------------------------------
    void
    lowerStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Assign:
          case Stmt::Kind::FlagSet:
            lowerAssign(stmt);
            break;
          case Stmt::Kind::Loop:
            lowerLoop(stmt);
            break;
          case Stmt::Kind::PtrLoop:
            lowerPtrLoop(stmt);
            break;
          case Stmt::Kind::While:
            lowerWhile(stmt);
            break;
          case Stmt::Kind::Prefetch: {
            Address addr = lowerAddress(*stmt.lhs);
            Instr pf;
            pf.op = Op::Prefetch;
            pf.ra = addr.base;
            pf.imm = addr.disp;
            pf.refId = static_cast<std::uint32_t>(stmt.lhs->refId);
            emit(pf, addr.alias);
            release(addr.temp);
            break;
          }
          case Stmt::Kind::Barrier: {
            flushRegion();
            builder_.barrier();
            break;
          }
          case Stmt::Kind::FlagWait: {
            flushRegion();
            Address addr = lowerAddress(*stmt.lhs);
            Operand threshold = lowerExpr(*stmt.rhs);
            flushRegion();
            builder_.flagWait(addr.base, addr.disp, threshold.reg);
            release(addr.temp);
            release(threshold);
            break;
          }
        }
    }

    void
    lowerAssign(const Stmt &stmt)
    {
        const Expr &lhs = *stmt.lhs;
        if (lhs.kind == Expr::Kind::VarRef) {
            if (varIsFp(lhs.var))
                lowerInto(*stmt.rhs, fpVarReg(lhs.var), true);
            else
                lowerInto(*stmt.rhs, intVarReg(lhs.var), false);
            return;
        }
        // Store.
        const bool fp = lhs.kind == Expr::Kind::ArrayRef
                            ? lhs.array->elem == ScalType::F64
                            : lhs.vtype == ScalType::F64;
        Operand value = lowerExpr(*stmt.rhs);
        if (fp && !value.isFp)
            value = coerceFp(value);
        if (!fp && value.isFp) {
            const Reg iv = allocTempInt();
            Instr cv;
            cv.op = Op::CvtFI;
            cv.rd = iv;
            cv.ra = value.reg;
            emit(cv);
            release(value);
            value = {iv, false, true};
        }
        Address addr = lowerAddress(lhs);
        Instr st;
        st.op = fp ? Op::StF : Op::StI;
        st.ra = addr.base;
        st.rb = value.reg;
        st.imm = addr.disp;
        st.refId = static_cast<std::uint32_t>(lhs.refId);
        emit(st, addr.alias);
        release(addr.temp);
        release(value);
    }

    /** True if the loop bound must be re-evaluated every iteration. */
    static bool
    boundIsDynamic(const Stmt &loop)
    {
        std::set<std::string> assigned;
        for (const auto &child : loop.body) {
            ir::walkStmts(*child, [&assigned](const Stmt &s) {
                if (s.kind == Stmt::Kind::Assign &&
                    s.lhs->kind == Expr::Kind::VarRef)
                    assigned.insert(s.lhs->var);
                if (s.kind == Stmt::Kind::PtrLoop)
                    assigned.insert(s.var);
            });
        }
        bool dynamic = false;
        std::function<void(const Expr &)> scan = [&](const Expr &e) {
            if (e.isMemRef())
                dynamic = true;
            if (e.kind == Expr::Kind::VarRef && assigned.count(e.var))
                dynamic = true;
            for (const auto &c : e.children)
                scan(*c);
        };
        scan(*loop.hi);
        return dynamic;
    }

    void
    lowerLoop(const Stmt &stmt)
    {
        MPC_ASSERT(stmt.step != 0, "zero loop step");
        const bool down = stmt.step < 0;
        const Reg var = intVarReg(stmt.var);
        lowerInto(*stmt.lo, var, false);

        const Reg hi = allocPersistentInt();
        const bool dynamic_hi = boundIsDynamic(stmt);
        lowerInto(*stmt.hi, hi, false);

        const bool partition = stmt.parallel && opts_.numProcs > 1 &&
                               !stmt.prePartitioned && !partitioned_;
        MPC_ASSERT(!(partition && down),
                   "partitioning downward loops is unsupported");
        if (partition) {
            // chunk = ceil(ceil(trip / P) / step) * step, so chunk
            // boundaries stay aligned to the (possibly unroll-and-
            // jammed) step; lo += procId * chunk; hi = min(lo+chunk,hi)
            MPC_ASSERT(!dynamic_hi, "cannot partition a dynamic bound");
            const std::int64_t pstep =
                static_cast<std::int64_t>(opts_.numProcs) * stmt.step;
            const Reg trip = allocTempInt();
            Instr sub;
            sub.op = Op::ISub;
            sub.rd = trip;
            sub.ra = hi;
            sub.rb = var;
            emit(sub);
            Instr addp;
            addp.op = Op::IAddImm;
            addp.rd = trip;
            addp.ra = trip;
            addp.imm = pstep - 1;
            emit(addp);
            const Reg preg = allocTempInt();
            Instr lp;
            lp.op = Op::ILoadImm;
            lp.rd = preg;
            lp.imm = pstep;
            emit(lp);
            Instr divp;
            divp.op = Op::IDiv;
            divp.rd = trip;    // trip now holds chunk / step
            divp.ra = trip;
            divp.rb = preg;
            emit(divp);
            Instr scl;
            scl.op = Op::IMulImm;
            scl.rd = trip;     // chunk, step-aligned
            scl.ra = trip;
            scl.imm = stmt.step;
            emit(scl);
            intFree_.push_back(preg);
            if (opts_.procId > 0) {
                const Reg off = allocTempInt();
                Instr mo;
                mo.op = Op::IMulImm;
                mo.rd = off;
                mo.ra = trip;
                mo.imm = opts_.procId;
                emit(mo);
                Instr av;
                av.op = Op::IAdd;
                av.rd = var;
                av.ra = var;
                av.rb = off;
                emit(av);
                intFree_.push_back(off);
            }
            const Reg my_hi = allocTempInt();
            Instr ah;
            ah.op = Op::IAdd;
            ah.rd = my_hi;
            ah.ra = var;
            ah.rb = trip;
            emit(ah);
            Instr mn;
            mn.op = Op::IMin;
            mn.rd = hi;
            mn.ra = my_hi;
            mn.rb = hi;
            emit(mn);
            intFree_.push_back(my_hi);
            intFree_.push_back(trip);
            partitioned_ = true;
        }

        auto l_top = newLabel();
        auto l_exit = newLabel();
        // Guard (also flushes): exit when the range is empty. Upward
        // loops run while var < hi; downward loops while var > hi.
        if (down)
            emitBranch(Op::BGe, hi, var, l_exit);
        else
            emitBranch(Op::BGe, var, hi, l_exit);
        bindLabel(l_top);
        const int body_start = builder_.here();

        for (const auto &child : stmt.body)
            lowerStmt(*child);

        // Increment and backedge.
        Instr inc;
        inc.op = Op::IAddImm;
        inc.rd = var;
        inc.ra = var;
        inc.imm = stmt.step;
        emit(inc);
        if (dynamic_hi)
            lowerInto(*stmt.hi, hi, false);
        if (down)
            emitBranch(Op::BLt, hi, var, l_top);
        else
            emitBranch(Op::BLt, var, hi, l_top);
        bindLabel(l_exit);

        if (measureTarget_ == &stmt)
            measuredBody_ = builder_.here() - body_start - 1;
        if (partition)
            partitioned_ = false;
    }

    void
    lowerPtrLoop(const Stmt &stmt)
    {
        const Reg var = intVarReg(stmt.var);
        lowerInto(*stmt.lo, var, false);
        auto l_top = newLabel();
        auto l_exit = newLabel();
        emitBranch(Op::BEq, var, regZero, l_exit);
        bindLabel(l_top);
        const int body_start = builder_.here();

        for (const auto &child : stmt.body)
            lowerStmt(*child);

        // Advance: var = *(var + next_offset)
        Instr adv;
        adv.op = Op::LdI;
        adv.rd = var;
        adv.ra = var;
        adv.imm = stmt.step;
        adv.refId = stmt.rhs
                        ? static_cast<std::uint32_t>(stmt.rhs->refId)
                        : 0xffffffff;
        AliasInfo deref_alias;
        deref_alias.any = true;
        emit(adv, deref_alias);
        emitBranch(Op::BNe, var, regZero, l_top);
        bindLabel(l_exit);

        if (measureTarget_ == &stmt)
            measuredBody_ = builder_.here() - body_start - 1;
    }

    void
    lowerWhile(const Stmt &stmt)
    {
        auto l_check = newLabel();
        auto l_exit = newLabel();
        bindLabel(l_check);
        Operand cond = lowerExpr(*stmt.lo);
        emitBranch(Op::BEq, cond.reg, regZero, l_exit);
        release(cond);
        const int body_start = builder_.here();

        for (const auto &child : stmt.body)
            lowerStmt(*child);

        emitBranch(Op::Jmp, kisa::noReg, kisa::noReg, l_check);
        bindLabel(l_exit);

        if (measureTarget_ == &stmt)
            measuredBody_ = builder_.here() - body_start - 1;
    }

    const Kernel &kernel_;
    CodegenOptions opts_;
    AsmBuilder builder_;

    std::vector<Instr> region_;
    std::vector<AliasInfo> aliasClass_;

    int nextInt_ = 1;
    int nextFp_ = 0;
    static constexpr int tempBaseInt_ = 112;
    static constexpr int tempBaseFp_ = 112;
    int intTempNext_ = tempBaseInt_;
    int fpTempNext_ = tempBaseFp_;
    std::vector<Reg> intFree_;
    std::vector<Reg> fpFree_;

    std::map<std::string, Reg> intVars_;
    std::map<std::string, Reg> fpVars_;
    std::map<const ir::Array *, Reg> baseRegs_;
    std::map<const ir::Array *, int> aliasIds_;

    bool partitioned_ = false;

    const Stmt *measureTarget_ = nullptr;
    int measuredBody_ = -1;
};

} // namespace

kisa::Program
lower(const ir::Kernel &kernel, const CodegenOptions &options)
{
    for (const auto &array : kernel.arrays)
        MPC_ASSERT(array.base != 0, "layoutArrays before lowering");
    Lowerer lowerer(kernel, options);
    return lowerer.lower();
}

std::vector<kisa::Program>
lowerForCores(const ir::Kernel &kernel, int num_procs,
              bool clustered_schedule,
              const std::set<std::uint32_t> &leading_refs)
{
    std::vector<kisa::Program> programs;
    for (int p = 0; p < num_procs; ++p) {
        CodegenOptions options;
        options.clusteredSchedule = clustered_schedule;
        options.leadingRefs = leading_refs;
        options.procId = p;
        options.numProcs = num_procs;
        programs.push_back(lower(kernel, options));
    }
    return programs;
}

int
loweredBodySize(const ir::Kernel &kernel, const ir::Stmt &loop)
{
    CodegenOptions options;
    Lowerer lowerer(kernel, options);
    return lowerer.measure(loop);
}

} // namespace mpc::codegen
