/**
 * @file
 * Sparse 64-bit-word memory image. Serves as the functional backing
 * store for both the interpreter and the timing simulator (the timing
 * model tracks *when* data moves; the image tracks *what* the data is).
 */

#ifndef MPC_KISA_MEMIMAGE_HH
#define MPC_KISA_MEMIMAGE_HH

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mpc::kisa
{

/**
 * Sparse, page-granular memory of 64-bit words. Addresses are byte
 * addresses and must be 8-byte aligned. Unwritten memory reads as zero.
 */
class MemoryImage
{
  public:
    static constexpr Addr pageBytes = 1 << 16;
    static constexpr size_t wordsPerPage = pageBytes / 8;

    /** Read a 64-bit word. */
    std::uint64_t
    ld64(Addr addr) const
    {
        const auto it = pages_.find(addr / pageBytes);
        if (it == pages_.end())
            return 0;
        return it->second[(addr % pageBytes) / 8];
    }

    /** Write a 64-bit word. */
    void
    st64(Addr addr, std::uint64_t value)
    {
        page(addr)[(addr % pageBytes) / 8] = value;
    }

    /** Read a double. */
    double ldF64(Addr addr) const { return std::bit_cast<double>(ld64(addr)); }

    /** Write a double. */
    void
    stF64(Addr addr, double value)
    {
        st64(addr, std::bit_cast<std::uint64_t>(value));
    }

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages_.size(); }

    /**
     * Raw backing words of the page containing @p addr, creating a
     * zeroed page if absent. A page's storage is allocated once and
     * never resized, so the pointer stays valid for the image's
     * lifetime — the threaded execution tier caches these to bypass
     * the hash lookup per access. Unlike ld64, reading through this
     * pointer makes the page resident (contents are identical: zero);
     * only numPages() can tell the difference.
     */
    std::uint64_t *pageWords(Addr addr) { return page(addr).data(); }

  private:
    std::vector<std::uint64_t> &
    page(Addr addr)
    {
        auto &p = pages_[addr / pageBytes];
        if (p.empty())
            p.assign(wordsPerPage, 0);
        return p;
    }

    std::unordered_map<Addr, std::vector<std::uint64_t>> pages_;
};

} // namespace mpc::kisa

#endif // MPC_KISA_MEMIMAGE_HH
