/**
 * @file
 * Sparse 64-bit-word memory image. Serves as the functional backing
 * store for both the interpreter and the timing simulator (the timing
 * model tracks *when* data moves; the image tracks *what* the data is).
 *
 * Concurrency: by default every access assumes a single thread (the
 * historical model — one simulation per host thread). Sharded stepping
 * runs core ticks for different nodes on different host threads
 * against the shared image, so System::run enables concurrent mode for
 * the duration of the run: accesses then go through a per-thread
 * direct-mapped cache of page-word pointers (pages never move once
 * created), and only page *creation* takes the image mutex. Word reads
 * and writes are plain — simulated programs separate cross-core
 * accesses to the same word by barriers or flag waits, which the
 * sharded stepper serializes, and the barrier between phases orders
 * everything else. The one observable difference in concurrent mode is
 * residency: a load of an absent page materializes it (reading zeros
 * either way), so numPages() can exceed the serial count.
 */

#ifndef MPC_KISA_MEMIMAGE_HH
#define MPC_KISA_MEMIMAGE_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mpc::kisa
{

/**
 * Sparse, page-granular memory of 64-bit words. Addresses are byte
 * addresses and must be 8-byte aligned. Unwritten memory reads as zero.
 */
class MemoryImage
{
  public:
    static constexpr Addr pageBytes = 1 << 16;
    static constexpr size_t wordsPerPage = pageBytes / 8;

    MemoryImage() : nonce_(nextNonce()) {}

    /** Read a 64-bit word. */
    std::uint64_t
    ld64(Addr addr) const
    {
        if (concurrent_)
            return cachedWords(addr)[(addr % pageBytes) / 8];
        const auto it = pages_.find(addr / pageBytes);
        if (it == pages_.end())
            return 0;
        return it->second[(addr % pageBytes) / 8];
    }

    /** Write a 64-bit word. */
    void
    st64(Addr addr, std::uint64_t value)
    {
        if (concurrent_) {
            cachedWords(addr)[(addr % pageBytes) / 8] = value;
            return;
        }
        page(addr)[(addr % pageBytes) / 8] = value;
    }

    /** Read a double. */
    double ldF64(Addr addr) const { return std::bit_cast<double>(ld64(addr)); }

    /** Write a double. */
    void
    stF64(Addr addr, double value)
    {
        st64(addr, std::bit_cast<std::uint64_t>(value));
    }

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages_.size(); }

    /**
     * Raw backing words of the page containing @p addr, creating a
     * zeroed page if absent. A page's storage is allocated once and
     * never resized, so the pointer stays valid for the image's
     * lifetime — the threaded execution tier caches these to bypass
     * the hash lookup per access. Unlike ld64, reading through this
     * pointer makes the page resident (contents are identical: zero);
     * only numPages() can tell the difference.
     */
    std::uint64_t *pageWords(Addr addr) { return page(addr).data(); }

    /**
     * Toggle multi-threaded access mode (see file comment). Flip only
     * while no other thread is touching the image; the sharded stepper
     * sets it before spawning shard workers and clears it after they
     * join.
     */
    void setConcurrent(bool on) { concurrent_ = on; }
    bool concurrent() const { return concurrent_; }

  private:
    std::vector<std::uint64_t> &
    page(Addr addr) const
    {
        auto &p = pages_[addr / pageBytes];
        if (p.empty())
            p.assign(wordsPerPage, 0);
        return p;
    }

    /** Distinguishes image instances that reuse an address, so a
     *  thread-local cache entry can never hit a dead image's pages. */
    static std::uint64_t
    nextNonce()
    {
        static std::atomic<std::uint64_t> counter{1};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Concurrent-mode page lookup: a per-thread direct-mapped cache of
     * (image nonce, page index) -> word pointer. Hits are lock-free;
     * a miss takes the image mutex to find-or-create the page. Page
     * vectors never move after creation, so cached pointers stay valid
     * for the image's lifetime.
     */
    std::uint64_t *
    cachedWords(Addr addr) const
    {
        struct Entry
        {
            std::uint64_t nonce = 0;
            Addr pageIdx = 0;
            std::uint64_t *words = nullptr;
        };
        static constexpr size_t cacheSlots = 64;
        thread_local Entry cache[cacheSlots];

        const Addr page_idx = addr / pageBytes;
        Entry &e = cache[(page_idx ^ (nonce_ * 0x9e3779b97f4a7c15ull)) %
                         cacheSlots];
        if (e.nonce == nonce_ && e.pageIdx == page_idx)
            return e.words;
        std::lock_guard<std::mutex> guard(mu_);
        std::uint64_t *words = page(addr).data();
        e = {nonce_, page_idx, words};
        return words;
    }

    mutable std::unordered_map<Addr, std::vector<std::uint64_t>> pages_;
    mutable std::mutex mu_;
    std::uint64_t nonce_;
    bool concurrent_ = false;
};

} // namespace mpc::kisa

#endif // MPC_KISA_MEMIMAGE_HH
