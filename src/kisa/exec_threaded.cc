#include "kisa/exec_threaded.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace mpc::kisa
{

namespace
{

// -1 = unpinned (consult the environment); otherwise the pinned tier.
std::atomic<int> g_tier_pin{-1};

} // namespace

// The handler table (and the computed-goto label table in the header)
// enumerate every opcode by its enum value; adding an opcode without
// extending them would silently route it to the trap fallback, so pin
// the enum's extent here.
static_assert(static_cast<int>(Op::Halt) == 45,
              "KISA opcode set changed: extend the threaded tier's "
              "handler/label tables in exec_threaded.{hh,cc}");
static_assert(detail::numHandlers == 53,
              "one handler per opcode, the trap fallback, and six "
              "fused superinstructions");

ExecTier
execTierFromEnv()
{
    const int pin = g_tier_pin.load(std::memory_order_relaxed);
    if (pin >= 0)
        return static_cast<ExecTier>(pin);
    const char *env = std::getenv("MPC_EXEC_TIER");
    if (env == nullptr || *env == '\0')
        return ExecTier::Threaded;
    if (std::strcmp(env, "interp") == 0)
        return ExecTier::Interp;
    if (std::strcmp(env, "threaded") == 0)
        return ExecTier::Threaded;
    fatal("MPC_EXEC_TIER: unknown tier '%s' (expected interp|threaded)",
          env);
}

void
pinExecTier(ExecTier tier)
{
    g_tier_pin.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void
clearExecTierPin()
{
    g_tier_pin.store(-1, std::memory_order_relaxed);
}

bool
execTierPinned()
{
    return g_tier_pin.load(std::memory_order_relaxed) >= 0;
}

const char *
execTierName(ExecTier tier)
{
    return tier == ExecTier::Interp ? "interp" : "threaded";
}

namespace
{

std::uint8_t
handlerFor(Op op)
{
    const auto raw = static_cast<std::uint8_t>(op);
    return raw <= static_cast<std::uint8_t>(Op::Halt)
               ? raw
               : detail::trapHandler;
}

} // namespace

ThreadedProgram::ThreadedProgram(const Program &program)
    : source_(&program)
{
    const std::size_t n = program.code.size();
    // The predecode sidecar (InstrMeta) classifies branches, so branch
    // targets are bounds-checked once here instead of per dynamic
    // instruction. Programs straight from AsmBuilder/codegen always
    // carry it; derive locally for hand-rolled ones.
    std::vector<InstrMeta> local_meta;
    const std::vector<InstrMeta> *meta = &program.meta;
    if (program.meta.size() != n) {
        local_meta.reserve(n);
        for (const Instr &in : program.code)
            local_meta.push_back(deriveMeta(in));
        meta = &local_meta;
    }

    recs_.reserve(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        const Instr &in = program.code[i];
        detail::OpRec rec;
        rec.imm = in.imm;
        rec.target = in.target;
        rec.pc = static_cast<std::int32_t>(i);
        rec.rd = in.rd;
        rec.ra = in.ra;
        rec.rb = in.rb;
        rec.handler = handlerFor(in.op);
        // A branch whose target is outside [0, n] cannot be turned
        // into a record pointer; route it to the trap handler, which
        // faults only if the branch actually executes — the same
        // laziness the interpreter has (target == n is legal and
        // lands on the sentinel below).
        if ((*meta)[i].isBranch &&
            (in.target < 0 ||
             in.target > static_cast<std::int32_t>(n)))
            rec.handler = detail::trapHandler;
        if (rec.handler == detail::trapHandler)
            ++trapCount_;
        recs_.push_back(rec);
    }

    // Sentinel: running off the end lands here; the step() fallback
    // then reproduces the interpreter's "pc out of range" assertion.
    detail::OpRec sentinel;
    sentinel.pc = static_cast<std::int32_t>(n);
    sentinel.handler = detail::trapHandler;
    recs_.push_back(sentinel);

    // Superinstruction peephole: rewrite the FIRST record of the
    // address-generation sequences the lowered code emits constantly
    // (ishli;iadd — often with the ld/st it feeds — and the counted
    // loop's iaddi;blt back-edge) to a fused handler. Matching on the
    // already-assigned handler (not the opcode) automatically excludes
    // trap-routed records. Swallowed slots are left untouched: they
    // hold both the fused handler's operands and a valid unfused
    // entry point for branches into the middle of a sequence.
    const auto h = [](Op op) { return static_cast<std::uint8_t>(op); };
    std::size_t i = 0;
    while (i < n) {
        detail::OpRec &r0 = recs_[i];
        if (r0.handler == h(Op::IShlImm) && i + 1 < n &&
            recs_[i + 1].handler == h(Op::IAdd)) {
            const std::uint8_t third =
                i + 2 < n ? recs_[i + 2].handler : detail::trapHandler;
            if (third == h(Op::LdI))
                r0.handler = detail::fusedShlAddLdI;
            else if (third == h(Op::LdF))
                r0.handler = detail::fusedShlAddLdF;
            else if (third == h(Op::StI))
                r0.handler = detail::fusedShlAddStI;
            else if (third == h(Op::StF))
                r0.handler = detail::fusedShlAddStF;
            else
                r0.handler = detail::fusedShlAdd;
            ++fusedCount_;
            i += r0.handler == detail::fusedShlAdd ? 2 : 3;
            continue;
        }
        if (r0.handler == h(Op::IAddImm) && i + 1 < n &&
            recs_[i + 1].handler == h(Op::BLt)) {
            r0.handler = detail::fusedAddImmBLt;
            ++fusedCount_;
            i += 2;
            continue;
        }
        ++i;
    }
}

int
ThreadedExecutor::addCore(const Program &program)
{
    cores_.push_back(CoreState{&program, ThreadedProgram(program),
                               RegFile{}, 0, false, false, 0});
    return static_cast<int>(cores_.size()) - 1;
}

std::uint64_t
ThreadedExecutor::run(std::uint64_t max_steps)
{
    struct NoHook
    {
        void operator()(int, const Instr &, Addr, bool) const {}
    };
    return runWithHook(NoHook{}, max_steps);
}

std::uint64_t
ThreadedExecutor::instrCount(int core) const
{
    return cores_[static_cast<std::size_t>(core)].instrs;
}

std::size_t
ThreadedExecutor::trapCount() const
{
    std::size_t count = 0;
    for (const CoreState &core : cores_)
        count += core.tprog.trapCount();
    return count;
}

void
ThreadedExecutor::budgetExceeded(std::uint64_t max_steps)
{
    fatal("ThreadedExecutor: instruction budget exceeded (%llu) - "
          "runaway kernel?",
          static_cast<unsigned long long>(max_steps));
}

std::uint64_t
execute(const Program &program, MemoryImage &mem,
        std::uint64_t max_steps, ExecTier tier)
{
    struct NoHook
    {
        void operator()(int, const Instr &, Addr, bool) const {}
    };
    return executeWithHook(program, mem, NoHook{}, max_steps, tier);
}

std::uint64_t
execute(const std::vector<Program> &programs, MemoryImage &mem,
        std::uint64_t max_steps, ExecTier tier)
{
    struct NoHook
    {
        void operator()(int, const Instr &, Addr, bool) const {}
    };
    return executeWithHook(programs, mem, NoHook{}, max_steps, tier);
}

} // namespace mpc::kisa
