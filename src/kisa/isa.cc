#include "kisa/isa.hh"

#include "common/logging.hh"

namespace mpc::kisa
{

OpClass
opClass(Op op)
{
    switch (op) {
      case Op::Nop:
        return OpClass::Nop;
      case Op::IAdd: case Op::ISub: case Op::IAnd: case Op::IOr:
      case Op::IXor: case Op::IShl: case Op::IShr: case Op::ICmpLt:
      case Op::ICmpEq: case Op::IMin: case Op::IMax:
      case Op::IAddImm: case Op::IShlImm:
      case Op::IAndImm: case Op::ILoadImm:
      case Op::BEq: case Op::BNe: case Op::BLt: case Op::BGe: case Op::Jmp:
        return OpClass::IntAlu;
      case Op::IMul: case Op::IDiv: case Op::IRem: case Op::IMulImm:
        return OpClass::IntMul;
      case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FNeg:
      case Op::FAbs: case Op::FMin: case Op::FMax: case Op::FMov:
      case Op::FLoadImm: case Op::CvtIF: case Op::CvtFI:
        return OpClass::FpArith;
      case Op::FDiv:
        return OpClass::FpDiv;
      case Op::FSqrt:
        return OpClass::FpSqrt;
      case Op::Prefetch: case Op::LdI: case Op::LdF:
        return OpClass::MemRead;
      case Op::StI: case Op::StF:
        return OpClass::MemWrite;
      case Op::Barrier: case Op::FlagWait:
        return OpClass::Sync;
      case Op::Halt:
        return OpClass::Halt;
    }
    panic("opClass: unknown opcode %d", static_cast<int>(op));
}

bool
isMemOp(Op op)
{
    const OpClass cls = opClass(op);
    return cls == OpClass::MemRead || cls == OpClass::MemWrite;
}

bool
isBranch(Op op)
{
    switch (op) {
      case Op::BEq: case Op::BNe: case Op::BLt: case Op::BGe: case Op::Jmp:
        return true;
      default:
        return false;
    }
}

bool
destIsFp(Op op)
{
    switch (op) {
      case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FDiv:
      case Op::FSqrt: case Op::FNeg: case Op::FAbs: case Op::FMin:
      case Op::FMax: case Op::FMov: case Op::FLoadImm: case Op::CvtIF:
      case Op::LdF:
        return true;
      default:
        return false;
    }
}

bool
srcAIsFp(Op op)
{
    switch (op) {
      case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FDiv:
      case Op::FSqrt: case Op::FNeg: case Op::FAbs: case Op::FMin:
      case Op::FMax: case Op::FMov: case Op::CvtFI:
        return true;
      default:
        // Loads/stores use ra as an integer base address.
        return false;
    }
}

bool
srcBIsFp(Op op)
{
    switch (op) {
      case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FDiv:
      case Op::FMin: case Op::FMax: case Op::StF:
        return true;
      default:
        return false;
    }
}

InstrMeta
deriveMeta(const Instr &instr)
{
    const Op op = instr.op;
    InstrMeta m;
    m.cls = opClass(op);
    m.isMem = isMemOp(op);
    m.isBranch = isBranch(op);
    m.destFp = destIsFp(op);
    m.srcAFp = srcAIsFp(op);
    m.srcBFp = srcBIsFp(op);
    m.writesReg = instr.rd != noReg && !m.isBranch &&
                  op != Op::StI && op != Op::StF;
    return m;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::IAdd: return "iadd";
      case Op::ISub: return "isub";
      case Op::IMul: return "imul";
      case Op::IDiv: return "idiv";
      case Op::IRem: return "irem";
      case Op::IAnd: return "iand";
      case Op::IOr: return "ior";
      case Op::IXor: return "ixor";
      case Op::IShl: return "ishl";
      case Op::IShr: return "ishr";
      case Op::ICmpLt: return "icmplt";
      case Op::ICmpEq: return "icmpeq";
      case Op::IMin: return "imin";
      case Op::IMax: return "imax";
      case Op::IAddImm: return "iaddi";
      case Op::IMulImm: return "imuli";
      case Op::IShlImm: return "ishli";
      case Op::IAndImm: return "iandi";
      case Op::ILoadImm: return "ildimm";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::FSqrt: return "fsqrt";
      case Op::FNeg: return "fneg";
      case Op::FAbs: return "fabs";
      case Op::FMin: return "fmin";
      case Op::FMax: return "fmax";
      case Op::FMov: return "fmov";
      case Op::FLoadImm: return "fldimm";
      case Op::CvtIF: return "cvtif";
      case Op::CvtFI: return "cvtfi";
      case Op::Prefetch: return "prefetch";
      case Op::LdI: return "ldi";
      case Op::LdF: return "ldf";
      case Op::StI: return "sti";
      case Op::StF: return "stf";
      case Op::BEq: return "beq";
      case Op::BNe: return "bne";
      case Op::BLt: return "blt";
      case Op::BGe: return "bge";
      case Op::Jmp: return "jmp";
      case Op::Barrier: return "barrier";
      case Op::FlagWait: return "flagwait";
      case Op::Halt: return "halt";
    }
    return "???";
}

std::string
Instr::toString() const
{
    std::string result = opName(op);
    auto reg_str = [](bool fp, Reg r) {
        return strprintf("%s%u", fp ? "f" : "r", unsigned(r));
    };
    switch (op) {
      case Op::Nop: case Op::Halt: case Op::Barrier:
        break;
      case Op::ILoadImm: case Op::FLoadImm:
        result += strprintf(" %s, %lld", reg_str(destIsFp(op), rd).c_str(),
                            static_cast<long long>(imm));
        break;
      case Op::IAddImm: case Op::IMulImm: case Op::IShlImm: case Op::IAndImm:
        result += strprintf(" r%u, r%u, %lld", unsigned(rd), unsigned(ra),
                            static_cast<long long>(imm));
        break;
      case Op::Prefetch:
        result += strprintf(" [r%u + %lld]", unsigned(ra),
                            static_cast<long long>(imm));
        break;
      case Op::LdI: case Op::LdF:
        result += strprintf(" %s, [r%u + %lld]",
                            reg_str(destIsFp(op), rd).c_str(), unsigned(ra),
                            static_cast<long long>(imm));
        break;
      case Op::StI: case Op::StF:
        result += strprintf(" [r%u + %lld], %s", unsigned(ra),
                            static_cast<long long>(imm),
                            reg_str(srcBIsFp(op), rb).c_str());
        break;
      case Op::BEq: case Op::BNe: case Op::BLt: case Op::BGe:
        result += strprintf(" r%u, r%u, @%d", unsigned(ra), unsigned(rb),
                            int(target));
        break;
      case Op::Jmp:
        result += strprintf(" @%d", int(target));
        break;
      case Op::FlagWait:
        result += strprintf(" [r%u + %lld] >= r%u", unsigned(ra),
                            static_cast<long long>(imm), unsigned(rb));
        break;
      case Op::CvtIF: case Op::CvtFI: case Op::FSqrt: case Op::FNeg:
      case Op::FAbs: case Op::FMov:
        result += strprintf(" %s, %s", reg_str(destIsFp(op), rd).c_str(),
                            reg_str(srcAIsFp(op), ra).c_str());
        break;
      default:
        result += strprintf(" %s, %s, %s",
                            reg_str(destIsFp(op), rd).c_str(),
                            reg_str(srcAIsFp(op), ra).c_str(),
                            reg_str(srcBIsFp(op), rb).c_str());
        break;
    }
    return result;
}

} // namespace mpc::kisa
