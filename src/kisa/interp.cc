#include "kisa/interp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mpc::kisa
{

StepResult
step(const Program &program, int pc, RegFile &regs, MemoryImage &mem)
{
    MPC_ASSERT(pc >= 0 && pc < static_cast<int>(program.code.size()),
               "pc out of range");
    const Instr &in = program.code[pc];
    StepResult res;
    res.nextPc = pc + 1;

    auto &ir = regs.intRegs;
    auto &fr = regs.fpRegs;

    switch (in.op) {
      case Op::Nop:
        break;
      case Op::IAdd: ir[in.rd] = ir[in.ra] + ir[in.rb]; break;
      case Op::ISub: ir[in.rd] = ir[in.ra] - ir[in.rb]; break;
      case Op::IMul: ir[in.rd] = ir[in.ra] * ir[in.rb]; break;
      case Op::IDiv:
        ir[in.rd] = in.rb != noReg && ir[in.rb] != 0
                        ? ir[in.ra] / ir[in.rb] : 0;
        break;
      case Op::IRem:
        ir[in.rd] = in.rb != noReg && ir[in.rb] != 0
                        ? ir[in.ra] % ir[in.rb] : 0;
        break;
      case Op::IAnd: ir[in.rd] = ir[in.ra] & ir[in.rb]; break;
      case Op::IOr: ir[in.rd] = ir[in.ra] | ir[in.rb]; break;
      case Op::IXor: ir[in.rd] = ir[in.ra] ^ ir[in.rb]; break;
      case Op::IShl: ir[in.rd] = ir[in.ra] << (ir[in.rb] & 63); break;
      case Op::IShr:
        ir[in.rd] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(ir[in.ra]) >> (ir[in.rb] & 63));
        break;
      case Op::ICmpLt: ir[in.rd] = ir[in.ra] < ir[in.rb] ? 1 : 0; break;
      case Op::ICmpEq: ir[in.rd] = ir[in.ra] == ir[in.rb] ? 1 : 0; break;
      case Op::IMin: ir[in.rd] = std::min(ir[in.ra], ir[in.rb]); break;
      case Op::IMax: ir[in.rd] = std::max(ir[in.ra], ir[in.rb]); break;
      case Op::IAddImm: ir[in.rd] = ir[in.ra] + in.imm; break;
      case Op::IMulImm: ir[in.rd] = ir[in.ra] * in.imm; break;
      case Op::IShlImm: ir[in.rd] = ir[in.ra] << (in.imm & 63); break;
      case Op::IAndImm: ir[in.rd] = ir[in.ra] & in.imm; break;
      case Op::ILoadImm: ir[in.rd] = in.imm; break;

      case Op::FAdd: fr[in.rd] = fr[in.ra] + fr[in.rb]; break;
      case Op::FSub: fr[in.rd] = fr[in.ra] - fr[in.rb]; break;
      case Op::FMul: fr[in.rd] = fr[in.ra] * fr[in.rb]; break;
      case Op::FDiv: fr[in.rd] = fr[in.ra] / fr[in.rb]; break;
      case Op::FSqrt: fr[in.rd] = std::sqrt(fr[in.ra]); break;
      case Op::FNeg: fr[in.rd] = -fr[in.ra]; break;
      case Op::FAbs: fr[in.rd] = std::fabs(fr[in.ra]); break;
      case Op::FMin: fr[in.rd] = std::min(fr[in.ra], fr[in.rb]); break;
      case Op::FMax: fr[in.rd] = std::max(fr[in.ra], fr[in.rb]); break;
      case Op::FMov: fr[in.rd] = fr[in.ra]; break;
      case Op::FLoadImm:
        fr[in.rd] = std::bit_cast<double>(in.imm);
        break;
      case Op::CvtIF: fr[in.rd] = static_cast<double>(ir[in.ra]); break;
      case Op::CvtFI:
        ir[in.rd] = static_cast<std::int64_t>(fr[in.ra]);
        break;

      case Op::Prefetch: {
        const Addr addr = static_cast<Addr>(ir[in.ra] + in.imm);
        // Nonbinding: reported as a load for cache-warming observers,
        // no architectural effect.
        res.isMem = true;
        res.isLoad = true;
        res.memAddr = addr;
        break;
      }
      case Op::LdI: {
        const Addr addr = static_cast<Addr>(ir[in.ra] + in.imm);
        ir[in.rd] = static_cast<std::int64_t>(mem.ld64(addr));
        res.isMem = true;
        res.isLoad = true;
        res.memAddr = addr;
        break;
      }
      case Op::LdF: {
        const Addr addr = static_cast<Addr>(ir[in.ra] + in.imm);
        fr[in.rd] = mem.ldF64(addr);
        res.isMem = true;
        res.isLoad = true;
        res.memAddr = addr;
        break;
      }
      case Op::StI: {
        const Addr addr = static_cast<Addr>(ir[in.ra] + in.imm);
        mem.st64(addr, static_cast<std::uint64_t>(ir[in.rb]));
        res.isMem = true;
        res.memAddr = addr;
        break;
      }
      case Op::StF: {
        const Addr addr = static_cast<Addr>(ir[in.ra] + in.imm);
        mem.stF64(addr, fr[in.rb]);
        res.isMem = true;
        res.memAddr = addr;
        break;
      }

      case Op::BEq:
        res.branchTaken = ir[in.ra] == ir[in.rb];
        if (res.branchTaken)
            res.nextPc = in.target;
        break;
      case Op::BNe:
        res.branchTaken = ir[in.ra] != ir[in.rb];
        if (res.branchTaken)
            res.nextPc = in.target;
        break;
      case Op::BLt:
        res.branchTaken = ir[in.ra] < ir[in.rb];
        if (res.branchTaken)
            res.nextPc = in.target;
        break;
      case Op::BGe:
        res.branchTaken = ir[in.ra] >= ir[in.rb];
        if (res.branchTaken)
            res.nextPc = in.target;
        break;
      case Op::Jmp:
        res.branchTaken = true;
        res.nextPc = in.target;
        break;

      case Op::Barrier:
        res.isBarrier = true;
        break;
      case Op::FlagWait: {
        const Addr addr = static_cast<Addr>(ir[in.ra] + in.imm);
        const auto value = static_cast<std::int64_t>(mem.ld64(addr));
        if (value < ir[in.rb]) {
            res.syncBlocked = true;
            res.nextPc = pc;
        } else {
            res.isMem = true;
            res.isLoad = true;
            res.memAddr = addr;
        }
        break;
      }
      case Op::Halt:
        res.halted = true;
        res.nextPc = pc;
        break;
    }
    return res;
}

int
Interpreter::addCore(const Program &program)
{
    CoreState state;
    state.program = &program;
    cores_.push_back(std::move(state));
    return static_cast<int>(cores_.size()) - 1;
}

std::uint64_t
Interpreter::run(std::uint64_t max_steps)
{
    if (memHook_) {
        return runWithHook(
            [this](int core, const Instr &instr, Addr addr,
                   bool is_load) {
                memHook_(core, instr, addr, is_load);
            },
            max_steps);
    }
    struct NoHook
    {
        void operator()(int, const Instr &, Addr, bool) const {}
    };
    return runWithHook(NoHook{}, max_steps);
}

std::uint64_t
Interpreter::instrCount(int core) const
{
    return cores_[static_cast<size_t>(core)].instrs;
}

} // namespace mpc::kisa
