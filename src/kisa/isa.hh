/**
 * @file
 * KISA: the kernel instruction set.
 *
 * A small RISC-like ISA shared by the functional interpreter (golden
 * model) and the cycle-level out-of-order core. All memory elements are
 * 8 bytes (int64 or IEEE double); addresses are byte addresses. Loop
 * kernels produced by the code generator (src/codegen) are vectors of
 * decoded Instr records — there is no binary encoding.
 */

#ifndef MPC_KISA_ISA_HH
#define MPC_KISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mpc::kisa
{

/** Number of integer (and, separately, floating-point) registers. */
constexpr int numIntRegs = 256;
constexpr int numFpRegs = 256;

/** Register index type. Integer and FP registers live in separate files;
 *  the opcode determines which file an operand names. */
using Reg = std::uint16_t;

/** Sentinel register meaning "operand unused". */
constexpr Reg noReg = 0xffff;

/** Opcodes. Field usage is documented per group. */
enum class Op : std::uint8_t {
    Nop,

    // Integer register-register: rd <- ra OP rb
    IAdd, ISub, IMul, IDiv, IRem, IAnd, IOr, IXor, IShl, IShr,
    ICmpLt,     ///< rd <- (ra < rb) ? 1 : 0
    ICmpEq,     ///< rd <- (ra == rb) ? 1 : 0
    IMin,       ///< rd <- min(ra, rb) (signed)
    IMax,       ///< rd <- max(ra, rb) (signed)

    // Integer register-immediate: rd <- ra OP imm
    IAddImm, IMulImm, IShlImm, IAndImm,

    ILoadImm,   ///< rd <- imm

    // Floating point register-register: rd <- ra OP rb (FP file)
    FAdd, FSub, FMul, FDiv,
    FSqrt,      ///< rd <- sqrt(ra)
    FNeg,       ///< rd <- -ra
    FAbs,       ///< rd <- |ra|
    FMin, FMax,
    FMov,       ///< rd <- ra (FP register move)

    FLoadImm,   ///< rd (FP) <- bit pattern imm
    CvtIF,      ///< rd (FP) <- double(ra (int))
    CvtFI,      ///< rd (int) <- int64(ra (FP))

    // Memory: effective address = intReg[ra] + imm
    Prefetch,   ///< nonbinding line prefetch of [ra + imm]
    LdI,        ///< rd (int) <- mem64[ra + imm]
    LdF,        ///< rd (FP)  <- mem64[ra + imm]
    StI,        ///< mem64[ra + imm] <- rb (int)
    StF,        ///< mem64[ra + imm] <- rb (FP)

    // Control: compare-and-branch on integer registers
    BEq,        ///< if (ra == rb) goto target
    BNe, BLt, BGe,
    Jmp,        ///< goto target

    // Synchronization (multiprocessor)
    Barrier,    ///< retire blocks until all cores arrive
    FlagWait,   ///< retire blocks until mem64[ra + imm] >= rb

    Halt,       ///< end of program
};

/**
 * Functional-unit class of an operation, mirroring the simulated
 * configuration's unit pool (2 ALUs, 2 FPUs, 2 address units).
 */
enum class OpClass : std::uint8_t {
    Nop,        ///< consumes no unit
    IntAlu,     ///< 1-cycle ALU ops and branches
    IntMul,     ///< 7-cycle integer multiply/divide
    FpArith,    ///< 3-cycle FP add/sub/mul/convert
    FpDiv,      ///< 16-cycle FP divide
    FpSqrt,     ///< 33-cycle FP square root
    MemRead,    ///< loads (address generation on an address unit)
    MemWrite,   ///< stores
    Sync,       ///< barrier / flag wait
    Halt,
};

/** Map an opcode to its functional-unit class. */
OpClass opClass(Op op);

/** True if the opcode reads/writes memory. */
bool isMemOp(Op op);

/** True if the opcode is a conditional or unconditional branch. */
bool isBranch(Op op);

/** True if the destination register (if any) is in the FP file. */
bool destIsFp(Op op);

/** True if source operand ra / rb is in the FP file. */
bool srcAIsFp(Op op);
bool srcBIsFp(Op op);

/** Mnemonic string for an opcode. */
const char *opName(Op op);

/**
 * One decoded instruction.
 */
struct Instr
{
    Op op = Op::Nop;
    Reg rd = noReg;     ///< destination register (file per destIsFp)
    Reg ra = noReg;     ///< source A / address base
    Reg rb = noReg;     ///< source B / store data / flag threshold
    std::int64_t imm = 0;   ///< immediate / address displacement
    std::int32_t target = -1;   ///< branch target (instruction index)

    /**
     * Static memory-reference id assigned by the code generator, used to
     * attribute per-reference miss statistics. 0xffffffff means none.
     */
    std::uint32_t refId = 0xffffffff;

    /** Pretty-print (mnemonic plus operands). */
    std::string toString() const;
};

/**
 * Predecoded per-instruction metadata: everything the out-of-order
 * core's dispatch/issue/retire logic needs that is derivable from the
 * opcode alone. Built once per program (Program::predecode) so the hot
 * loop does one indexed array read instead of re-deriving attributes
 * through the opcode switch every dynamic instruction. step() remains
 * the single semantic definition; deriveMeta is asserted consistent
 * with the opcode helpers in debug builds (Core ctor).
 */
struct InstrMeta
{
    OpClass cls = OpClass::Nop;
    bool isMem = false;     ///< isMemOp(op)
    bool isBranch = false;  ///< isBranch(op)
    bool destFp = false;    ///< destIsFp(op)
    bool srcAFp = false;    ///< srcAIsFp(op)
    bool srcBFp = false;    ///< srcBIsFp(op)
    /** Instruction writes a destination register visible to later
     *  consumers: rd is set and the op is neither a branch nor a
     *  store (stores use rd-free encodings; see AsmBuilder). */
    bool writesReg = false;

    bool
    operator==(const InstrMeta &o) const
    {
        return cls == o.cls && isMem == o.isMem &&
               isBranch == o.isBranch && destFp == o.destFp &&
               srcAFp == o.srcAFp && srcBFp == o.srcBFp &&
               writesReg == o.writesReg;
    }
};

/** Derive @p instr's metadata from the opcode helpers above. */
InstrMeta deriveMeta(const Instr &instr);

} // namespace mpc::kisa

#endif // MPC_KISA_ISA_HH
