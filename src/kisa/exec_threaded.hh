/**
 * @file
 * Threaded-code execution tier for KISA programs.
 *
 * The golden-model interpreter (interp.hh) decodes every dynamic
 * instruction through step()'s opcode switch and routes every memory
 * access through the MemoryImage hash map. That cost is paid constantly:
 * the profiler replays whole workloads functionally, and per-pass
 * verification (MPC_VERIFY_PASSES=1) re-interprets the kernel after
 * every pipeline pass. This tier compiles a Program once into a flat
 * array of OpRec records — operands pre-extracted, branch targets
 * bounds-checked at compile time, handler selected per instruction —
 * and dispatches with computed gotos where the compiler supports them
 * (a switch loop otherwise). Loads and stores go through a small
 * direct-mapped page-pointer cache instead of the hash map.
 *
 * Semantics are defined by step(): every record either inlines the
 * exact effect of its opcode or (for opcodes this tier does not know)
 * traps to step() itself, so the two tiers cannot diverge on supported
 * programs and degrade gracefully — never wrongly — on unsupported
 * ones. The differential tests (test_exec.cc) assert register files,
 * memory images, and array checksums bit-identical across tiers.
 *
 * Tier selection is environmental: MPC_EXEC_TIER=interp|threaded
 * (default threaded) read by execTierFromEnv(), and the execute() /
 * executeWithHook() entry points below run a program set on whichever
 * tier is selected. The memory hook is a template parameter exactly as
 * in Interpreter::runWithHook, so profiling callers pay an inlined call
 * per access on either tier.
 */

#ifndef MPC_KISA_EXEC_THREADED_HH
#define MPC_KISA_EXEC_THREADED_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "kisa/interp.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"

namespace mpc::kisa
{

/** Which backend executes a program functionally. */
enum class ExecTier
{
    Interp,     ///< step()-per-instruction golden model (interp.hh)
    Threaded,   ///< predecoded threaded-code tier (this file)
};

/**
 * Tier selected by the process-wide pin when set (pinExecTier), else by
 * MPC_EXEC_TIER ("interp" | "threaded"; unset or empty means threaded;
 * anything else is fatal). The environment is read fresh on every
 * unpinned call — no static cache — so tests can flip the knob with
 * setenv.
 */
ExecTier execTierFromEnv();

/**
 * Pin the tier for the whole process, overriding MPC_EXEC_TIER until
 * clearExecTierPin(). Tools that take a --exec-tier flag resolve the
 * flag/environment precedence ONCE at startup and pin the result, so a
 * run cannot mix tiers if the environment changes mid-invocation (and
 * a flag always beats an inherited environment variable).
 */
void pinExecTier(ExecTier tier);
void clearExecTierPin();

/** Is a pin currently in force? (tests) */
bool execTierPinned();

/** "interp" or "threaded". */
const char *execTierName(ExecTier tier);

namespace detail
{

/** Handler index of a known opcode is its Op value; one extra handler
 *  traps to step() for anything the tier does not implement. */
constexpr std::uint8_t trapHandler =
    static_cast<std::uint8_t>(Op::Halt) + 1;

/**
 * Superinstruction handlers, assigned by the predecode peephole to the
 * FIRST record of an adjacent sequence the lowered code emits
 * constantly (address generation: shift-scale, add base, then often
 * the memory access itself; and the counted-loop back-edge). A fused
 * handler executes every constituent op's architectural effects in
 * order — intermediate register writes included — and retires them
 * all, so results and instruction counts are bit-identical to the
 * unfused sequence; only the dispatches in between are saved. The
 * swallowed slots keep their original single-op handlers, so a branch
 * (or a barrier resume) landing mid-sequence just executes unfused.
 */
constexpr std::uint8_t fusedShlAdd = trapHandler + 1;
constexpr std::uint8_t fusedShlAddLdI = trapHandler + 2;
constexpr std::uint8_t fusedShlAddLdF = trapHandler + 3;
constexpr std::uint8_t fusedShlAddStI = trapHandler + 4;
constexpr std::uint8_t fusedShlAddStF = trapHandler + 5;
constexpr std::uint8_t fusedAddImmBLt = trapHandler + 6;
constexpr std::size_t numHandlers = fusedAddImmBLt + 1;

/**
 * One predecoded op record: the operand fields a handler needs, laid
 * out flat so the dispatch loop never touches the source Instr (the
 * source pc is kept for the memory hook and the trap fallback).
 */
struct OpRec
{
    std::int64_t imm = 0;
    std::int32_t target = -1;
    std::int32_t pc = 0;    ///< source instruction index
    Reg rd = noReg;
    Reg ra = noReg;
    Reg rb = noReg;
    std::uint8_t handler = trapHandler;
};

} // namespace detail

/**
 * A Program compiled to threaded code: one OpRec per instruction (so
 * branch targets are record indices) plus a trailing trap sentinel, so
 * running off the end reaches step() and reproduces the interpreter's
 * "pc out of range" assertion. Compilation bounds-checks branch targets
 * using the InstrMeta predecode sidecar; branches with out-of-range
 * targets are routed to the trap handler, which faults only if they
 * are actually taken — the same laziness the interpreter has.
 */
class ThreadedProgram
{
  public:
    explicit ThreadedProgram(const Program &program);

    const Program &source() const { return *source_; }

    /** Instructions routed to the interpreter-fallback trap handler. */
    std::size_t trapCount() const { return trapCount_; }

    /** Superinstructions formed by the predecode peephole (tests). */
    std::size_t fusedCount() const { return fusedCount_; }

  private:
    friend class ThreadedExecutor;

    const Program *source_;
    std::vector<detail::OpRec> recs_;   ///< code.size() + 1 (sentinel)
    std::size_t trapCount_ = 0;
    std::size_t fusedCount_ = 0;
};

/**
 * Threaded-code twin of Interpreter: same construction, addCore,
 * run/runWithHook surface, and exactly the interpreter's multi-core
 * semantics — cores stepped round-robin, each run until it halts or
 * blocks, barriers released when every core has arrived (halted cores
 * count as present), deadlock fatal, per-run instruction budget fatal
 * when exceeded. The memory hook fires after the access's effect with
 * the source Instr of the executing pc, exactly as the interpreter's.
 */
class ThreadedExecutor
{
  public:
    /** @param mem Shared backing store (not owned). */
    explicit ThreadedExecutor(MemoryImage &mem) : mem_(&mem) {}

    /** Add a core running @p program (compiled here). Returns its
     *  index. @p program must outlive the executor. */
    int addCore(const Program &program);

    /** Run all cores to completion; returns dynamic instructions. */
    std::uint64_t run(std::uint64_t max_steps = 1ull << 32);

    /** run() with a statically-typed memory-access observer; see
     *  Interpreter::runWithHook. */
    template <typename Hook>
    std::uint64_t
    runWithHook(Hook &&hook, std::uint64_t max_steps = 1ull << 32)
    {
        MPC_ASSERT(!cores_.empty(),
                   "ThreadedExecutor::run with no cores");
        std::uint64_t total = 0;
        const std::size_t n = cores_.size();
        std::size_t num_halted = 0;

        while (num_halted < n) {
            bool progress = false;
            std::size_t at_barrier = 0;
            for (auto &core : cores_) {
                if (core.halted) {
                    // Halted cores count as present for barrier
                    // purposes, as in the interpreter.
                    ++at_barrier;
                    continue;
                }
                if (core.atBarrier) {
                    ++at_barrier;
                    continue;
                }
                const std::uint64_t before = total;
                const Exit exit = runCore(
                    core, hook,
                    static_cast<int>(&core - cores_.data()), total,
                    max_steps);
                progress = progress || total != before;
                if (exit == Exit::Halted) {
                    core.halted = true;
                    ++num_halted;
                } else if (exit == Exit::Barrier) {
                    core.atBarrier = true;
                }
                // Exit::Blocked: FlagWait pending; let others run.
            }
            if (at_barrier == n) {
                for (auto &core : cores_)
                    core.atBarrier = false;
                progress = true;
            }
            if (!progress && num_halted < n)
                fatal("ThreadedExecutor: deadlock (all cores blocked)");
        }
        return total;
    }

    /** Dynamic instruction count of core @p core after run(). */
    std::uint64_t instrCount(int core) const;

    /** Architectural registers of core @p core (post-run inspection). */
    const RegFile &regs(int core) const { return cores_[core].regs; }

    /** Trap-handler records across all cores' programs (tests). */
    std::size_t trapCount() const;

  private:
    enum class Exit
    {
        Halted,
        Barrier,
        Blocked,
    };

    struct CoreState
    {
        const Program *program;
        ThreadedProgram tprog;
        RegFile regs;
        int pc = 0;
        bool halted = false;
        bool atBarrier = false;
        std::uint64_t instrs = 0;
    };

    /** Direct-mapped page-pointer cache over the shared MemoryImage.
     *  Page storage is allocated once and never resized (pageWords),
     *  so cached pointers stay valid for the image's lifetime. */
    struct PageSlot
    {
        Addr pageNum = invalidAddr;
        std::uint64_t *words = nullptr;
    };
    static constexpr std::size_t pageSlots = 64;

    std::uint64_t *
    wordPtr(Addr addr)
    {
        const Addr page = addr / MemoryImage::pageBytes;
        PageSlot &slot = pageCache_[page % pageSlots];
        if (slot.pageNum != page) {
            slot.words = mem_->pageWords(addr);
            slot.pageNum = page;
        }
        return slot.words + (addr % MemoryImage::pageBytes) / 8;
    }

    [[noreturn]] static void budgetExceeded(std::uint64_t max_steps);

    /** Run one core until it halts or blocks (the dispatch loop). */
    template <typename Hook>
    Exit runCore(CoreState &core, Hook &hook, int core_idx,
                 std::uint64_t &total, std::uint64_t max_steps);

    MemoryImage *mem_;
    std::vector<CoreState> cores_;
    PageSlot pageCache_[pageSlots];
};

// --- dispatch loop ---------------------------------------------------
//
// The handler bodies below are written once; the macros instantiate
// them either as labels reached by computed goto (indirect threading;
// GCC/Clang) or as cases of a switch inside a dispatch loop (portable
// fallback). Handler index == Op value for every known opcode, with
// one trailing trap handler, so the label table must list the labels
// in exact Op declaration order — the differential fuzz tests execute
// every opcode on both tiers and would catch any misordering.

#if defined(__GNUC__) || defined(__clang__)
#define MPC_EXEC_COMPUTED_GOTO 1
#else
#define MPC_EXEC_COMPUTED_GOTO 0
#endif

#if MPC_EXEC_COMPUTED_GOTO
#define MPC_EXEC_OP(name) Lbl_##name:
#define MPC_EXEC_FUSED(name, id) Lbl_##name:
#define MPC_EXEC_TRAP Lbl_Trap:
#define MPC_EXEC_NEXT() goto *labels[rec->handler]
#else
#define MPC_EXEC_OP(name) case static_cast<int>(Op::name):
#define MPC_EXEC_FUSED(name, id) case static_cast<int>(id):
#define MPC_EXEC_TRAP default:
#define MPC_EXEC_NEXT() goto dispatch
#endif

// Straight-line handlers retire without comparing against the budget;
// the compare runs at every control-flow edge instead (MPC_EXEC_CHECK
// in the branch handlers, the trap fallback, and every exit path).
// Any execution either reaches a branch/exit or runs off the end into
// the trap sentinel, so a runaway kernel still faults — at most one
// branch-free path (bounded by the static code size) later than the
// interpreter would, indistinguishable since exhaustion is fatal
// either way. Checking every exit keeps the invariant the next
// runCore call relies on: total never exceeds max_steps on return.
#define MPC_EXEC_RETIRE() ++executed

#define MPC_EXEC_RETIRE_N(n) executed += (n)

#define MPC_EXEC_CHECK()                                                \
    do {                                                                \
        if (executed > budget)                                          \
            budgetExceeded(max_steps);                                  \
    } while (0)

#define MPC_EXEC_LEAVE(kind)                                            \
    do {                                                                \
        MPC_EXEC_CHECK();                                               \
        exit_kind = (kind);                                             \
        goto done;                                                      \
    } while (0)

template <typename Hook>
ThreadedExecutor::Exit
ThreadedExecutor::runCore(CoreState &core, Hook &hook, int core_idx,
                          std::uint64_t &total, std::uint64_t max_steps)
{
    const detail::OpRec *const base = core.tprog.recs_.data();
    const Instr *const src = core.program->code.data();
    const auto code_size =
        static_cast<std::int32_t>(core.program->code.size());
    const detail::OpRec *rec = base + core.pc;
    auto &ir = core.regs.intRegs;
    auto &fr = core.regs.fpRegs;
    // total <= max_steps on entry (exceeding is fatal before return),
    // so the subtraction cannot underflow and the budget check at each
    // control-flow edge is a single register compare.
    const std::uint64_t budget = max_steps - total;
    std::uint64_t executed = 0;
    Exit exit_kind = Exit::Blocked;

#if MPC_EXEC_COMPUTED_GOTO
    static const void *const labels[detail::numHandlers] = {
        &&Lbl_Nop,
        &&Lbl_IAdd,
        &&Lbl_ISub,
        &&Lbl_IMul,
        &&Lbl_IDiv,
        &&Lbl_IRem,
        &&Lbl_IAnd,
        &&Lbl_IOr,
        &&Lbl_IXor,
        &&Lbl_IShl,
        &&Lbl_IShr,
        &&Lbl_ICmpLt,
        &&Lbl_ICmpEq,
        &&Lbl_IMin,
        &&Lbl_IMax,
        &&Lbl_IAddImm,
        &&Lbl_IMulImm,
        &&Lbl_IShlImm,
        &&Lbl_IAndImm,
        &&Lbl_ILoadImm,
        &&Lbl_FAdd,
        &&Lbl_FSub,
        &&Lbl_FMul,
        &&Lbl_FDiv,
        &&Lbl_FSqrt,
        &&Lbl_FNeg,
        &&Lbl_FAbs,
        &&Lbl_FMin,
        &&Lbl_FMax,
        &&Lbl_FMov,
        &&Lbl_FLoadImm,
        &&Lbl_CvtIF,
        &&Lbl_CvtFI,
        &&Lbl_Prefetch,
        &&Lbl_LdI,
        &&Lbl_LdF,
        &&Lbl_StI,
        &&Lbl_StF,
        &&Lbl_BEq,
        &&Lbl_BNe,
        &&Lbl_BLt,
        &&Lbl_BGe,
        &&Lbl_Jmp,
        &&Lbl_Barrier,
        &&Lbl_FlagWait,
        &&Lbl_Halt,
        &&Lbl_Trap,
        &&Lbl_ShlAdd,
        &&Lbl_ShlAddLdI,
        &&Lbl_ShlAddLdF,
        &&Lbl_ShlAddStI,
        &&Lbl_ShlAddStF,
        &&Lbl_AddImmBLt,
    };
    MPC_EXEC_NEXT();
#else
  dispatch:
    switch (rec->handler) {
#endif

    MPC_EXEC_OP(Nop)
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();

    MPC_EXEC_OP(IAdd)
        ir[rec->rd] = ir[rec->ra] + ir[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(ISub)
        ir[rec->rd] = ir[rec->ra] - ir[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IMul)
        ir[rec->rd] = ir[rec->ra] * ir[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IDiv)
        ir[rec->rd] = rec->rb != noReg && ir[rec->rb] != 0
                          ? ir[rec->ra] / ir[rec->rb]
                          : 0;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IRem)
        ir[rec->rd] = rec->rb != noReg && ir[rec->rb] != 0
                          ? ir[rec->ra] % ir[rec->rb]
                          : 0;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IAnd)
        ir[rec->rd] = ir[rec->ra] & ir[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IOr)
        ir[rec->rd] = ir[rec->ra] | ir[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IXor)
        ir[rec->rd] = ir[rec->ra] ^ ir[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IShl)
        ir[rec->rd] = ir[rec->ra] << (ir[rec->rb] & 63);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IShr)
        ir[rec->rd] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(ir[rec->ra]) >>
            (ir[rec->rb] & 63));
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(ICmpLt)
        ir[rec->rd] = ir[rec->ra] < ir[rec->rb] ? 1 : 0;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(ICmpEq)
        ir[rec->rd] = ir[rec->ra] == ir[rec->rb] ? 1 : 0;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IMin)
        ir[rec->rd] = std::min(ir[rec->ra], ir[rec->rb]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IMax)
        ir[rec->rd] = std::max(ir[rec->ra], ir[rec->rb]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();

    MPC_EXEC_OP(IAddImm)
        ir[rec->rd] = ir[rec->ra] + rec->imm;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IMulImm)
        ir[rec->rd] = ir[rec->ra] * rec->imm;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IShlImm)
        ir[rec->rd] = ir[rec->ra] << (rec->imm & 63);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(IAndImm)
        ir[rec->rd] = ir[rec->ra] & rec->imm;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(ILoadImm)
        ir[rec->rd] = rec->imm;
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();

    MPC_EXEC_OP(FAdd)
        fr[rec->rd] = fr[rec->ra] + fr[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FSub)
        fr[rec->rd] = fr[rec->ra] - fr[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FMul)
        fr[rec->rd] = fr[rec->ra] * fr[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FDiv)
        fr[rec->rd] = fr[rec->ra] / fr[rec->rb];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FSqrt)
        fr[rec->rd] = std::sqrt(fr[rec->ra]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FNeg)
        fr[rec->rd] = -fr[rec->ra];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FAbs)
        fr[rec->rd] = std::fabs(fr[rec->ra]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FMin)
        // std::min/max, not a bare ternary: step() uses these, and the
        // two differ on NaN operands (which argument is returned).
        fr[rec->rd] = std::min(fr[rec->ra], fr[rec->rb]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FMax)
        fr[rec->rd] = std::max(fr[rec->ra], fr[rec->rb]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FMov)
        fr[rec->rd] = fr[rec->ra];
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(FLoadImm)
        fr[rec->rd] = std::bit_cast<double>(rec->imm);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(CvtIF)
        fr[rec->rd] = static_cast<double>(ir[rec->ra]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(CvtFI)
        ir[rec->rd] = static_cast<std::int64_t>(fr[rec->ra]);
        MPC_EXEC_RETIRE();
        ++rec;
        MPC_EXEC_NEXT();

    MPC_EXEC_OP(Prefetch) {
        // Nonbinding: reported as a load, no architectural effect.
        const Addr addr = static_cast<Addr>(ir[rec->ra] + rec->imm);
        MPC_EXEC_RETIRE();
        hook(core_idx, src[rec->pc], addr, true);
        ++rec;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_OP(LdI) {
        const Addr addr = static_cast<Addr>(ir[rec->ra] + rec->imm);
        ir[rec->rd] = static_cast<std::int64_t>(*wordPtr(addr));
        MPC_EXEC_RETIRE();
        hook(core_idx, src[rec->pc], addr, true);
        ++rec;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_OP(LdF) {
        const Addr addr = static_cast<Addr>(ir[rec->ra] + rec->imm);
        fr[rec->rd] = std::bit_cast<double>(*wordPtr(addr));
        MPC_EXEC_RETIRE();
        hook(core_idx, src[rec->pc], addr, true);
        ++rec;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_OP(StI) {
        const Addr addr = static_cast<Addr>(ir[rec->ra] + rec->imm);
        *wordPtr(addr) = static_cast<std::uint64_t>(ir[rec->rb]);
        MPC_EXEC_RETIRE();
        hook(core_idx, src[rec->pc], addr, false);
        ++rec;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_OP(StF) {
        const Addr addr = static_cast<Addr>(ir[rec->ra] + rec->imm);
        *wordPtr(addr) = std::bit_cast<std::uint64_t>(fr[rec->rb]);
        MPC_EXEC_RETIRE();
        hook(core_idx, src[rec->pc], addr, false);
        ++rec;
        MPC_EXEC_NEXT();
    }

    MPC_EXEC_OP(BEq)
        rec = ir[rec->ra] == ir[rec->rb] ? base + rec->target : rec + 1;
        MPC_EXEC_RETIRE();
        MPC_EXEC_CHECK();
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(BNe)
        rec = ir[rec->ra] != ir[rec->rb] ? base + rec->target : rec + 1;
        MPC_EXEC_RETIRE();
        MPC_EXEC_CHECK();
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(BLt)
        rec = ir[rec->ra] < ir[rec->rb] ? base + rec->target : rec + 1;
        MPC_EXEC_RETIRE();
        MPC_EXEC_CHECK();
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(BGe)
        rec = ir[rec->ra] >= ir[rec->rb] ? base + rec->target : rec + 1;
        MPC_EXEC_RETIRE();
        MPC_EXEC_CHECK();
        MPC_EXEC_NEXT();
    MPC_EXEC_OP(Jmp)
        rec = base + rec->target;
        MPC_EXEC_RETIRE();
        MPC_EXEC_CHECK();
        MPC_EXEC_NEXT();

    MPC_EXEC_OP(Barrier)
        MPC_EXEC_RETIRE();
        core.pc = rec->pc + 1;
        MPC_EXEC_LEAVE(Exit::Barrier);
    MPC_EXEC_OP(FlagWait) {
        const Addr addr = static_cast<Addr>(ir[rec->ra] + rec->imm);
        if (static_cast<std::int64_t>(*wordPtr(addr)) < ir[rec->rb]) {
            // Condition unsatisfied: does not count as an executed
            // instruction; pc holds (the interpreter's semantics).
            core.pc = rec->pc;
            MPC_EXEC_LEAVE(Exit::Blocked);
        }
        MPC_EXEC_RETIRE();
        hook(core_idx, src[rec->pc], addr, true);
        ++rec;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_OP(Halt)
        MPC_EXEC_RETIRE();
        core.pc = rec->pc;
        MPC_EXEC_LEAVE(Exit::Halted);

    MPC_EXEC_TRAP {
        // Unknown opcode, out-of-range branch target, or the off-the-
        // end sentinel: fall back to step(), the single semantic
        // definition (it asserts on an out-of-range pc, exactly as the
        // interpreter would at this point).
        const int pc = rec->pc;
        const StepResult res = step(*core.program, pc, core.regs, *mem_);
        if (res.syncBlocked) {
            core.pc = pc;
            MPC_EXEC_LEAVE(Exit::Blocked);
        }
        MPC_EXEC_RETIRE();
        MPC_EXEC_CHECK();
        if (res.isMem)
            hook(core_idx, src[pc], res.memAddr, res.isLoad);
        if (res.halted) {
            core.pc = res.nextPc;
            MPC_EXEC_LEAVE(Exit::Halted);
        }
        if (res.isBarrier) {
            core.pc = res.nextPc;
            MPC_EXEC_LEAVE(Exit::Barrier);
        }
        MPC_ASSERT(res.nextPc >= 0 && res.nextPc <= code_size,
                   "pc out of range");
        rec = base + res.nextPc;
        MPC_EXEC_NEXT();
    }

    // Superinstructions (see detail::fusedShlAdd): each replays its
    // constituent ops' exact effects in order, reading operands from
    // the swallowed records, which sit at the following slots.
    MPC_EXEC_FUSED(ShlAdd, detail::fusedShlAdd) {
        const detail::OpRec *const r1 = rec + 1;
        ir[rec->rd] = ir[rec->ra] << (rec->imm & 63);
        ir[r1->rd] = ir[r1->ra] + ir[r1->rb];
        MPC_EXEC_RETIRE_N(2);
        rec += 2;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_FUSED(ShlAddLdI, detail::fusedShlAddLdI) {
        const detail::OpRec *const r1 = rec + 1;
        const detail::OpRec *const r2 = rec + 2;
        ir[rec->rd] = ir[rec->ra] << (rec->imm & 63);
        ir[r1->rd] = ir[r1->ra] + ir[r1->rb];
        const Addr addr = static_cast<Addr>(ir[r2->ra] + r2->imm);
        ir[r2->rd] = static_cast<std::int64_t>(*wordPtr(addr));
        MPC_EXEC_RETIRE_N(3);
        hook(core_idx, src[r2->pc], addr, true);
        rec += 3;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_FUSED(ShlAddLdF, detail::fusedShlAddLdF) {
        const detail::OpRec *const r1 = rec + 1;
        const detail::OpRec *const r2 = rec + 2;
        ir[rec->rd] = ir[rec->ra] << (rec->imm & 63);
        ir[r1->rd] = ir[r1->ra] + ir[r1->rb];
        const Addr addr = static_cast<Addr>(ir[r2->ra] + r2->imm);
        fr[r2->rd] = std::bit_cast<double>(*wordPtr(addr));
        MPC_EXEC_RETIRE_N(3);
        hook(core_idx, src[r2->pc], addr, true);
        rec += 3;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_FUSED(ShlAddStI, detail::fusedShlAddStI) {
        const detail::OpRec *const r1 = rec + 1;
        const detail::OpRec *const r2 = rec + 2;
        ir[rec->rd] = ir[rec->ra] << (rec->imm & 63);
        ir[r1->rd] = ir[r1->ra] + ir[r1->rb];
        const Addr addr = static_cast<Addr>(ir[r2->ra] + r2->imm);
        *wordPtr(addr) = static_cast<std::uint64_t>(ir[r2->rb]);
        MPC_EXEC_RETIRE_N(3);
        hook(core_idx, src[r2->pc], addr, false);
        rec += 3;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_FUSED(ShlAddStF, detail::fusedShlAddStF) {
        const detail::OpRec *const r1 = rec + 1;
        const detail::OpRec *const r2 = rec + 2;
        ir[rec->rd] = ir[rec->ra] << (rec->imm & 63);
        ir[r1->rd] = ir[r1->ra] + ir[r1->rb];
        const Addr addr = static_cast<Addr>(ir[r2->ra] + r2->imm);
        *wordPtr(addr) = std::bit_cast<std::uint64_t>(fr[r2->rb]);
        MPC_EXEC_RETIRE_N(3);
        hook(core_idx, src[r2->pc], addr, false);
        rec += 3;
        MPC_EXEC_NEXT();
    }
    MPC_EXEC_FUSED(AddImmBLt, detail::fusedAddImmBLt) {
        const detail::OpRec *const r1 = rec + 1;
        ir[rec->rd] = ir[rec->ra] + rec->imm;
        rec = ir[r1->ra] < ir[r1->rb] ? base + r1->target : rec + 2;
        MPC_EXEC_RETIRE_N(2);
        MPC_EXEC_CHECK();
        MPC_EXEC_NEXT();
    }

#if !MPC_EXEC_COMPUTED_GOTO
    }
#endif

  done:
    core.instrs += executed;
    total += executed;
    return exit_kind;
}

#undef MPC_EXEC_OP
#undef MPC_EXEC_FUSED
#undef MPC_EXEC_RETIRE_N
#undef MPC_EXEC_TRAP
#undef MPC_EXEC_NEXT
#undef MPC_EXEC_RETIRE
#undef MPC_EXEC_CHECK
#undef MPC_EXEC_LEAVE

// --- tier-dispatching entry points -----------------------------------

/**
 * Functionally execute @p count programs (one core each) against
 * @p mem on @p tier, calling @p hook for every memory access. This is
 * the single entry point the profiler, the pipeline verifier, and the
 * benches route through; the default tier comes from MPC_EXEC_TIER.
 * @return total dynamic instructions executed.
 */
template <typename Hook>
std::uint64_t
executeWithHook(const Program *const *programs, std::size_t count,
                MemoryImage &mem, Hook &&hook,
                std::uint64_t max_steps = 1ull << 32,
                ExecTier tier = execTierFromEnv())
{
    if (tier == ExecTier::Interp) {
        Interpreter interp(mem);
        for (std::size_t i = 0; i < count; ++i)
            interp.addCore(*programs[i]);
        return interp.runWithHook(std::forward<Hook>(hook), max_steps);
    }
    ThreadedExecutor exec(mem);
    for (std::size_t i = 0; i < count; ++i)
        exec.addCore(*programs[i]);
    return exec.runWithHook(std::forward<Hook>(hook), max_steps);
}

/** Single-program convenience. */
template <typename Hook>
std::uint64_t
executeWithHook(const Program &program, MemoryImage &mem, Hook &&hook,
                std::uint64_t max_steps = 1ull << 32,
                ExecTier tier = execTierFromEnv())
{
    const Program *ptr = &program;
    return executeWithHook(&ptr, 1, mem, std::forward<Hook>(hook),
                           max_steps, tier);
}

/** Vector-of-programs convenience (one core per program). */
template <typename Hook>
std::uint64_t
executeWithHook(const std::vector<Program> &programs, MemoryImage &mem,
                Hook &&hook, std::uint64_t max_steps = 1ull << 32,
                ExecTier tier = execTierFromEnv())
{
    std::vector<const Program *> ptrs;
    ptrs.reserve(programs.size());
    for (const Program &p : programs)
        ptrs.push_back(&p);
    return executeWithHook(ptrs.data(), ptrs.size(), mem,
                           std::forward<Hook>(hook), max_steps, tier);
}

/** Hook-free execution on the selected tier. */
std::uint64_t execute(const Program &program, MemoryImage &mem,
                      std::uint64_t max_steps = 1ull << 32,
                      ExecTier tier = execTierFromEnv());
std::uint64_t execute(const std::vector<Program> &programs,
                      MemoryImage &mem,
                      std::uint64_t max_steps = 1ull << 32,
                      ExecTier tier = execTierFromEnv());

} // namespace mpc::kisa

#endif // MPC_KISA_EXEC_THREADED_HH
