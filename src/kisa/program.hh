/**
 * @file
 * KISA programs and the assembler-style builder used by the code
 * generator and by hand-written test kernels.
 */

#ifndef MPC_KISA_PROGRAM_HH
#define MPC_KISA_PROGRAM_HH

#include <string>
#include <vector>

#include "kisa/isa.hh"

namespace mpc::kisa
{

/**
 * A complete kernel program: a straight vector of decoded instructions.
 * Branch targets are instruction indices. Every program must end in (or
 * reach) a Halt.
 */
struct Program
{
    std::string name;
    std::vector<Instr> code;

    /**
     * Predecode sidecar: meta[i] describes code[i]. Built by
     * predecode() (AsmBuilder::finish does this); the core requires it
     * and asserts consistency with the opcode helpers in debug builds.
     */
    std::vector<InstrMeta> meta;

    size_t size() const { return code.size(); }

    /** (Re)build the predecode sidecar from code. */
    void predecode();

    /** Full disassembly listing (one instruction per line). */
    std::string disassemble() const;
};

/**
 * Forward-reference-capable program builder.
 *
 * Usage:
 * @code
 *   AsmBuilder b("kernel");
 *   auto loop = b.newLabel();
 *   b.iLoadImm(r_i, 0);
 *   b.bind(loop);
 *   ...
 *   b.bLt(r_i, r_n, loop);
 *   b.halt();
 *   Program p = b.finish();
 * @endcode
 */
class AsmBuilder
{
  public:
    /** Opaque label handle. */
    struct Label
    {
        int id = -1;
    };

    explicit AsmBuilder(std::string name);

    /** Allocate a fresh unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Index the next emitted instruction will have. */
    int here() const { return static_cast<int>(prog_.code.size()); }

    // --- raw emission -----------------------------------------------
    /** Emit an arbitrary pre-built instruction; returns its index. */
    int emit(Instr instr);

    // --- integer ops ------------------------------------------------
    void iAdd(Reg rd, Reg ra, Reg rb) { emit3(Op::IAdd, rd, ra, rb); }
    void iSub(Reg rd, Reg ra, Reg rb) { emit3(Op::ISub, rd, ra, rb); }
    void iMul(Reg rd, Reg ra, Reg rb) { emit3(Op::IMul, rd, ra, rb); }
    void iDiv(Reg rd, Reg ra, Reg rb) { emit3(Op::IDiv, rd, ra, rb); }
    void iRem(Reg rd, Reg ra, Reg rb) { emit3(Op::IRem, rd, ra, rb); }
    void iAnd(Reg rd, Reg ra, Reg rb) { emit3(Op::IAnd, rd, ra, rb); }
    void iOr(Reg rd, Reg ra, Reg rb) { emit3(Op::IOr, rd, ra, rb); }
    void iXor(Reg rd, Reg ra, Reg rb) { emit3(Op::IXor, rd, ra, rb); }
    void iShl(Reg rd, Reg ra, Reg rb) { emit3(Op::IShl, rd, ra, rb); }
    void iShr(Reg rd, Reg ra, Reg rb) { emit3(Op::IShr, rd, ra, rb); }
    void iCmpLt(Reg rd, Reg ra, Reg rb) { emit3(Op::ICmpLt, rd, ra, rb); }
    void iCmpEq(Reg rd, Reg ra, Reg rb) { emit3(Op::ICmpEq, rd, ra, rb); }

    void iAddImm(Reg rd, Reg ra, std::int64_t imm);
    void iMulImm(Reg rd, Reg ra, std::int64_t imm);
    void iShlImm(Reg rd, Reg ra, std::int64_t imm);
    void iAndImm(Reg rd, Reg ra, std::int64_t imm);
    void iLoadImm(Reg rd, std::int64_t imm);

    // --- floating point ---------------------------------------------
    void fAdd(Reg rd, Reg ra, Reg rb) { emit3(Op::FAdd, rd, ra, rb); }
    void fSub(Reg rd, Reg ra, Reg rb) { emit3(Op::FSub, rd, ra, rb); }
    void fMul(Reg rd, Reg ra, Reg rb) { emit3(Op::FMul, rd, ra, rb); }
    void fDiv(Reg rd, Reg ra, Reg rb) { emit3(Op::FDiv, rd, ra, rb); }
    void fSqrt(Reg rd, Reg ra) { emit3(Op::FSqrt, rd, ra, noReg); }
    void fNeg(Reg rd, Reg ra) { emit3(Op::FNeg, rd, ra, noReg); }
    void fAbs(Reg rd, Reg ra) { emit3(Op::FAbs, rd, ra, noReg); }
    void fLoadImm(Reg rd, double value);
    void cvtIF(Reg fd, Reg ra) { emit3(Op::CvtIF, fd, ra, noReg); }
    void cvtFI(Reg rd, Reg fa) { emit3(Op::CvtFI, rd, fa, noReg); }

    // --- memory -----------------------------------------------------
    /** Loads/stores; @p ref_id attributes the access for statistics. */
    void ldI(Reg rd, Reg base, std::int64_t disp,
             std::uint32_t ref_id = 0xffffffff);
    void ldF(Reg fd, Reg base, std::int64_t disp,
             std::uint32_t ref_id = 0xffffffff);
    void stI(Reg base, std::int64_t disp, Reg src,
             std::uint32_t ref_id = 0xffffffff);
    void stF(Reg base, std::int64_t disp, Reg src,
             std::uint32_t ref_id = 0xffffffff);

    // --- control ----------------------------------------------------
    void bEq(Reg ra, Reg rb, Label target) { branch(Op::BEq, ra, rb, target); }
    void bNe(Reg ra, Reg rb, Label target) { branch(Op::BNe, ra, rb, target); }
    void bLt(Reg ra, Reg rb, Label target) { branch(Op::BLt, ra, rb, target); }
    void bGe(Reg ra, Reg rb, Label target) { branch(Op::BGe, ra, rb, target); }
    void jmp(Label target) { branch(Op::Jmp, noReg, noReg, target); }

    // --- sync / end -------------------------------------------------
    void barrier();
    /** Block until mem64[base + disp] >= threshold register. */
    void flagWait(Reg base, std::int64_t disp, Reg threshold);
    void halt();

    /** Resolve labels and return the finished program. */
    Program finish();

  private:
    void emit3(Op op, Reg rd, Reg ra, Reg rb);
    void branch(Op op, Reg ra, Reg rb, Label target);

    Program prog_;
    std::vector<int> labelPos_;     ///< label id -> bound index (-1 unbound)
    struct Fixup
    {
        int instrIdx;
        int labelId;
    };
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace mpc::kisa

#endif // MPC_KISA_PROGRAM_HH
