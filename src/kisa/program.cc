#include "kisa/program.hh"

#include <bit>

#include "common/logging.hh"

namespace mpc::kisa
{

void
Program::predecode()
{
    meta.clear();
    meta.reserve(code.size());
    for (const Instr &instr : code)
        meta.push_back(deriveMeta(instr));
}

std::string
Program::disassemble() const
{
    std::string out;
    for (size_t i = 0; i < code.size(); ++i)
        out += strprintf("%5zu: %s\n", i, code[i].toString().c_str());
    return out;
}

AsmBuilder::AsmBuilder(std::string name)
{
    prog_.name = std::move(name);
}

AsmBuilder::Label
AsmBuilder::newLabel()
{
    Label label;
    label.id = static_cast<int>(labelPos_.size());
    labelPos_.push_back(-1);
    return label;
}

void
AsmBuilder::bind(Label label)
{
    MPC_ASSERT(label.id >= 0 &&
               label.id < static_cast<int>(labelPos_.size()),
               "bind of unallocated label");
    MPC_ASSERT(labelPos_[label.id] == -1, "label bound twice");
    labelPos_[label.id] = here();
}

int
AsmBuilder::emit(Instr instr)
{
    MPC_ASSERT(!finished_, "emit after finish");
    prog_.code.push_back(instr);
    return static_cast<int>(prog_.code.size()) - 1;
}

void
AsmBuilder::emit3(Op op, Reg rd, Reg ra, Reg rb)
{
    Instr instr;
    instr.op = op;
    instr.rd = rd;
    instr.ra = ra;
    instr.rb = rb;
    emit(instr);
}

void
AsmBuilder::iAddImm(Reg rd, Reg ra, std::int64_t imm)
{
    Instr instr;
    instr.op = Op::IAddImm;
    instr.rd = rd;
    instr.ra = ra;
    instr.imm = imm;
    emit(instr);
}

void
AsmBuilder::iMulImm(Reg rd, Reg ra, std::int64_t imm)
{
    Instr instr;
    instr.op = Op::IMulImm;
    instr.rd = rd;
    instr.ra = ra;
    instr.imm = imm;
    emit(instr);
}

void
AsmBuilder::iShlImm(Reg rd, Reg ra, std::int64_t imm)
{
    Instr instr;
    instr.op = Op::IShlImm;
    instr.rd = rd;
    instr.ra = ra;
    instr.imm = imm;
    emit(instr);
}

void
AsmBuilder::iAndImm(Reg rd, Reg ra, std::int64_t imm)
{
    Instr instr;
    instr.op = Op::IAndImm;
    instr.rd = rd;
    instr.ra = ra;
    instr.imm = imm;
    emit(instr);
}

void
AsmBuilder::iLoadImm(Reg rd, std::int64_t imm)
{
    Instr instr;
    instr.op = Op::ILoadImm;
    instr.rd = rd;
    instr.imm = imm;
    emit(instr);
}

void
AsmBuilder::fLoadImm(Reg rd, double value)
{
    Instr instr;
    instr.op = Op::FLoadImm;
    instr.rd = rd;
    instr.imm = std::bit_cast<std::int64_t>(value);
    emit(instr);
}

void
AsmBuilder::ldI(Reg rd, Reg base, std::int64_t disp, std::uint32_t ref_id)
{
    Instr instr;
    instr.op = Op::LdI;
    instr.rd = rd;
    instr.ra = base;
    instr.imm = disp;
    instr.refId = ref_id;
    emit(instr);
}

void
AsmBuilder::ldF(Reg fd, Reg base, std::int64_t disp, std::uint32_t ref_id)
{
    Instr instr;
    instr.op = Op::LdF;
    instr.rd = fd;
    instr.ra = base;
    instr.imm = disp;
    instr.refId = ref_id;
    emit(instr);
}

void
AsmBuilder::stI(Reg base, std::int64_t disp, Reg src, std::uint32_t ref_id)
{
    Instr instr;
    instr.op = Op::StI;
    instr.ra = base;
    instr.rb = src;
    instr.imm = disp;
    instr.refId = ref_id;
    emit(instr);
}

void
AsmBuilder::stF(Reg base, std::int64_t disp, Reg src, std::uint32_t ref_id)
{
    Instr instr;
    instr.op = Op::StF;
    instr.ra = base;
    instr.rb = src;
    instr.imm = disp;
    instr.refId = ref_id;
    emit(instr);
}

void
AsmBuilder::branch(Op op, Reg ra, Reg rb, Label target)
{
    Instr instr;
    instr.op = op;
    instr.ra = ra;
    instr.rb = rb;
    const int idx = emit(instr);
    MPC_ASSERT(target.id >= 0 &&
               target.id < static_cast<int>(labelPos_.size()),
               "branch to unallocated label");
    fixups_.push_back({idx, target.id});
}

void
AsmBuilder::barrier()
{
    Instr instr;
    instr.op = Op::Barrier;
    emit(instr);
}

void
AsmBuilder::flagWait(Reg base, std::int64_t disp, Reg threshold)
{
    Instr instr;
    instr.op = Op::FlagWait;
    instr.ra = base;
    instr.rb = threshold;
    instr.imm = disp;
    emit(instr);
}

void
AsmBuilder::halt()
{
    Instr instr;
    instr.op = Op::Halt;
    emit(instr);
}

Program
AsmBuilder::finish()
{
    MPC_ASSERT(!finished_, "finish called twice");
    for (const Fixup &fixup : fixups_) {
        const int pos = labelPos_[fixup.labelId];
        MPC_ASSERT(pos >= 0, "branch to unbound label");
        prog_.code[fixup.instrIdx].target = pos;
    }
    prog_.predecode();
    finished_ = true;
    return std::move(prog_);
}

} // namespace mpc::kisa
