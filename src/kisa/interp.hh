/**
 * @file
 * Functional execution of KISA programs.
 *
 * The single-instruction step() routine defines the architectural
 * semantics and is shared by the golden-model interpreter here and by
 * the timing simulator's dispatch stage (src/cpu), so the two can never
 * diverge functionally.
 */

#ifndef MPC_KISA_INTERP_HH
#define MPC_KISA_INTERP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"

namespace mpc::kisa
{

/** Architectural register state of one core. */
struct RegFile
{
    std::int64_t intRegs[numIntRegs] = {};
    double fpRegs[numFpRegs] = {};
};

/** Outcome of functionally executing one instruction. */
struct StepResult
{
    int nextPc = 0;             ///< instruction index to execute next
    bool halted = false;        ///< executed Halt
    bool isBarrier = false;     ///< executed Barrier (caller coordinates)
    bool syncBlocked = false;   ///< FlagWait condition unsatisfied; pc holds
    bool isMem = false;         ///< instruction accessed memory
    bool isLoad = false;        ///< memory access was a read
    Addr memAddr = invalidAddr; ///< effective address if isMem
    bool branchTaken = false;   ///< conditional branch taken (or Jmp)
};

/**
 * Functionally execute program.code[pc], updating @p regs and @p mem.
 * FlagWait with an unsatisfied condition sets syncBlocked and leaves all
 * state unchanged. Barrier sets isBarrier and advances; multi-core
 * coordination is the caller's job.
 */
StepResult step(const Program &program, int pc, RegFile &regs,
                MemoryImage &mem);

/**
 * Golden-model interpreter for one or more cores sharing a MemoryImage.
 * Cores are stepped round-robin; a core blocks at a Barrier until all
 * cores arrive, and at a FlagWait until the condition holds.
 */
class Interpreter
{
  public:
    /** Observer invoked for each memory access (for cache profiling). */
    using MemHook = std::function<void(int core, const Instr &instr,
                                       Addr addr, bool is_load)>;

    /** @param mem Shared backing store (not owned). */
    explicit Interpreter(MemoryImage &mem) : mem_(&mem) {}

    /** Add a core running @p program. Returns the core index. */
    int addCore(const Program &program);

    /** Install a memory-access observer. */
    void setMemHook(MemHook hook) { memHook_ = std::move(hook); }

    /**
     * Run all cores to completion.
     * @param max_steps Per-run instruction budget; exceeded => fatal
     *        (guards against runaway kernels in tests).
     * @return total dynamic instructions executed.
     */
    std::uint64_t run(std::uint64_t max_steps = 1ull << 32);

    /**
     * run() with a statically-typed memory-access observer: @p hook is
     * called as hook(core, instr, addr, is_load) for every memory
     * instruction. The hook type is a template parameter so profiling
     * callers (harness::CacheProfile) pay a direct — typically inlined —
     * call instead of a std::function dispatch per access. run() and
     * setMemHook remain as the type-erased convenience wrapper.
     */
    template <typename Hook>
    std::uint64_t
    runWithHook(Hook &&hook, std::uint64_t max_steps = 1ull << 32)
    {
        MPC_ASSERT(!cores_.empty(), "Interpreter::run with no cores");
        std::uint64_t total = 0;
        const size_t n = cores_.size();
        size_t num_halted = 0;

        while (num_halted < n) {
            bool progress = false;
            size_t at_barrier = 0;
            for (auto &core : cores_) {
                if (core.halted) {
                    // A halted core counts as present for barrier
                    // purposes so stragglers are not stranded (kernels
                    // synchronize before halting, but tests may not).
                    ++at_barrier;
                    continue;
                }
                if (core.atBarrier) {
                    ++at_barrier;
                    continue;
                }
                // Run this core until it halts or blocks.
                for (;;) {
                    StepResult res =
                        step(*core.program, core.pc, core.regs, *mem_);
                    if (res.syncBlocked)
                        break;  // FlagWait pending; let others run
                    ++core.instrs;
                    ++total;
                    if (total > max_steps)
                        fatal("Interpreter: instruction budget exceeded "
                              "(%llu) - runaway kernel?",
                              static_cast<unsigned long long>(max_steps));
                    progress = true;
                    if (res.isMem)
                        hook(static_cast<int>(&core - cores_.data()),
                             core.program->code[core.pc], res.memAddr,
                             res.isLoad);
                    core.pc = res.nextPc;
                    if (res.halted) {
                        core.halted = true;
                        ++num_halted;
                        break;
                    }
                    if (res.isBarrier) {
                        core.atBarrier = true;
                        break;
                    }
                }
            }
            if (at_barrier == n) {
                // Release the barrier.
                for (auto &core : cores_)
                    core.atBarrier = false;
                progress = true;
            }
            if (!progress && num_halted < n)
                fatal("Interpreter: deadlock (all cores blocked)");
        }
        return total;
    }

    /** Dynamic instruction count of core @p core after run(). */
    std::uint64_t instrCount(int core) const;

    /** Architectural registers of core @p core (post-run inspection). */
    const RegFile &regs(int core) const { return cores_[core].regs; }

  private:
    struct CoreState
    {
        const Program *program;
        RegFile regs;
        int pc = 0;
        bool halted = false;
        bool atBarrier = false;
        std::uint64_t instrs = 0;
    };

    MemoryImage *mem_;
    std::vector<CoreState> cores_;
    MemHook memHook_;
};

} // namespace mpc::kisa

#endif // MPC_KISA_INTERP_HH
