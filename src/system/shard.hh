/**
 * @file
 * Sharded multiprocessor stepping support: the shard partition plan,
 * the static sync-reachability table that decides which stepped cycles
 * must serialize, and the spin-barrier worker group that runs the
 * parallel core-tick phase.
 *
 * Design (INTERNALS.md §16). The single-thread stepper's loop is, per
 * stepped cycle: drain events, then tick cores in node order. Sharded
 * mode keeps the event drain (and every coherence-directory mutation)
 * serial on thread 0 and parallelizes only the core ticks: node
 * [first(s), first(s+1)) ticks on host thread s. Anything a tick does
 * that could touch cross-shard state — scheduling an event on the
 * shared queue, or calling into the coherence fabric — is captured in
 * the shard's mailbox (mem::EventQueue::DeferBuffer) and replayed by
 * thread 0 at the barrier, in shard order. Because shards hold
 * contiguous node ranges and tick them in node order, replaying
 * mailbox 0..k-1 reproduces exactly the (tick, node id, per-node
 * program order) sequence the single-thread stepper produces, global
 * sequence numbers included.
 *
 * The one interaction that cannot be deferred is synchronization:
 * barrier arrivals release other cores synchronously within the same
 * cycle, and a FlagWait polls shared functional memory every cycle.
 * Those cycles are detected *before* the phase — a core is a sync
 * hazard if it is parked on a FlagWait or if a Barrier/FlagWait is
 * within one fetch group of its next pc (static reachability over the
 * program's control flow) — and hazard cycles run the plain serial
 * tick loop instead. Sync cycles are a vanishing fraction of stepped
 * cycles, so the fast path stays parallel.
 */

#ifndef MPC_SYSTEM_SHARD_HH
#define MPC_SYSTEM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "kisa/program.hh"

namespace mpc::sys
{

/**
 * Contiguous node partition: shard s owns nodes
 * [first(s), first(s+1)); shards differ in size by at most one node.
 */
class ShardPlan
{
  public:
    ShardPlan(int num_nodes, int shards)
        : first_(static_cast<size_t>(shards) + 1)
    {
        for (int s = 0; s <= shards; ++s)
            first_[static_cast<size_t>(s)] = static_cast<int>(
                static_cast<std::int64_t>(num_nodes) * s / shards);
    }

    int shards() const { return static_cast<int>(first_.size()) - 1; }
    int first(int s) const { return first_[static_cast<size_t>(s)]; }
    int
    shardOf(int node) const
    {
        for (int s = 0; s < shards(); ++s)
            if (node < first(s + 1))
                return s;
        return shards() - 1;
    }

  private:
    std::vector<int> first_;
};

/**
 * Per-pc table: true if a Barrier or FlagWait can dispatch within the
 * same tick a core fetches from pc — i.e. lies within @p fetch_width
 * instructions along any control-flow path from pc. Conservative
 * (ignores dispatch gating), which only ever serializes extra cycles.
 * One entry per instruction; index with the core's fetchPc().
 */
std::vector<char> syncReachability(const kisa::Program &program,
                                   int fetch_width);

/**
 * A fixed group of spinning worker threads executing one phase
 * function per barrier epoch: runPhase() makes every shard s in
 * [0, shards) execute work(s) — shard 0 on the calling thread — and
 * returns when all have finished. Workers busy-spin between phases
 * (phases are ~1µs apart; parking would dominate the step cost), so
 * the host-thread budget must account for shards × jobs
 * (harness::ParallelRunner does).
 */
class ShardGroup
{
  public:
    /** @p work runs concurrently as work(s) for every shard s. */
    ShardGroup(int shards, std::function<void(int)> work);
    ~ShardGroup();

    ShardGroup(const ShardGroup &) = delete;
    ShardGroup &operator=(const ShardGroup &) = delete;

    /** Execute one phase on all shards; returns after all finish.
     *  Writes made before runPhase() are visible to every shard, and
     *  every shard's writes are visible after it returns. */
    void runPhase();

  private:
    void workerLoop(int shard);

    const int shards_;
    std::function<void(int)> work_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<int> done_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> workers_;
};

} // namespace mpc::sys

#endif // MPC_SYSTEM_SHARD_HH
