/**
 * @file
 * Whole-system configuration presets.
 *
 *  - baseConfig():     Table 1 of the paper (500 MHz, 4-wide, 64-entry
 *                      window, two-level cache, CC-NUMA mesh).
 *  - oneGHzConfig():   the paper's Section 5.2 sensitivity point — a
 *                      1 GHz processor with all memory and interconnect
 *                      parameters identical in ns/MHz (so twice the
 *                      cycles).
 *  - exemplarConfig(): the Convex Exemplar / HP PA-8000 substitute —
 *                      180 MHz, 56-entry window, single-level 1 MB
 *                      cache with 32-byte lines, 10 outstanding misses,
 *                      SMP shared bus, skewed bank interleaving.
 */

#ifndef MPC_SYSTEM_CONFIG_HH
#define MPC_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "coherence/directory.hh"
#include "cpu/config.hh"
#include "mem/config.hh"
#include "mem/hierarchy.hh"
#include "noc/mesh.hh"

namespace mpc::sys
{

struct SystemConfig
{
    std::string name = "base";
    double nsPerCycle = 2.0;    ///< 500 MHz

    cpu::CoreConfig core;
    mem::MemHierarchy::Config hier;
    mem::MemBusConfig membus;   ///< per-node memory slice

    noc::MeshConfig mesh;
    coherence::FabricConfig fabric;

    /** Exemplar-like SMP: shared bus transport instead of the mesh. */
    bool smpBus = false;
    noc::SharedBusConfig smp;

    /**
     * Fast-forward simulated time to min(next event, next core wake)
     * instead of ticking every core every cycle. Results are
     * bit-identical either way (tests/test_fastpath.cc asserts it);
     * false selects the reference cycle-step mode.
     */
    bool skipAhead = true;

    /**
     * Host-thread shards for multiprocessor stepping (0 or 1 = the
     * single-thread stepper). With k > 1, nodes are partitioned into k
     * contiguous shards whose core ticks run on k host threads per
     * stepped cycle; events and coherence traffic drain serially at
     * barrier epochs in a fixed (tick, node id, sequence) order, so
     * results are deterministic and match the single-thread stepper in
     * both step modes (INTERNALS.md §16). Clamped to the node count.
     * Enabled by MPC_SHARDS=<k> through the harness; see also
     * `shardMailboxCapacity`.
     */
    int shards = 0;

    /** Pre-allocated capacity (captured events + fabric ops) of each
     *  shard's barrier mailbox; overflow spills and is counted, never
     *  dropped. Tests shrink this to exercise the spill path. */
    int shardMailboxCapacity = 4096;

    /**
     * Opt-in validation layer (src/validate): golden-model retirement
     * cross-check, structural cache/MSHR/directory audits, and progress
     * watchdogs. All checks are read-only, so enabling validation never
     * changes simulation results — only catches bugs. Enabled by
     * MPC_VALIDATE=1 through the harness, and in CI.
     */
    bool validate = false;
    /** Abort on the first validation failure (tests clear this and
     *  inspect System::validator()->failures() instead). */
    bool validateFailFast = true;
    /** Dump the ring-buffer event trace as Chrome-trace JSON here on
     *  the first failure (empty = no dump). */
    std::string validateTracePath;
    /** Override the watchdog no-progress timeouts, in cycles (0 keeps
     *  the validation library's defaults; tests shrink this). */
    Tick validateStallTimeout = 0;
    /** Override the structural-audit period (0 = library default). */
    Tick validateAuditPeriod = 0;

    /**
     * Opt-in observability layer (src/obs): MLP histogram, miss-cluster
     * sizes, stall-cycle taxonomy, and per-reference miss attribution.
     * Hooks read frozen state only, so enabling never changes results.
     * Enabled by MPC_OBS=1 through the harness.
     */
    bool obsMetrics = false;
    /** Dump the observability ring-buffer trace as Chrome-trace JSON
     *  here at end of run (empty = tracing off). MPC_TRACE=<path>. */
    std::string obsTracePath;
    /** Ring capacity of the observability tracer (events retained). */
    std::size_t obsTraceCapacity = 1 << 16;

    /**
     * Epoch-sampling period in cycles for the time-resolved telemetry
     * layer (src/obs Sampler); 0 = off. Implies the metrics collectors.
     * Sampling reads frozen state only, so results and stdout stay
     * bit-identical. Enabled by MPC_SAMPLE=<cycles> via the harness.
     */
    Tick samplePeriod = 0;
    /** Where System::run writes the sampled time series JSON (empty
     *  with samplePeriod set = keep in memory; tests read it there). */
    std::string samplePath;
    /** Pre-rendered RunManifest JSON object embedded in telemetry
     *  artifacts this run emits (empty = embed null). The harness
     *  builds it after the transform pipeline fixes the kernel. */
    std::string manifestJson;
};

/**
 * Base simulated configuration (Table 1). @p l2_bytes scales the L2
 * per application working set, as the paper does (64 KB or 1 MB).
 */
SystemConfig baseConfig(std::uint64_t l2_bytes = 1 << 20);

/** 1 GHz processor, memory/interconnect unchanged in ns (Section 5.2). */
SystemConfig oneGHzConfig(std::uint64_t l2_bytes = 1 << 20);

/** Convex Exemplar (PA-8000) substitute; see DESIGN.md section 3. */
SystemConfig exemplarConfig(std::uint64_t cache_bytes = 1 << 20);

} // namespace mpc::sys

#endif // MPC_SYSTEM_CONFIG_HH
