#include "system/shard.hh"

#include <algorithm>

namespace mpc::sys
{

std::vector<char>
syncReachability(const kisa::Program &program, int fetch_width)
{
    const int n = static_cast<int>(program.code.size());
    // dist[pc] = fewest instructions along any control-flow path from
    // pc (inclusive) to a Barrier/FlagWait; kUnreach if none. A fetch
    // group starting at pc can hand a sync op to dispatch this tick iff
    // dist[pc] <= fetch_width - 1 positions away, i.e. dist < width.
    constexpr int kUnreach = 1 << 20;
    std::vector<int> dist(static_cast<size_t>(n), kUnreach);
    // Successor distances only ever shrink, and every relaxation drops
    // a dist by >= 1, so fetch_width sweeps reach the fixed point for
    // every pc that matters (dist values above fetch_width are
    // indistinguishable from unreachable).
    for (int sweep = 0; sweep < fetch_width; ++sweep) {
        bool changed = false;
        for (int pc = n - 1; pc >= 0; --pc) {
            const kisa::Instr &in =
                program.code[static_cast<size_t>(pc)];
            int d;
            if (in.op == kisa::Op::Barrier ||
                in.op == kisa::Op::FlagWait) {
                d = 0;
            } else if (in.op == kisa::Op::Halt) {
                d = kUnreach;
            } else {
                int succ = kUnreach;
                auto look = [&](int t) {
                    if (t >= 0 && t < n)
                        succ = std::min(succ,
                                        dist[static_cast<size_t>(t)]);
                };
                if (in.op == kisa::Op::Jmp) {
                    look(in.target);
                } else {
                    look(pc + 1);
                    if (program.meta[static_cast<size_t>(pc)].isBranch)
                        look(in.target);
                }
                d = succ >= kUnreach ? kUnreach : succ + 1;
            }
            if (d < dist[static_cast<size_t>(pc)]) {
                dist[static_cast<size_t>(pc)] = d;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    std::vector<char> reach(static_cast<size_t>(n), 0);
    for (int pc = 0; pc < n; ++pc)
        reach[static_cast<size_t>(pc)] =
            dist[static_cast<size_t>(pc)] < fetch_width ? 1 : 0;
    return reach;
}

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

/**
 * Bounded spin, then OS yield. Phases are ~1µs apart so the spin wins
 * when every shard has its own hardware thread; the yield fallback
 * keeps oversubscribed hosts (shards × jobs > hardware threads, or a
 * single-CPU machine) making forward progress at scheduler speed
 * instead of burning whole timeslices in the barrier.
 */
class Backoff
{
  public:
    void
    pause()
    {
        if (++spins_ < 256)
            cpuRelax();
        else
            std::this_thread::yield();
    }

  private:
    int spins_ = 0;
};

} // namespace

ShardGroup::ShardGroup(int shards, std::function<void(int)> work)
    : shards_(shards), work_(std::move(work))
{
    workers_.reserve(static_cast<size_t>(shards_ - 1));
    for (int s = 1; s < shards_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

ShardGroup::~ShardGroup()
{
    stop_.store(true, std::memory_order_relaxed);
    // Release the workers from their epoch spin so they observe stop_.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    for (auto &t : workers_)
        t.join();
}

void
ShardGroup::runPhase()
{
    done_.store(0, std::memory_order_relaxed);
    // acq_rel: publishes thread 0's pre-phase writes to the workers
    // (they acquire-load epoch_) and orders the done_ reset first.
    const std::uint64_t epoch =
        epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    (void)epoch;

    work_(0);

    // acquire: pulls in every worker's phase writes (they release via
    // done_.fetch_add) before thread 0 touches shared state again.
    Backoff backoff;
    while (done_.load(std::memory_order_acquire) < shards_ - 1)
        backoff.pause();
}

void
ShardGroup::workerLoop(int shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        Backoff backoff;
        while (epoch_.load(std::memory_order_acquire) == seen)
            backoff.pause();
        ++seen;
        if (stop_.load(std::memory_order_relaxed))
            return;
        work_(shard);
        done_.fetch_add(1, std::memory_order_release);
    }
}

} // namespace mpc::sys
