/**
 * @file
 * Full-system assembly: N nodes, each with an out-of-order core and a
 * cache hierarchy; a MainMemory slice per node; and, for N > 1, a
 * directory coherence fabric over a mesh (base) or shared bus
 * (Exemplar-like). Runs a KISA program per core to completion and
 * reports the paper's execution-time breakdown plus the MSHR
 * utilization data of Figure 4.
 */

#ifndef MPC_SYSTEM_SYSTEM_HH
#define MPC_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "coherence/directory.hh"
#include "cpu/core.hh"
#include "cpu/sync.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"
#include "mem/hierarchy.hh"
#include "mem/mainmem.hh"
#include "noc/mesh.hh"
#include "obs/obs.hh"
#include "system/config.hh"
#include "validate/validate.hh"

namespace mpc::sys
{

/** Results of one simulation run. */
struct RunResult
{
    Tick cycles = 0;                ///< execution time (max core finish)
    double nsPerCycle = 2.0;
    std::uint64_t instructions = 0;

    /**
     * Execution-time breakdown in cycles, averaged per processor, per
     * the paper's retire-slot attribution. busy+dataRead+dataWrite+
     * sync+cpu approximately equals the per-core runtime.
     */
    double busyCycles = 0;
    double dataReadCycles = 0;
    double dataWriteCycles = 0;
    double syncCycles = 0;
    double cpuCycles = 0;
    double instrCycles = 0;         ///< structurally ~0 (see Core docs)

    /** CPU component as the paper reports it (busy + FU stalls). */
    double cpuComponent() const { return busyCycles + cpuCycles; }
    /** Data memory component (read + write stalls). */
    double dataComponent() const { return dataReadCycles + dataWriteCycles; }

    /** Aggregated cache statistics across nodes. */
    mem::Cache::Stats l1;
    mem::Cache::Stats l2;

    /** Figure 4 inputs: merged L2 MSHR occupancy histograms. */
    OccupancyHistogram l2ReadMshr;
    OccupancyHistogram l2TotalMshr;

    /** Memory-side utilization (of the busiest-node slice). */
    double busUtilization = 0;
    double bankUtilization = 0;

    /** Coherence statistics (multiprocessor runs). */
    coherence::FabricStats fabric;

    /** Per-core stats for detailed analysis. */
    std::vector<cpu::CoreStats> cores;

    /** Observability metrics (enabled == SystemConfig::obsMetrics). */
    obs::RunMetrics obsMetrics;

    double execNs() const { return static_cast<double>(cycles) * nsPerCycle; }
};

/**
 * A complete simulated machine.
 */
class System
{
  public:
    /**
     * @param programs One program per core; their count sets N.
     * @param image Shared functional memory, pre-initialized by the
     *        workload (not owned).
     * @param placement Data placement for home-node assignment in
     *        multiprocessor runs; defaults to line interleaving.
     */
    System(const SystemConfig &cfg,
           std::vector<kisa::Program> programs,
           kisa::MemoryImage &image,
           const coherence::PlacementPolicy *placement = nullptr);

    /**
     * Run to completion. @p max_cycles guards against deadlock (fatal
     * when exceeded). @return the collected results.
     */
    RunResult run(Tick max_cycles = Tick(1) << 40);

    int numCores() const { return static_cast<int>(cores_.size()); }
    cpu::Core &core(int i) { return *cores_[static_cast<size_t>(i)]; }
    mem::MemHierarchy &hierarchy(int i)
    {
        return *hiers_[static_cast<size_t>(i)];
    }

    /** The validation layer, or null unless SystemConfig::validate. */
    validate::Validator *validator() { return validator_.get(); }

    /** The observability layer, or null unless metrics/tracing/
     *  validation asked for it. */
    obs::Observer *observer() { return observer_.get(); }

    /** Coherence fabric (null for uniprocessors); exposed for the
     *  validation fault-injection tests. */
    coherence::CoherenceFabric *fabric() { return fabric_.get(); }

    /** Current simulated tick (for post-run validation audits). */
    Tick now() const { return eq_.now(); }

  private:
    SystemConfig cfg_;
    std::vector<kisa::Program> programs_;
    kisa::MemoryImage &image_;

    mem::EventQueue eq_;
    std::unique_ptr<cpu::SyncDevice> sync_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<noc::SharedBus> smpBus_;
    std::unique_ptr<coherence::CoherenceFabric> fabric_;
    std::vector<std::unique_ptr<mem::MainMemory>> memories_;
    std::vector<std::unique_ptr<mem::MemHierarchy>> hiers_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<obs::Observer> observer_;
    std::unique_ptr<validate::Validator> validator_;
};

} // namespace mpc::sys

#endif // MPC_SYSTEM_SYSTEM_HH
