/**
 * @file
 * Full-system assembly: N nodes, each with an out-of-order core and a
 * cache hierarchy; a MainMemory slice per node; and, for N > 1, a
 * directory coherence fabric over a mesh (base) or shared bus
 * (Exemplar-like). Runs a KISA program per core to completion and
 * reports the paper's execution-time breakdown plus the MSHR
 * utilization data of Figure 4.
 *
 * With SystemConfig::shards > 1 the run loop steps multiprocessor
 * cycles in sharded mode: core ticks run on one host thread per shard
 * while events and coherence traffic are captured per shard and
 * replayed serially at barrier epochs, preserving the single-thread
 * stepper's deterministic (tick, node id, sequence) order — results
 * are bit-identical at any shard count (INTERNALS.md §16).
 */

#ifndef MPC_SYSTEM_SYSTEM_HH
#define MPC_SYSTEM_SYSTEM_HH

#include <memory>
#include <stdexcept>
#include <vector>

#include "coherence/directory.hh"
#include "cpu/core.hh"
#include "cpu/sync.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"
#include "mem/eventq.hh"
#include "mem/hierarchy.hh"
#include "mem/mainmem.hh"
#include "noc/mesh.hh"
#include "obs/obs.hh"
#include "system/config.hh"
#include "system/shard.hh"
#include "validate/validate.hh"

namespace mpc::sys
{

/** Results of one simulation run. */
struct RunResult
{
    Tick cycles = 0;                ///< execution time (max core finish)
    double nsPerCycle = 2.0;
    std::uint64_t instructions = 0;

    /**
     * Execution-time breakdown in cycles, averaged per processor, per
     * the paper's retire-slot attribution. busy+dataRead+dataWrite+
     * sync+cpu approximately equals the per-core runtime.
     */
    double busyCycles = 0;
    double dataReadCycles = 0;
    double dataWriteCycles = 0;
    double syncCycles = 0;
    double cpuCycles = 0;
    double instrCycles = 0;         ///< structurally ~0 (see Core docs)

    /** CPU component as the paper reports it (busy + FU stalls). */
    double cpuComponent() const { return busyCycles + cpuCycles; }
    /** Data memory component (read + write stalls). */
    double dataComponent() const { return dataReadCycles + dataWriteCycles; }

    /** Aggregated cache statistics across nodes. */
    mem::Cache::Stats l1;
    mem::Cache::Stats l2;

    /** Figure 4 inputs: merged L2 MSHR occupancy histograms. */
    OccupancyHistogram l2ReadMshr;
    OccupancyHistogram l2TotalMshr;

    /** Memory-side utilization (of the busiest-node slice). */
    double busUtilization = 0;
    double bankUtilization = 0;

    /** Coherence statistics (multiprocessor runs). */
    coherence::FabricStats fabric;

    /** Per-core stats for detailed analysis. */
    std::vector<cpu::CoreStats> cores;

    /** Observability metrics (enabled == SystemConfig::obsMetrics). */
    obs::RunMetrics obsMetrics;

    double execNs() const { return static_cast<double>(cycles) * nsPerCycle; }
};

/**
 * Thrown by System::run when a sharded run detects the one sharing
 * pattern it cannot step bit-identically: a coherence probe whose
 * victim node holds the line, touched it in the same stepped cycle,
 * and is ordered after the requestor (in the single-thread stepper the
 * probe would have landed between their ticks). The cycle's captured
 * work has been fully replayed before throwing, but the victim's
 * pipeline already consumed pre-probe state, so the run cannot
 * continue; the harness reruns the workload with shards disabled —
 * results are then exactly the single-thread stepper's (runner.cc).
 */
class ShardRestart : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A complete simulated machine.
 */
class System
{
  public:
    /**
     * @param programs One program per core; their count sets N.
     * @param image Shared functional memory, pre-initialized by the
     *        workload (not owned).
     * @param placement Data placement for home-node assignment in
     *        multiprocessor runs; defaults to line interleaving.
     */
    System(const SystemConfig &cfg,
           std::vector<kisa::Program> programs,
           kisa::MemoryImage &image,
           const coherence::PlacementPolicy *placement = nullptr);

    /**
     * Run to completion. @p max_cycles guards against deadlock (fatal
     * when exceeded). @return the collected results.
     */
    RunResult run(Tick max_cycles = Tick(1) << 40);

    int numCores() const { return static_cast<int>(cores_.size()); }
    cpu::Core &core(int i) { return *cores_[static_cast<size_t>(i)]; }
    mem::MemHierarchy &hierarchy(int i)
    {
        return *hiers_[static_cast<size_t>(i)];
    }

    /** The validation layer, or null unless SystemConfig::validate. */
    validate::Validator *validator() { return validator_.get(); }

    /** The observability layer, or null unless metrics/tracing/
     *  validation asked for it. */
    obs::Observer *observer() { return observer_.get(); }

    /** Coherence fabric (null for uniprocessors); exposed for the
     *  validation fault-injection tests. */
    coherence::CoherenceFabric *fabric() { return fabric_.get(); }

    /** Current simulated tick (for post-run validation audits). */
    Tick now() const { return eq_.now(); }

  private:
    /** The legacy single-thread step loop (shards <= 1, and the exact
     *  semantics sharded mode must reproduce). */
    void runLoopSerial(Tick max_cycles);
    /** The sharded step loop; see the file comment and shard.hh. */
    void runLoopSharded(Tick max_cycles, int shards);

    SystemConfig cfg_;
    std::vector<kisa::Program> programs_;
    kisa::MemoryImage &image_;

    /** Shard mailboxes (sharded runs only). Declared before eq_ so they
     *  are destroyed after it: replayed events recycle into these pools
     *  and pool-owned nodes may still sit in the wheel when the queue
     *  destructor walks its pending events. */
    std::vector<std::unique_ptr<mem::EventQueue::DeferBuffer>> shardMail_;

    mem::EventQueue eq_;
    std::unique_ptr<cpu::SyncDevice> sync_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<noc::SharedBus> smpBus_;
    std::unique_ptr<coherence::CoherenceFabric> fabric_;
    std::vector<std::unique_ptr<mem::MainMemory>> memories_;
    std::vector<std::unique_ptr<mem::MemHierarchy>> hiers_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<obs::Observer> observer_;
    std::unique_ptr<validate::Validator> validator_;
};

} // namespace mpc::sys

#endif // MPC_SYSTEM_SYSTEM_HH
