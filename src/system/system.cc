#include "system/system.hh"

#include "common/logging.hh"

namespace mpc::sys
{

namespace
{

/** Merge one cache's counters into an aggregate. */
void
mergeCacheStats(mem::Cache::Stats &into, const mem::Cache::Stats &from)
{
    into.loads += from.loads;
    into.loadHits += from.loadHits;
    into.loadMisses += from.loadMisses;
    into.loadCoalesced += from.loadCoalesced;
    into.writes += from.writes;
    into.writeHits += from.writeHits;
    into.writeMisses += from.writeMisses;
    into.writeCoalesced += from.writeCoalesced;
    into.upgrades += from.upgrades;
    into.rejectsPort += from.rejectsPort;
    into.rejectsMshr += from.rejectsMshr;
    into.writebacks += from.writebacks;
    into.fills += from.fills;
    into.missLatency.merge(from.missLatency);
    from.perRef.forEach([&into](std::uint32_t ref_id, const auto &counts) {
        auto &agg = into.perRef[ref_id];
        agg.accesses += counts.accesses;
        agg.misses += counts.misses;
    });
}

} // namespace

System::System(const SystemConfig &cfg,
               std::vector<kisa::Program> programs,
               kisa::MemoryImage &image,
               const coherence::PlacementPolicy *placement)
    : cfg_(cfg), programs_(std::move(programs)), image_(image)
{
    const int n = static_cast<int>(programs_.size());
    MPC_ASSERT(n >= 1, "system needs at least one program");

    sync_ = std::make_unique<cpu::SyncDevice>(n);

    // Observability: created when metrics, tracing, or epoch sampling
    // are requested, or when the validation layer needs the shared
    // tracer. Sampling implies the metrics collectors (it diffs them).
    obs::ObsConfig ocfg;
    ocfg.metrics = cfg_.obsMetrics || cfg_.samplePeriod > 0;
    ocfg.tracePath = cfg_.obsTracePath;
    ocfg.trace = !cfg_.obsTracePath.empty() || cfg_.validate;
    ocfg.traceCapacity = cfg_.obsTraceCapacity;
    ocfg.samplePeriod = cfg_.samplePeriod;
    ocfg.samplePath = cfg_.samplePath;
    if (ocfg.metrics || ocfg.trace)
        observer_ = std::make_unique<obs::Observer>(ocfg);

    // Interconnect + coherence for multiprocessors.
    noc::Transport *net = nullptr;
    if (n > 1) {
        if (cfg_.smpBus) {
            smpBus_ = std::make_unique<noc::SharedBus>(cfg_.smp);
            net = smpBus_.get();
        } else {
            mesh_ = std::make_unique<noc::Mesh>(n, cfg_.mesh);
            net = mesh_.get();
        }
        const coherence::PlacementPolicy defaults(
            n, cfg_.fabric.lineBytes);
        fabric_ = std::make_unique<coherence::CoherenceFabric>(
            eq_, n, cfg_.fabric, *net,
            placement != nullptr ? *placement : defaults);
    }

    for (int i = 0; i < n; ++i) {
        memories_.push_back(std::make_unique<mem::MainMemory>(
            eq_, cfg_.membus, cfg_.hier.singleLevel
                                  ? cfg_.hier.l1.lineBytes
                                  : cfg_.hier.l2.lineBytes));

        auto hier_cfg = cfg_.hier;
        hier_cfg.coherent = n > 1;
        hiers_.push_back(
            std::make_unique<mem::MemHierarchy>(eq_, hier_cfg));

        if (n > 1) {
            hiers_.back()->setDownstream(fabric_->port(i));
            fabric_->attachCache(i, &hiers_.back()->coherenceCache());
            fabric_->attachMemory(i, memories_.back().get());
        } else {
            hiers_.back()->setDownstream(memories_.back().get());
        }

        cores_.push_back(std::make_unique<cpu::Core>(
            i, eq_, cfg_.core, programs_[static_cast<size_t>(i)], image_,
            *hiers_.back(), sync_.get()));
        cores_.back()->enableQuiescence(cfg_.skipAhead);

        if (observer_) {
            obs::MissTracker *tracker = observer_->attachNode(
                i, hiers_.back()->l2().config().numMshrs);
            hiers_.back()->attachObs(tracker);
            cores_.back()->attachObs(observer_->attachCore(i, tracker));
            if (obs::Tracer *tr = observer_->tracer()) {
                tr->setTrackName(i, strprintf("core %d", i));
                tr->setTrackName(tracker->missTrackId(),
                                 strprintf("node %d misses", i));
                tr->setTrackName(tracker->counterTrackId(),
                                 strprintf("node %d mshr", i));
            }
            if (obs::MetricsRegistry *reg = observer_->registry()) {
                cores_.back()->registerMetrics(
                    *reg, strprintf("core%d", i));
                if (!hiers_.back()->singleLevel())
                    hiers_.back()->l1().registerMetrics(
                        *reg, strprintf("node%d.l1", i));
                hiers_.back()->l2().registerMetrics(
                    *reg, strprintf("node%d.l2", i));
            }
        }
    }

    if (observer_ && observer_->registry() != nullptr) {
        obs::MetricsRegistry &reg = *observer_->registry();
        eq_.registerMetrics(reg, "eventq");
        if (fabric_)
            fabric_->registerMetrics(reg, "fabric");
    }

    if (cfg_.validate) {
        validate::ValidateConfig vcfg;
        vcfg.failFast = cfg_.validateFailFast;
        vcfg.traceDumpPath = cfg_.validateTracePath;
        if (cfg_.validateStallTimeout > 0) {
            vcfg.coreStallTimeout = cfg_.validateStallTimeout;
            vcfg.systemStallTimeout = cfg_.validateStallTimeout;
        }
        if (cfg_.validateAuditPeriod > 0)
            vcfg.auditPeriod = cfg_.validateAuditPeriod;
        MPC_ASSERT(observer_ && observer_->tracer() != nullptr,
                   "validation requires the observability tracer");
        observer_->tracer()->setTrackName(-1, "validator");
        validator_ = std::make_unique<validate::Validator>(
            eq_, vcfg, *observer_->tracer());
        for (int i = 0; i < n; ++i)
            cores_[static_cast<size_t>(i)]->attachMonitor(
                validator_->attachCore(
                    cores_[static_cast<size_t>(i)].get(),
                    programs_[static_cast<size_t>(i)], image_));
        for (auto &hier : hiers_)
            validator_->attachHierarchy(hier.get());
        if (fabric_)
            validator_->attachFabric(fabric_.get());
        validator_->start();
    }
}

void
System::runLoopSerial(Tick max_cycles)
{
    const bool skip = cfg_.skipAhead;
    obs::Sampler *const sampler =
        observer_ ? observer_->sampler() : nullptr;
    Tick cycle = eq_.now();
    for (;;) {
        bool all_done = true;
        for (auto &core : cores_) {
            if (!core->done()) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            break;
        if (validator_ && validator_->stopRequested())
            break;  // a watchdog fired; stop gracefully with results
        if (cycle >= max_cycles)
            fatal("System::run exceeded %llu cycles - deadlock or "
                  "runaway kernel?",
                  static_cast<unsigned long long>(max_cycles));
        eq_.advanceTo(cycle);
        // Sample after the event drain, before core ticks — the same
        // point in both step modes. Sampling reads frozen state only,
        // so the extra skip-mode loop stops it forces (below) cannot
        // change simulation results.
        if (sampler != nullptr)
            sampler->maybeSample(cycle);
        if (skip) {
            // Quiescence skip-ahead: tick only cores with useful work.
            // Wakes are re-read per core, in core order, because a tick
            // (e.g. the last barrier arrival) can wake later cores
            // within the same cycle — exactly as in reference mode.
            for (auto &core : cores_)
                if (core->nextWake() <= cycle)
                    core->tick();
            Tick next = eq_.nextEventTick();
            for (auto &core : cores_)
                if (!core->done())
                    next = std::min(next, core->nextWake());
            // next == maxTick with cores unfinished is a deadlock;
            // jump to the guard above, as reference mode would spin to.
            // With a validator attached, record it and stop gracefully
            // instead (its audit events normally keep the queue alive
            // until a watchdog can diagnose the stall).
            if (next == maxTick && validator_) {
                validator_->onNoEvent(cycle);
                break;
            }
            // Stop at epoch boundaries too, so skip-ahead epochs land
            // exactly where reference mode's do. Checked after the
            // deadlock branch: a sampler tick is always finite and
            // must not mask a dead event queue.
            if (sampler != nullptr && next != maxTick)
                next = std::min(next, sampler->nextDue());
            cycle = next == maxTick ? max_cycles
                                    : std::max(cycle + 1, next);
        } else {
            for (auto &core : cores_)
                core->tick();
            ++cycle;
        }
    }
}

void
System::runLoopSharded(Tick max_cycles, int shards)
{
    const int n = numCores();
    const bool skip = cfg_.skipAhead;
    obs::Sampler *const sampler =
        observer_ ? observer_->sampler() : nullptr;

    // Static sync-reachability tables (shard.hh): a stepped cycle is a
    // sync hazard — and runs the plain serial tick loop — when any
    // ticking core is parked on a FlagWait (it polls shared functional
    // memory) or could dispatch a Barrier/FlagWait within this tick's
    // fetch group (arrivals release other cores synchronously). All
    // other cross-core interaction is captured in the shard mailboxes
    // and replayed at the barrier, so non-hazard cycles parallelize.
    std::vector<std::vector<char>> syncReach;
    syncReach.reserve(static_cast<size_t>(n));
    for (const auto &p : programs_)
        syncReach.push_back(syncReachability(p, cfg_.core.fetchWidth));

    if (shardMail_.empty()) {
        const auto cap = static_cast<std::size_t>(
            std::max(1, cfg_.shardMailboxCapacity));
        for (int s = 0; s < shards; ++s) {
            shardMail_.push_back(
                std::make_unique<mem::EventQueue::DeferBuffer>(cap));
            eq_.registerDeferPool(shardMail_.back().get());
        }
    }

    const ShardPlan plan(n, shards);

    // Shared sinks the parallel phase touches go concurrent-safe for
    // the duration of the run (both are value-neutral; see their docs).
    image_.setConcurrent(true);
    obs::Tracer *const tracer =
        observer_ ? observer_->tracer() : nullptr;
    if (tracer != nullptr)
        tracer->setConcurrent(true);

    // Conflict detection (see ShardRestart): nodes record the lines
    // they touch during each parallel phase, and the fabric reports
    // every probe at barrier replay; a probe of a resident line the
    // victim touched this cycle — victim after requestor — is the one
    // case serial stepping would have ordered differently.
    for (auto &hier : hiers_)
        hier->setTouchRecording(true);
    bool replayActive = false;
    bool conflict = false;
    fabric_->setProbeSink([this, &replayActive, &conflict](
                              NodeId requestor, NodeId victim,
                              Addr line_addr, bool resident) {
        if (!replayActive || !resident || victim <= requestor)
            return;
        if (hiers_[static_cast<size_t>(victim)]->touchedLine(
                line_addr, fabric_->lineBytes()))
            conflict = true;
    });

    Tick curCycle = 0;
    auto tickShard = [&](int s) {
        mem::EventQueue::setDeferTarget(
            shardMail_[static_cast<size_t>(s)].get());
        for (int i = plan.first(s); i < plan.first(s + 1); ++i) {
            cpu::Core &c = *cores_[static_cast<size_t>(i)];
            hiers_[static_cast<size_t>(i)]->clearTouched();
            if (!skip || c.nextWake() <= curCycle)
                c.tick();
        }
        mem::EventQueue::setDeferTarget(nullptr);
    };
    ShardGroup group(shards, tickShard);

    auto fabricExec = [this](mem::DeferredFabricOp &op) {
        mem::DownstreamPort *port = fabric_->port(op.node);
        if (op.writeback)
            port->writeback(op.lineAddr);
        else
            port->request(op.lineAddr, op.exclusive, std::move(op.fill));
    };

    Tick cycle = eq_.now();
    for (;;) {
        bool all_done = true;
        for (auto &core : cores_) {
            if (!core->done()) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            break;
        if (validator_ && validator_->stopRequested())
            break;  // a watchdog fired; stop gracefully with results
        if (cycle >= max_cycles)
            fatal("System::run exceeded %llu cycles - deadlock or "
                  "runaway kernel?",
                  static_cast<unsigned long long>(max_cycles));
        eq_.advanceTo(cycle);
        if (sampler != nullptr)
            sampler->maybeSample(cycle);

        bool hazard = false;
        for (int i = 0; i < n; ++i) {
            const cpu::Core &c = *cores_[static_cast<size_t>(i)];
            if (c.done())
                continue;
            if (skip && c.nextWake() > cycle)
                continue;
            if (c.blockedOnFlagWait()) {
                hazard = true;
                break;
            }
            const auto &reach = syncReach[static_cast<size_t>(i)];
            const int pc = c.fetchPc();
            if (pc >= 0 && pc < static_cast<int>(reach.size()) &&
                reach[static_cast<size_t>(pc)]) {
                hazard = true;
                break;
            }
        }

        if (hazard) {
            // Serial tick loop: defer capture stays off, so this cycle
            // is executed exactly as the single-thread stepper would —
            // including same-cycle barrier releases waking later cores.
            if (skip) {
                for (auto &core : cores_)
                    if (core->nextWake() <= cycle)
                        core->tick();
            } else {
                for (auto &core : cores_)
                    core->tick();
            }
        } else {
            curCycle = cycle;
            group.runPhase();
            // Barrier replay in shard (= node) order restores the
            // global (tick, node id, per-node program order) sequence
            // the serial stepper produces.
            replayActive = true;
            for (auto &mail : shardMail_)
                eq_.replay(*mail, fabricExec);
            replayActive = false;
            if (conflict) {
                // Every captured event and fabric op has been replayed
                // (state is consistent), but a victim core consumed
                // pre-probe state this cycle. Restore single-thread
                // mode and hand the run back to the harness.
                image_.setConcurrent(false);
                if (tracer != nullptr)
                    tracer->setConcurrent(false);
                fabric_->setProbeSink({});
                for (auto &hier : hiers_)
                    hier->setTouchRecording(false);
                throw ShardRestart(strprintf(
                    "sharded step conflict at cycle %llu: same-cycle "
                    "cross-shard line sharing; rerun single-threaded",
                    static_cast<unsigned long long>(cycle)));
            }
        }

        if (skip) {
            Tick next = eq_.nextEventTick();
            for (auto &core : cores_)
                if (!core->done())
                    next = std::min(next, core->nextWake());
            if (next == maxTick && validator_) {
                validator_->onNoEvent(cycle);
                break;
            }
            if (sampler != nullptr && next != maxTick)
                next = std::min(next, sampler->nextDue());
            cycle = next == maxTick ? max_cycles
                                    : std::max(cycle + 1, next);
        } else {
            ++cycle;
        }
    }

    image_.setConcurrent(false);
    if (tracer != nullptr)
        tracer->setConcurrent(false);
    fabric_->setProbeSink({});
    for (auto &hier : hiers_)
        hier->setTouchRecording(false);
}

RunResult
System::run(Tick max_cycles)
{
    const int n = numCores();
    obs::Sampler *const sampler =
        observer_ ? observer_->sampler() : nullptr;
    if (sampler != nullptr)
        sampler->begin(eq_.now());

    const int shards = std::min(cfg_.shards, n);
    if (shards > 1)
        runLoopSharded(max_cycles, shards);
    else
        runLoopSerial(max_cycles);

    if (validator_)
        validator_->finalize(eq_.now());
    if (observer_)
        observer_->finalize(eq_.now());

    // Collect results.
    RunResult res;
    res.nsPerCycle = cfg_.nsPerCycle;
    res.l2ReadMshr = OccupancyHistogram(
        hiers_[0]->l2().config().numMshrs);
    res.l2TotalMshr = OccupancyHistogram(
        hiers_[0]->l2().config().numMshrs);

    const int rw = cfg_.core.retireWidth;
    for (int i = 0; i < n; ++i) {
        const auto &cs = cores_[static_cast<size_t>(i)]->stats();
        res.cores.push_back(cs);
        res.cycles = std::max(res.cycles, cs.doneTick);
        res.instructions += cs.retired;
        res.busyCycles += static_cast<double>(cs.busySlots) / rw / n;
        res.dataReadCycles +=
            static_cast<double>(cs.dataReadSlots) / rw / n;
        res.dataWriteCycles +=
            static_cast<double>(cs.dataWriteSlots) / rw / n;
        res.syncCycles += static_cast<double>(cs.syncSlots) / rw / n;
        res.cpuCycles += static_cast<double>(cs.cpuSlots) / rw / n;

        auto &hier = *hiers_[static_cast<size_t>(i)];
        hier.finalizeStats(eq_.now());
        if (!hier.singleLevel())
            mergeCacheStats(res.l1, hier.l1().stats());
        mergeCacheStats(res.l2, hier.l2().stats());
        res.l2ReadMshr.merge(hier.l2().mshrs().readHistogram());
        res.l2TotalMshr.merge(hier.l2().mshrs().totalHistogram());

        res.busUtilization = std::max(
            res.busUtilization,
            memories_[static_cast<size_t>(i)]->busUtilization(eq_.now()));
        res.bankUtilization = std::max(
            res.bankUtilization,
            memories_[static_cast<size_t>(i)]->bankUtilization(eq_.now()));
    }
    // An SMP interconnect is a bus too: fold its occupancy in so the
    // reported bus% reflects the actual serialization point (with one
    // memory per node, the per-node data buses can sit near idle while
    // the shared coherence bus saturates — the Exemplar configuration).
    if (smpBus_ && eq_.now() > 0)
        res.busUtilization = std::max(
            res.busUtilization,
            static_cast<double>(smpBus_->busyTicks()) /
                static_cast<double>(eq_.now()));
    if (fabric_)
        res.fabric = fabric_->stats();
    if (observer_) {
        res.obsMetrics = observer_->collect();
        if (!cfg_.obsTracePath.empty() &&
            !observer_->dumpTrace(cfg_.obsTracePath))
            warn(strprintf("obs: could not write trace to %s",
                           cfg_.obsTracePath.c_str()));
        if (!cfg_.samplePath.empty() &&
            !observer_->dumpSamples(cfg_.samplePath, cfg_.manifestJson))
            warn(strprintf("obs: could not write samples to %s",
                           cfg_.samplePath.c_str()));
    }
    return res;
}

} // namespace mpc::sys
