#include "system/config.hh"

namespace mpc::sys
{

SystemConfig
baseConfig(std::uint64_t l2_bytes)
{
    SystemConfig cfg;
    cfg.name = "base-500MHz";
    cfg.nsPerCycle = 2.0;

    // Core: Table 1 defaults already encoded in CoreConfig.

    cfg.hier.l1.name = "L1D";
    cfg.hier.l1.sizeBytes = 16 * 1024;
    cfg.hier.l1.assoc = 1;
    cfg.hier.l1.lineBytes = 64;
    cfg.hier.l1.numMshrs = 10;
    cfg.hier.l1.numPorts = 2;
    cfg.hier.l1.hitLatency = 1;

    cfg.hier.l2.name = "L2";
    cfg.hier.l2.sizeBytes = l2_bytes;
    cfg.hier.l2.assoc = 4;
    cfg.hier.l2.lineBytes = 64;
    cfg.hier.l2.numMshrs = 10;
    cfg.hier.l2.numPorts = 1;
    cfg.hier.l2.hitLatency = 10;

    cfg.membus.numBanks = 4;
    cfg.membus.interleave = mem::Interleave::Permutation;
    cfg.membus.bankAccessLatency = 74;
    cfg.membus.cpuCyclesPerBusCycle = 3;   // 167 MHz bus
    cfg.membus.busWidthBytes = 32;         // 256-bit

    cfg.mesh.flitBytes = 8;                // 64-bit links
    cfg.mesh.cpuCyclesPerNetCycle = 2;     // 250 MHz mesh
    cfg.mesh.hopDelayNetCycles = 2;

    cfg.fabric.lineBytes = 64;
    cfg.fabric.dirLatency = 12;
    cfg.fabric.probeLatency = 50;
    return cfg;
}

SystemConfig
oneGHzConfig(std::uint64_t l2_bytes)
{
    SystemConfig cfg = baseConfig(l2_bytes);
    cfg.name = "future-1GHz";
    cfg.nsPerCycle = 1.0;
    // Memory and interconnect keep their ns/MHz values, so their cycle
    // counts double at twice the core clock. Processor-side latencies
    // (FUs, L1, L2) scale with the core.
    cfg.membus.bankAccessLatency *= 2;
    cfg.membus.cpuCyclesPerBusCycle *= 2;
    cfg.mesh.cpuCyclesPerNetCycle *= 2;
    cfg.fabric.dirLatency *= 2;
    cfg.fabric.probeLatency *= 2;
    return cfg;
}

SystemConfig
exemplarConfig(std::uint64_t cache_bytes)
{
    SystemConfig cfg;
    cfg.name = "exemplar-180MHz";
    cfg.nsPerCycle = 5.5556;               // 180 MHz PA-8000

    cfg.core.windowSize = 56;
    cfg.core.fetchWidth = 4;
    cfg.core.issueWidth = 4;
    cfg.core.retireWidth = 4;

    cfg.hier.singleLevel = true;           // one off-chip data cache
    cfg.hier.l1.name = "DCache";
    cfg.hier.l1.sizeBytes = cache_bytes;
    cfg.hier.l1.assoc = 4;
    cfg.hier.l1.lineBytes = 32;
    cfg.hier.l1.numMshrs = 10;             // 10 outstanding misses
    cfg.hier.l1.numPorts = 2;
    cfg.hier.l1.hitLatency = 3;            // off-chip SRAM

    cfg.membus.numBanks = 8;
    cfg.membus.interleave = mem::Interleave::Skewed;
    cfg.membus.bankAccessLatency = 78;     // ~433 ns DRAM at 180 MHz
    cfg.membus.cpuCyclesPerBusCycle = 2;   // ~90 MHz memory bus
    cfg.membus.busWidthBytes = 8;

    cfg.fabric.lineBytes = 32;
    cfg.fabric.dirLatency = 10;
    cfg.fabric.probeLatency = 8;

    cfg.smpBus = true;
    cfg.smp.busWidthBytes = 8;
    cfg.smp.cpuCyclesPerBusCycle = 2;
    cfg.smp.arbCycles = 1;
    return cfg;
}

} // namespace mpc::sys
