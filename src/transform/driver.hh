/**
 * @file
 * The clustering driver: the end-to-end algorithm of Sections 3.2.2
 * and 3.3 applied to every innermost loop nest of a kernel.
 *
 * Per nest:
 *  1. analyze; compute alpha and f;
 *  2. if f < alpha*lp (or < lp with no recurrence) and the parent loop
 *     can be unroll-and-jammed, binary-search the largest degree u <= U
 *     with f(u) <= ceil(alpha*lp), re-running locality/dependence
 *     analysis per candidate as Section 3.2.2 requires;
 *  3. apply the transformation, interchanging the postlude when legal;
 *  4. scalar replacement on the jammed body (the secondary benefit
 *     unroll-and-jam was originally built for);
 *  5. window constraints: when the loop has no recurrence but too few
 *     static misses per window span, inner-unroll to expose more
 *     independent misses to the clustering-aware scheduler.
 *
 * The algorithm now lives in the pass pipeline (pipeline.hh): each
 * step above is a registered pass, and applyClustering() simply runs
 * the default pipeline honoring the DriverParams enable* flags. The
 * pipeline reproduces the old monolithic driver's kernels and reports
 * bit-identically; DriverReport is an alias of PipelineReport.
 */

#ifndef MPC_TRANSFORM_DRIVER_HH
#define MPC_TRANSFORM_DRIVER_HH

#include "transform/pipeline.hh"

namespace mpc::transform
{

/** Superseded by PipelineReport (same shape; kept for callers). */
using DriverReport = PipelineReport;

/** Apply the clustering algorithm to every loop nest of @p kernel. */
DriverReport applyClustering(ir::Kernel &kernel,
                             const DriverParams &params);

} // namespace mpc::transform

#endif // MPC_TRANSFORM_DRIVER_HH
