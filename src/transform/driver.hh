/**
 * @file
 * The clustering driver: the end-to-end algorithm of Sections 3.2.2
 * and 3.3 applied to every innermost loop nest of a kernel.
 *
 * Per nest:
 *  1. analyze; compute alpha and f;
 *  2. if f < alpha*lp (or < lp with no recurrence) and the parent loop
 *     can be unroll-and-jammed, binary-search the largest degree u <= U
 *     with f(u) <= ceil(alpha*lp), re-running locality/dependence
 *     analysis per candidate as Section 3.2.2 requires;
 *  3. apply the transformation, interchanging the postlude when legal;
 *  4. scalar replacement on the jammed body (the secondary benefit
 *     unroll-and-jam was originally built for);
 *  5. window constraints: when the loop has no recurrence but too few
 *     static misses per window span, inner-unroll to expose more
 *     independent misses to the clustering-aware scheduler.
 *
 * The driver is deliberately restricted to information the analysis
 * provides: leading references, recurrences, W, i, L_m, P_m, and lp.
 */

#ifndef MPC_TRANSFORM_DRIVER_HH
#define MPC_TRANSFORM_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "ir/kernel.hh"

namespace mpc::transform
{

struct DriverParams
{
    int lp = 10;                ///< simultaneous outstanding misses
    int windowSize = 64;        ///< W
    int lineBytes = 64;
    int maxUnroll = 16;         ///< U: code-expansion bound

    /** Lowered-instruction-count estimator (wire the codegen one). */
    std::function<int(const ir::Kernel &, const ir::Stmt &)> bodySize;
    /** Profiled miss rate per refId for irregular references. */
    std::function<double(int)> missRate;
    /**
     * Run-matched (multiprocessor) profile: per-refId miss rate and
     * access count measured on the partitioned per-core programs with
     * per-core caches and write-invalidation. Null on uniprocessor
     * runs. Partitioning shrinks each processor's footprint, so a
     * regular reference's static miss-every-L_m-iterations estimate
     * can stop holding: the remaining misses are sparse communication
     * misses that unroll-and-jam cannot cluster. The driver uses these
     * to refuse a jam whose modeled f rise would not be realized
     * (DESIGN.md section 5) and which enables no register reuse.
     */
    std::function<double(int)> realizedMissRate;
    std::function<std::uint64_t(int)> realizedAccesses;
    /**
     * Refuse unroll-and-jam (unless it enables scalar replacement)
     * when the profiled misses of the nest's leading regular
     * references fall below this fraction of the static estimate.
     */
    double minRealizedMissRatio = 0.75;

    bool enableScalarReplacement = true;
    bool enablePostludeInterchange = true;
    bool enableInnerUnroll = true;
    int maxInnerUnroll = 8;
};

/** What the driver did to one loop nest. */
struct NestReport
{
    std::string loopVar;
    double alpha = 0.0;
    bool addressRecurrence = false;
    double fBefore = 0.0;
    double fAfter = 0.0;
    int unrollDegree = 1;       ///< chosen unroll-and-jam factor
    int innerUnrollDegree = 1;
    int fusedLoops = 0;         ///< sibling loops fused (Section 6)
    int scalarsReplaced = 0;
    bool postludeInterchanged = false;
    std::string note;

    std::string toString() const;
};

struct DriverReport
{
    std::vector<NestReport> nests;

    /** refIds of leading references in the final transformed kernel
     *  (for the codegen scheduler's miss-first packing). */
    std::vector<int> leadingRefIds;

    std::string toString() const;
};

/** Apply the clustering algorithm to every loop nest of @p kernel. */
DriverReport applyClustering(ir::Kernel &kernel,
                             const DriverParams &params);

} // namespace mpc::transform

#endif // MPC_TRANSFORM_DRIVER_HH
