/**
 * @file
 * Conservative data-dependence legality tests for the clustering
 * transformations. The memory-parallelism dependence framework of
 * src/analysis deliberately estimates *performance*; legality uses the
 * conventional (conservative) tests here, per Section 3.1 of the paper.
 *
 * The test implemented is subscript-by-subscript strong-SIV over affine
 * references: it proves independence or derives per-loop dependence
 * distances for matching-shape subscripts, and falls back to "assume
 * dependence" otherwise. Loops explicitly marked `parallel` (the
 * paper's assumption for Mp3d and MST) are always transformable.
 */

#ifndef MPC_TRANSFORM_LEGALITY_HH
#define MPC_TRANSFORM_LEGALITY_HH

#include <string>

#include "ir/kernel.hh"

namespace mpc::transform
{

/**
 * Can @p outer (a counted loop directly containing @p inner) be
 * unroll-and-jammed? True when the outer loop is marked parallel or
 * when no dependence has an interchange-preventing (<, >) direction
 * with respect to (outer, inner).
 */
bool canUnrollAndJam(const ir::Stmt &outer);

/**
 * Can @p outer be interchanged with its single nested loop? Requires
 * the inner bounds to be independent of the outer variable, plus the
 * same direction-vector condition as unroll-and-jam.
 */
bool canInterchange(const ir::Stmt &outer);

} // namespace mpc::transform

#endif // MPC_TRANSFORM_LEGALITY_HH
