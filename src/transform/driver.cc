#include "transform/driver.hh"

#include <cmath>

#include "common/logging.hh"
#include "transform/legality.hh"
#include "transform/transforms.hh"

namespace mpc::transform
{

using analysis::AnalysisParams;
using analysis::LoopAnalysis;
using analysis::NestPath;
using ir::Kernel;
using ir::Stmt;

namespace
{

AnalysisParams
toAnalysisParams(const DriverParams &params)
{
    AnalysisParams ap;
    ap.windowSize = params.windowSize;
    ap.lp = params.lp;
    ap.lineBytes = params.lineBytes;
    ap.bodySize = params.bodySize;
    ap.missRate = params.missRate;
    return ap;
}

/** Mark every loop in the subtree as processed. */
void
markLoops(Stmt &root)
{
    ir::walkStmts(root, [](Stmt &s) {
        if (s.kind == Stmt::Kind::Loop || s.kind == Stmt::Kind::PtrLoop ||
            s.kind == Stmt::Kind::While)
            s.mark = 1;
    });
}

/** Index of @p nest in preorder nest discovery (for clone mapping). */
int
nestIndex(Kernel &kernel, const NestPath &nest)
{
    auto nests = analysis::findLoopNests(kernel);
    for (size_t i = 0; i < nests.size(); ++i)
        if (nests[i].inner() == nest.inner())
            return static_cast<int>(i);
    return -1;
}

/**
 * Evaluate f after unroll-and-jamming nest @p idx of a clone of
 * @p kernel by @p u. Returns a negative value when the transformation
 * is not applicable.
 */
double
evaluateF(const Kernel &kernel, int idx, int levels_up, int u,
          const AnalysisParams &ap)
{
    Kernel trial = kernel.clone();
    auto nests = analysis::findLoopNests(trial);
    if (idx < 0 || idx >= static_cast<int>(nests.size()))
        return -1.0;
    Stmt *outer = nests[static_cast<size_t>(idx)].outer(levels_up);
    if (outer == nullptr)
        return -1.0;
    if (!unrollAndJam(trial, *outer, u, false))
        return -1.0;
    // The jammed innermost loop is the first nest inside `outer`.
    auto new_nests = analysis::findLoopNests(trial);
    for (const auto &nest : new_nests) {
        for (const Stmt *loop : nest.loops) {
            if (loop == outer) {
                const LoopAnalysis la =
                    analyzeInnerLoop(trial, nest, ap);
                return la.f;
            }
        }
    }
    return -1.0;
}

/**
 * Scalars that replacement would eliminate after unroll-and-jamming
 * nest @p idx of a clone by @p u (cross-copy register reuse, the
 * secondary benefit the transformation was originally built for).
 * Returns 0 when the transformation is not applicable.
 */
int
evaluateScalars(const Kernel &kernel, int idx, int levels_up, int u)
{
    Kernel trial = kernel.clone();
    auto nests = analysis::findLoopNests(trial);
    if (idx < 0 || idx >= static_cast<int>(nests.size()))
        return 0;
    Stmt *outer = nests[static_cast<size_t>(idx)].outer(levels_up);
    if (outer == nullptr || !unrollAndJam(trial, *outer, u, false))
        return 0;
    auto new_nests = analysis::findLoopNests(trial);
    for (const auto &nest : new_nests) {
        for (const Stmt *loop : nest.loops) {
            if (loop == outer && nest.inner()->kind == Stmt::Kind::Loop)
                return scalarReplace(trial, *nest.inner());
        }
    }
    return 0;
}

/**
 * True when the run-matched profile shows EVERY leading regular
 * reference of the nest realizing markedly fewer misses than the
 * static one-per-L_m estimate the f model charges it — the situation
 * after partitioning where each processor's footprint fits its cache
 * and only sparse communication misses remain, which unroll-and-jam
 * cannot cluster. One stream still missing at its modeled rate is
 * enough to keep the jam: its copies do add real overlapped misses.
 * References the profile never saw count as fully realized.
 */
bool
missesUnderRealized(const LoopAnalysis &la, const DriverParams &params)
{
    if (!params.realizedMissRate || !params.realizedAccesses)
        return false;
    bool any_regular = false;
    for (const auto &ref : la.refs) {
        if (!ref.leading || !ref.regular || ref.refId < 0)
            continue;
        any_regular = true;
        if (params.realizedAccesses(ref.refId) == 0)
            return false;
        const double static_rate =
            1.0 / static_cast<double>(std::max<std::int64_t>(ref.lm, 1));
        if (params.realizedMissRate(ref.refId) >=
            params.minRealizedMissRatio * static_rate)
            return false;
    }
    return any_regular;
}

} // namespace

std::string
NestReport::toString() const
{
    std::string out = strprintf(
        "loop %-8s alpha=%.2f%s f: %.1f -> %.1f  uaj=%d  inner=%d  "
        "scalars=%d  fused=%d",
        loopVar.c_str(), alpha, addressRecurrence ? " (addr)" : "",
        fBefore, fAfter, unrollDegree, innerUnrollDegree,
        scalarsReplaced, fusedLoops);
    if (!note.empty())
        out += "  [" + note + "]";
    return out;
}

std::string
DriverReport::toString() const
{
    std::string out;
    for (const auto &nest : nests)
        out += nest.toString() + "\n";
    return out;
}

DriverReport
applyClustering(Kernel &kernel, const DriverParams &params)
{
    ir::assignRefIds(kernel);
    const AnalysisParams ap = toAnalysisParams(params);
    DriverReport report;

    for (;;) {
        // Pick the first unprocessed innermost loop.
        auto nests = analysis::findLoopNests(kernel);
        NestPath *nest = nullptr;
        for (auto &candidate : nests) {
            if (candidate.inner()->mark == 0) {
                nest = &candidate;
                break;
            }
        }
        if (nest == nullptr)
            break;

        NestReport nr;
        nr.loopVar = nest->inner()->var.empty() ? "(while)"
                                                : nest->inner()->var;
        const LoopAnalysis before = analyzeInnerLoop(kernel, *nest, ap);
        nr.alpha = before.alpha;
        nr.addressRecurrence = before.hasAddressRecurrence;
        nr.fBefore = before.f;
        nr.fAfter = before.f;

        // Target parallelism: alpha * lp per Section 3.2.2 (each
        // recurrence bounds utilization); lp when no recurrence bounds
        // the loop.
        const double target =
            before.recurrences.empty()
                ? static_cast<double>(params.lp)
                : std::ceil(before.alpha * params.lp - 1e-9);

        bool any_leading_read = false;
        for (const auto &ref : before.refs)
            any_leading_read |= ref.leading && !ref.isWrite;

        Stmt *outer = nest->outer();

        // ------------------------------------------------------------
        // Section 6 extension: a singly-nested loop with unmet
        // parallelism has no outer loop to unroll-and-jam, but fusing
        // adjacent sibling loops adds independent leading references
        // per iteration. Fuse while legal and below the target.
        // ------------------------------------------------------------
        if (outer == nullptr && before.f + 0.5 <= target) {
            Stmt *inner = nest->inner();
            double f_now = before.f;
            while (f_now + 0.5 <= target) {
                auto [owner, pos] = findOwner(kernel, inner);
                if (pos + 1 >= owner->size())
                    break;
                Stmt *next = (*owner)[pos + 1].get();
                bool next_has_nest = false;
                ir::walkStmts(*next, [&](Stmt &s) {
                    next_has_nest |= &s != next &&
                                     (s.kind == Stmt::Kind::Loop ||
                                      s.kind == Stmt::Kind::PtrLoop ||
                                      s.kind == Stmt::Kind::While);
                });
                if (next->kind != Stmt::Kind::Loop || next_has_nest)
                    break;
                if (!fuseLoops(kernel, *inner, *next))
                    break;
                ++nr.fusedLoops;
                NestPath fused_path;
                fused_path.loops.push_back(inner);
                f_now = analyzeInnerLoop(kernel, fused_path, ap).f;
            }
            if (nr.fusedLoops > 0)
                nr.note = "fused " + std::to_string(nr.fusedLoops) +
                          " sibling loop(s)";
        }

        const int idx = nestIndex(kernel, *nest);

        // ------------------------------------------------------------
        // Unroll-and-jam (Section 3.2.2): binary-search the largest
        // degree u with f(u) <= target. Skipped when the loop already
        // meets the target, when only write misses would be added, or
        // when no legal outer loop exists.
        // ------------------------------------------------------------
        int chosen = 1;
        if (any_leading_read && before.f + 0.5 <= target) {
            // Try the immediate parent first, then its parent: deeper
            // nests may only gain parallelism from a higher loop (the
            // generalized multi-loop search of Carr & Kennedy that
            // Section 3.2.2 defers to).
            for (int levels_up = 1; levels_up <= 2 && chosen == 1;
                 ++levels_up) {
                Stmt *candidate = nest->outer(levels_up);
                if (candidate == nullptr ||
                    candidate->kind != Stmt::Kind::Loop ||
                    !canUnrollAndJam(*candidate))
                    continue;
                int lo = 1, hi = params.maxUnroll;
                while (lo < hi) {
                    const int mid = (lo + hi + 1) / 2;
                    const double f_mid =
                        evaluateF(kernel, idx, levels_up, mid, ap);
                    if (f_mid >= 0.0 && f_mid <= target + 1e-9)
                        lo = mid;
                    else
                        hi = mid - 1;
                }
                // Unrolling a loop whose index does not appear in the
                // subscripts (e.g. a time loop) leaves f unchanged:
                // the copies coalesce into the same spatial groups.
                // Only transform when memory parallelism grows.
                if (lo > 1 && evaluateF(kernel, idx, levels_up, lo,
                                        ap) > before.f + 0.5)
                    chosen = lo;
                // The modeled rise must also be realizable: when the
                // run-matched profile shows the leading streams mostly
                // hitting (per-processor footprint fits after
                // partitioning), the extra copies add misses only on
                // paper, and unless they at least enable cross-copy
                // register reuse the jam is pure code expansion —
                // refuse it (DESIGN.md section 5).
                if (chosen > 1 && missesUnderRealized(before, params) &&
                    evaluateScalars(kernel, idx, levels_up, chosen) ==
                        0) {
                    chosen = 1;
                    nr.note = "refused: profiled misses below modeled";
                }
                if (chosen > 1) {
                    outer = candidate;
                    auto [owner, pos] = findOwner(kernel, outer);
                    const size_t size_before = owner->size();
                    const bool ok = unrollAndJam(
                        kernel, *outer, chosen,
                        params.enablePostludeInterchange);
                    MPC_ASSERT(ok,
                               "unroll-and-jam failed after legality "
                               "and trial both passed");
                    nr.unrollDegree = chosen;
                    if (levels_up > 1)
                        nr.note = "jammed " +
                                  std::to_string(levels_up) +
                                  " levels up";
                    if (owner->size() > size_before)
                        markLoops(*(*owner)[pos + 1]);  // postlude
                }
            }
        } else if (outer == nullptr && nr.fusedLoops == 0) {
            nr.note = "no outer loop, no fusable sibling";
        }

        // Locate the (possibly new) innermost loop for the later
        // passes: first nest inside `outer` after the transform, or
        // the original inner loop.
        auto find_inner = [&]() -> NestPath {
            auto found = analysis::findLoopNests(kernel);
            if (chosen > 1 && outer != nullptr) {
                for (auto &candidate : found) {
                    for (const Stmt *loop : candidate.loops)
                        if (loop == outer)
                            return candidate;
                }
            }
            for (auto &candidate : found)
                if (candidate.inner()->mark == 0)
                    return candidate;
            panic("processed loop vanished");
        };

        // ------------------------------------------------------------
        // Scalar replacement on the jammed body.
        // ------------------------------------------------------------
        if (params.enableScalarReplacement) {
            NestPath current = find_inner();
            if (current.inner()->kind == Stmt::Kind::Loop)
                nr.scalarsReplaced =
                    scalarReplace(kernel, *current.inner());
        }

        // ------------------------------------------------------------
        // Window constraints (Section 3.3): with no recurrence and too
        // few independent misses per window span, inner-unroll to give
        // the clustering-aware scheduler misses to pack together.
        // ------------------------------------------------------------
        {
            NestPath current = find_inner();
            LoopAnalysis after = analyzeInnerLoop(kernel, current, ap);
            // Expected misses per iteration: a loop that almost never
            // misses gains nothing from miss-exposing unrolling (it
            // would only pay code expansion), so require a meaningful
            // miss density first.
            double miss_density = 0.0;
            for (const auto &ref : after.refs) {
                if (!ref.leading)
                    continue;
                if (ref.regular)
                    miss_density +=
                        1.0 / static_cast<double>(
                                  std::max<std::int64_t>(ref.lm, 1));
                else
                    miss_density += params.missRate
                                        ? params.missRate(ref.refId)
                                        : 1.0;
            }
            if (params.enableInnerUnroll && after.recurrences.empty() &&
                after.f + 0.5 <= target && after.numLeading() > 0 &&
                miss_density >= 0.5 &&
                current.inner()->kind == Stmt::Kind::Loop) {
                const int factor = std::min<int>(
                    params.maxInnerUnroll,
                    static_cast<int>(std::ceil(
                        target / std::max(after.f, 1.0))));
                if (factor > 1) {
                    auto [owner, pos] =
                        findOwner(kernel, current.inner());
                    const size_t size_before = owner->size();
                    if (innerUnroll(kernel, *current.inner(), factor)) {
                        nr.innerUnrollDegree = factor;
                        if (owner->size() > size_before)
                            markLoops(*(*owner)[pos + 1]);  // remainder
                    }
                }
            }
            NestPath final_nest = find_inner();
            const LoopAnalysis final_la =
                analyzeInnerLoop(kernel, final_nest, ap);
            nr.fAfter = final_la.f;
            for (const auto &ref : final_la.refs)
                if (ref.leading && ref.refId >= 0)
                    report.leadingRefIds.push_back(ref.refId);
        }

        // Mark the whole transformed region (jammed loops, epilogues)
        // as processed.
        if (outer != nullptr && chosen > 1)
            markLoops(*outer);
        else
            markLoops(*find_inner().inner());

        report.nests.push_back(std::move(nr));
    }

    // Clear markers so the driver can be re-run if desired.
    for (auto &stmt : kernel.body)
        ir::walkStmts(*stmt, [](Stmt &s) { s.mark = 0; });
    return report;
}

} // namespace mpc::transform
