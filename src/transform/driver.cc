#include "transform/driver.hh"

#include "common/logging.hh"

namespace mpc::transform
{

DriverReport
applyClustering(ir::Kernel &kernel, const DriverParams &params)
{
    Pipeline pipeline;
    std::string error;
    const bool ok = Pipeline::parse(pipelineSpecFromParams(params),
                                    pipeline, error);
    MPC_ASSERT(ok, error.c_str());
    return pipeline.run(kernel, params);
}

} // namespace mpc::transform
