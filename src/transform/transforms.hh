/**
 * @file
 * The clustering code transformations (Sections 2.2, 3.2, 3.3):
 * unroll-and-jam (counted and pointer-chase forms), loop interchange,
 * strip-mine-and-interchange, inner-loop unrolling, and scalar
 * replacement. All transformations preserve semantics; tests check
 * bit-identical results against the functional interpreter.
 *
 * Transformations operate in place on a Kernel's statement tree. Loop
 * handles (Stmt pointers) are invalidated by a transformation; re-run
 * analysis::findLoopNests afterwards.
 */

#ifndef MPC_TRANSFORM_TRANSFORMS_HH
#define MPC_TRANSFORM_TRANSFORMS_HH

#include "ir/kernel.hh"

namespace mpc::transform
{

/**
 * Locate the statement list and index that own @p target within
 * @p kernel (panics if absent). Used by passes that insert siblings.
 */
std::pair<std::vector<ir::StmtPtr> *, size_t>
findOwner(ir::Kernel &kernel, const ir::Stmt *target);

/**
 * Substitute every use of variable @p var in @p stmt (recursively) by
 * @p replacement (cloned per use). Loop-redefinition shadowing is not
 * supported (kernel variable names are unique by construction).
 */
void substituteVar(ir::Stmt &stmt, const std::string &var,
                   const ir::Expr &replacement);

/** Rename variable @p from to @p to (uses and definitions). */
void renameVar(ir::Stmt &stmt, const std::string &from,
               const std::string &to);

/**
 * Unroll-and-jam: unroll counted loop @p outer by @p factor and fuse
 * the resulting copies of each nested loop. Scalars assigned inside the
 * body are renamed per copy (giving each copy private accumulators /
 * pointers). A postlude loop handles remainder iterations; when
 * @p interchange_postlude is set and legal, the postlude is
 * interchanged to keep its misses clustered (Section 2.2).
 *
 * @return false (kernel untouched) if the shape or legality check
 * fails: @p outer must directly contain either straight-line
 * statements, counted loops with @p outer -independent bounds, or
 * pointer-chase loops (jammed into a While over the minimum length,
 * with per-chain epilogues, as done for MST).
 */
bool unrollAndJam(ir::Kernel &kernel, ir::Stmt &outer, int factor,
                  bool interchange_postlude = true);

/** Interchange @p outer with its single nested counted loop. */
bool interchange(ir::Kernel &kernel, ir::Stmt &outer);

/**
 * Strip-mine @p loop into tiles of @p strip iterations (the
 * Figure 2(c) building block); the loop variable keeps its name in the
 * new inner loop and @p loop becomes the tile loop over `var__tile`.
 */
bool stripMine(ir::Kernel &kernel, ir::Stmt &loop, int strip);

/**
 * Unroll innermost counted loop @p loop by @p factor in place (copies
 * stay in sequence; no jamming), with a remainder loop. Used to
 * resolve window constraints (Section 3.3).
 */
bool innerUnroll(ir::Kernel &kernel, ir::Stmt &loop, int factor);

/**
 * Insert Mowry-style software prefetches for the regular leading
 * references of every innermost counted loop: each such reference gets
 * a nonbinding prefetch of the element it will touch
 * @p distance_lines cache lines ahead. This implements the alternative
 * latency-tolerance technique the paper compares against (Section 1)
 * and whose interaction with clustering its follow-up studies: apply
 * it to a base kernel for prefetching alone, or to a clustered kernel
 * for the combination.
 * @return number of prefetch statements inserted.
 */
int insertPrefetches(ir::Kernel &kernel, int distance_lines = 4,
                     int line_bytes = 64);

/**
 * Fuse two adjacent counted loops with identical headers (same trip
 * count and step) into one. This is the paper's Section 6 extension:
 * fusing otherwise unrelated loops gives a singly-nested loop more
 * independent leading references per iteration, resolving memory-
 * parallelism recurrences no outer loop is available to unroll-and-jam.
 *
 * Legality: for every same-array reference pair across the two bodies
 * with at least one write, the second loop's access at iteration i
 * must not touch an element the first loop only produces at a later
 * iteration (affine subscripts, same shape, constant delta <= 0);
 * anything unanalyzable refuses.
 *
 * @return false (kernel untouched) if shape or legality fails.
 */
bool fuseLoops(ir::Kernel &kernel, ir::Stmt &first, ir::Stmt &second);

/**
 * Rewrite every outermost parallel-marked counted loop to iterate over
 * a per-processor block [mylo, myhi), computed at run time from the
 * reserved variables `__procid` and `__nprocs` (initialized by the
 * code generator). Applied BEFORE the clustering driver so that each
 * processor's own range is unroll-and-jammed with its own postlude —
 * the structure of the paper's hand-transformed parallel codes — which
 * keeps the partition balanced regardless of the unroll degree.
 * @return number of loops partitioned.
 */
int partitionParallelLoops(ir::Kernel &kernel);

/**
 * Scalar replacement on innermost loop @p inner: loads of inner-loop-
 * invariant array elements are hoisted into scalars before the loop and
 * (for written elements) stored back after it.
 * @return number of references replaced.
 */
int scalarReplace(ir::Kernel &kernel, ir::Stmt &inner);

} // namespace mpc::transform

#endif // MPC_TRANSFORM_TRANSFORMS_HH
