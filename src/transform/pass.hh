/**
 * @file
 * The transformation pass interface and the shared state passes
 * communicate through.
 *
 * A Pass is one clustering transformation step (fusion, the
 * unroll-and-jam search, scalar replacement, ...) applied as a sweep
 * over a kernel. A Pipeline (pipeline.hh) executes a named sequence of
 * passes and accumulates a PipelineReport. The per-nest driver
 * algorithm of Sections 3.2.2 and 3.3 is recovered by running the
 * passes in the default order: analysis is subtree-local, so a
 * per-pass sweep over all nests produces the identical kernel to the
 * old per-nest episode loop.
 *
 * Cross-pass state lives in PassContext:
 *  - the cursor/row protocol: the k-th *live* nest (innermost loop
 *    with mark == 0, in preorder) owns row k. Passes iterate k,
 *    re-discovering the live nests each step since transformations
 *    invalidate loop handles; rowAt() lazily computes the pre-transform
 *    analysis (alpha, f, the parallelism target) the first time any
 *    pass visits a nest. Derived loops (postludes, remainders, loops
 *    swallowed by a jam) are marked so they never become live rows.
 *  - postlude records: the cluster pass registers each postlude it
 *    creates so the postlude-interchange pass can process them without
 *    re-discovering which loops are postludes.
 */

#ifndef MPC_TRANSFORM_PASS_HH
#define MPC_TRANSFORM_PASS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "ir/kernel.hh"

namespace mpc::transform
{

struct DriverParams
{
    int lp = 10;                ///< simultaneous outstanding misses
    int windowSize = 64;        ///< W
    int lineBytes = 64;
    int maxUnroll = 16;         ///< U: code-expansion bound

    /** Lowered-instruction-count estimator (wire the codegen one). */
    std::function<int(const ir::Kernel &, const ir::Stmt &)> bodySize;
    /** Profiled miss rate per refId for irregular references. */
    std::function<double(int)> missRate;
    /**
     * Run-matched (multiprocessor) profile: per-refId miss rate and
     * access count measured on the partitioned per-core programs with
     * per-core caches and write-invalidation. Null on uniprocessor
     * runs. Partitioning shrinks each processor's footprint, so a
     * regular reference's static miss-every-L_m-iterations estimate
     * can stop holding: the remaining misses are sparse communication
     * misses that unroll-and-jam cannot cluster. The driver uses these
     * to refuse a jam whose modeled f rise would not be realized
     * (DESIGN.md section 5) and which enables no register reuse.
     */
    std::function<double(int)> realizedMissRate;
    std::function<std::uint64_t(int)> realizedAccesses;
    /**
     * Refuse unroll-and-jam (unless it enables scalar replacement)
     * when the profiled misses of the nest's leading regular
     * references fall below this fraction of the static estimate.
     */
    double minRealizedMissRatio = 0.75;

    bool enableScalarReplacement = true;
    bool enablePostludeInterchange = true;
    bool enableInnerUnroll = true;
    int maxInnerUnroll = 8;

    /** Prefetch distance (cache lines ahead) for the prefetch pass. */
    int prefetchDistanceLines = 4;
};

/** What the pipeline did to one loop nest. */
struct NestReport
{
    std::string loopVar;
    double alpha = 0.0;
    bool addressRecurrence = false;
    double fBefore = 0.0;
    double fAfter = 0.0;
    int unrollDegree = 1;       ///< chosen unroll-and-jam factor
    int innerUnrollDegree = 1;
    int fusedLoops = 0;         ///< sibling loops fused (Section 6)
    int scalarsReplaced = 0;
    bool postludeInterchanged = false;
    std::string note;

    std::string toString() const;
};

/** What one pass did over the whole kernel. */
struct PassReport
{
    std::string pass;
    double wallMs = 0.0;
    int actions = 0;            ///< transformations applied
    bool skipped = false;       ///< applicability precheck said no
    std::string detail;

    /** Wall time of the post-pass verification (structural check plus
     *  functional re-execution); 0 when verification was off or the
     *  pass was skipped. The executing tier is PipelineReport's
     *  verifyTier. Excluded from toString() — host timing stays off
     *  stdout — but serialized and replayed onto the obs trace. */
    double verifyMs = 0.0;

    std::string toString() const;
};

/** One post-pass verification failure (VerifyMode::Record). */
struct VerifyFailure
{
    std::string pass;
    std::string what;
};

/**
 * Structured result of a pipeline run. Supersedes the old
 * DriverReport: toString() reproduces its per-nest lines byte for
 * byte, and leadingRefIds still feeds the codegen scheduler's
 * miss-first packing.
 */
struct PipelineReport
{
    std::vector<NestReport> nests;

    /** refIds of leading references in the final transformed kernel
     *  (for the codegen scheduler's miss-first packing). */
    std::vector<int> leadingRefIds;

    std::vector<PassReport> passes;
    std::vector<VerifyFailure> verifyFailures;

    /** Execution backend the functional equivalence checks ran on:
     *  "interp" | "threaded" (kisa tiers) | "evaluator" (IR-level
     *  fallback for kernels the lowered single-core run could block
     *  on); empty when verification was off. */
    std::string verifyTier;

    /** Wall time of the pre-pipeline reference checksum run. */
    double refChecksumMs = 0.0;

    /** The old DriverReport rendering: one line per nest. */
    std::string toString() const;

    std::string toJson() const;
    /** Parse toJson() output. @return false on malformed input. */
    static bool fromJson(const std::string &json, PipelineReport &out);
};

/** Per-live-nest state shared between passes (see file comment). */
struct RowState
{
    NestReport report;
    /** Analysis of the nest the first time a pass saw it. Loop and
     *  expression pointers inside may dangle after transformations;
     *  only scalar fields and RefInfo flags may be read later. */
    analysis::LoopAnalysis before;
    double target = 0.0;        ///< alpha*lp (or lp with no recurrence)
    bool anyLeadingRead = false;
};

/** A postlude loop the cluster pass created, for postlude-interchange. */
struct PostludeRec
{
    ir::Stmt *loop = nullptr;
    int row = -1;
};

struct PassContext
{
    PassContext(const DriverParams &p, analysis::AnalysisParams a)
        : params(p), ap(std::move(a)) {}

    const DriverParams &params;
    analysis::AnalysisParams ap;
    std::vector<RowState> rows;
    std::vector<PostludeRec> postludes;

    /** Names of all passes in the running pipeline, in order. Lets a
     *  pass know whether a later pass will pick up deferred work. */
    std::vector<std::string> scheduledPasses;

    bool
    hasScheduledPass(const std::string &name) const
    {
        for (const std::string &scheduled : scheduledPasses)
            if (scheduled == name)
                return true;
        return false;
    }

    /** Row for live nest @p k, lazily created from @p nest. */
    RowState &rowAt(std::size_t k, ir::Kernel &kernel,
                    const analysis::NestPath &nest);
};

/**
 * One registered transformation pass. Passes are stateless singletons
 * owned by the PassRegistry; per-run state lives in PassContext.
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Registry key; stable storage for tracer span names. */
    virtual const char *name() const = 0;

    /** Cheap precheck: false marks the pass skipped for this kernel. */
    virtual bool applicable(ir::Kernel &kernel, PassContext &ctx) const
    {
        (void)kernel;
        (void)ctx;
        return true;
    }

    virtual void run(ir::Kernel &kernel, PassContext &ctx,
                     PassReport &pr) const = 0;
};

/** DriverParams -> AnalysisParams (the analysis-facing subset). */
analysis::AnalysisParams toAnalysisParams(const DriverParams &params);

/**
 * The live nests of @p kernel: innermost loops with mark == 0, in
 * preorder. Position k in this list is the cursor/row index shared by
 * all passes of a pipeline run.
 */
std::vector<analysis::NestPath> liveNests(ir::Kernel &kernel);

} // namespace mpc::transform

#endif // MPC_TRANSFORM_PASS_HH
