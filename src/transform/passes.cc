/**
 * @file
 * The built-in clustering passes: the old applyClustering driver
 * decomposed into registry-keyed Pass implementations. The default
 * pipeline order reproduces the old per-nest episode loop exactly —
 * the analysis is subtree-local, so sweeping each transformation over
 * all nests commutes with interleaving them per nest.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "common/logging.hh"
#include "transform/legality.hh"
#include "transform/pipeline.hh"
#include "transform/transforms.hh"

namespace mpc::transform
{

namespace
{

using analysis::AnalysisParams;
using analysis::LoopAnalysis;
using analysis::NestPath;
using ir::Kernel;
using ir::Stmt;

bool
isLoopKind(Stmt::Kind kind)
{
    return kind == Stmt::Kind::Loop || kind == Stmt::Kind::PtrLoop ||
           kind == Stmt::Kind::While;
}

/** Mark every loop in the subtree as processed. */
void
markLoops(Stmt &root)
{
    ir::walkStmts(root, [](Stmt &s) {
        if (isLoopKind(s.kind))
            s.mark = 1;
    });
}

/** First loop-kind statement directly in @p loop's body. */
Stmt *
firstLoopChild(Stmt &loop)
{
    for (auto &child : loop.body)
        if (isLoopKind(child->kind))
            return child.get();
    return nullptr;
}

/**
 * Preorder-first innermost loop under (and including) @p loop: loops
 * only occur directly in loop bodies, so the leftmost loop-child
 * descent chain ends at the first innermost nest findLoopNests would
 * report inside @p loop.
 */
Stmt *
representativeInner(Stmt &loop)
{
    Stmt *cur = &loop;
    for (Stmt *child = firstLoopChild(*cur); child != nullptr;
         child = firstLoopChild(*cur))
        cur = child;
    return cur;
}

/** All innermost loops under (and including) @p loop, preorder. */
void
collectInnermost(Stmt &loop, std::vector<Stmt *> &out)
{
    bool has_child_loop = false;
    for (auto &child : loop.body) {
        if (isLoopKind(child->kind)) {
            has_child_loop = true;
            collectInnermost(*child, out);
        }
    }
    if (!has_child_loop)
        out.push_back(&loop);
}

/**
 * True when the run-matched profile shows EVERY leading regular
 * reference of the nest realizing markedly fewer misses than the
 * static one-per-L_m estimate the f model charges it — the situation
 * after partitioning where each processor's footprint fits its cache
 * and only sparse communication misses remain, which unroll-and-jam
 * cannot cluster. One stream still missing at its modeled rate is
 * enough to keep the jam: its copies do add real overlapped misses.
 * References the profile never saw count as fully realized.
 */
bool
missesUnderRealized(const LoopAnalysis &la, const DriverParams &params)
{
    if (!params.realizedMissRate || !params.realizedAccesses)
        return false;
    bool any_regular = false;
    for (const auto &ref : la.refs) {
        if (!ref.leading || !ref.regular || ref.refId < 0)
            continue;
        any_regular = true;
        if (params.realizedAccesses(ref.refId) == 0)
            return false;
        const double static_rate =
            1.0 / static_cast<double>(std::max<std::int64_t>(ref.lm, 1));
        if (params.realizedMissRate(ref.refId) >=
            params.minRealizedMissRatio * static_rate)
            return false;
    }
    return any_regular;
}

/**
 * Candidate evaluator for the unroll-and-jam binary search. The old
 * driver cloned the whole kernel and re-discovered every nest per
 * candidate degree (O(nests^2) over a run); this keeps ONE scratch
 * clone per nest, jams the candidate subtree in place, analyzes only
 * that subtree, and restores it from a pristine copy — same f and
 * scalar-replacement values, no whole-kernel rework per candidate.
 */
class TrialEvaluator
{
  public:
    TrialEvaluator(const Kernel &kernel, size_t live_index,
                   const AnalysisParams &ap)
        : scratch_(kernel.clone()), liveIndex_(live_index), ap_(ap)
    {
    }

    /** Target live[liveIndex].outer(levels_up) in the scratch clone
     *  (marks are preserved by clone, so live indices line up). */
    bool
    setLevels(int levels_up)
    {
        fCache_.clear();
        valid_ = false;
        auto live = liveNests(scratch_);
        if (liveIndex_ >= live.size())
            return false;
        Stmt *outer = live[liveIndex_].outer(levels_up);
        if (outer == nullptr)
            return false;
        auto [owner, pos] = findOwner(scratch_, outer);
        owner_ = owner;
        pos_ = pos;
        sizeBefore_ = owner->size();
        pristine_ = (*owner)[pos]->clone();
        scalarsSnapshot_ = scratch_.scalars;
        valid_ = true;
        return true;
    }

    /** f of the jammed innermost loop at degree @p u; negative when
     *  the transformation is not applicable. */
    double
    f(int u)
    {
        if (!valid_)
            return -1.0;
        if (const auto it = fCache_.find(u); it != fCache_.end())
            return it->second;
        double result = -1.0;
        if (Stmt *outer = jam(u)) {
            NestPath path;
            path.loops.push_back(representativeInner(*outer));
            result = analysis::analyzeInnerLoop(scratch_, path, ap_).f;
        }
        restore();
        fCache_[u] = result;
        return result;
    }

    /** Scalars replacement would eliminate after jamming by @p u
     *  (cross-copy register reuse); 0 when not applicable. */
    int
    scalars(int u)
    {
        if (!valid_)
            return 0;
        int result = 0;
        if (Stmt *outer = jam(u)) {
            std::vector<Stmt *> inners;
            collectInnermost(*outer, inners);
            for (Stmt *inner : inners) {
                if (inner->kind == Stmt::Kind::Loop) {
                    result = scalarReplace(scratch_, *inner);
                    break;
                }
            }
        }
        restore();
        return result;
    }

  private:
    Stmt *
    jam(int u)
    {
        Stmt *outer = (*owner_)[pos_].get();
        return unrollAndJam(scratch_, *outer, u, false) ? outer
                                                        : nullptr;
    }

    void
    restore()
    {
        while (owner_->size() > sizeBefore_)
            owner_->erase(owner_->begin() +
                          static_cast<std::ptrdiff_t>(pos_) + 1);
        (*owner_)[pos_] = pristine_->clone();
        scratch_.scalars = scalarsSnapshot_;
    }

    Kernel scratch_;
    size_t liveIndex_;
    const AnalysisParams &ap_;

    std::vector<ir::StmtPtr> *owner_ = nullptr;
    size_t pos_ = 0;
    size_t sizeBefore_ = 0;
    ir::StmtPtr pristine_;
    std::map<std::string, ir::ScalType> scalarsSnapshot_;
    std::map<int, double> fCache_;
    bool valid_ = false;
};

// --------------------------------------------------------------------
// partition
// --------------------------------------------------------------------

class PartitionPass : public Pass
{
  public:
    const char *name() const override { return "partition"; }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        (void)ctx;
        pr.actions = partitionParallelLoops(kernel);
    }
};

// --------------------------------------------------------------------
// fuse (Section 6 extension)
// --------------------------------------------------------------------

class FusePass : public Pass
{
  public:
    const char *name() const override { return "fuse"; }

    bool
    applicable(Kernel &kernel, PassContext &ctx) const override
    {
        (void)ctx;
        return !liveNests(kernel).empty();
    }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        for (size_t k = 0;; ++k) {
            auto live = liveNests(kernel);
            if (k >= live.size())
                break;
            NestPath &nest = live[k];
            RowState &row = ctx.rowAt(k, kernel, nest);
            NestReport &nr = row.report;

            // A singly-nested loop with unmet parallelism has no outer
            // loop to unroll-and-jam, but fusing adjacent sibling
            // loops adds independent leading references per iteration.
            // Fuse while legal and below the target.
            if (nest.outer() != nullptr ||
                !(row.before.f + 0.5 <= row.target))
                continue;
            Stmt *inner = nest.inner();
            double f_now = row.before.f;
            while (f_now + 0.5 <= row.target) {
                auto [owner, pos] = findOwner(kernel, inner);
                if (pos + 1 >= owner->size())
                    break;
                Stmt *next = (*owner)[pos + 1].get();
                bool next_has_nest = false;
                ir::walkStmts(*next, [&](Stmt &s) {
                    next_has_nest |= &s != next && isLoopKind(s.kind);
                });
                if (next->kind != Stmt::Kind::Loop || next_has_nest)
                    break;
                if (!fuseLoops(kernel, *inner, *next))
                    break;
                ++nr.fusedLoops;
                ++pr.actions;
                NestPath fused_path;
                fused_path.loops.push_back(inner);
                f_now =
                    analysis::analyzeInnerLoop(kernel, fused_path,
                                               ctx.ap)
                        .f;
            }
            if (nr.fusedLoops > 0)
                nr.note = "fused " + std::to_string(nr.fusedLoops) +
                          " sibling loop(s)";
        }
    }
};

// --------------------------------------------------------------------
// cluster (unroll-and-jam with the f-model binary search)
// --------------------------------------------------------------------

class ClusterPass : public Pass
{
  public:
    const char *name() const override { return "cluster"; }

    bool
    applicable(Kernel &kernel, PassContext &ctx) const override
    {
        (void)ctx;
        return !liveNests(kernel).empty();
    }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        for (size_t k = 0;; ++k) {
            auto live = liveNests(kernel);
            if (k >= live.size())
                break;
            NestPath &nest = live[k];
            RowState &row = ctx.rowAt(k, kernel, nest);
            NestReport &nr = row.report;
            Stmt *outer = nest.outer();

            // Unroll-and-jam (Section 3.2.2): binary-search the
            // largest degree u with f(u) <= target. Skipped when the
            // loop already meets the target, when only write misses
            // would be added, or when no legal outer loop exists.
            int chosen = 1;
            if (row.anyLeadingRead &&
                row.before.f + 0.5 <= row.target) {
                TrialEvaluator trial(kernel, k, ctx.ap);
                // Try the immediate parent first, then its parent:
                // deeper nests may only gain parallelism from a higher
                // loop (the generalized multi-loop search of Carr &
                // Kennedy that Section 3.2.2 defers to).
                for (int levels_up = 1; levels_up <= 2 && chosen == 1;
                     ++levels_up) {
                    Stmt *candidate = nest.outer(levels_up);
                    if (candidate == nullptr ||
                        candidate->kind != Stmt::Kind::Loop ||
                        !canUnrollAndJam(*candidate))
                        continue;
                    if (!trial.setLevels(levels_up))
                        continue;
                    int lo = 1, hi = ctx.params.maxUnroll;
                    while (lo < hi) {
                        const int mid = (lo + hi + 1) / 2;
                        const double f_mid = trial.f(mid);
                        if (f_mid >= 0.0 &&
                            f_mid <= row.target + 1e-9)
                            lo = mid;
                        else
                            hi = mid - 1;
                    }
                    // Unrolling a loop whose index does not appear in
                    // the subscripts (e.g. a time loop) leaves f
                    // unchanged: the copies coalesce into the same
                    // spatial groups. Only transform when memory
                    // parallelism grows.
                    if (lo > 1 && trial.f(lo) > row.before.f + 0.5)
                        chosen = lo;
                    // The modeled rise must also be realizable: when
                    // the run-matched profile shows the leading
                    // streams mostly hitting (per-processor footprint
                    // fits after partitioning), the extra copies add
                    // misses only on paper, and unless they at least
                    // enable cross-copy register reuse the jam is pure
                    // code expansion — refuse it (DESIGN.md section 5).
                    if (chosen > 1 &&
                        missesUnderRealized(row.before, ctx.params) &&
                        trial.scalars(chosen) == 0) {
                        chosen = 1;
                        nr.note =
                            "refused: profiled misses below modeled";
                    }
                    if (chosen > 1) {
                        applyJam(kernel, ctx, nest, live, k, row,
                                 *candidate, chosen, levels_up);
                        outer = candidate;
                        ++pr.actions;
                    }
                }
            } else if (outer == nullptr && nr.fusedLoops == 0) {
                nr.note = "no outer loop, no fusable sibling";
            }
        }
    }

  private:
    static void
    applyJam(Kernel &kernel, PassContext &ctx, NestPath &nest,
             std::vector<NestPath> &live, size_t k, RowState &row,
             Stmt &candidate, int chosen, int levels_up)
    {
        (void)nest;
        NestReport &nr = row.report;

        // Region bookkeeping BEFORE the jam rebuilds statements:
        // later live rows and previously recorded postludes inside
        // the jammed subtree are consumed by it.
        std::set<const Stmt *> region;
        ir::walkStmts(candidate,
                      [&](Stmt &s) { region.insert(&s); });
        std::vector<size_t> swallowed;
        for (size_t j = k + 1; j < live.size(); ++j)
            if (region.count(live[j].inner()) != 0)
                swallowed.push_back(j);
        for (size_t pi = ctx.postludes.size(); pi-- > 0;) {
            if (region.count(ctx.postludes[pi].loop) != 0) {
                // The old driver interchanged postludes at creation
                // time; give this one its interchange before the jam
                // duplicates it, then drop the record.
                if (ctx.hasScheduledPass("postlude-interchange"))
                    interchange(kernel, *ctx.postludes[pi].loop);
                ctx.postludes.erase(
                    ctx.postludes.begin() +
                    static_cast<std::ptrdiff_t>(pi));
            }
        }

        auto [owner, pos] = findOwner(kernel, &candidate);
        const size_t size_before = owner->size();
        const bool ok = unrollAndJam(kernel, candidate, chosen, false);
        MPC_ASSERT(ok, "unroll-and-jam failed after legality and "
                       "trial both passed");
        nr.unrollDegree = chosen;
        if (levels_up > 1)
            nr.note = "jammed " + std::to_string(levels_up) +
                      " levels up";
        if (owner->size() > size_before) {
            Stmt *postlude = (*owner)[pos + 1].get();
            markLoops(*postlude);
            ctx.postludes.push_back(
                {postlude, static_cast<int>(k)});
        }

        // Mark the jammed region processed, except the representative
        // innermost loop that stays live so later passes (and the
        // finalize step) still find row k at cursor position k.
        Stmt *rep = representativeInner(candidate);
        ir::walkStmts(candidate, [&](Stmt &s) {
            if (isLoopKind(s.kind) && &s != rep)
                s.mark = 1;
        });
        for (auto it = swallowed.rbegin(); it != swallowed.rend();
             ++it)
            if (*it < ctx.rows.size())
                ctx.rows.erase(ctx.rows.begin() +
                               static_cast<std::ptrdiff_t>(*it));
    }
};

// --------------------------------------------------------------------
// postlude-interchange
// --------------------------------------------------------------------

class PostludeInterchangePass : public Pass
{
  public:
    const char *name() const override { return "postlude-interchange"; }

    bool
    applicable(Kernel &kernel, PassContext &ctx) const override
    {
        (void)kernel;
        return !ctx.postludes.empty();
    }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        for (const PostludeRec &rec : ctx.postludes) {
            if (interchange(kernel, *rec.loop)) {
                if (rec.row >= 0 &&
                    rec.row < static_cast<int>(ctx.rows.size()))
                    ctx.rows[static_cast<size_t>(rec.row)]
                        .report.postludeInterchanged = true;
                ++pr.actions;
            }
        }
    }
};

// --------------------------------------------------------------------
// scalar-replace
// --------------------------------------------------------------------

class ScalarReplacePass : public Pass
{
  public:
    const char *name() const override { return "scalar-replace"; }

    bool
    applicable(Kernel &kernel, PassContext &ctx) const override
    {
        (void)ctx;
        return !liveNests(kernel).empty();
    }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        for (size_t k = 0;; ++k) {
            auto live = liveNests(kernel);
            if (k >= live.size())
                break;
            RowState &row = ctx.rowAt(k, kernel, live[k]);
            if (live[k].inner()->kind != Stmt::Kind::Loop)
                continue;
            const int replaced =
                scalarReplace(kernel, *live[k].inner());
            row.report.scalarsReplaced = replaced;
            pr.actions += replaced;
        }
    }
};

// --------------------------------------------------------------------
// inner-unroll (window constraints, Section 3.3)
// --------------------------------------------------------------------

class InnerUnrollPass : public Pass
{
  public:
    const char *name() const override { return "inner-unroll"; }

    bool
    applicable(Kernel &kernel, PassContext &ctx) const override
    {
        (void)ctx;
        return !liveNests(kernel).empty();
    }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        for (size_t k = 0;; ++k) {
            auto live = liveNests(kernel);
            if (k >= live.size())
                break;
            NestPath &current = live[k];
            RowState &row = ctx.rowAt(k, kernel, current);
            const LoopAnalysis after =
                analysis::analyzeInnerLoop(kernel, current, ctx.ap);
            // Expected misses per iteration: a loop that almost never
            // misses gains nothing from miss-exposing unrolling (it
            // would only pay code expansion), so require a meaningful
            // miss density first.
            double miss_density = 0.0;
            for (const auto &ref : after.refs) {
                if (!ref.leading)
                    continue;
                if (ref.regular)
                    miss_density +=
                        1.0 / static_cast<double>(
                                  std::max<std::int64_t>(ref.lm, 1));
                else
                    miss_density +=
                        ctx.params.missRate
                            ? ctx.params.missRate(ref.refId)
                            : 1.0;
            }
            if (after.recurrences.empty() &&
                after.f + 0.5 <= row.target &&
                after.numLeading() > 0 && miss_density >= 0.5 &&
                current.inner()->kind == Stmt::Kind::Loop) {
                const int factor = std::min<int>(
                    ctx.params.maxInnerUnroll,
                    static_cast<int>(std::ceil(
                        row.target / std::max(after.f, 1.0))));
                if (factor > 1) {
                    auto [owner, pos] =
                        findOwner(kernel, current.inner());
                    const size_t size_before = owner->size();
                    if (innerUnroll(kernel, *current.inner(),
                                    factor)) {
                        row.report.innerUnrollDegree = factor;
                        if (owner->size() > size_before)
                            markLoops(
                                *(*owner)[pos + 1]);  // remainder
                        ++pr.actions;
                    }
                }
            }
        }
    }
};

// --------------------------------------------------------------------
// prefetch (Mowry-style, the Section 1 alternative)
// --------------------------------------------------------------------

class PrefetchPass : public Pass
{
  public:
    const char *name() const override { return "prefetch"; }

    void
    run(Kernel &kernel, PassContext &ctx, PassReport &pr) const override
    {
        pr.actions = insertPrefetches(kernel,
                                      ctx.params.prefetchDistanceLines,
                                      ctx.params.lineBytes);
    }
};

} // namespace

void
registerBuiltinPasses(PassRegistry &registry)
{
    registry.add(std::make_unique<PartitionPass>());
    registry.add(std::make_unique<FusePass>());
    registry.add(std::make_unique<ClusterPass>());
    registry.add(std::make_unique<PostludeInterchangePass>());
    registry.add(std::make_unique<ScalarReplacePass>());
    registry.add(std::make_unique<InnerUnrollPass>());
    registry.add(std::make_unique<PrefetchPass>());
}

} // namespace mpc::transform
