#include "transform/transforms.hh"

#include <functional>
#include <optional>
#include <set>

#include "analysis/affine.hh"
#include "common/logging.hh"
#include "transform/legality.hh"

namespace mpc::transform
{

using ir::Expr;
using ir::ExprPtr;
using ir::Kernel;
using ir::Stmt;
using ir::StmtPtr;

/** Locate the statement list and index owning @p target. */
std::pair<std::vector<StmtPtr> *, size_t>
findOwner(Kernel &kernel, const Stmt *target)
{
    std::pair<std::vector<StmtPtr> *, size_t> found{nullptr, 0};
    std::function<void(std::vector<StmtPtr> &)> search =
        [&](std::vector<StmtPtr> &list) {
            for (size_t i = 0; i < list.size(); ++i) {
                if (list[i].get() == target) {
                    found = {&list, i};
                    return;
                }
                search(list[i]->body);
                if (found.first != nullptr)
                    return;
            }
        };
    search(kernel.body);
    MPC_ASSERT(found.first != nullptr, "statement not found in kernel");
    return found;
}

namespace
{

/** In-place morph of an expression node into a variable reference. */
void
morphToVar(Expr &e, const std::string &name)
{
    e.kind = Expr::Kind::VarRef;
    e.var = name;
    e.array = nullptr;
    e.children.clear();
    e.refId = -1;
}

/** Variables assigned within @p stmts (including nested PtrLoop vars,
 *  excluding counted-loop indices). */
std::set<std::string>
assignedScalars(const std::vector<StmtPtr> &stmts)
{
    std::set<std::string> vars;
    for (const auto &s : stmts) {
        ir::walkStmts(*s, [&vars](const Stmt &x) {
            if (x.kind == Stmt::Kind::Assign &&
                x.lhs->kind == Expr::Kind::VarRef)
                vars.insert(x.lhs->var);
            if (x.kind == Stmt::Kind::PtrLoop)
                vars.insert(x.var);
        });
    }
    return vars;
}

/** True if the first dynamic occurrence of @p var in @p stmts is a
 *  definition (so per-copy renaming is sound). */
bool
firstUseIsWrite(const std::vector<StmtPtr> &stmts, const std::string &var)
{
    enum class R { NotSeen, Write, Read };
    std::function<R(const Expr &)> scan_expr = [&](const Expr &e) {
        if (e.kind == Expr::Kind::VarRef && e.var == var)
            return R::Read;
        for (const auto &c : e.children) {
            const R r = scan_expr(*c);
            if (r != R::NotSeen)
                return r;
        }
        return R::NotSeen;
    };
    std::function<R(const Stmt &)> scan_stmt = [&](const Stmt &s) {
        switch (s.kind) {
          case Stmt::Kind::Assign: {
            const R rhs = scan_expr(*s.rhs);
            if (rhs != R::NotSeen)
                return rhs;
            // Subscripts of the LHS are reads.
            for (const auto &c : s.lhs->children) {
                const R r = scan_expr(*c);
                if (r != R::NotSeen)
                    return r;
            }
            if (s.lhs->kind == Expr::Kind::VarRef && s.lhs->var == var)
                return R::Write;
            return R::NotSeen;
          }
          case Stmt::Kind::PtrLoop: {
            const R init = scan_expr(*s.lo);
            if (init != R::NotSeen)
                return init;
            if (s.var == var)
                return R::Write;
            break;
          }
          case Stmt::Kind::Loop:
          case Stmt::Kind::While: {
            for (const Expr *e : {s.lo.get(), s.hi.get()}) {
                if (e != nullptr) {
                    const R r = scan_expr(*e);
                    if (r != R::NotSeen)
                        return r;
                }
            }
            break;
          }
          default:
            for (const Expr *e : {s.lhs.get(), s.rhs.get()}) {
                if (e != nullptr) {
                    const R r = scan_expr(*e);
                    if (r != R::NotSeen)
                        return r;
                }
            }
            break;
        }
        for (const auto &child : s.body) {
            const R r = scan_stmt(*child);
            if (r != R::NotSeen)
                return r;
        }
        return R::NotSeen;
    };
    for (const auto &s : stmts) {
        const R r = scan_stmt(*s);
        if (r != R::NotSeen)
            return r == R::Write;
    }
    return true;  // never used: renaming is trivially sound
}

/** Defined later in this file (fusion core; used by unrollAndJam). */
bool fuseAdjacentAt(std::vector<StmtPtr> &list, size_t pos);

bool
usesVar(const Expr &e, const std::string &var)
{
    if (e.kind == Expr::Kind::VarRef && e.var == var)
        return true;
    for (const auto &c : e.children)
        if (usesVar(*c, var))
            return true;
    return false;
}

} // namespace

namespace
{

/** Replace uses of @p var in the pointed-to expression. Unlike a
 *  generic walk, this does not descend into freshly substituted nodes
 *  (the replacement may itself mention @p var). */
void
substExpr(ExprPtr &e, const std::string &var, const Expr &replacement)
{
    if (e->kind == Expr::Kind::VarRef && e->var == var) {
        e = replacement.clone();
        return;
    }
    for (auto &child : e->children)
        substExpr(child, var, replacement);
}

} // namespace

void
substituteVar(Stmt &stmt, const std::string &var, const Expr &replacement)
{
    ir::walkStmts(stmt, [&](Stmt &s) {
        for (ExprPtr *slot : {&s.lhs, &s.rhs, &s.lo, &s.hi}) {
            if (*slot)
                substExpr(*slot, var, replacement);
        }
    });
}

void
renameVar(Stmt &stmt, const std::string &from, const std::string &to)
{
    ir::walkExprs(stmt, [&](Expr &e) {
        if (e.kind == Expr::Kind::VarRef && e.var == from)
            e.var = to;
    });
    ir::walkStmts(stmt, [&](Stmt &s) {
        if ((s.kind == Stmt::Kind::Loop || s.kind == Stmt::Kind::PtrLoop) &&
            s.var == from)
            s.var = to;
    });
}

namespace
{

/**
 * Upper bound of the unrolled steady-state loop:
 * hi - ((hi - lo) mod big_step), folded when the trip count is a
 * compile-time constant (including symbolic bounds with a constant
 * difference, e.g. tile loops over [jb, jb+8)).
 */
ir::ExprPtr
jammedUpperBound(const Stmt &loop, std::int64_t big_step,
                 bool &need_postlude)
{
    need_postlude = true;
    const bool down = loop.step < 0;
    const std::int64_t span = std::abs(big_step);
    const auto lo_c = analysis::constEval(*loop.lo);
    const auto hi_c = analysis::constEval(*loop.hi);
    std::optional<std::int64_t> trip;   // span from lo toward hi, > 0
    if (lo_c && hi_c) {
        trip = down ? *lo_c - *hi_c : *hi_c - *lo_c;
    } else {
        const auto lo_f = analysis::affineOf(*loop.lo);
        const auto hi_f = analysis::affineOf(*loop.hi);
        if (lo_f && hi_f && lo_f->sameShape(*hi_f))
            trip = down ? lo_f->c - hi_f->c : hi_f->c - lo_f->c;
    }
    if (trip) {
        const std::int64_t rem = ((*trip % span) + span) % span;
        need_postlude = rem != 0;
        if (hi_c)
            return ir::iconst(down ? *hi_c + rem : *hi_c - rem);
        return down ? ir::add(loop.hi->clone(), ir::iconst(rem))
                    : ir::sub(loop.hi->clone(), ir::iconst(rem));
    }
    if (down) {
        // hi + ((lo - hi) mod span)
        return ir::add(
            loop.hi->clone(),
            ir::modx(ir::sub(loop.lo->clone(), loop.hi->clone()),
                     ir::iconst(span)));
    }
    return ir::sub(
        loop.hi->clone(),
        ir::modx(ir::sub(loop.hi->clone(), loop.lo->clone()),
                 ir::iconst(big_step)));
}

} // namespace

bool
unrollAndJam(Kernel &kernel, Stmt &outer, int factor,
             bool interchange_postlude)
{
    if (factor <= 1)
        return true;
    if (outer.kind != Stmt::Kind::Loop || !canUnrollAndJam(outer))
        return false;

    // Shape check: nested counted loops need outer-independent bounds;
    // already-jammed While loops are not re-jammed.
    for (const auto &child : outer.body) {
        if (child->kind == Stmt::Kind::While)
            return false;
        if (child->kind == Stmt::Kind::Loop &&
            (usesVar(*child->lo, outer.var) ||
             usesVar(*child->hi, outer.var)))
            return false;
    }

    // Scalars assigned in the body get per-copy names; that is only
    // sound if their live ranges start inside the body.
    std::set<std::string> rename;
    for (const auto &var : assignedScalars(outer.body)) {
        if (!firstUseIsWrite(outer.body, var))
            return false;
        rename.insert(var);
    }
    // Counted-loop indices are shared by the jammed copies.
    for (const auto &child : outer.body)
        if (child->kind == Stmt::Kind::Loop)
            rename.erase(child->var);

    const std::int64_t big_step = outer.step * factor;

    // Postlude: the original loop starting at the jammed upper bound.
    // mainHi = hi - ((hi - lo) mod big_step), folded when constant.
    bool need_postlude = true;
    ExprPtr main_hi = jammedUpperBound(outer, big_step, need_postlude);

    StmtPtr postlude;
    if (need_postlude) {
        // The original loop, rebased to start at the jammed bound.
        postlude = outer.clone();
        postlude->lo = main_hi->clone();
    }

    // Build the u body copies.
    auto make_copy = [&](const StmtPtr &src, int k) {
        StmtPtr copy = src->clone();
        if (k > 0) {
            // var -> var + k*step
            const ExprPtr shifted = ir::add(
                ir::varref(outer.var), ir::iconst(k * outer.step));
            substituteVar(*copy, outer.var, *shifted);
            for (const auto &v : rename) {
                const std::string renamed =
                    v + "__" + std::to_string(k);
                renameVar(*copy, v, renamed);
                const auto it = kernel.scalars.find(v);
                kernel.declareScalar(renamed,
                                     it != kernel.scalars.end()
                                         ? it->second
                                         : ir::ScalType::I64);
            }
        }
        return copy;
    };

    std::vector<StmtPtr> new_body;
    for (const auto &child : outer.body) {
        if (child->kind == Stmt::Kind::Loop) {
            // Jam: one loop whose body is the concatenation of copies.
            StmtPtr jammed = child->clone();
            jammed->body.clear();
            for (int k = 0; k < factor; ++k) {
                StmtPtr copy = make_copy(child, k);
                for (auto &s : copy->body)
                    jammed->body.push_back(std::move(s));
            }
            // Deeper nests: the concatenated copies of any loop nested
            // inside `child` now sit side by side; fuse adjacent pairs
            // (when legal) so unroll-and-jam reaches the innermost
            // level, as for multi-level jamming in the literature.
            for (size_t p = 0; p + 1 < jammed->body.size();) {
                if (!fuseAdjacentAt(jammed->body, p))
                    ++p;
            }
            new_body.push_back(std::move(jammed));
        } else if (child->kind == Stmt::Kind::PtrLoop) {
            // Jam pointer chases: interleave the minimum length, then
            // per-chain epilogues (the MST treatment, Section 4.2).
            const std::string base_var = child->var;
            auto chain_var = [&](int k) {
                return k == 0 ? base_var
                              : base_var + "__" + std::to_string(k);
            };
            std::vector<StmtPtr> copies;
            for (int k = 0; k < factor; ++k)
                copies.push_back(make_copy(child, k));
            // Chain initializations.
            for (int k = 0; k < factor; ++k)
                new_body.push_back(ir::assign(ir::varref(chain_var(k)),
                                              copies[k]->lo->clone()));
            // while (min(p_0, ..., p_{u-1}) != 0): pointers are
            // nonnegative addresses, so min != 0 iff all != 0.
            ExprPtr cond = ir::varref(chain_var(0));
            for (int k = 1; k < factor; ++k)
                cond = ir::minx(std::move(cond),
                                ir::varref(chain_var(k)));
            std::vector<StmtPtr> while_body;
            for (int k = 0; k < factor; ++k) {
                for (auto &s : copies[k]->body)
                    while_body.push_back(std::move(s));
                // Advance: p_k = *(p_k + next_offset)
                while_body.push_back(ir::assign(
                    ir::varref(chain_var(k)),
                    ir::deref(ir::varref(chain_var(k)), child->step)));
            }
            new_body.push_back(
                ir::whileLoop(std::move(cond), std::move(while_body)));
            // Epilogues: each chain finishes separately.
            for (int k = 0; k < factor; ++k) {
                StmtPtr epilogue = make_copy(child, k);
                epilogue->var = chain_var(k);
                epilogue->lo = ir::varref(chain_var(k));
                new_body.push_back(std::move(epilogue));
            }
        } else {
            for (int k = 0; k < factor; ++k)
                new_body.push_back(make_copy(child, k));
        }
    }

    outer.body = std::move(new_body);
    outer.hi = std::move(main_hi);
    outer.step = big_step;

    if (postlude) {
        if (interchange_postlude)
            interchange(kernel, *postlude);  // best effort
        auto [list, idx] = findOwner(kernel, &outer);
        list->insert(list->begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                     std::move(postlude));
    }
    return true;
}

bool
interchange(Kernel &kernel, Stmt &outer)
{
    (void)kernel;
    if (!canInterchange(outer))
        return false;
    Stmt &inner = *outer.body[0];
    std::swap(outer.var, inner.var);
    std::swap(outer.lo, inner.lo);
    std::swap(outer.hi, inner.hi);
    std::swap(outer.step, inner.step);
    std::swap(outer.parallel, inner.parallel);
    return true;
}

bool
stripMine(Kernel &kernel, Stmt &loop, int strip)
{
    (void)kernel;
    if (loop.kind != Stmt::Kind::Loop || strip <= 1)
        return false;
    const std::string tile_var = loop.var + "__tile";
    const std::int64_t tile_step = loop.step * strip;

    auto inner = ir::forLoop(
        loop.var, ir::varref(tile_var),
        ir::minx(ir::add(ir::varref(tile_var), ir::iconst(tile_step)),
                 loop.hi->clone()),
        std::move(loop.body), loop.step);
    loop.var = tile_var;
    loop.step = tile_step;
    loop.body.clear();
    loop.body.push_back(std::move(inner));
    return true;
}

bool
innerUnroll(Kernel &kernel, Stmt &loop, int factor)
{
    if (loop.kind != Stmt::Kind::Loop || factor <= 1)
        return false;
    for (const auto &child : loop.body) {
        if (child->kind == Stmt::Kind::Loop ||
            child->kind == Stmt::Kind::PtrLoop ||
            child->kind == Stmt::Kind::While)
            return false;  // innermost only
    }

    const std::int64_t big_step = loop.step * factor;
    bool need_postlude = true;
    ExprPtr main_hi = jammedUpperBound(loop, big_step, need_postlude);

    StmtPtr postlude;
    if (need_postlude) {
        postlude = loop.clone();
        postlude->lo = main_hi->clone();
    }

    std::vector<StmtPtr> new_body;
    for (int k = 0; k < factor; ++k) {
        for (const auto &child : loop.body) {
            StmtPtr copy = child->clone();
            if (k > 0) {
                const ExprPtr shifted = ir::add(
                    ir::varref(loop.var), ir::iconst(k * loop.step));
                substituteVar(*copy, loop.var, *shifted);
            }
            new_body.push_back(std::move(copy));
        }
    }
    loop.body = std::move(new_body);
    loop.hi = std::move(main_hi);
    loop.step = big_step;

    if (postlude) {
        auto [list, idx] = findOwner(kernel, &loop);
        list->insert(list->begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                     std::move(postlude));
    }
    return true;
}


namespace
{

/** Collect (expr, isWrite) reference sites in a statement list. */
void
collectRefSites(const std::vector<StmtPtr> &stmts,
                std::vector<std::pair<const Expr *, bool>> &out)
{
    std::function<void(const Expr &, bool)> rec =
        [&](const Expr &e, bool is_write) {
            if (e.isMemRef())
                out.push_back({&e, is_write});
            for (const auto &c : e.children)
                rec(*c, false);
        };
    std::function<void(const Stmt &)> walk = [&](const Stmt &s) {
        if (s.kind == Stmt::Kind::Assign) {
            rec(*s.rhs, false);
            rec(*s.lhs, true);
        } else if (s.kind == Stmt::Kind::PtrLoop && s.rhs) {
            rec(*s.rhs, false);
        }
        for (const auto &child : s.body)
            walk(*child);
    };
    for (const auto &s : stmts)
        walk(*s);
}

} // namespace


int
insertPrefetches(Kernel &kernel, int distance_lines, int line_bytes)
{
    ir::assignRefIds(kernel);
    int inserted = 0;
    // Work over innermost counted loops; recompute nests after each
    // edit (inserting statements invalidates nothing structural here,
    // but keep it simple and safe).
    std::vector<Stmt *> inners;
    {
        std::function<void(Stmt &)> scan = [&](Stmt &s) {
            bool has_nested = false;
            for (const auto &child : s.body)
                has_nested |= child->kind == Stmt::Kind::Loop ||
                              child->kind == Stmt::Kind::PtrLoop ||
                              child->kind == Stmt::Kind::While;
            if (s.kind == Stmt::Kind::Loop && !has_nested)
                inners.push_back(&s);
            for (auto &child : s.body)
                scan(*child);
        };
        for (auto &stmt : kernel.body)
            scan(*stmt);
    }

    for (Stmt *loop : inners) {
        // Mowry's scheme prefetches once per cache line, not once per
        // iteration: unroll unit-stride loops by L = line / stride
        // first so the per-line spatial groups collapse into single
        // prefetches (the bucketing below merges same-line copies).
        {
            std::int64_t min_stride = 0;
            std::function<void(const Expr &)> scan = [&](const Expr &e) {
                for (const auto &c : e.children)
                    scan(*c);
                if (e.kind != Expr::Kind::ArrayRef)
                    return;
                const auto form = analysis::linearIndexForm(e);
                if (!form)
                    return;
                const std::int64_t stride =
                    std::abs(8 * form->coef(loop->var));
                if (stride > 0 &&
                    (min_stride == 0 || stride < min_stride))
                    min_stride = stride;
            };
            for (const auto &s : loop->body)
                ir::walkStmts(*s, [&](Stmt &x) {
                    for (const Expr *root : {x.lhs.get(), x.rhs.get()})
                        if (root != nullptr)
                            scan(*root);
                });
            if (min_stride > 0 && min_stride < line_bytes) {
                const int unroll = static_cast<int>(
                    line_bytes / min_stride);
                innerUnroll(kernel, *loop, unroll);
            }
        }

        // Distinct (array, shape, const-bucket) streams that move with
        // the loop index: one prefetch per stream per iteration group.
        struct Stream
        {
            const Expr *ref;
            std::int64_t strideBytes;
        };
        std::vector<Stream> streams;
        std::set<std::string> seen;
        std::function<void(const Expr &)> find = [&](const Expr &e) {
            for (const auto &c : e.children)
                find(*c);
            if (e.kind != Expr::Kind::ArrayRef)
                return;
            const auto form = analysis::linearIndexForm(e);
            if (!form)
                return;
            const std::int64_t stride = 8 * form->coef(loop->var);
            if (stride == 0)
                return;
            // Bucket by array + shape + line-rounded constant so the
            // members of one spatial group share one prefetch.
            std::string key = e.array->name + "#";
            for (const auto &[v, coef] : form->coefs)
                if (coef != 0)
                    key += v + ":" + std::to_string(coef) + ";";
            key += "@" + std::to_string((form->c * 8) /
                                        (line_bytes * 2));
            if (seen.insert(key).second)
                streams.push_back({&e, stride});
        };
        for (const auto &s : loop->body)
            ir::walkStmts(*s, [&](Stmt &x) {
                for (const Expr *root : {x.lhs.get(), x.rhs.get()})
                    if (root != nullptr)
                        find(*root);
            });

        std::vector<StmtPtr> prefetches;
        for (const auto &stream : streams) {
            // Iterations until the stream is distance_lines lines
            // ahead of the demand access.
            const std::int64_t iterations_ahead = std::max<std::int64_t>(
                1, distance_lines * line_bytes /
                       std::abs(stream.strideBytes));
            // Shift every use of the loop variable in the reference.
            Stmt holder;   // wrapper to reuse the substitution pass
            holder.kind = Stmt::Kind::Prefetch;
            holder.lhs = stream.ref->clone();
            const ir::ExprPtr shifted = ir::add(
                ir::varref(loop->var), ir::iconst(iterations_ahead));
            substituteVar(holder, loop->var, *shifted);
            prefetches.push_back(ir::prefetch(std::move(holder.lhs)));
            ++inserted;
        }
        for (auto &pf : prefetches)
            loop->body.insert(loop->body.begin(), std::move(pf));
    }
    ir::assignRefIds(kernel);
    return inserted;
}

namespace
{

/** Core of fuseLoops: fuse list[pos] and list[pos+1] (see header). */
bool
fuseAdjacentAt(std::vector<StmtPtr> &list, size_t pos)
{
    if (pos + 1 >= list.size())
        return false;
    Stmt &first = *list[pos];
    Stmt &second = *list[pos + 1];
    if (first.kind != Stmt::Kind::Loop || second.kind != Stmt::Kind::Loop)
        return false;
    if (first.step != second.step)
        return false;

    // Identical trip counts: equal constant bounds, or affine bounds
    // differing by the same shape with zero delta.
    auto bounds_equal = [](const Expr &a, const Expr &b) {
        const auto fa = analysis::affineOf(a);
        const auto fb = analysis::affineOf(b);
        return fa && fb && fa->sameShape(*fb) && fa->c == fb->c;
    };
    if (!bounds_equal(*first.lo, *second.lo) ||
        !bounds_equal(*first.hi, *second.hi))
        return false;
    // Trip count, when derivable, bounds the reachable dependence
    // distances below.
    std::optional<std::int64_t> trip;
    {
        const auto lo_f = analysis::affineOf(*first.lo);
        const auto hi_f = analysis::affineOf(*first.hi);
        if (lo_f && hi_f && lo_f->sameShape(*hi_f))
            trip = (hi_f->c - lo_f->c) / (first.step != 0 ? first.step
                                                          : 1);
    }

    // Scalars assigned in either body must not flow between the loops
    // in a way fusion would break; require disjoint assigned-scalar
    // sets from used-scalar crossings by simply refusing when the
    // second body reads a scalar the first body assigns (conservative;
    // loop indices excluded via renaming below).
    const auto first_defs = assignedScalars(first.body);
    bool scalar_crossing = false;
    for (const auto &s : second.body) {
        ir::walkExprs(*s, [&](Expr &e) {
            if (e.kind == Expr::Kind::VarRef && e.var != second.var &&
                first_defs.count(e.var))
                scalar_crossing = true;
        });
    }
    if (scalar_crossing)
        return false;

    // Array dependence legality (see header comment).
    std::vector<std::pair<const Expr *, bool>> refs1, refs2;
    collectRefSites(first.body, refs1);
    collectRefSites(second.body, refs2);
    for (const auto &[r1, w1] : refs1) {
        for (const auto &[r2, w2] : refs2) {
            if (!w1 && !w2)
                continue;
            if (r1->kind != Expr::Kind::ArrayRef ||
                r2->kind != Expr::Kind::ArrayRef)
                return false;   // pointer refs: unanalyzable
            if (r1->array != r2->array)
                continue;
            auto f1 = analysis::linearIndexForm(*r1);
            auto f2 = analysis::linearIndexForm(*r2);
            if (!f1 || !f2)
                return false;
            // Rebase the second loop's index onto the first's.
            if (second.var != first.var) {
                auto it = f2->coefs.find(second.var);
                if (it != f2->coefs.end()) {
                    f2->coefs[first.var] += it->second;
                    f2->coefs.erase(it);
                }
            }
            if (!f1->sameShape(*f2))
                return false;
            const std::int64_t coef = f1->coef(first.var);
            const std::int64_t delta = f2->c - f1->c;
            if (coef == 0) {
                if (delta != 0)
                    continue;   // constant, distinct addresses
                return false;   // same element every iteration
            }
            if (delta % coef != 0)
                continue;       // no integer iteration solves it
            const std::int64_t dist = delta / coef;
            if (trip && std::abs(dist) >= std::abs(*trip))
                continue;       // beyond the iteration range
            if (dist > 0)
                return false;   // second runs ahead of the producer
        }
    }

    // Fuse: rename the second loop's index and append its body.
    for (auto &stmt : second.body) {
        if (second.var != first.var) {
            renameVar(*stmt, second.var, first.var);
        }
        first.body.push_back(std::move(stmt));
    }
    first.parallel = first.parallel && second.parallel;
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(pos) + 1);
    return true;
}

} // namespace

bool
fuseLoops(Kernel &kernel, Stmt &first, Stmt &second)
{
    auto [owner, pos] = findOwner(kernel, &first);
    if (pos + 1 >= owner->size() || (*owner)[pos + 1].get() != &second)
        return false;
    return fuseAdjacentAt(*owner, pos);
}

int
partitionParallelLoops(Kernel &kernel)
{
    // Collect outermost parallel counted loops (not nested inside
    // another parallel loop).
    std::vector<Stmt *> targets;
    std::function<void(Stmt &, bool)> scan = [&](Stmt &s,
                                                 bool inside) {
        const bool take = !inside && s.kind == Stmt::Kind::Loop &&
                          s.parallel && !s.prePartitioned;
        if (take)
            targets.push_back(&s);
        for (auto &child : s.body)
            scan(*child, inside || take);
    };
    for (auto &stmt : kernel.body)
        scan(*stmt, false);

    int count = 0;
    for (Stmt *loop : targets) {
        const std::string v = loop->var;
        const std::string trip = "__trip_" + v;
        const std::string chunk = "__chunk_" + v;
        const std::string mylo = "__mylo_" + v;
        const std::string myhi = "__myhi_" + v;
        for (const auto &name : {trip, chunk, mylo, myhi})
            kernel.declareScalar(name, ir::ScalType::I64);

        auto [owner, pos] = findOwner(kernel, loop);
        std::vector<StmtPtr> setup;
        // trip = hi - lo (in steps); chunk = ceil(trip / nprocs) steps
        setup.push_back(ir::assign(
            ir::varref(trip),
            ir::divx(ir::sub(ir::sub(loop->hi->clone(),
                                     loop->lo->clone()),
                             ir::iconst(1 - loop->step)),
                     ir::iconst(loop->step))));
        setup.push_back(ir::assign(
            ir::varref(chunk),
            ir::mul(ir::divx(ir::sub(ir::add(ir::varref(trip),
                                             ir::varref("__nprocs")),
                                     ir::iconst(1)),
                             ir::varref("__nprocs")),
                    ir::iconst(loop->step))));
        setup.push_back(ir::assign(
            ir::varref(mylo),
            ir::add(loop->lo->clone(),
                    ir::mul(ir::varref("__procid"),
                            ir::varref(chunk)))));
        setup.push_back(ir::assign(
            ir::varref(myhi),
            ir::minx(ir::add(ir::varref(mylo), ir::varref(chunk)),
                     loop->hi->clone())));
        loop->lo = ir::varref(mylo);
        loop->hi = ir::varref(myhi);
        loop->prePartitioned = true;
        owner->insert(owner->begin() + static_cast<std::ptrdiff_t>(pos),
                      std::make_move_iterator(setup.begin()),
                      std::make_move_iterator(setup.end()));
        ++count;
    }
    return count;
}

int
scalarReplace(Kernel &kernel, Stmt &inner)
{
    if (inner.kind != Stmt::Kind::Loop)
        return 0;

    // Gather candidate (inner-invariant, affine) references, and track
    // per-array whether any variant (inner-dependent) access exists.
    struct Candidate
    {
        Expr *expr;
        analysis::AffineForm index;
        bool isWrite;
    };
    std::vector<Candidate> cands;
    std::set<const ir::Array *> has_variant;
    std::set<std::string> body_defined;
    ir::walkStmts(inner, [&](Stmt &s) {
        if (s.kind == Stmt::Kind::Assign &&
            s.lhs->kind == Expr::Kind::VarRef)
            body_defined.insert(s.lhs->var);
        if (s.kind == Stmt::Kind::PtrLoop)
            body_defined.insert(s.var);
    });
    std::function<void(Expr &, bool)> visit = [&](Expr &e, bool is_write) {
        for (auto &c : e.children)
            visit(*c, false);
        if (e.kind != Expr::Kind::ArrayRef)
            return;
        auto form = analysis::linearIndexForm(e);
        bool invariant = form.has_value();
        if (form) {
            for (const auto &[v, coef] : form->coefs) {
                if (coef == 0)
                    continue;
                if (v == inner.var || body_defined.count(v))
                    invariant = false;
            }
        }
        if (invariant)
            cands.push_back({&e, *form, is_write});
        else
            has_variant.insert(e.array);
    };
    ir::walkStmts(inner, [&](Stmt &s) {
        if (s.kind == Stmt::Kind::Assign) {
            visit(*s.rhs, false);
            for (auto &c : s.lhs->children)
                visit(*c, false);
            if (s.lhs->isMemRef())
                visit(*s.lhs, true);
        }
    });

    // Group candidates by (array, index form); skip arrays with variant
    // accesses (may alias) and groups written before read soundness is
    // checked trivially by construction (same location).
    int replaced = 0;
    std::vector<char> used(cands.size(), 0);
    auto [owner_list, owner_idx] = findOwner(kernel, &inner);
    size_t insert_before = owner_idx;
    size_t insert_after = owner_idx + 1;
    int tmp_counter = 0;
    for (size_t i = 0; i < cands.size(); ++i) {
        if (used[i] || has_variant.count(cands[i].expr->array))
            continue;
        std::vector<size_t> group{i};
        for (size_t j = i + 1; j < cands.size(); ++j) {
            if (used[j] || cands[j].expr->array != cands[i].expr->array)
                continue;
            if (cands[j].index.sameShape(cands[i].index) &&
                cands[j].index.c == cands[i].index.c)
                group.push_back(j);
        }
        const bool any_write = [&] {
            for (size_t g : group)
                if (cands[g].isWrite)
                    return true;
            return false;
        }();
        const std::string tmp =
            "__sr" + std::to_string(tmp_counter++) + "_" + inner.var;
        kernel.declareScalar(tmp, cands[i].expr->array->elem);
        // Hoisted load before the loop; store-back after if written.
        ExprPtr original = cands[i].expr->clone();
        owner_list->insert(
            owner_list->begin() +
                static_cast<std::ptrdiff_t>(insert_before),
            ir::assign(ir::varref(tmp), original->clone()));
        ++insert_before;
        ++insert_after;
        if (any_write) {
            owner_list->insert(
                owner_list->begin() +
                    static_cast<std::ptrdiff_t>(insert_after),
                ir::assign(std::move(original), ir::varref(tmp)));
        }
        for (size_t g : group) {
            morphToVar(*cands[g].expr, tmp);
            used[g] = 1;
            ++replaced;
        }
    }
    return replaced;
}

} // namespace mpc::transform
