#include "transform/pipeline.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>

#include "codegen/codegen.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "ir/eval.hh"
#include "ir/verify.hh"
#include "kisa/exec_threaded.hh"

namespace mpc::transform
{

using analysis::AnalysisParams;
using ir::Kernel;
using ir::Stmt;

AnalysisParams
toAnalysisParams(const DriverParams &params)
{
    AnalysisParams ap;
    ap.windowSize = params.windowSize;
    ap.lp = params.lp;
    ap.lineBytes = params.lineBytes;
    ap.bodySize = params.bodySize;
    ap.missRate = params.missRate;
    return ap;
}

std::vector<analysis::NestPath>
liveNests(Kernel &kernel)
{
    auto nests = analysis::findLoopNests(kernel);
    std::vector<analysis::NestPath> live;
    for (auto &nest : nests)
        if (nest.inner()->mark == 0)
            live.push_back(std::move(nest));
    return live;
}

// --- reports ---------------------------------------------------------

std::string
NestReport::toString() const
{
    std::string out = strprintf(
        "loop %-8s alpha=%.2f%s f: %.1f -> %.1f  uaj=%d  inner=%d  "
        "scalars=%d  fused=%d",
        loopVar.c_str(), alpha, addressRecurrence ? " (addr)" : "",
        fBefore, fAfter, unrollDegree, innerUnrollDegree,
        scalarsReplaced, fusedLoops);
    if (!note.empty())
        out += "  [" + note + "]";
    return out;
}

std::string
PassReport::toString() const
{
    std::string out = strprintf("pass %-20s %8.3f ms  actions=%d",
                                pass.c_str(), wallMs, actions);
    if (skipped)
        out += "  [skipped]";
    if (!detail.empty())
        out += "  " + detail;
    return out;
}

std::string
PipelineReport::toString() const
{
    std::string out;
    for (const auto &nest : nests)
        out += nest.toString() + "\n";
    return out;
}

// --- JSON ------------------------------------------------------------
// Serialization uses the shared common/json helpers (the parser there
// was promoted from this file when the autotune cache became a second
// consumer).

using json::boolField;
using json::numField;
using json::strField;

std::string
PipelineReport::toJson() const
{
    std::string out = "{\n  \"nests\": [";
    for (size_t i = 0; i < nests.size(); ++i) {
        const NestReport &nr = nests[i];
        out += i > 0 ? ",\n    {" : "\n    {";
        out += "\"loopVar\": ";
        json::escape(out, nr.loopVar);
        out += ", \"alpha\": " + json::num(nr.alpha);
        out += ", \"addressRecurrence\": ";
        out += nr.addressRecurrence ? "true" : "false";
        out += ", \"fBefore\": " + json::num(nr.fBefore);
        out += ", \"fAfter\": " + json::num(nr.fAfter);
        out += strprintf(", \"unrollDegree\": %d", nr.unrollDegree);
        out += strprintf(", \"innerUnrollDegree\": %d",
                         nr.innerUnrollDegree);
        out += strprintf(", \"fusedLoops\": %d", nr.fusedLoops);
        out += strprintf(", \"scalarsReplaced\": %d", nr.scalarsReplaced);
        out += ", \"postludeInterchanged\": ";
        out += nr.postludeInterchanged ? "true" : "false";
        out += ", \"note\": ";
        json::escape(out, nr.note);
        out += "}";
    }
    out += nests.empty() ? "],\n" : "\n  ],\n";
    out += "  \"leadingRefIds\": [";
    for (size_t i = 0; i < leadingRefIds.size(); ++i)
        out += strprintf(i > 0 ? ", %d" : "%d", leadingRefIds[i]);
    out += "],\n  \"passes\": [";
    for (size_t i = 0; i < passes.size(); ++i) {
        const PassReport &pr = passes[i];
        out += i > 0 ? ",\n    {" : "\n    {";
        out += "\"pass\": ";
        json::escape(out, pr.pass);
        out += ", \"wallMs\": " + json::num(pr.wallMs);
        out += ", \"verifyMs\": " + json::num(pr.verifyMs);
        out += strprintf(", \"actions\": %d", pr.actions);
        out += ", \"skipped\": ";
        out += pr.skipped ? "true" : "false";
        out += ", \"detail\": ";
        json::escape(out, pr.detail);
        out += "}";
    }
    out += passes.empty() ? "],\n" : "\n  ],\n";
    out += "  \"verifyTier\": ";
    json::escape(out, verifyTier);
    out += ",\n  \"refChecksumMs\": " + json::num(refChecksumMs);
    out += ",\n  \"verifyFailures\": [";
    for (size_t i = 0; i < verifyFailures.size(); ++i) {
        out += i > 0 ? ",\n    {" : "\n    {";
        out += "\"pass\": ";
        json::escape(out, verifyFailures[i].pass);
        out += ", \"what\": ";
        json::escape(out, verifyFailures[i].what);
        out += "}";
    }
    out += verifyFailures.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool
PipelineReport::fromJson(const std::string &text, PipelineReport &out)
{
    json::Value root;
    if (!json::parse(text, root) || root.t != json::Value::T::Obj)
        return false;
    out = PipelineReport();
    if (const json::Value *nests = root.field("nests");
        nests != nullptr && nests->t == json::Value::T::Arr) {
        for (const json::Value &v : nests->arr) {
            if (v.t != json::Value::T::Obj)
                return false;
            NestReport nr;
            nr.loopVar = strField(v, "loopVar");
            nr.alpha = numField(v, "alpha");
            nr.addressRecurrence = boolField(v, "addressRecurrence");
            nr.fBefore = numField(v, "fBefore");
            nr.fAfter = numField(v, "fAfter");
            nr.unrollDegree =
                static_cast<int>(numField(v, "unrollDegree", 1));
            nr.innerUnrollDegree =
                static_cast<int>(numField(v, "innerUnrollDegree", 1));
            nr.fusedLoops = static_cast<int>(numField(v, "fusedLoops"));
            nr.scalarsReplaced =
                static_cast<int>(numField(v, "scalarsReplaced"));
            nr.postludeInterchanged =
                boolField(v, "postludeInterchanged");
            nr.note = strField(v, "note");
            out.nests.push_back(std::move(nr));
        }
    }
    if (const json::Value *ids = root.field("leadingRefIds");
        ids != nullptr && ids->t == json::Value::T::Arr) {
        for (const json::Value &v : ids->arr)
            out.leadingRefIds.push_back(static_cast<int>(v.num));
    }
    if (const json::Value *passes = root.field("passes");
        passes != nullptr && passes->t == json::Value::T::Arr) {
        for (const json::Value &v : passes->arr) {
            if (v.t != json::Value::T::Obj)
                return false;
            PassReport pr;
            pr.pass = strField(v, "pass");
            pr.wallMs = numField(v, "wallMs");
            pr.verifyMs = numField(v, "verifyMs");
            pr.actions = static_cast<int>(numField(v, "actions"));
            pr.skipped = boolField(v, "skipped");
            pr.detail = strField(v, "detail");
            out.passes.push_back(std::move(pr));
        }
    }
    out.verifyTier = strField(root, "verifyTier");
    out.refChecksumMs = numField(root, "refChecksumMs");
    if (const json::Value *fails = root.field("verifyFailures");
        fails != nullptr && fails->t == json::Value::T::Arr) {
        for (const json::Value &v : fails->arr)
            out.verifyFailures.push_back(
                {strField(v, "pass"), strField(v, "what")});
    }
    return true;
}

// --- rows ------------------------------------------------------------

RowState &
PassContext::rowAt(std::size_t k, ir::Kernel &kernel,
                   const analysis::NestPath &nest)
{
    MPC_ASSERT(k <= rows.size(), "pass cursor skipped a live nest");
    if (k == rows.size()) {
        RowState row;
        row.before = analysis::analyzeInnerLoop(kernel, nest, ap);
        NestReport &nr = row.report;
        nr.loopVar = nest.inner()->var.empty() ? "(while)"
                                               : nest.inner()->var;
        nr.alpha = row.before.alpha;
        nr.addressRecurrence = row.before.hasAddressRecurrence;
        nr.fBefore = row.before.f;
        nr.fAfter = row.before.f;
        // Target parallelism: alpha * lp per Section 3.2.2 (each
        // recurrence bounds utilization); lp when no recurrence bounds
        // the loop.
        row.target = row.before.recurrences.empty()
                         ? static_cast<double>(params.lp)
                         : std::ceil(row.before.alpha * params.lp - 1e-9);
        for (const auto &ref : row.before.refs)
            row.anyLeadingRead |= ref.leading && !ref.isWrite;
        rows.push_back(std::move(row));
    }
    return rows[k];
}

// --- registry --------------------------------------------------------

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry *registry = [] {
        auto *r = new PassRegistry;
        registerBuiltinPasses(*r);
        return r;
    }();
    return *registry;
}

void
PassRegistry::add(std::unique_ptr<Pass> pass)
{
    const std::string name = pass->name();
    MPC_ASSERT(passes_.find(name) == passes_.end(),
               "duplicate pass registration");
    passes_[name] = std::move(pass);
}

bool
PassRegistry::has(const std::string &name) const
{
    return passes_.find(name) != passes_.end();
}

Pass *
PassRegistry::find(const std::string &name) const
{
    const auto it = passes_.find(name);
    return it == passes_.end() ? nullptr : it->second.get();
}

std::vector<std::string>
PassRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, pass] : passes_)
        out.push_back(name);
    return out;
}

const char *
PassRegistry::stableName(const std::string &name) const
{
    const Pass *pass = find(name);
    return pass != nullptr ? pass->name() : "unknown-pass";
}

// --- pipeline specs --------------------------------------------------

std::string
defaultPipelineSpec()
{
    return "fuse,cluster,postlude-interchange,scalar-replace,"
           "inner-unroll";
}

namespace
{

/** One legal knob: which pass carries it and which DriverParams field
 *  it overwrites. The grammar is exactly this table. */
struct KnobDef
{
    const char *pass;
    const char *knob;
    int DriverParams::*field;
};

constexpr KnobDef kKnobDefs[] = {
    {"cluster", "maxDegree", &DriverParams::maxUnroll},
    {"inner-unroll", "factor", &DriverParams::maxInnerUnroll},
    {"prefetch", "dist", &DriverParams::prefetchDistanceLines},
};

const KnobDef *
findKnobDef(const std::string &pass, const std::string &knob)
{
    for (const KnobDef &def : kKnobDefs)
        if (pass == def.pass && knob == def.knob)
            return &def;
    return nullptr;
}

std::string
trimWs(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

/** Split on @p sep at paren depth 0, so "cluster(maxDegree=8),fuse"
 *  yields two entries and "(a=1,b=2)" stays whole. */
std::vector<std::string>
splitTopLevel(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (const char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == sep && depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

} // namespace

std::string
pipelineSpecFromParams(const DriverParams &params)
{
    static const DriverParams defaults;
    const auto withKnobs = [&](const char *pass) {
        std::string entry = pass;
        std::string knobs;
        for (const KnobDef &def : kKnobDefs) {
            if (std::string(def.pass) != pass ||
                params.*def.field == defaults.*def.field)
                continue;
            if (!knobs.empty())
                knobs += ",";
            knobs += strprintf("%s=%d", def.knob, params.*def.field);
        }
        if (!knobs.empty())
            entry += "(" + knobs + ")";
        return entry;
    };
    std::string spec = "fuse," + withKnobs("cluster");
    if (params.enablePostludeInterchange)
        spec += ",postlude-interchange";
    if (params.enableScalarReplacement)
        spec += ",scalar-replace";
    if (params.enableInnerUnroll)
        spec += "," + withKnobs("inner-unroll");
    return spec;
}

bool
Pipeline::parse(const std::string &spec, Pipeline &out,
                std::string &error)
{
    out.passes_.clear();
    out.knobs_.clear();
    error.clear();

    const std::vector<std::string> entries = splitTopLevel(spec, ',');
    if (entries.size() == 1 && trimWs(entries[0]).empty()) {
        error = "empty pipeline spec";
        return false;
    }

    const PassRegistry &registry = PassRegistry::instance();
    std::set<std::string> seen;
    for (const std::string &raw : entries) {
        const std::string entry = trimWs(raw);
        if (entry.empty()) {
            error = "empty pass name in spec '" + spec + "'";
            return false;
        }

        // Split off a trailing "(...)" knob list, if any.
        std::string name = entry;
        std::string knob_list;
        const size_t open = entry.find('(');
        if (open != std::string::npos) {
            if (entry.back() != ')') {
                error = "malformed knob list in '" + entry +
                        "' (expected 'pass(knob=value,...)')";
                return false;
            }
            name = trimWs(entry.substr(0, open));
            knob_list =
                entry.substr(open + 1, entry.size() - open - 2);
        }
        if (name.empty()) {
            error = "empty pass name in spec '" + spec + "'";
            return false;
        }

        Pass *pass = registry.find(name);
        if (pass == nullptr) {
            error = "unknown pass '" + name + "'; known passes:";
            for (const std::string &known : registry.names())
                error += " " + known;
            return false;
        }
        if (!seen.insert(name).second) {
            error = "duplicate pass '" + name + "' in spec '" + spec +
                    "'";
            return false;
        }
        out.passes_.push_back(pass);

        if (open == std::string::npos)
            continue;
        std::set<std::string> knob_seen;
        for (const std::string &raw_knob :
             splitTopLevel(knob_list, ',')) {
            const std::string item = trimWs(raw_knob);
            if (item.empty()) {
                error = "empty knob in '" + entry + "'";
                return false;
            }
            const size_t eq = item.find('=');
            if (eq == std::string::npos) {
                error = "knob '" + item + "' in '" + name +
                        "' is missing '=value'";
                return false;
            }
            const std::string knob = trimWs(item.substr(0, eq));
            const std::string value_str = trimWs(item.substr(eq + 1));
            const KnobDef *def = findKnobDef(name, knob);
            if (def == nullptr) {
                error = "unknown knob '" + knob + "' for pass '" +
                        name + "'; known knobs:";
                for (const KnobDef &known : kKnobDefs)
                    error += strprintf(" %s(%s)", known.pass,
                                       known.knob);
                return false;
            }
            if (!knob_seen.insert(knob).second) {
                error = "duplicate knob '" + knob + "' in '" + entry +
                        "'";
                return false;
            }
            char *end = nullptr;
            const long value =
                std::strtol(value_str.c_str(), &end, 10);
            if (value_str.empty() || end == nullptr || *end != '\0' ||
                value <= 0 || value > 1 << 20) {
                error = "knob '" + knob + "' in '" + name +
                        "' needs a positive integer, got '" +
                        value_str + "'";
                return false;
            }
            out.knobs_.push_back(
                {name, knob, static_cast<int>(value)});
        }
    }
    return true;
}

std::vector<std::string>
Pipeline::passNames() const
{
    std::vector<std::string> out;
    for (const Pass *pass : passes_)
        out.push_back(pass->name());
    return out;
}

std::string
Pipeline::spec() const
{
    std::string out;
    for (const Pass *pass : passes_) {
        if (!out.empty())
            out += ",";
        out += pass->name();
        std::string knobs;
        for (const PassKnob &knob : knobs_) {
            if (knob.pass != pass->name())
                continue;
            if (!knobs.empty())
                knobs += ",";
            knobs += strprintf("%s=%d", knob.name.c_str(), knob.value);
        }
        if (!knobs.empty())
            out += "(" + knobs + ")";
    }
    return out;
}

void
Pipeline::applyKnobs(DriverParams &params) const
{
    for (const PassKnob &knob : knobs_) {
        const KnobDef *def = findKnobDef(knob.pass, knob.name);
        MPC_ASSERT(def != nullptr, "parsed knob lost its definition");
        params.*def->field = knob.value;
    }
}

// --- verification ----------------------------------------------------

namespace
{

void
collectSubscriptVars(const ir::Expr &expr, std::set<std::string> &out)
{
    if (expr.kind == ir::Expr::Kind::VarRef)
        out.insert(expr.var);
    for (const auto &child : expr.children)
        collectSubscriptVars(*child, out);
}

/**
 * Can this kernel be evaluated on synthetically filled memory without
 * tripping the evaluator's bounds checks? Conservative: counted loops
 * only, and every variable appearing in an array subscript is a loop
 * index (so subscripts stay within the statically declared ranges the
 * kernel was written for). Kernels using pointer chasing or
 * scalar-computed subscripts need a real memory initializer
 * (Pipeline::initMemory) for the equivalence check.
 */
bool
syntheticallyEvaluable(const Kernel &kernel)
{
    bool ok = true;
    std::set<std::string> loop_vars;
    for (const auto &stmt : kernel.body) {
        ir::walkStmts(*stmt, [&](const Stmt &s) {
            if (s.kind == Stmt::Kind::PtrLoop ||
                s.kind == Stmt::Kind::While)
                ok = false;
            else if (s.kind == Stmt::Kind::Loop)
                loop_vars.insert(s.var);
        });
    }
    if (!ok)
        return false;
    std::set<std::string> sub_vars;
    for (const auto &stmt : kernel.body) {
        ir::walkExprs(*stmt, [&](const ir::Expr &e) {
            if (e.kind == ir::Expr::Kind::Deref)
                ok = false;
            if (e.kind == ir::Expr::Kind::ArrayRef)
                for (const auto &sub : e.children)
                    collectSubscriptVars(*sub, sub_vars);
        });
    }
    if (!ok)
        return false;
    for (const std::string &var : sub_vars)
        if (loop_vars.find(var) == loop_vars.end())
            return false;
    return true;
}

/**
 * Verification engine for the functional equivalence checks. The hot
 * engines lower the kernel and execute the KISA program on a kisa
 * execution tier; the IR-level Evaluator remains as the fallback for
 * kernels whose lowered single-core run could block (FlagWait lowers
 * to a real blocking wait, while the sequential IR semantics treat it
 * as a no-op).
 */
enum class VerifyEngine
{
    Evaluator,
    KisaInterp,
    KisaThreaded,
};

bool
kernelHasFlagWait(const Kernel &kernel)
{
    bool found = false;
    for (const auto &stmt : kernel.body)
        ir::walkStmts(*stmt, [&](const Stmt &s) {
            found |= s.kind == Stmt::Kind::FlagWait;
        });
    return found;
}

VerifyEngine
pickVerifyEngine(const Kernel &kernel)
{
    if (kernelHasFlagWait(kernel))
        return VerifyEngine::Evaluator;
    return kisa::execTierFromEnv() == kisa::ExecTier::Interp
               ? VerifyEngine::KisaInterp
               : VerifyEngine::KisaThreaded;
}

const char *
verifyEngineName(VerifyEngine engine)
{
    switch (engine) {
      case VerifyEngine::Evaluator: return "evaluator";
      case VerifyEngine::KisaInterp: return "interp";
      case VerifyEngine::KisaThreaded: return "threaded";
    }
    return "unknown";
}

/**
 * Clone, lay out (if needed), initialize memory, execute on
 * @p engine, digest. Pre- and post-pass checksums always come from
 * the same engine, so the equivalence property is engine-independent;
 * the engines themselves are cross-checked bit-for-bit by the
 * three-way tests (test_codegen, test_exec, test_workloads).
 */
std::uint64_t
evalChecksum(const Kernel &kernel,
             const std::function<void(kisa::MemoryImage &)> &init,
             VerifyEngine engine)
{
    Kernel clone = kernel.clone();
    bool laid_out = false;
    for (const auto &array : clone.arrays)
        laid_out |= array.base != 0;
    if (!laid_out && !clone.arrays.empty())
        ir::layoutArrays(clone);
    kisa::MemoryImage mem;
    ir::initKernelMemory(clone, mem, init);
    if (engine == VerifyEngine::Evaluator) {
        ir::Evaluator eval(clone, mem);
        // Single-processor semantics: partitioned kernels compute
        // their block from these (and would divide by zero unseeded).
        eval.setVar("__procid", 0);
        eval.setVar("__nprocs", 1);
        eval.run();
    } else {
        // Default CodegenOptions bake __procid=0/__nprocs=1, matching
        // the evaluator seeding above.
        const kisa::Program program = codegen::lower(clone);
        kisa::execute(program, mem, 1ull << 32,
                      engine == VerifyEngine::KisaInterp
                          ? kisa::ExecTier::Interp
                          : kisa::ExecTier::Threaded);
    }
    return ir::checksumArrays(clone, mem);
}

/** Record or dump-and-panic a verification failure. */
void
failVerify(VerifyMode mode, const std::string &pass,
           const std::string &what, const Kernel &kernel,
           PipelineReport &report)
{
    if (mode == VerifyMode::Record) {
        report.verifyFailures.push_back({pass, what});
        return;
    }
    const char *dump_env = std::getenv("MPC_VERIFY_DUMP");
    const std::string path =
        dump_env != nullptr && *dump_env != '\0' ? dump_env
                                                 : "verify_ir_dump.txt";
    std::ofstream out(path);
    out << "pass: " << pass << "\n"
        << "error: " << what << "\n\n"
        << kernel.toString();
    out.close();
    panic("pipeline verification failed after pass '%s': %s "
          "(IR dumped to %s)",
          pass.c_str(), what.c_str(), path.c_str());
}

} // namespace

bool
functionallyCheckable(const ir::Kernel &kernel, bool has_init)
{
    return has_init || syntheticallyEvaluable(kernel);
}

std::uint64_t
functionalChecksum(const ir::Kernel &kernel,
                   const std::function<void(kisa::MemoryImage &)> &init,
                   std::string *engine_name)
{
    const VerifyEngine engine = pickVerifyEngine(kernel);
    if (engine_name != nullptr)
        *engine_name = verifyEngineName(engine);
    return evalChecksum(kernel, init, engine);
}

// --- execution -------------------------------------------------------

PipelineReport
Pipeline::run(ir::Kernel &kernel, const DriverParams &params) const
{
    ir::assignRefIds(kernel);
    PipelineReport report;
    // Per-pass knobs overwrite their DriverParams fields on a copy, so
    // a knob-carrying spec fully describes the variant being run.
    DriverParams tuned = params;
    applyKnobs(tuned);
    PassContext ctx(tuned, toAnalysisParams(tuned));
    ctx.scheduledPasses = passNames();

    VerifyMode mode = verifyMode;
    if (mode == VerifyMode::FromEnv) {
        const char *env = std::getenv("MPC_VERIFY_PASSES");
        mode = env != nullptr && std::string(env) == "1"
                   ? VerifyMode::Panic
                   : VerifyMode::Off;
    }

    bool can_eval = false;
    std::uint64_t ref_checksum = 0;
    // The engine is picked once per run from the input kernel, so the
    // reference and every post-pass checksum come from the same
    // backend regardless of when MPC_EXEC_TIER is read elsewhere.
    VerifyEngine engine = VerifyEngine::Evaluator;
    if (mode != VerifyMode::Off) {
        engine = pickVerifyEngine(kernel);
        report.verifyTier = verifyEngineName(engine);
        const std::string err = ir::verify(kernel);
        if (!err.empty())
            failVerify(mode, "(input)", err, kernel, report);
        if (report.verifyFailures.empty()) {
            can_eval = static_cast<bool>(initMemory) ||
                       syntheticallyEvaluable(kernel);
            if (can_eval) {
                const auto v0 = std::chrono::steady_clock::now();
                ref_checksum = evalChecksum(kernel, initMemory, engine);
                report.refChecksumMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - v0)
                        .count();
            }
        }
    }

    if (report.verifyFailures.empty()) {
        for (Pass *pass : passes_) {
            PassReport pr;
            pr.pass = pass->name();
            const auto t0 = std::chrono::steady_clock::now();
            if (!pass->applicable(kernel, ctx))
                pr.skipped = true;
            else
                pass->run(kernel, ctx, pr);
            pr.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const bool skipped = pr.skipped;
            report.passes.push_back(std::move(pr));
            if (afterPass)
                afterPass(pass->name(), kernel);
            if (mode != VerifyMode::Off && !skipped) {
                const auto v0 = std::chrono::steady_clock::now();
                // Transformations may materialize new references
                // (e.g. the pointer-chase jam's chain loads) that
                // only get refIds on the next assignRefIds, so the
                // post-pass check is structural only on that front.
                ir::VerifyOptions opts;
                opts.requireRefIds = false;
                std::string err = ir::verify(kernel, opts);
                if (err.empty() && can_eval) {
                    const std::uint64_t sum =
                        evalChecksum(kernel, initMemory, engine);
                    if (sum != ref_checksum)
                        err = strprintf(
                            "functional equivalence check failed: "
                            "array checksum %016llx != pre-pipeline "
                            "%016llx",
                            static_cast<unsigned long long>(sum),
                            static_cast<unsigned long long>(
                                ref_checksum));
                }
                report.passes.back().verifyMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - v0)
                        .count();
                if (!err.empty()) {
                    failVerify(mode, pass->name(), err, kernel, report);
                    break;  // Record mode: abort remaining passes.
                }
            }
        }
    }

    if (report.verifyFailures.empty()) {
        // Finalize: post-transformation f and the leading refIds of
        // every row's final nest, in row order (exactly what the old
        // driver computed at the end of each episode).
        if (!ctx.rows.empty()) {
            auto live = liveNests(kernel);
            for (size_t k = 0; k < ctx.rows.size() && k < live.size();
                 ++k) {
                const analysis::LoopAnalysis final_la =
                    analysis::analyzeInnerLoop(kernel, live[k], ctx.ap);
                ctx.rows[k].report.fAfter = final_la.f;
                for (const auto &ref : final_la.refs)
                    if (ref.leading && ref.refId >= 0)
                        report.leadingRefIds.push_back(ref.refId);
            }
        }
        for (auto &row : ctx.rows)
            report.nests.push_back(std::move(row.report));

        // Clear markers so the pipeline can be re-run if desired.
        for (auto &stmt : kernel.body)
            ir::walkStmts(*stmt, [](Stmt &s) { s.mark = 0; });
    }
    return report;
}

} // namespace mpc::transform
