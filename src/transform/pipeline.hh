/**
 * @file
 * The pass pipeline: a named, data-driven sequence of transformation
 * passes (pass.hh) with optional per-pass verification.
 *
 * Pipelines are specified as comma-separated pass names resolved
 * through the string-keyed PassRegistry ("fuse,cluster,prefetch"), so
 * the harness, the benches, `mpclust --pipeline=<spec>`, and the
 * mpctune autotuner all select transformation variants through one
 * factory. The default spec reproduces the old applyClustering driver
 * exactly.
 *
 * Knob grammar: a pass name may carry per-pass knobs in parentheses,
 * e.g. "cluster(maxDegree=8),prefetch(dist=4)". Each knob maps onto
 * the DriverParams field the pass reads — cluster(maxDegree) caps the
 * unroll-and-jam binary search (DriverParams::maxUnroll),
 * inner-unroll(factor) caps the window-constraint unroll
 * (maxInnerUnroll), prefetch(dist) sets the prefetch distance in lines
 * (prefetchDistanceLines). Knobs are applied to a copy of the caller's
 * DriverParams at the start of run(), so a knob-carrying spec is a
 * self-contained description of a transformation variant — exactly
 * what the autotuner searches over and hashes into its cache keys.
 * Whitespace around names, knobs, and values is tolerated; duplicate
 * pass names, empty entries, unknown knobs, and non-positive values
 * are rejected with the offending token named.
 *
 * Verification (MPC_VERIFY_PASSES=1, or VerifyMode set explicitly):
 * after every pass the pipeline runs the ir::verify() structural
 * checker and — when the kernel is evaluable — a functional
 * equivalence check against the pre-pipeline kernel: the kernel is
 * cloned, memory is initialized (through Pipeline::initMemory or a
 * deterministic synthetic fill), the kernel is lowered and executed
 * on the KISA tier selected by MPC_EXEC_TIER (kernels containing
 * FlagWait fall back to the IR evaluator, whose sequential semantics
 * treat waits as no-ops), and the array checksum must match the
 * pre-pipeline checksum — both sides always from the same engine. Since
 * every pass must be semantics-preserving, comparing each post-pass
 * checksum to the pipeline-input checksum names the first failing
 * pass. On failure the offending IR is dumped (MPC_VERIFY_DUMP, or
 * verify_ir_dump.txt) and the run panics naming the pass.
 */

#ifndef MPC_TRANSFORM_PIPELINE_HH
#define MPC_TRANSFORM_PIPELINE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kisa/memimage.hh"
#include "transform/pass.hh"

namespace mpc::transform
{

/**
 * Global name -> pass table. Passes register once (at first use) and
 * live for the process; Pipeline holds borrowed pointers into it.
 */
class PassRegistry
{
  public:
    static PassRegistry &instance();

    void add(std::unique_ptr<Pass> pass);
    bool has(const std::string &name) const;
    Pass *find(const std::string &name) const;
    std::vector<std::string> names() const;

    /**
     * The registered pass's name() with process-lifetime storage —
     * safe to hand to the obs tracer, which keeps event-name pointers.
     */
    const char *stableName(const std::string &name) const;

  private:
    std::map<std::string, std::unique_ptr<Pass>> passes_;
};

/** Registers the built-in clustering passes (defined in passes.cc). */
void registerBuiltinPasses(PassRegistry &registry);

/** Post-pass checking policy. */
enum class VerifyMode
{
    FromEnv,    ///< MPC_VERIFY_PASSES=1 ? Panic : Off
    Off,
    Panic,      ///< dump the offending IR and panic naming the pass
    Record,     ///< record the failure, abort remaining passes
};

/** One parsed per-pass knob: pass(name=value). */
struct PassKnob
{
    std::string pass;
    std::string name;
    int value = 0;
};

class Pipeline
{
  public:
    /**
     * Resolve a comma-separated pass spec ("fuse,cluster,prefetch",
     * optionally with per-pass knobs: "cluster(maxDegree=8)") against
     * the registry. Rejects an empty spec, unknown names, duplicates,
     * and malformed or unknown knobs, naming the offending token.
     * @return false with @p error set on failure.
     */
    static bool parse(const std::string &spec, Pipeline &out,
                      std::string &error);

    std::vector<std::string> passNames() const;

    /** The parsed knobs, in spec order. */
    const std::vector<PassKnob> &knobs() const { return knobs_; }

    /**
     * Canonical spec string: pass names joined by commas, knobs
     * rendered as name(knob=value,...) with no whitespace. parse() of
     * the result reproduces this pipeline; autotune cache keys hash it.
     */
    std::string spec() const;

    /** Overwrite the DriverParams fields the parsed knobs name (the
     *  same application run() performs on its own copy). */
    void applyKnobs(DriverParams &params) const;

    /**
     * Run the passes in order; @return the accumulated report.
     * Assigns refIds first and clears loop marks afterwards, like the
     * old driver.
     */
    PipelineReport run(ir::Kernel &kernel,
                       const DriverParams &params) const;

    VerifyMode verifyMode = VerifyMode::FromEnv;

    /**
     * Memory initializer for the equivalence check (e.g. the
     * workload's real init). When absent, a deterministic synthetic
     * fill is used for kernels simple enough to evaluate blindly;
     * other kernels get the structural check only.
     */
    std::function<void(kisa::MemoryImage &)> initMemory;

    /** Called after every pass (e.g. mpclust --dump-ir). */
    std::function<void(const std::string &pass, const ir::Kernel &)>
        afterPass;

  private:
    std::vector<Pass *> passes_;
    std::vector<PassKnob> knobs_;
};

/** The spec reproducing the old applyClustering driver. */
std::string defaultPipelineSpec();

/**
 * The default spec with the passes gated by the old DriverParams
 * enable* flags removed when disabled (how applyClustering honors
 * them), carrying knobs for any knob-backed field that differs from
 * its default (e.g. "cluster(maxDegree=8)" when maxUnroll is 8).
 * parse() of the result followed by applyKnobs() reproduces the gated
 * and knob-backed fields of @p params — the round-trip the autotuner
 * and its cache keys rely on.
 */
std::string pipelineSpecFromParams(const DriverParams &params);

/**
 * Can the functional-equivalence checksum be computed for @p kernel?
 * True when a real memory initializer is supplied (@p has_init) or the
 * kernel is simple enough for the synthetic fill (counted loops,
 * loop-index subscripts only).
 */
bool functionallyCheckable(const ir::Kernel &kernel, bool has_init);

/**
 * Execute @p kernel functionally and digest its array contents: the
 * same clone + layout + init + run + FNV checksum the per-pass
 * verifier uses, on the engine MPC_EXEC_TIER selects (kernels with
 * FlagWait fall back to the IR evaluator). Two kernels produced by
 * semantics-preserving transformations of one another digest equal.
 * @p engine_name, when non-null, receives "interp" | "threaded" |
 * "evaluator".
 */
std::uint64_t functionalChecksum(
    const ir::Kernel &kernel,
    const std::function<void(kisa::MemoryImage &)> &init,
    std::string *engine_name = nullptr);

} // namespace mpc::transform

#endif // MPC_TRANSFORM_PIPELINE_HH
