#include "transform/legality.hh"

#include <optional>
#include <vector>

#include "analysis/affine.hh"
#include "common/logging.hh"

namespace mpc::transform
{

using analysis::affineOf;
using ir::Expr;
using ir::Stmt;

namespace
{

struct RefSite
{
    const Expr *expr;
    bool isWrite;
};

void
collectSites(const Stmt &stmt, std::vector<RefSite> &out)
{
    // Walk all expressions, tagging assignment-target roots as writes.
    std::function<void(const Stmt &)> walk = [&](const Stmt &s) {
        auto collect = [&out](const Expr &root, bool root_is_write) {
            std::function<void(const Expr &, bool)> rec =
                [&](const Expr &e, bool is_root) {
                    if (e.isMemRef())
                        out.push_back({&e, is_root && root_is_write});
                    for (const auto &c : e.children)
                        rec(*c, false);
                };
            rec(root, true);
        };
        if (s.kind == Stmt::Kind::Assign) {
            collect(*s.rhs, false);
            collect(*s.lhs, true);
        } else if (s.kind == Stmt::Kind::PtrLoop && s.rhs) {
            collect(*s.rhs, false);
        }
        for (const auto &child : s.body)
            walk(*child);
    };
    out.clear();
    walk(stmt);
}

/**
 * Direction of the dependence between two same-array refs w.r.t. loop
 * variable @p var: returns '=', '<', '>', '*' (unknown), or '0' for
 * provably independent.
 */
char
directionFor(const Expr &r1, const Expr &r2, const std::string &var)
{
    if (r1.kind != Expr::Kind::ArrayRef || r2.kind != Expr::Kind::ArrayRef)
        return '*';
    if (r1.array != r2.array)
        return '0';
    // Subscript-by-subscript.
    char dir = '=';
    for (size_t d = 0; d < r1.children.size(); ++d) {
        auto f1 = affineOf(*r1.children[d]);
        auto f2 = affineOf(*r2.children[d]);
        if (!f1 || !f2)
            return '*';
        if (!f1->sameShape(*f2))
            return '*';
        const std::int64_t coef = f1->coef(var);
        const std::int64_t delta = f2->c - f1->c;
        if (coef == 0) {
            // This dimension does not constrain var; an unequal
            // constant here means the refs never overlap at all.
            bool other_vars = false;
            for (const auto &[v, k] : f1->coefs)
                if (k != 0 && v != var)
                    other_vars = true;
            if (delta != 0 && !other_vars)
                return '0';
            continue;
        }
        if (delta % coef != 0)
            return '0';     // no integer solution: independent
        const std::int64_t dist = delta / coef;
        const char this_dir = dist == 0 ? '=' : dist > 0 ? '<' : '>';
        if (dir == '=')
            dir = this_dir;
        else if (this_dir != '=' && this_dir != dir)
            return '0';     // contradictory constraints: independent
    }
    return dir;
}

/** True if a (<, >)-direction dependence may exist for (outer, inner). */
bool
hasInterchangePreventingDep(const Stmt &outer, const Stmt &inner)
{
    std::vector<RefSite> sites;
    collectSites(outer, sites);
    for (size_t a = 0; a < sites.size(); ++a) {
        for (size_t b = 0; b < sites.size(); ++b) {
            if (a == b || (!sites[a].isWrite && !sites[b].isWrite))
                continue;
            const Expr &r1 = *sites[a].expr;
            const Expr &r2 = *sites[b].expr;
            if (r1.kind != Expr::Kind::ArrayRef ||
                r2.kind != Expr::Kind::ArrayRef) {
                // Pointer refs: unanalyzable; be conservative.
                if (r1.kind == Expr::Kind::Deref ||
                    r2.kind == Expr::Kind::Deref)
                    return true;
                continue;
            }
            if (r1.array != r2.array)
                continue;
            const char od = directionFor(r1, r2, outer.var);
            if (od == '0')
                continue;
            const char id = directionFor(r1, r2, inner.var);
            if (id == '0')
                continue;
            const bool outer_lt = od == '<' || od == '*';
            const bool inner_gt = id == '>' || id == '*';
            if (outer_lt && inner_gt)
                return true;
        }
    }
    return false;
}

/** The single nested loop of @p outer, or null. */
const Stmt *
soleInnerLoop(const Stmt &outer)
{
    const Stmt *inner = nullptr;
    for (const auto &child : outer.body) {
        if (child->kind == Stmt::Kind::Loop ||
            child->kind == Stmt::Kind::PtrLoop ||
            child->kind == Stmt::Kind::While) {
            if (inner != nullptr)
                return nullptr;
            inner = child.get();
        }
    }
    return inner;
}

} // namespace

bool
canUnrollAndJam(const ir::Stmt &outer)
{
    if (outer.kind != Stmt::Kind::Loop)
        return false;
    if (outer.parallel)
        return true;
    const Stmt *inner = soleInnerLoop(outer);
    if (inner == nullptr)
        return false;
    return !hasInterchangePreventingDep(outer, *inner);
}

bool
canInterchange(const ir::Stmt &outer)
{
    if (outer.kind != Stmt::Kind::Loop)
        return false;
    const Stmt *inner = soleInnerLoop(outer);
    if (inner == nullptr || inner->kind != Stmt::Kind::Loop)
        return false;
    // The loops must be the only statements at their levels and their
    // bounds must be independent of each other's variables.
    if (outer.body.size() != 1)
        return false;
    auto uses_var = [](const ir::Expr &e, const std::string &v) {
        bool found = false;
        std::function<void(const ir::Expr &)> rec =
            [&](const ir::Expr &x) {
                if (x.kind == Expr::Kind::VarRef && x.var == v)
                    found = true;
                for (const auto &c : x.children)
                    rec(*c);
            };
        rec(e);
        return found;
    };
    if (uses_var(*inner->lo, outer.var) || uses_var(*inner->hi, outer.var))
        return false;
    if (outer.parallel || inner->parallel)
        return true;
    return !hasInterchangePreventingDep(outer, *inner);
}

} // namespace mpc::transform
