#include "mem/hierarchy.hh"

#include "common/logging.hh"

namespace mpc::mem
{

MemHierarchy::MemHierarchy(EventQueue &eq, const Config &cfg)
    : singleLevel_(cfg.singleLevel)
{
    if (singleLevel_) {
        // One write-back, write-allocate level (PA-8000-style).
        l1_ = std::make_unique<Cache>(eq, cfg.l1, cfg.coherent, true);
        lowest_ = l1_.get();
    } else {
        l1_ = std::make_unique<Cache>(eq, cfg.l1, false, false);
        l2Cache_ = std::make_unique<Cache>(eq, cfg.l2, cfg.coherent, true);
        l1Below_ = std::make_unique<L1Below>(*l1_, *l2Cache_);
        l1_->setDownstream(l1Below_.get());
        // Inclusion: L2 evictions/invalidations purge the L1 copy.
        l2Cache_->setBackInvalidate(
            [this](Addr line) { l1_->backInvalidateLine(line); });
        lowest_ = l2Cache_.get();
    }
}

void
MemHierarchy::setDownstream(DownstreamPort *down)
{
    lowest_->setDownstream(down);
}

Cache::Status
MemHierarchy::load(Addr addr, std::uint32_t ref_id, CompletionFn done,
                   AccessInfo *info)
{
    if (touchRecord_ && EventQueue::deferTarget() != nullptr)
        touched_.push_back(addr);
    return l1_->loadAccess(addr, ref_id, std::move(done), info);
}

Cache::Status
MemHierarchy::store(Addr addr, std::uint32_t ref_id, CompletionFn done)
{
    if (touchRecord_ && EventQueue::deferTarget() != nullptr)
        touched_.push_back(addr);
    // Write-through around the L1: stores are performed at the L2 (the
    // write-allocate level whose MSHRs reads and writes share). In the
    // single-level configuration the same cache serves both.
    return lowest_->writeAccess(addr, ref_id, std::move(done));
}

void
MemHierarchy::finalizeStats(Tick now)
{
    l1_->finalizeStats(now);
    if (l2Cache_)
        l2Cache_->finalizeStats(now);
}

} // namespace mpc::mem
