/**
 * @file
 * Global discrete-event queue used by the memory system. The processor
 * cores are cycle-stepped; memory-side latencies (cache fills, bus and
 * bank occupancy) are modeled as events on this queue, drained at the
 * start of every core cycle.
 */

#ifndef MPC_MEM_EVENTQ_HH
#define MPC_MEM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mpc::mem
{

/**
 * Time-ordered event queue. Events scheduled for the same tick run in
 * scheduling order (stable), keeping simulation deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time (last tick run). */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Callback fn)
    {
        MPC_ASSERT(when >= now_, "event scheduled in the past");
        events_.push(Event{when, seq_++, std::move(fn)});
    }

    /** Schedule @p fn @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True if no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Tick of the earliest pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        return events_.empty() ? maxTick : events_.top().when;
    }

    /**
     * Run all events with tick <= @p until, then set now to @p until.
     * Events may schedule further events (also run if within range).
     */
    void
    advanceTo(Tick until)
    {
        MPC_ASSERT(until >= now_, "advanceTo into the past");
        while (!events_.empty() && events_.top().when <= until) {
            // Copy out before pop so the callback can schedule new events.
            Event ev = events_.top();
            events_.pop();
            now_ = ev.when;
            ev.fn();
        }
        now_ = until;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Event &other) const
        {
            return when != other.when ? when > other.when : seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * A serially reusable resource (bus, memory bank, cache port group)
 * modeled as a busy-until timeline: a reservation at time t for d ticks
 * is granted at max(t, nextFree) and pushes nextFree to grant + d.
 */
class TimelineResource
{
  public:
    /** Reserve the resource for @p duration ticks no earlier than
     *  @p earliest. @return the tick the reservation starts. */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        const Tick start = std::max(earliest, nextFree_);
        nextFree_ = start + duration;
        busyTicks_ += duration;
        return start;
    }

    /** Next tick at which the resource is free. */
    Tick nextFree() const { return nextFree_; }

    /** Total ticks of reserved (busy) time, for utilization stats. */
    Tick busyTicks() const { return busyTicks_; }

  private:
    Tick nextFree_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace mpc::mem

#endif // MPC_MEM_EVENTQ_HH
