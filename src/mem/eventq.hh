/**
 * @file
 * Global discrete-event queue used by the memory system. The processor
 * cores are cycle-stepped; memory-side latencies (cache fills, bus and
 * bank occupancy) are modeled as events on this queue, drained at the
 * start of every core cycle.
 *
 * The queue is allocation-free on the hot path: events live in pooled
 * nodes (recycled through a free list) whose callbacks are stored in a
 * small inline buffer, and near-future events — the short fixed
 * latencies that dominate (hit/fill latencies, bus and bank occupancy,
 * hop delays) — go into a calendar wheel of per-tick buckets. Far-future
 * events fall back to a binary min-heap of pooled nodes and are run
 * straight from the heap at their tick. Events scheduled for the same
 * tick run in scheduling order (stable), keeping simulation
 * deterministic: an event is wheel-resident only if its tick was within
 * the wheel horizon when scheduled, and since simulated time is
 * monotonic, every heap event for a tick was scheduled before (has a
 * lower sequence number than) every wheel event for that tick.
 */

#ifndef MPC_MEM_EVENTQ_HH
#define MPC_MEM_EVENTQ_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "obs/registry.hh"

namespace mpc::mem
{

/**
 * Time-ordered event queue; see the file comment for the design.
 */
class EventQueue
{
  public:
    /** Boxed callback type used when a callable exceeds the inline
     *  buffer (and accepted directly from legacy callers). */
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        for (auto &slot : wheel_) {
            for (Node *n = slot.head; n != nullptr; n = n->next)
                if (n->destroy != nullptr)
                    n->destroy(n->storage);
        }
        for (Node *n : farHeap_)
            if (n->destroy != nullptr)
                n->destroy(n->storage);
    }

    /** Current simulated time (last tick run). */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    template <typename F>
    void
    schedule(Tick when, F fn)
    {
        MPC_ASSERT(when >= now_, "event scheduled in the past");
        Node *n = allocNode();
        n->when = when;
        n->seq = seq_++;
        n->next = nullptr;
        if constexpr (sizeof(F) <= inlineBytes &&
                      alignof(F) <= alignof(std::max_align_t)) {
            new (n->storage) F(std::move(fn));
            n->run = &runAs<F>;
            n->destroy = std::is_trivially_destructible_v<F>
                             ? nullptr
                             : &destroyAs<F>;
        } else {
            // Oversized capture: box it (the one heap-allocating path).
            new (n->storage) Callback(std::move(fn));
            n->run = &runAs<Callback>;
            n->destroy = &destroyAs<Callback>;
        }
        insert(n);
    }

    /** Schedule @p fn @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True if no events are pending. */
    bool empty() const { return wheelCount_ == 0 && farHeap_.empty(); }

    /** Pending events across the wheel and the far heap. */
    std::uint64_t
    pendingEvents() const
    {
        return static_cast<std::uint64_t>(wheelCount_) +
               static_cast<std::uint64_t>(farHeap_.size());
    }

    /** Publish the queue-depth gauge on the telemetry registry (epoch
     *  Sampler); sampled at epoch boundaries only. */
    void
    registerMetrics(obs::MetricsRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addGauge(prefix + ".pending",
                     [this] { return pendingEvents(); });
    }

    /** Tick of the earliest pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        Tick next = farHeap_.empty() ? maxTick : farHeap_.front()->when;
        const Tick wheel_next = wheelNextTick();
        return wheel_next < next ? wheel_next : next;
    }

    /**
     * Run all events with tick <= @p until, then set now to @p until.
     * Events may schedule further events (also run if within range).
     */
    void
    advanceTo(Tick until)
    {
        MPC_ASSERT(until >= now_, "advanceTo into the past");
        for (;;) {
            const Tick t = nextEventTick();
            if (t > until)
                break;
            now_ = t;
            runTick(t);
        }
        now_ = until;
    }

  private:
    /** Inline callback buffer: sized for the largest hot-path capture
     *  (a boxed CompletionFn plus a tick) with headroom. */
    static constexpr std::size_t inlineBytes = 48;
    static constexpr unsigned wheelSlots = 256;   ///< wheel horizon
    static constexpr unsigned wheelMask = wheelSlots - 1;
    static constexpr unsigned wheelWords = wheelSlots / 64;
    static constexpr int chunkNodes = 128;

    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Node *next = nullptr;
        void (*run)(void *) = nullptr;
        void (*destroy)(void *) = nullptr;
        alignas(std::max_align_t) unsigned char storage[inlineBytes];
    };

    struct Slot
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    template <typename F>
    static void
    runAs(void *p)
    {
        (*static_cast<F *>(p))();
    }

    template <typename F>
    static void
    destroyAs(void *p)
    {
        static_cast<F *>(p)->~F();
    }

    /** Min-heap order for far-future nodes: (when, seq) ascending. */
    static bool
    farLater(const Node *a, const Node *b)
    {
        return a->when != b->when ? a->when > b->when : a->seq > b->seq;
    }

    Node *
    allocNode()
    {
        if (freeList_ == nullptr) {
            chunks_.push_back(std::make_unique<Node[]>(chunkNodes));
            Node *chunk = chunks_.back().get();
            for (int i = 0; i < chunkNodes; ++i) {
                chunk[i].next = freeList_;
                freeList_ = &chunk[i];
            }
        }
        Node *n = freeList_;
        freeList_ = n->next;
        return n;
    }

    void
    freeNode(Node *n)
    {
        n->next = freeList_;
        freeList_ = n;
    }

    void
    insert(Node *n)
    {
        if (n->when < now_ + wheelSlots) {
            Slot &slot = wheel_[n->when & wheelMask];
            if (slot.head == nullptr) {
                slot.head = slot.tail = n;
                occ_[(n->when & wheelMask) >> 6] |=
                    std::uint64_t(1) << (n->when & 63);
            } else {
                slot.tail->next = n;
                slot.tail = n;
            }
            ++wheelCount_;
        } else {
            farHeap_.push_back(n);
            std::push_heap(farHeap_.begin(), farHeap_.end(), &farLater);
        }
    }

    /** Earliest tick with a wheel-resident event (maxTick if none).
     *  Slots are scanned in circular order from now, which is time
     *  order because every wheel event lies within one horizon. */
    Tick
    wheelNextTick() const
    {
        if (wheelCount_ == 0)
            return maxTick;
        const unsigned start = static_cast<unsigned>(now_) & wheelMask;
        const unsigned sw = start >> 6;
        const unsigned sb = start & 63;
        for (unsigned k = 0; k <= wheelWords; ++k) {
            const unsigned w = (sw + k) % wheelWords;
            std::uint64_t bits = occ_[w];
            if (k == 0)
                bits &= ~std::uint64_t(0) << sb;
            else if (k == wheelWords)
                bits &= sb != 0 ? ~std::uint64_t(0) >> (64 - sb) : 0;
            if (bits != 0) {
                const unsigned s =
                    (w << 6) + static_cast<unsigned>(std::countr_zero(bits));
                return wheel_[s].head->when;
            }
        }
        return maxTick;
    }

    /** Run every event at tick @p t: far-heap events first (strictly
     *  lower sequence numbers; see file comment), then the wheel bucket
     *  in FIFO order. Callbacks may append same-tick events. */
    void
    runTick(Tick t)
    {
        while (!farHeap_.empty() && farHeap_.front()->when == t) {
            std::pop_heap(farHeap_.begin(), farHeap_.end(), &farLater);
            Node *n = farHeap_.back();
            farHeap_.pop_back();
            exec(n);
        }
        Slot &slot = wheel_[t & wheelMask];
        while (slot.head != nullptr) {
            Node *n = slot.head;
            slot.head = n->next;
            if (slot.head == nullptr) {
                slot.tail = nullptr;
                occ_[(t & wheelMask) >> 6] &=
                    ~(std::uint64_t(1) << (t & 63));
            }
            --wheelCount_;
            exec(n);
        }
    }

    void
    exec(Node *n)
    {
        n->run(n->storage);
        if (n->destroy != nullptr)
            n->destroy(n->storage);
        freeNode(n);
    }

    Slot wheel_[wheelSlots];
    std::uint64_t occ_[wheelWords] = {};
    unsigned wheelCount_ = 0;
    std::vector<Node *> farHeap_;

    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *freeList_ = nullptr;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * The previous heap-backed queue, retained as the reference oracle for
 * the wheel/heap equivalence tests (tests/test_mem.cc). Same contract
 * as EventQueue: time order, same-tick FIFO.
 */
class HeapEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback fn)
    {
        MPC_ASSERT(when >= now_, "event scheduled in the past");
        events_.push(Event{when, seq_++, std::move(fn)});
    }

    void scheduleIn(Tick delta, Callback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    bool empty() const { return events_.empty(); }

    Tick
    nextEventTick() const
    {
        return events_.empty() ? maxTick : events_.top().when;
    }

    void
    advanceTo(Tick until)
    {
        MPC_ASSERT(until >= now_, "advanceTo into the past");
        while (!events_.empty() && events_.top().when <= until) {
            // Move out before pop so the callback can schedule new
            // events without copying the std::function; top() is
            // const-ref only because the heap no longer needs the
            // popped element's order, so the cast is safe.
            Event ev = std::move(const_cast<Event &>(events_.top()));
            events_.pop();
            now_ = ev.when;
            ev.fn();
        }
        now_ = until;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Event &other) const
        {
            return when != other.when ? when > other.when : seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * A serially reusable resource (bus, memory bank, cache port group)
 * modeled as a busy-until timeline: a reservation at time t for d ticks
 * is granted at max(t, nextFree) and pushes nextFree to grant + d.
 */
class TimelineResource
{
  public:
    /** Reserve the resource for @p duration ticks no earlier than
     *  @p earliest. @return the tick the reservation starts. */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        const Tick start = std::max(earliest, nextFree_);
        nextFree_ = start + duration;
        busyTicks_ += duration;
        return start;
    }

    /** Next tick at which the resource is free. */
    Tick nextFree() const { return nextFree_; }

    /** Total ticks of reserved (busy) time, for utilization stats. */
    Tick busyTicks() const { return busyTicks_; }

  private:
    Tick nextFree_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace mpc::mem

#endif // MPC_MEM_EVENTQ_HH
