/**
 * @file
 * Global discrete-event queue used by the memory system. The processor
 * cores are cycle-stepped; memory-side latencies (cache fills, bus and
 * bank occupancy) are modeled as events on this queue, drained at the
 * start of every core cycle.
 *
 * The queue is allocation-free on the hot path: events live in pooled
 * nodes (recycled through a free list) whose callbacks are stored in a
 * small inline buffer, and near-future events — the short fixed
 * latencies that dominate (hit/fill latencies, bus and bank occupancy,
 * hop delays) — go into a calendar wheel of per-tick buckets. Far-future
 * events fall back to a binary min-heap of pooled nodes and are run
 * straight from the heap at their tick. Events scheduled for the same
 * tick run in scheduling order (stable), keeping simulation
 * deterministic: an event is wheel-resident only if its tick was within
 * the wheel horizon when scheduled, and since simulated time is
 * monotonic, every heap event for a tick was scheduled before (has a
 * lower sequence number than) every wheel event for that tick.
 *
 * Sharded stepping (System::run with SystemConfig::shards > 1) adds a
 * deferred-capture lane: while a shard worker ticks its cores, every
 * schedule() lands in the worker's DeferBuffer — a bounded SPSC
 * mailbox — instead of the shared wheel, and coherence-fabric calls are
 * captured alongside as DeferredFabricOp records in the same stream.
 * At the barrier after the parallel phase, thread 0 replays the
 * buffers in shard (= node) order, assigning global sequence numbers
 * exactly as the single-thread stepper would have and executing fabric
 * ops against the shared directory. The global tie-break order is
 * therefore (tick, node id, per-node capture order), and the queue's
 * own contents never need cross-thread synchronization.
 */

#ifndef MPC_MEM_EVENTQ_HH
#define MPC_MEM_EVENTQ_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/continuation.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "obs/registry.hh"

namespace mpc::mem
{

/**
 * A coherence-fabric call captured during a shard's parallel phase and
 * replayed serially at the barrier (see file comment). The fill
 * continuation travels by move; it is created on the shard thread and
 * invoked/destroyed on the replaying thread, which the continuation
 * pool's immortal chunk store makes safe.
 */
struct DeferredFabricOp
{
    Addr lineAddr = 0;
    std::int32_t node = 0;
    bool exclusive = false;
    bool writeback = false;
    Continuation fill;
};

/**
 * Time-ordered event queue; see the file comment for the design.
 */
class EventQueue
{
  public:
    /** Boxed callback type used when a callable exceeds the inline
     *  buffer (and accepted directly from legacy callers). */
    using Callback = std::function<void()>;

    class DeferBuffer;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        for (auto &slot : wheel_) {
            for (Node *n = slot.head; n != nullptr; n = n->next)
                if (n->destroy != nullptr)
                    n->destroy(n->storage);
        }
        for (Node *n : farHeap_)
            if (n->destroy != nullptr)
                n->destroy(n->storage);
    }

    /** Current simulated time (last tick run). */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). During a
     *  sharded parallel phase (deferTarget() set on this thread) the
     *  event is captured in the thread's mailbox instead and enters
     *  the queue at the barrier replay. */
    template <typename F>
    void
    schedule(Tick when, F fn)
    {
        MPC_ASSERT(when >= now_, "event scheduled in the past");
        if (DeferBuffer *d = tlsDefer_) {
            d->capture(when, std::move(fn));
            return;
        }
        Node *n = allocNode();
        n->when = when;
        n->seq = seq_++;
        n->next = nullptr;
        fillCallback(n, std::move(fn));
        insert(n);
    }

    /** Schedule @p fn @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** True if no events are pending. */
    bool empty() const { return wheelCount_ == 0 && farHeap_.empty(); }

    /** Pending events across the wheel and the far heap. */
    std::uint64_t
    pendingEvents() const
    {
        return static_cast<std::uint64_t>(wheelCount_) +
               static_cast<std::uint64_t>(farHeap_.size());
    }

    /** Publish the queue-depth gauge on the telemetry registry (epoch
     *  Sampler); sampled at epoch boundaries only. */
    void
    registerMetrics(obs::MetricsRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addGauge(prefix + ".pending",
                     [this] { return pendingEvents(); });
    }

    /** Tick of the earliest pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        Tick next = farHeap_.empty() ? maxTick : farHeap_.front()->when;
        const Tick wheel_next = wheelNextTick();
        return wheel_next < next ? wheel_next : next;
    }

    /**
     * Run all events with tick <= @p until, then set now to @p until.
     * Events may schedule further events (also run if within range).
     */
    void
    advanceTo(Tick until)
    {
        MPC_ASSERT(until >= now_, "advanceTo into the past");
        for (;;) {
            const Tick t = nextEventTick();
            if (t > until)
                break;
            now_ = t;
            runTick(t);
        }
        now_ = until;
    }

  private:
    /** Inline callback buffer: sized for the largest hot-path capture
     *  (a boxed CompletionFn plus a tick) with headroom. */
    static constexpr std::size_t inlineBytes = 48;
    static constexpr unsigned wheelSlots = 256;   ///< wheel horizon
    static constexpr unsigned wheelMask = wheelSlots - 1;
    static constexpr unsigned wheelWords = wheelSlots / 64;
    static constexpr int chunkNodes = 128;

    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Node *next = nullptr;
        void (*run)(void *) = nullptr;
        void (*destroy)(void *) = nullptr;
        /** 0 = queue-owned; k+1 = owned by registered defer pool k. */
        std::uint16_t owner = 0;
        /** kSchedule: storage is a callback. kFabric: storage is a
         *  DeferredFabricOp executed (not scheduled) at replay. */
        std::uint8_t kind = 0;
        alignas(std::max_align_t) unsigned char storage[inlineBytes];
    };

    static constexpr std::uint8_t kSchedule = 0;
    static constexpr std::uint8_t kFabric = 1;

    /** Placement-construct @p fn as node @p n's callback. */
    template <typename F>
    static void
    fillCallback(Node *n, F fn)
    {
        n->kind = kSchedule;
        if constexpr (sizeof(F) <= inlineBytes &&
                      alignof(F) <= alignof(std::max_align_t)) {
            new (n->storage) F(std::move(fn));
            n->run = &runAs<F>;
            n->destroy = std::is_trivially_destructible_v<F>
                             ? nullptr
                             : &destroyAs<F>;
        } else {
            // Oversized capture: box it (the one heap-allocating path).
            new (n->storage) Callback(std::move(fn));
            n->run = &runAs<Callback>;
            n->destroy = &destroyAs<Callback>;
        }
    }

    struct Slot
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    template <typename F>
    static void
    runAs(void *p)
    {
        (*static_cast<F *>(p))();
    }

    template <typename F>
    static void
    destroyAs(void *p)
    {
        static_cast<F *>(p)->~F();
    }

    /** Min-heap order for far-future nodes: (when, seq) ascending. */
    static bool
    farLater(const Node *a, const Node *b)
    {
        return a->when != b->when ? a->when > b->when : a->seq > b->seq;
    }

    Node *
    allocNode()
    {
        if (freeList_ == nullptr) {
            chunks_.push_back(std::make_unique<Node[]>(chunkNodes));
            Node *chunk = chunks_.back().get();
            for (int i = 0; i < chunkNodes; ++i) {
                chunk[i].next = freeList_;
                freeList_ = &chunk[i];
            }
        }
        Node *n = freeList_;
        freeList_ = n->next;
        return n;
    }

    void
    freeNode(Node *n)
    {
        if (n->owner != 0) {
            // Shard-mailbox node: recycle into its owning pool. Only
            // the replay/drain thread frees nodes, and the owning
            // shard allocates only between barriers, so the pool's
            // free list never sees concurrent access.
            deferPools_[n->owner - 1]->freeNode(n);
            return;
        }
        n->next = freeList_;
        freeList_ = n;
    }

    void
    insert(Node *n)
    {
        if (n->when < now_ + wheelSlots) {
            Slot &slot = wheel_[n->when & wheelMask];
            if (slot.head == nullptr) {
                slot.head = slot.tail = n;
                occ_[(n->when & wheelMask) >> 6] |=
                    std::uint64_t(1) << (n->when & 63);
            } else {
                slot.tail->next = n;
                slot.tail = n;
            }
            ++wheelCount_;
        } else {
            farHeap_.push_back(n);
            std::push_heap(farHeap_.begin(), farHeap_.end(), &farLater);
        }
    }

    /** Earliest tick with a wheel-resident event (maxTick if none).
     *  Slots are scanned in circular order from now, which is time
     *  order because every wheel event lies within one horizon. */
    Tick
    wheelNextTick() const
    {
        if (wheelCount_ == 0)
            return maxTick;
        const unsigned start = static_cast<unsigned>(now_) & wheelMask;
        const unsigned sw = start >> 6;
        const unsigned sb = start & 63;
        for (unsigned k = 0; k <= wheelWords; ++k) {
            const unsigned w = (sw + k) % wheelWords;
            std::uint64_t bits = occ_[w];
            if (k == 0)
                bits &= ~std::uint64_t(0) << sb;
            else if (k == wheelWords)
                bits &= sb != 0 ? ~std::uint64_t(0) >> (64 - sb) : 0;
            if (bits != 0) {
                const unsigned s =
                    (w << 6) + static_cast<unsigned>(std::countr_zero(bits));
                return wheel_[s].head->when;
            }
        }
        return maxTick;
    }

    /** Run every event at tick @p t: far-heap events first (strictly
     *  lower sequence numbers; see file comment), then the wheel bucket
     *  in FIFO order. Callbacks may append same-tick events. */
    void
    runTick(Tick t)
    {
        while (!farHeap_.empty() && farHeap_.front()->when == t) {
            std::pop_heap(farHeap_.begin(), farHeap_.end(), &farLater);
            Node *n = farHeap_.back();
            farHeap_.pop_back();
            exec(n);
        }
        Slot &slot = wheel_[t & wheelMask];
        while (slot.head != nullptr) {
            Node *n = slot.head;
            slot.head = n->next;
            if (slot.head == nullptr) {
                slot.tail = nullptr;
                occ_[(t & wheelMask) >> 6] &=
                    ~(std::uint64_t(1) << (t & 63));
            }
            --wheelCount_;
            exec(n);
        }
    }

    void
    exec(Node *n)
    {
        n->run(n->storage);
        if (n->destroy != nullptr)
            n->destroy(n->storage);
        freeNode(n);
    }

    Slot wheel_[wheelSlots];
    std::uint64_t occ_[wheelWords] = {};
    unsigned wheelCount_ = 0;
    std::vector<Node *> farHeap_;

    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *freeList_ = nullptr;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;

    std::vector<DeferBuffer *> deferPools_;

    static inline thread_local DeferBuffer *tlsDefer_ = nullptr;

  public:
    /**
     * Bounded SPSC mailbox of one shard: events and fabric calls
     * captured during the shard's parallel phase, in per-node program
     * order, replayed by thread 0 at the barrier. `capacity` nodes are
     * pre-allocated; exceeding it is not an error — the buffer grows a
     * spill chunk and counts the overflow, since captured work can only
     * drain at the next barrier (a hard-bounded ring would deadlock the
     * phase). The high-water mark and overflow count feed the
     * backpressure tests and let callers size the fast path.
     */
    class DeferBuffer
    {
      public:
        struct Counters
        {
            std::uint64_t captured = 0;   ///< events + fabric ops ever
            std::uint64_t fabricOps = 0;  ///< fabric calls among them
            std::uint64_t highWater = 0;  ///< max pending at a barrier
            std::uint64_t overflows = 0;  ///< captures past capacity
        };

        explicit DeferBuffer(std::size_t capacity = 4096)
            : capacity_(capacity == 0 ? 1 : capacity)
        {
            grow(capacity_);
        }

        DeferBuffer(const DeferBuffer &) = delete;
        DeferBuffer &operator=(const DeferBuffer &) = delete;

        ~DeferBuffer()
        {
            for (Node *n = head_; n != nullptr; n = n->next)
                if (n->destroy != nullptr)
                    n->destroy(n->storage);
        }

        /** Capture a schedule() made during the parallel phase. */
        template <typename F>
        void
        capture(Tick when, F fn)
        {
            Node *n = alloc();
            n->when = when;
            fillCallback(n, std::move(fn));
            append(n);
        }

        /** Capture a coherence-fabric call (executed at replay). */
        void
        captureFabric(DeferredFabricOp op)
        {
            static_assert(sizeof(DeferredFabricOp) <= inlineBytes &&
                              alignof(DeferredFabricOp) <=
                                  alignof(std::max_align_t),
                          "DeferredFabricOp must fit a node's inline "
                          "callback buffer");
            Node *n = alloc();
            n->when = 0;
            n->kind = kFabric;
            n->run = nullptr;
            n->destroy = &destroyAs<DeferredFabricOp>;
            new (n->storage) DeferredFabricOp(std::move(op));
            ++counters_.fabricOps;
            append(n);
        }

        bool pending() const { return head_ != nullptr; }
        const Counters &counters() const { return counters_; }

      private:
        friend class EventQueue;

        void
        grow(std::size_t nodes)
        {
            chunks_.push_back(std::make_unique<Node[]>(nodes));
            Node *chunk = chunks_.back().get();
            for (std::size_t i = 0; i < nodes; ++i) {
                chunk[i].next = freeList_;
                freeList_ = &chunk[i];
            }
        }

        Node *
        alloc()
        {
            if (freeList_ == nullptr) {
                // Past capacity with the drain still a barrier away:
                // spill (correctness first), but count it so the
                // backpressure tests and tuning can see it.
                ++counters_.overflows;
                grow(capacity_);
            }
            Node *n = freeList_;
            freeList_ = n->next;
            return n;
        }

        void
        append(Node *n)
        {
            n->owner = owner_;
            n->next = nullptr;
            if (head_ == nullptr)
                head_ = tail_ = n;
            else {
                tail_->next = n;
                tail_ = n;
            }
            ++counters_.captured;
            ++pendingCount_;
            if (pendingCount_ > counters_.highWater)
                counters_.highWater = pendingCount_;
        }

        void
        freeNode(Node *n)
        {
            n->next = freeList_;
            freeList_ = n;
        }

        std::size_t capacity_;
        std::vector<std::unique_ptr<Node[]>> chunks_;
        Node *freeList_ = nullptr;
        Node *head_ = nullptr;
        Node *tail_ = nullptr;
        std::uint64_t pendingCount_ = 0;
        std::uint16_t owner_ = 0;   ///< set by registerDeferPool
        Counters counters_;
    };

    /** Register @p b so its nodes can round-trip through the queue and
     *  return to its free list. Call once per buffer, before use. */
    void
    registerDeferPool(DeferBuffer *b)
    {
        deferPools_.push_back(b);
        MPC_ASSERT(deferPools_.size() <= 0xfffe, "too many defer pools");
        b->owner_ = static_cast<std::uint16_t>(deferPools_.size());
    }

    /** This thread's active capture mailbox (null = schedule directly,
     *  the default). Shard workers set it around their tick phase. */
    static DeferBuffer *deferTarget() { return tlsDefer_; }
    static void setDeferTarget(DeferBuffer *d) { tlsDefer_ = d; }

    /**
     * Replay @p b's captured stream in capture order: schedules get the
     * next global sequence numbers (exactly as the single-thread
     * stepper would have assigned them) and enter the queue; fabric ops
     * are handed to @p on_fabric for serial execution against the
     * shared directory. Calling thread must have no defer target set.
     */
    template <typename OnFabric>
    void
    replay(DeferBuffer &b, OnFabric &&on_fabric)
    {
        MPC_ASSERT(tlsDefer_ == nullptr,
                   "replay with a defer target active");
        Node *n = b.head_;
        b.head_ = b.tail_ = nullptr;
        b.pendingCount_ = 0;
        while (n != nullptr) {
            Node *next = n->next;
            if (n->kind == kFabric) {
                auto *op = std::launder(
                    reinterpret_cast<DeferredFabricOp *>(n->storage));
                on_fabric(*op);
                op->~DeferredFabricOp();
                n->destroy = nullptr;
                b.freeNode(n);
            } else {
                n->seq = seq_++;
                n->next = nullptr;
                insert(n);
            }
            n = next;
        }
    }
};

/**
 * The previous heap-backed queue, retained as the reference oracle for
 * the wheel/heap equivalence tests (tests/test_mem.cc). Same contract
 * as EventQueue: time order, same-tick FIFO.
 */
class HeapEventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback fn)
    {
        MPC_ASSERT(when >= now_, "event scheduled in the past");
        events_.push(Event{when, seq_++, std::move(fn)});
    }

    void scheduleIn(Tick delta, Callback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    bool empty() const { return events_.empty(); }

    Tick
    nextEventTick() const
    {
        return events_.empty() ? maxTick : events_.top().when;
    }

    void
    advanceTo(Tick until)
    {
        MPC_ASSERT(until >= now_, "advanceTo into the past");
        while (!events_.empty() && events_.top().when <= until) {
            // Move out before pop so the callback can schedule new
            // events without copying the std::function; top() is
            // const-ref only because the heap no longer needs the
            // popped element's order, so the cast is safe.
            Event ev = std::move(const_cast<Event &>(events_.top()));
            events_.pop();
            now_ = ev.when;
            ev.fn();
        }
        now_ = until;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Event &other) const
        {
            return when != other.when ? when > other.when : seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * A serially reusable resource (bus, memory bank, cache port group)
 * modeled as a busy-until timeline: a reservation at time t for d ticks
 * is granted at max(t, nextFree) and pushes nextFree to grant + d.
 */
class TimelineResource
{
  public:
    /** Reserve the resource for @p duration ticks no earlier than
     *  @p earliest. @return the tick the reservation starts. */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        const Tick start = std::max(earliest, nextFree_);
        nextFree_ = start + duration;
        busyTicks_ += duration;
        return start;
    }

    /** Next tick at which the resource is free. */
    Tick nextFree() const { return nextFree_; }

    /** Total ticks of reserved (busy) time, for utilization stats. */
    Tick busyTicks() const { return busyTicks_; }

  private:
    Tick nextFree_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace mpc::mem

#endif // MPC_MEM_EVENTQ_HH
