/**
 * @file
 * Main memory behind a split-transaction bus: interleaved banks with
 * configurable mapping (sequential, XOR-permutation per Sohi, or
 * row-skewed per Harper & Jump — the Exemplar's policy). Models
 * occupancy-based contention on the bus and each bank.
 */

#ifndef MPC_MEM_MAINMEM_HH
#define MPC_MEM_MAINMEM_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/eventq.hh"

namespace mpc::mem
{

/** Map a line index to a bank under the given policy. */
int bankOf(std::uint64_t line_index, int num_banks, Interleave policy);

/**
 * A memory module (bus + banks) implementing DownstreamPort. One
 * instance serves a uniprocessor; the multiprocessor gives each node a
 * slice (the coherence controller sits in front).
 */
class MainMemory : public DownstreamPort
{
  public:
    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    MainMemory(EventQueue &eq, MemBusConfig cfg, int line_bytes);

    // DownstreamPort
    bool request(Addr line_addr, bool exclusive,
                 Continuation on_fill) override;
    void writeback(Addr line_addr) override;

    /**
     * Timing core shared with the coherence controller: perform a read
     * of @p line_addr starting no earlier than @p start; @return the
     * tick at which the data has fully crossed the bus.
     */
    Tick readAccessAt(Tick start, Addr line_addr);

    /** Same for a (posted) write; @return bank-done tick. */
    Tick writeAccessAt(Tick start, Addr line_addr);

    const Stats &stats() const { return stats_; }

    /** Bus utilization over @p total ticks of simulation. */
    double busUtilization(Tick total) const;

    /** Mean bank utilization over @p total ticks. */
    double bankUtilization(Tick total) const;

  private:
    Tick busCycles(int n) const
    {
        return static_cast<Tick>(n) * cfg_.cpuCyclesPerBusCycle;
    }

    EventQueue &eq_;
    MemBusConfig cfg_;
    int lineBytes_;
    /** Split-transaction bus: independent address and data channels. */
    TimelineResource addrBus_;
    TimelineResource dataBus_;
    std::vector<TimelineResource> banks_;
    Stats stats_;
};

} // namespace mpc::mem

#endif // MPC_MEM_MAINMEM_HH
