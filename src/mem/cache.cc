#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace mpc::mem
{

Cache::Cache(EventQueue &eq, CacheConfig cfg, bool coherent,
             bool write_allocate)
    : eq_(eq), cfg_(std::move(cfg)), coherent_(coherent),
      writeAllocate_(write_allocate),
      lines_(cfg_.numSets() * cfg_.assoc), mshrs_(cfg_.numMshrs)
{
    MPC_ASSERT(isPowerOf2(cfg_.lineBytes), "line size must be power of 2");
    MPC_ASSERT(isPowerOf2(cfg_.numSets()), "set count must be power of 2");
    lineShift_ = std::countr_zero(
        static_cast<std::uint64_t>(cfg_.lineBytes));
    setMask_ = cfg_.numSets() - 1;
}

bool
Cache::reservePort()
{
    const Tick now = eq_.now();
    if (portTick_ != now) {
        portTick_ = now;
        portsUsed_ = 0;
    }
    if (portsUsed_ >= cfg_.numPorts)
        return false;
    ++portsUsed_;
    return true;
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::uint64_t set = (line_addr >> lineShift_) & setMask_;
    Line *way = &lines_[set * cfg_.assoc];
    for (int w = 0; w < cfg_.assoc; ++w, ++way)
        if (way->valid && way->tag == line_addr)
            return way;
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::isResident(Addr addr) const
{
    return findLine(lineOf(addr)) != nullptr;
}

LineState
Cache::lineState(Addr addr) const
{
    const Line *line = findLine(lineOf(addr));
    return line ? line->state : LineState::Invalid;
}

Cache::Status
Cache::loadAccess(Addr addr, std::uint32_t ref_id, CompletionFn done,
                  AccessInfo *info)
{
    return access(Kind::Load, addr, false, ref_id, std::move(done),
                  info);
}

Cache::Status
Cache::writeAccess(Addr addr, std::uint32_t ref_id, CompletionFn done)
{
    return access(Kind::Write, addr, true, ref_id, std::move(done));
}

Cache::Status
Cache::lineRequest(Addr line_addr, bool exclusive, Continuation on_fill)
{
    return access(Kind::LineFetch, line_addr, exclusive, 0xffffffff,
                  std::move(on_fill));
}

Cache::Status
Cache::access(Kind kind, Addr addr, bool exclusive, std::uint32_t ref_id,
              CompletionFn done, AccessInfo *info)
{
    const Addr line_addr = lineOf(addr);
    const Tick now = eq_.now();
    const bool is_load = kind != Kind::Write;

    if (!reservePort()) {
        ++stats_.rejectsPort;
        return Status::RejectPort;
    }

    if (kind == Kind::Write)
        ++stats_.writes;
    else
        ++stats_.loads;
    Stats::RefCounts *ref_counts = nullptr;
    if (ref_id != 0xffffffff) {
        ref_counts = &stats_.perRef[ref_id];
        ++ref_counts->accesses;
    }

    Line *line = findLine(line_addr);
    const bool needs_upgrade = line != nullptr && kind == Kind::Write &&
                               coherent_ && line->state == LineState::Shared;
    const bool fetch_upgrade =
        line != nullptr && coherent_ && exclusive &&
        line->state == LineState::Shared && kind == Kind::LineFetch;

    if (line != nullptr && !needs_upgrade && !fetch_upgrade) {
        // Plain hit.
        touch(*line);
        if (kind == Kind::Write) {
            ++stats_.writeHits;
            if (writeAllocate_) {
                line->dirty = true;
                if (!coherent_ || line->state == LineState::Modified)
                    line->state = LineState::Modified;
            }
        } else {
            ++stats_.loadHits;
        }
        const Tick when = now + cfg_.hitLatency;
        if (done) {
            eq_.schedule(when, [fn = std::move(done), when]() mutable {
                fn(when);
            });
        }
        return Status::Ok;
    }

    // Miss (or upgrade). Coalesce into an existing MSHR if possible.
    bool allocated = false;
    MshrFile::Id id = mshrs_.find(line_addr);
    if (id == MshrFile::invalidId) {
        if (mshrs_.full()) {
            ++stats_.rejectsMshr;
            if (kind == Kind::Write)
                --stats_.writes;
            else
                --stats_.loads;
            if (ref_counts != nullptr)
                --ref_counts->accesses;
            return Status::RejectMshr;
        }
        // Only the allocating access initiates a miss (coalesced
        // accesses ride the outstanding one): this matches the P_m
        // "miss pattern" semantics of Section 3.2.2.
        if (ref_counts != nullptr)
            ++ref_counts->misses;
        id = mshrs_.allocate(now, line_addr, exclusive);
        if (kind == Kind::Write)
            ++stats_.writeMisses;
        else
            ++stats_.loadMisses;
        if (needs_upgrade || fetch_upgrade)
            ++stats_.upgrades;
        allocated = true;
        issueDownstream(id);
    } else {
        if (exclusive && !mshrs_.exclusive(id) && coherent_ &&
            mshrs_.issued(id)) {
            // A write cannot piggyback on a read request that is
            // already in flight: the directory has only granted Shared
            // permission, so silently installing Modified on fill would
            // leave the cache incoherent with the directory. Reject;
            // the retried write will hit the filled Shared line and
            // take the regular upgrade path.
            ++stats_.rejectsMshr;
            if (kind == Kind::Write)
                --stats_.writes;
            else
                --stats_.loads;
            if (ref_counts != nullptr)
                --ref_counts->accesses;
            return Status::RejectMshr;
        }
        if (exclusive)
            mshrs_.setExclusive(id);
        if (kind == Kind::Write)
            ++stats_.writeCoalesced;
        else
            ++stats_.loadCoalesced;
        if (info != nullptr)
            info->coalesced = true;
    }

    MshrTarget target;
    target.isLoad = is_load;
    target.refId = ref_id;
    target.onComplete = std::move(done);
    mshrs_.addTarget(now, id, std::move(target));
    if (obs_ != nullptr) {
        if (allocated)
            obs_->missIssued(now, line_addr, is_load,
                             mshrs_.readOccupancy(), mshrs_.occupancy());
        else
            obs_->missCoalesced(now, line_addr, is_load,
                                mshrs_.readOccupancy(), mshrs_.occupancy());
    }
    return Status::Ok;
}

void
Cache::issueDownstream(MshrFile::Id id)
{
    MPC_ASSERT(down_ != nullptr, "cache has no downstream");
    const Addr line_addr = mshrs_.lineAddr(id);
    const bool exclusive = mshrs_.exclusive(id);
    const bool accepted = down_->request(
        line_addr, exclusive, [this, id] { handleFill(id); });
    if (accepted) {
        mshrs_.markIssued(id);
    } else {
        // Retry next cycle.
        eq_.scheduleIn(1, [this, id] { issueDownstream(id); });
    }
}

void
Cache::handleFill(MshrFile::Id id)
{
    const Tick now = eq_.now();
    const Addr line_addr = mshrs_.lineAddr(id);
    const bool exclusive = mshrs_.exclusive(id);
    const bool invalidate_on_fill = mshrs_.invalidateOnFill(id);
    const bool had_read = mshrs_.hasRead(id);
    const Tick alloc_tick = mshrs_.allocTick(id);
    ++stats_.fills;
    stats_.missLatency.sample(static_cast<double>(now - alloc_tick));

    // Install (or upgrade) the line.
    Line *line = findLine(line_addr);
    if (line != nullptr) {
        // Upgrade completion: permission arrived for a resident line.
        line->state = exclusive ? LineState::Modified : LineState::Shared;
        touch(*line);
    } else {
        installLine(line_addr,
                    exclusive ? LineState::Modified : LineState::Shared,
                    false);
        line = findLine(line_addr);
    }

    mshrs_.deallocateInto(now, id, fillScratch_);
    if (obs_ != nullptr)
        obs_->missFilled(now, line_addr, alloc_tick, had_read,
                         mshrs_.readOccupancy(), mshrs_.occupancy());
    const Tick when = now + cfg_.fillLatency;
    for (auto &target : fillScratch_) {
        if (!target.isLoad && writeAllocate_) {
            line->dirty = true;
            line->state = LineState::Modified;
        }
        if (target.onComplete) {
            eq_.schedule(when,
                         [fn = std::move(target.onComplete), when]() mutable {
                             fn(when);
                         });
        }
    }

    if (invalidate_on_fill) {
        // A probe raced this fill (see probeInvalidate): the directory
        // no longer lists this cache, so drop the line now that the
        // targets have their data. The dirty-data handoff a real
        // protocol would perform here is not modeled; the new owner
        // refetches from memory timing-wise.
        line->valid = false;
        line->dirty = false;
        line->state = LineState::Invalid;
        if (backInvalidate_)
            backInvalidate_(line_addr);
    }
}

void
Cache::installLine(Addr line_addr, LineState state, bool dirty)
{
    const std::uint64_t set = (line_addr >> lineShift_) & setMask_;
    Line *victim = nullptr;
    Line *way = &lines_[set * cfg_.assoc];
    for (int w = 0; w < cfg_.assoc; ++w, ++way) {
        if (!way->valid) {
            victim = way;
            break;
        }
        if (victim == nullptr || way->lastUse < victim->lastUse)
            victim = way;
    }
    if (victim->valid) {
        if (victim->dirty) {
            ++stats_.writebacks;
            MPC_ASSERT(down_ != nullptr, "dirty eviction with no downstream");
            down_->writeback(victim->tag);
        }
        if (backInvalidate_)
            backInvalidate_(victim->tag);
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->state = state;
    victim->tag = line_addr;
    touch(*victim);
}

bool
Cache::probeInvalidate(Addr line_addr)
{
    // The line may be in flight (plain miss or upgrade): the directory
    // acts atomically at request time, so an invalidation can race
    // ahead of the fill it targets. Mark the MSHR so the fill installs
    // a dead line (fill-before-invalidation ordering); its targets
    // still complete normally.
    const MshrFile::Id id = mshrs_.find(line_addr);
    if (id != MshrFile::invalidId)
        mshrs_.markInvalidateOnFill(id);
    Line *line = findLine(line_addr);
    if (line == nullptr)
        return false;
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    line->state = LineState::Invalid;
    if (backInvalidate_)
        backInvalidate_(line_addr);
    return was_dirty;
}

bool
Cache::probeDowngrade(Addr line_addr)
{
    Line *line = findLine(line_addr);
    if (line == nullptr)
        return false;
    const bool was_dirty = line->dirty;
    line->dirty = false;
    line->state = LineState::Shared;
    return was_dirty;
}

void
Cache::backInvalidateLine(Addr line_addr)
{
    Line *line = findLine(line_addr);
    if (line == nullptr)
        return;
    line->valid = false;
    line->dirty = false;
    line->state = LineState::Invalid;
}

} // namespace mpc::mem
