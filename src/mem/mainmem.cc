#include "mem/mainmem.hh"

#include "common/logging.hh"

namespace mpc::mem
{

int
bankOf(std::uint64_t line_index, int num_banks, Interleave policy)
{
    MPC_ASSERT(num_banks > 0, "no banks");
    switch (policy) {
      case Interleave::Sequential:
        return static_cast<int>(line_index % num_banks);
      case Interleave::Permutation: {
        // XOR-fold all log2(banks)-bit fields of the line index (Sohi's
        // permutation-based interleaving): robust across strides.
        MPC_ASSERT(isPowerOf2(static_cast<std::uint64_t>(num_banks)),
                   "permutation interleave needs power-of-2 banks");
        const int bits = log2Floor(static_cast<std::uint64_t>(num_banks));
        std::uint64_t x = line_index;
        std::uint64_t bank = 0;
        while (x != 0) {
            bank ^= x & (static_cast<std::uint64_t>(num_banks) - 1);
            x >>= bits;
        }
        return static_cast<int>(bank);
      }
      case Interleave::Skewed:
        // Row-skewing: consecutive "rows" start at shifted banks.
        return static_cast<int>(
            (line_index + line_index / num_banks) % num_banks);
    }
    panic("bankOf: bad interleave policy");
}

MainMemory::MainMemory(EventQueue &eq, MemBusConfig cfg, int line_bytes)
    : eq_(eq), cfg_(cfg), lineBytes_(line_bytes),
      banks_(static_cast<size_t>(cfg.numBanks))
{}

Tick
MainMemory::readAccessAt(Tick start, Addr line_addr)
{
    ++stats_.reads;
    const std::uint64_t line_index = line_addr / lineBytes_;
    const int bank = bankOf(line_index, cfg_.numBanks, cfg_.interleave);

    // Request phase on the address channel.
    const Tick req_dur = busCycles(cfg_.busArbLatency);
    const Tick req_start = addrBus_.reserve(start, req_dur);
    // Bank access.
    const Tick bank_start = banks_[bank].reserve(req_start + req_dur,
                                                 cfg_.bankAccessLatency);
    // Data phase back over the data channel.
    const int data_cycles = ceilDiv(lineBytes_, cfg_.busWidthBytes);
    const Tick data_dur = busCycles(data_cycles);
    const Tick data_start =
        dataBus_.reserve(bank_start + cfg_.bankAccessLatency, data_dur);
    return data_start + data_dur;
}

Tick
MainMemory::writeAccessAt(Tick start, Addr line_addr)
{
    ++stats_.writes;
    const std::uint64_t line_index = line_addr / lineBytes_;
    const int bank = bankOf(line_index, cfg_.numBanks, cfg_.interleave);

    // Data phase over the data channel, then the bank absorbs the write.
    const int data_cycles = ceilDiv(lineBytes_, cfg_.busWidthBytes);
    const Tick data_dur = busCycles(data_cycles);
    const Tick data_start = dataBus_.reserve(start, data_dur);
    const Tick bank_start = banks_[bank].reserve(data_start + data_dur,
                                                 cfg_.bankAccessLatency);
    return bank_start + cfg_.bankAccessLatency;
}

bool
MainMemory::request(Addr line_addr, bool exclusive,
                    Continuation on_fill)
{
    (void)exclusive;  // no coherence below a uniprocessor L2
    const Tick done = readAccessAt(eq_.now(), line_addr);
    eq_.schedule(done, [fn = std::move(on_fill), done]() mutable {
        fn(done);
    });
    return true;
}

void
MainMemory::writeback(Addr line_addr)
{
    writeAccessAt(eq_.now(), line_addr);
}

double
MainMemory::busUtilization(Tick total) const
{
    // Data-channel utilization: the bandwidth-limiting phase.
    return total == 0
               ? 0.0
               : static_cast<double>(dataBus_.busyTicks()) / total;
}

double
MainMemory::bankUtilization(Tick total) const
{
    if (total == 0 || banks_.empty())
        return 0.0;
    Tick busy = 0;
    for (const auto &bank : banks_)
        busy += bank.busyTicks();
    return static_cast<double>(busy) /
           (static_cast<double>(total) * banks_.size());
}

} // namespace mpc::mem
