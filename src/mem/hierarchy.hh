/**
 * @file
 * Per-node cache hierarchy facade: a write-through L1 over a
 * write-back, write-allocate L2 (base configuration), or a single-level
 * cache (Exemplar-like configuration). Exposes the CPU-side load/store
 * interface and wires inclusion back-invalidations.
 */

#ifndef MPC_MEM_HIERARCHY_HH
#define MPC_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/eventq.hh"

namespace mpc::mem
{

/**
 * The cache stack of one processor node.
 */
class MemHierarchy
{
  public:
    struct Config
    {
        CacheConfig l1;
        CacheConfig l2;
        bool singleLevel = false;   ///< Exemplar-like: one cache level
        bool coherent = false;      ///< multiprocessor: probes expected
    };

    MemHierarchy(EventQueue &eq, const Config &cfg);

    /** Wire the port below the lowest cache level (not owned). */
    void setDownstream(DownstreamPort *down);

    /** CPU-side load. Completion carries the data-ready tick. @p info,
     *  when non-null, reports how the L1 handled the access. */
    Cache::Status load(Addr addr, std::uint32_t ref_id, CompletionFn done,
                       AccessInfo *info = nullptr);

    /** CPU-side store (issued from the processor write buffer). */
    Cache::Status store(Addr addr, std::uint32_t ref_id, CompletionFn done);

    /** The cache holding this node's coherence state (lowest level). */
    Cache &coherenceCache() { return *lowest_; }

    Cache &l1() { return *l1_; }
    /** L2 in the two-level configuration; the single cache otherwise. */
    Cache &l2() { return *lowest_; }
    bool singleLevel() const { return singleLevel_; }

    /** Attach the observability miss tracker to the lowest level (the
     *  lp resource whose MSHR file bounds memory parallelism). */
    void attachObs(obs::MissTracker *tracker) { lowest_->attachObs(tracker); }

    void finalizeStats(Tick now);

    /**
     * Sharded-stepper conflict tracking. With recording armed, every
     * CPU-side load/store address issued *during a parallel core-tick
     * phase* (EventQueue::deferTarget() set on the issuing thread —
     * serial cycles record nothing) is appended to a per-node list;
     * the stepper clears the list each parallel cycle and queries it
     * at barrier replay to detect a coherence probe of a line this
     * node touched in the same cycle. See System::runLoopSharded.
     */
    void
    setTouchRecording(bool on)
    {
        touchRecord_ = on;
        touched_.clear();
    }
    void clearTouched() { touched_.clear(); }
    /** Any recorded access on @p line_addr's line (@p line_bytes
     *  granularity) since the last clear? */
    bool
    touchedLine(Addr line_addr, int line_bytes) const
    {
        const Addr line = line_addr / static_cast<Addr>(line_bytes);
        for (const Addr a : touched_)
            if (a / static_cast<Addr>(line_bytes) == line)
                return true;
        return false;
    }

  private:
    /** Adapter presenting the L2 as the L1's downstream port. */
    class L1Below : public DownstreamPort
    {
      public:
        L1Below(Cache &l1, Cache &l2) : l1_(l1), l2_(l2) {}
        bool
        request(Addr line_addr, bool exclusive,
                Continuation on_fill) override
        {
            // The L2 fill and the L1's delayed install are fillLatency
            // apart; if the L2 evicts the line in that window, its
            // back-invalidation finds nothing in the L1 and the L1
            // would keep a stale copy forever. Re-check inclusion when
            // the fill surfaces (the completion callbacks have already
            // been delivered by then).
            return l2_.lineRequest(
                       line_addr, exclusive,
                       [this, line_addr,
                        fn = std::move(on_fill)](Tick t) mutable {
                           fn(t);
                           if (!l2_.isResident(line_addr))
                               l1_.backInvalidateLine(line_addr);
                       }) == Cache::Status::Ok;
        }
        void
        writeback(Addr line_addr) override
        {
            (void)line_addr;
            panic("write-through L1 must not write back");
        }

      private:
        Cache &l1_;
        Cache &l2_;
    };

    bool singleLevel_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2Cache_;
    std::unique_ptr<L1Below> l1Below_;
    Cache *lowest_ = nullptr;
    std::vector<Addr> touched_;
    bool touchRecord_ = false;
};

} // namespace mpc::mem

#endif // MPC_MEM_HIERARCHY_HH
