/**
 * @file
 * Miss status holding registers (MSHRs).
 *
 * The MSHR file is the hardware resource whose depth bounds memory
 * parallelism: the paper's lp parameter. A second access to a line with
 * an outstanding miss coalesces into the existing entry — the run-time
 * realization of a cache-line dependence. Occupancy is tracked with
 * time-weighted histograms split into "read-occupied" and "total",
 * which is exactly the data plotted in Figure 4.
 */

#ifndef MPC_MEM_MSHR_HH
#define MPC_MEM_MSHR_HH

#include <vector>

#include <string>

#include "common/continuation.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/registry.hh"

namespace mpc::mem
{

/** Callback invoked when an access completes, with the completion
 *  tick. Pool-backed (see common/continuation.hh): the per-miss
 *  alloc -> coalesce -> fill -> retire lifecycle never touches the
 *  heap in steady state. */
using CompletionFn = Continuation;

/** One coalesced requester waiting on an in-flight line. */
struct MshrTarget
{
    bool isLoad = true;
    std::uint32_t refId = 0xffffffff;
    CompletionFn onComplete;
};

/**
 * The MSHR file of one cache.
 */
class MshrFile
{
  public:
    /** Handle of an allocated entry. */
    using Id = int;
    static constexpr Id invalidId = -1;

    explicit MshrFile(int num_entries)
        : entries_(static_cast<size_t>(num_entries)),
          readOccupancy_(num_entries), totalOccupancy_(num_entries)
    {}

    /** Find the entry holding @p line_addr, or invalidId. */
    Id
    find(Addr line_addr) const
    {
        for (size_t i = 0; i < entries_.size(); ++i)
            if (entries_[i].valid && entries_[i].lineAddr == line_addr)
                return static_cast<Id>(i);
        return invalidId;
    }

    /** True if no free entry remains. */
    bool
    full() const
    {
        for (const auto &e : entries_)
            if (!e.valid)
                return false;
        return true;
    }

    /** Number of valid entries. */
    int
    occupancy() const
    {
        int n = 0;
        for (const auto &e : entries_)
            n += e.valid;
        return n;
    }

    /** Number of valid entries with at least one load target. */
    int
    readOccupancy() const
    {
        int n = 0;
        for (const auto &e : entries_)
            n += e.valid && e.hasRead;
        return n;
    }

    /**
     * Allocate an entry for @p line_addr at time @p now.
     * Caller must have checked full().
     */
    Id
    allocate(Tick now, Addr line_addr, bool exclusive)
    {
        recordOccupancy(now);
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (!entries_[i].valid) {
                Entry &e = entries_[i];
                e.valid = true;
                e.lineAddr = line_addr;
                e.exclusive = exclusive;
                e.hasRead = false;
                e.issued = false;
                e.invalidateOnFill = false;
                e.allocTick = now;
                e.targets.clear();
                return static_cast<Id>(i);
            }
        }
        panic("MshrFile::allocate on full file");
    }

    /** Add a coalesced target to entry @p id at time @p now. */
    void
    addTarget(Tick now, Id id, MshrTarget target)
    {
        Entry &e = entry(id);
        if (target.isLoad && !e.hasRead) {
            recordOccupancy(now);
            e.hasRead = true;
        }
        e.targets.push_back(std::move(target));
    }

    /** Record that the write-intent bit must be set (store coalesced). */
    void
    setExclusive(Id id)
    {
        entry(id).exclusive = true;
    }

    bool exclusive(Id id) const { return entry(id).exclusive; }
    Addr lineAddr(Id id) const { return entry(id).lineAddr; }
    Tick allocTick(Id id) const { return entry(id).allocTick; }
    bool hasRead(Id id) const { return entry(id).hasRead; }

    /** Downstream-request bookkeeping. */
    bool issued(Id id) const { return entry(id).issued; }
    void markIssued(Id id) { entry(id).issued = true; }

    /**
     * Late invalidation: a coherence probe raced ahead of this entry's
     * fill (the directory already dropped this cache from the sharer
     * list). The fill must still complete its targets, but the line is
     * installed dead — equivalent to the fill being ordered just before
     * the invalidation.
     */
    bool invalidateOnFill(Id id) const { return entry(id).invalidateOnFill; }
    void markInvalidateOnFill(Id id) { entry(id).invalidateOnFill = true; }

    /**
     * Free entry @p id at time @p now, swapping its targets into
     * @p out for notification. @p out is cleared first; its capacity
     * is donated back to the entry, so a caller reusing one scratch
     * vector keeps the whole fill path allocation-free.
     */
    void
    deallocateInto(Tick now, Id id, std::vector<MshrTarget> &out)
    {
        Entry &e = entry(id);
        MPC_ASSERT(e.valid, "deallocate of invalid MSHR");
        recordOccupancy(now);
        e.valid = false;
        out.clear();
        out.swap(e.targets);
    }

    /** Flush occupancy accounting up to @p now (call at end of sim). */
    void finalizeStats(Tick now) { recordOccupancy(now); }

    /** Figure 4(a): time-weighted histogram of read-occupied MSHRs. */
    const OccupancyHistogram &readHistogram() const { return readOccupancy_; }

    /** Figure 4(b): time-weighted histogram of total occupied MSHRs. */
    const OccupancyHistogram &totalHistogram() const
    {
        return totalOccupancy_;
    }

    int numEntries() const { return static_cast<int>(entries_.size()); }

    /** Publish occupancy gauges on the telemetry registry (sampled at
     *  epoch boundaries only; the O(entries) scans are off the hot
     *  path). */
    void
    registerMetrics(obs::MetricsRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addGauge(prefix + ".occupancy", [this] {
            return static_cast<std::uint64_t>(occupancy());
        });
        reg.addGauge(prefix + ".readOccupancy", [this] {
            return static_cast<std::uint64_t>(readOccupancy());
        });
    }

    /** Read-only view of one valid entry, for validation audits. */
    struct EntrySnapshot
    {
        Addr lineAddr = invalidAddr;
        Tick allocTick = 0;
        bool exclusive = false;
        bool hasRead = false;
        bool issued = false;
        int numTargets = 0;
    };

    /** Snapshots of all valid entries (validation audits / diagnostics). */
    std::vector<EntrySnapshot>
    snapshot() const
    {
        std::vector<EntrySnapshot> out;
        for (const auto &e : entries_) {
            if (!e.valid)
                continue;
            out.push_back({e.lineAddr, e.allocTick, e.exclusive,
                           e.hasRead, e.issued,
                           static_cast<int>(e.targets.size())});
        }
        return out;
    }

  private:
    struct Entry
    {
        bool valid = false;
        bool exclusive = false;     ///< write intent (fetch-exclusive)
        bool hasRead = false;       ///< any load target (Fig 4(a) metric)
        bool issued = false;        ///< downstream request sent
        bool invalidateOnFill = false;  ///< probe raced the fill
        Addr lineAddr = invalidAddr;
        Tick allocTick = 0;
        std::vector<MshrTarget> targets;
    };

    Entry &
    entry(Id id)
    {
        MPC_ASSERT(id >= 0 && id < static_cast<Id>(entries_.size()),
                   "bad MSHR id");
        return entries_[static_cast<size_t>(id)];
    }

    const Entry &
    entry(Id id) const
    {
        return const_cast<MshrFile *>(this)->entry(id);
    }

    /** Charge elapsed time to the occupancy levels in effect since the
     *  last transition. */
    void
    recordOccupancy(Tick now)
    {
        MPC_ASSERT(now >= lastChange_, "occupancy time went backwards");
        const Tick elapsed = now - lastChange_;
        if (elapsed > 0) {
            readOccupancy_.record(readOccupancy(), elapsed);
            totalOccupancy_.record(occupancy(), elapsed);
        }
        lastChange_ = now;
    }

    std::vector<Entry> entries_;
    OccupancyHistogram readOccupancy_;
    OccupancyHistogram totalOccupancy_;
    Tick lastChange_ = 0;
};

} // namespace mpc::mem

#endif // MPC_MEM_MSHR_HH
