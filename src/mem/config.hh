/**
 * @file
 * Memory-hierarchy configuration records. Default values follow Table 1
 * of the paper (base simulated configuration, 500 MHz processor clock).
 * All latencies are in processor cycles.
 */

#ifndef MPC_MEM_CONFIG_HH
#define MPC_MEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mpc::mem
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 16 * 1024;
    int assoc = 1;                  ///< 1 = direct mapped
    int lineBytes = 64;
    int numMshrs = 10;
    int numPorts = 2;               ///< upper-side accesses per cycle
    Tick hitLatency = 1;            ///< lookup-to-data for a hit
    Tick fillLatency = 1;           ///< line install + target notify

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(lineBytes) * assoc);
    }
};

/** Memory-bank interleaving policy (Table 1 vs. Exemplar's skewing). */
enum class Interleave {
    Sequential,     ///< bank = line index mod banks
    Permutation,    ///< XOR-folded permutation (Sohi), base config
    Skewed,         ///< row-skewed (Harper & Jump), Exemplar-like config
};

/** Main-memory and bus parameters. */
struct MemBusConfig
{
    int numBanks = 4;
    Interleave interleave = Interleave::Permutation;
    Tick bankAccessLatency = 54;    ///< bank busy time per line access
    int cpuCyclesPerBusCycle = 3;   ///< 500 MHz CPU / 167 MHz bus
    int busWidthBytes = 32;         ///< 256-bit data bus
    Tick busArbLatency = 1;         ///< bus cycles for request phase
};

} // namespace mpc::mem

#endif // MPC_MEM_CONFIG_HH
