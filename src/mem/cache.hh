/**
 * @file
 * A cycle-approximate, event-driven cache with MSHRs and miss
 * coalescing.
 *
 * The simulated hierarchy uses two instances per node:
 *  - L1 data cache: write-through, no-write-allocate (stores bypass to
 *    L2 via the processor write buffer), load misses allocate L1 MSHRs;
 *  - L2 cache: write-back, write-allocate, holds the node's coherence
 *    state; its MSHR file is the lp resource of the paper and the
 *    subject of Figure 4.
 */

#ifndef MPC_MEM_CACHE_HH
#define MPC_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flatmap.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/config.hh"
#include "mem/eventq.hh"
#include "mem/mshr.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"

namespace mpc::mem
{

/** Optional out-parameters describing how an access was handled. */
struct AccessInfo
{
    /** The access merged into an MSHR already in flight for its line
     *  (the run-time realization of a cache-line dependence). */
    bool coalesced = false;
};

/** Coherence state of a resident line. */
enum class LineState : std::uint8_t { Invalid, Shared, Modified };

/**
 * Interface a cache uses to fetch lines from (and write lines back to)
 * the next level — main memory in a uniprocessor, the node's coherence
 * controller in the multiprocessor.
 */
class DownstreamPort
{
  public:
    virtual ~DownstreamPort() = default;

    /**
     * Request a line fetch. @p on_fill runs when the line arrives (with
     * write permission if @p exclusive). @return false if the request
     * cannot be accepted now (caller retries).
     */
    virtual bool request(Addr line_addr, bool exclusive,
                         Continuation on_fill) = 0;

    /** Accept a dirty-line writeback (buffered; never rejected). */
    virtual void writeback(Addr line_addr) = 0;
};

/**
 * One cache level. See file comment for the two usage profiles.
 */
class Cache
{
  public:
    enum class Status { Ok, RejectPort, RejectMshr };

    /** Aggregate counters. */
    struct Stats
    {
        std::uint64_t loads = 0;
        std::uint64_t loadHits = 0;
        std::uint64_t loadMisses = 0;       ///< MSHR allocations for loads
        std::uint64_t loadCoalesced = 0;    ///< loads merged into MSHRs
        std::uint64_t writes = 0;
        std::uint64_t writeHits = 0;
        std::uint64_t writeMisses = 0;
        std::uint64_t writeCoalesced = 0;
        std::uint64_t upgrades = 0;         ///< write hits on Shared lines
        std::uint64_t rejectsPort = 0;
        std::uint64_t rejectsMshr = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t fills = 0;
        StatSummary missLatency;            ///< MSHR alloc -> fill

        /** Per-static-reference access/miss counts (by refId), for
         *  validating profiled P_m against simulated behaviour. Dense
         *  by construction, so iteration is sorted by refId and report
         *  output is stable across standard-library versions. */
        struct RefCounts
        {
            std::uint64_t accesses = 0;
            std::uint64_t misses = 0;
        };
        DenseRefMap<RefCounts> perRef;
    };

    /**
     * @param eq Shared event queue.
     * @param cfg Geometry/timing.
     * @param coherent True for the multiprocessor L2: write hits on
     *        Shared lines take the upgrade-miss path.
     * @param write_allocate False for the write-through L1 profile.
     */
    Cache(EventQueue &eq, CacheConfig cfg, bool coherent,
          bool write_allocate);

    /** Wire the next level (not owned). */
    void setDownstream(DownstreamPort *down) { down_ = down; }

    /** Hook invoked when this cache evicts/invalidates a line, so an
     *  upper level can maintain inclusion. */
    void setBackInvalidate(std::function<void(Addr)> fn)
    {
        backInvalidate_ = std::move(fn);
    }

    /** Attach the observability miss tracker (not owned; null detaches).
     *  Read-only with respect to simulated state: attaching never
     *  changes results. Wired on the lowest level (the lp resource). */
    void attachObs(obs::MissTracker *tracker) { obs_ = tracker; }

    // --- upper-side access ------------------------------------------
    /** CPU or upper-cache load of one word at @p addr. @p info, when
     *  non-null, reports how the access was handled. */
    Status loadAccess(Addr addr, std::uint32_t ref_id, CompletionFn done,
                      AccessInfo *info = nullptr);

    /** Write of one word at @p addr (write buffer drains into L2). */
    Status writeAccess(Addr addr, std::uint32_t ref_id, CompletionFn done);

    /**
     * Upper-cache fetch of a whole line. @p on_fill runs when the line
     * is present here (and can then be forwarded upward).
     */
    Status lineRequest(Addr line_addr, bool exclusive,
                       Continuation on_fill);

    // --- coherence probes (multiprocessor L2) ------------------------
    /** Invalidate the line if resident. @return true if it was dirty. */
    bool probeInvalidate(Addr line_addr);

    /** Downgrade Modified -> Shared. @return true if it was dirty. */
    bool probeDowngrade(Addr line_addr);

    /** Invalidate without coherence action (inclusion maintenance). */
    void backInvalidateLine(Addr line_addr);

    // --- inspection ---------------------------------------------------
    bool isResident(Addr addr) const;
    LineState lineState(Addr addr) const;
    const Stats &stats() const { return stats_; }
    const MshrFile &mshrs() const { return mshrs_; }
    const CacheConfig &config() const { return cfg_; }

    /** Publish this cache's miss counters and MSHR occupancy gauges on
     *  the telemetry registry (epoch Sampler). */
    void
    registerMetrics(obs::MetricsRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addCounter(prefix + ".loads", &stats_.loads);
        reg.addCounter(prefix + ".loadMisses", &stats_.loadMisses);
        reg.addCounter(prefix + ".loadCoalesced",
                       &stats_.loadCoalesced);
        reg.addCounter(prefix + ".writes", &stats_.writes);
        reg.addCounter(prefix + ".writeMisses", &stats_.writeMisses);
        reg.addCounter(prefix + ".rejectsMshr", &stats_.rejectsMshr);
        reg.addCounter(prefix + ".writebacks", &stats_.writebacks);
        reg.addCounter(prefix + ".fills", &stats_.fills);
        mshrs_.registerMetrics(reg, prefix + ".mshr");
    }

    /** Flush time-weighted stats at end of simulation. */
    void finalizeStats(Tick now) { mshrs_.finalizeStats(now); }

    /** Iterate resident lines: fn(lineAddr, state, dirty). Read-only;
     *  used by the validation layer's inclusion/coherence audits. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const Line &line : lines_)
            if (line.valid)
                fn(line.tag, line.state, line.dirty);
    }

    /** Fault injection for validation tests: allocate an MSHR that will
     *  never fill or deallocate, so the leak audit must flag it. A
     *  non-empty @p on_complete is attached as a load target, modeling a
     *  leaked (never-released) pooled continuation. */
    void
    leakMshrForTest(Tick now, Addr line_addr,
                    CompletionFn on_complete = {})
    {
        const auto id = mshrs_.allocate(now, lineOf(line_addr), false);
        mshrs_.markIssued(id);
        if (on_complete) {
            MshrTarget target;
            target.isLoad = true;
            target.onComplete = std::move(on_complete);
            mshrs_.addTarget(now, id, std::move(target));
        }
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        LineState state = LineState::Invalid;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    enum class Kind { Load, Write, LineFetch };

    Addr lineOf(Addr addr) const { return alignDown(addr, cfg_.lineBytes); }

    /** Common access path. @p done doubles as the LineFetch fill
     *  callback (a Continuation accepts either call shape). */
    Status access(Kind kind, Addr addr, bool exclusive,
                  std::uint32_t ref_id, CompletionFn done,
                  AccessInfo *info = nullptr);

    /** Reserve an upper-side port this cycle; false if all busy. */
    bool reservePort();

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    /** Install @p line_addr, selecting and evicting a victim. */
    void installLine(Addr line_addr, LineState state, bool dirty);

    /** Handle a fill from downstream for MSHR @p id. */
    void handleFill(MshrFile::Id id);

    /** Try to issue the downstream request for MSHR @p id; retries via
     *  the event queue until accepted. */
    void issueDownstream(MshrFile::Id id);

    /** Mark a line most-recently-used. */
    void touch(Line &line) { line.lastUse = ++useClock_; }

    EventQueue &eq_;
    CacheConfig cfg_;
    bool coherent_;
    bool writeAllocate_;
    DownstreamPort *down_ = nullptr;
    obs::MissTracker *obs_ = nullptr;
    std::function<void(Addr)> backInvalidate_;

    /** Flat tag store: numSets x assoc, set-major, so one lookup is a
     *  shift/mask plus a short contiguous scan of the set's ways. */
    std::vector<Line> lines_;
    int lineShift_ = 0;             ///< log2(cfg_.lineBytes)
    std::uint64_t setMask_ = 0;     ///< numSets - 1
    MshrFile mshrs_;
    Stats stats_;
    /** Reusable fill-notification scratch; its capacity circulates
     *  with the MSHR entries' target vectors (see deallocateInto). */
    std::vector<MshrTarget> fillScratch_;

    Tick portTick_ = maxTick;   ///< cycle of last port reservation
    int portsUsed_ = 0;
    std::uint64_t useClock_ = 0;
};

} // namespace mpc::mem

#endif // MPC_MEM_CACHE_HH
