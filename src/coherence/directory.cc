#include "coherence/directory.hh"

#include "common/logging.hh"

namespace mpc::coherence
{

CoherenceFabric::CoherenceFabric(mem::EventQueue &eq, int num_nodes,
                                 const FabricConfig &cfg,
                                 noc::Transport &net,
                                 const PlacementPolicy &placement)
    : eq_(eq), numNodes_(num_nodes), cfg_(cfg), net_(net),
      placement_(placement),
      caches_(static_cast<size_t>(num_nodes), nullptr),
      memories_(static_cast<size_t>(num_nodes), nullptr),
      dirOcc_(static_cast<size_t>(num_nodes))
{
    for (NodeId n = 0; n < num_nodes; ++n)
        ports_.push_back(std::make_unique<NodePort>(*this, n));
}

void
CoherenceFabric::attachCache(NodeId n, mem::Cache *l2)
{
    caches_[static_cast<size_t>(n)] = l2;
}

void
CoherenceFabric::attachMemory(NodeId n, mem::MainMemory *mem)
{
    memories_[static_cast<size_t>(n)] = mem;
}

mem::DownstreamPort *
CoherenceFabric::port(NodeId n)
{
    return ports_[static_cast<size_t>(n)].get();
}

int
CoherenceFabric::dataFlits() const
{
    return noc::Transport::dataFlits(cfg_.lineBytes, 8);
}

bool
CoherenceFabric::handleRequest(NodeId requestor, Addr line_addr,
                               bool exclusive, Continuation on_fill)
{
    const NodeId home = placement_.home(line_addr);
    const Tick now = eq_.now();
    const bool is_local = home == requestor;

    // Request message to the home, then directory occupancy.
    const Tick arrive = net_.send(now, requestor, home, controlFlits());
    const Tick dir_done =
        dirOcc_[static_cast<size_t>(home)].reserve(arrive, cfg_.dirLatency) +
        cfg_.dirLatency;

    DirEntry &e = entry(line_addr);
    mem::MainMemory &home_mem = *memories_[static_cast<size_t>(home)];
    const std::uint64_t rbit = 1ull << requestor;
    Tick fill = dir_done;
    bool c2c = false;

    if (e.state == DirState::Modified && e.owner != requestor) {
        // Dirty at a third node: forward; data returns via the home.
        c2c = true;
        ++stats_.cacheToCache;
        const NodeId owner = e.owner;
        mem::Cache *owner_cache = caches_[static_cast<size_t>(owner)];
        MPC_ASSERT(owner_cache != nullptr, "no cache attached at owner");
        if (probeSink_)
            probeSink_(requestor, owner, line_addr,
                       owner_cache->isResident(line_addr));
        owner_cache->probeInvalidate(line_addr);
        if (!exclusive) {
            // For GetS the owner could keep a Shared copy; our L2 probe
            // invalidates (simpler, slightly conservative for the owner).
        }
        const Tick at_owner =
            net_.send(dir_done, home, owner, controlFlits());
        const Tick data_ready = at_owner + cfg_.probeLatency;
        const Tick at_home =
            net_.send(data_ready, owner, home, dataFlits());
        home_mem.writeAccessAt(at_home, line_addr);  // memory update
        fill = net_.send(at_home, home, requestor, dataFlits());
        if (exclusive) {
            e.state = DirState::Modified;
            e.owner = requestor;
            e.sharers = rbit;
        } else {
            e.state = DirState::Shared;
            e.sharers = rbit;  // owner dropped its copy (see above)
            e.owner = -1;
        }
    } else if (exclusive) {
        // GetX / upgrade.
        Tick acks = dir_done;
        if (e.state == DirState::Shared) {
            for (NodeId s = 0; s < numNodes_; ++s) {
                const std::uint64_t sbit = 1ull << s;
                if (!(e.sharers & sbit) || s == requestor)
                    continue;
                ++stats_.invalidations;
                mem::Cache *sc = caches_[static_cast<size_t>(s)];
                if (sc != nullptr) {
                    if (probeSink_)
                        probeSink_(requestor, s, line_addr,
                                   sc->isResident(line_addr));
                    sc->probeInvalidate(line_addr);
                }
                const Tick at_s = net_.send(dir_done, home, s,
                                            controlFlits());
                const Tick ack = net_.send(at_s + cfg_.probeLatency, s,
                                           requestor, controlFlits());
                acks = std::max(acks, ack);
            }
        }
        Tick data = dir_done;
        const bool requestor_has_data =
            e.state == DirState::Shared && (e.sharers & rbit) != 0;
        if (!requestor_has_data) {
            const Tick mem_done = home_mem.readAccessAt(dir_done,
                                                        line_addr);
            data = net_.send(mem_done, home, requestor, dataFlits());
        } else {
            // Upgrade: permission message only.
            data = net_.send(dir_done, home, requestor, controlFlits());
        }
        fill = std::max(acks, data);
        e.state = DirState::Modified;
        e.owner = requestor;
        e.sharers = rbit;
    } else {
        // GetS with a clean (or self-owned stale) line: serve from memory.
        const Tick mem_done = home_mem.readAccessAt(dir_done, line_addr);
        fill = net_.send(mem_done, home, requestor, dataFlits());
        e.state = DirState::Shared;
        e.sharers |= rbit;
        e.owner = -1;
    }

    // Statistics.
    const double latency = static_cast<double>(fill - now);
    if (c2c) {
        stats_.c2cLatency.sample(latency);
    } else if (is_local) {
        ++stats_.localReqs;
        stats_.localLatency.sample(latency);
    } else {
        ++stats_.remoteReqs;
        stats_.remoteLatency.sample(latency);
    }

    eq_.schedule(fill, [fn = std::move(on_fill), fill]() mutable {
        fn(fill);
    });
    return true;
}

void
CoherenceFabric::handleWriteback(NodeId requestor, Addr line_addr)
{
    ++stats_.writebacks;
    const NodeId home = placement_.home(line_addr);
    const Tick at_home = net_.send(eq_.now(), requestor, home,
                                   dataFlits());
    const Tick dir_done =
        dirOcc_[static_cast<size_t>(home)].reserve(at_home,
                                                   cfg_.dirLatency) +
        cfg_.dirLatency;
    memories_[static_cast<size_t>(home)]->writeAccessAt(dir_done,
                                                        line_addr);
    DirEntry &e = entry(line_addr);
    if (e.state == DirState::Modified && e.owner == requestor) {
        e.state = DirState::Uncached;
        e.owner = -1;
        e.sharers = 0;
    } else if (e.state == DirState::Shared) {
        e.sharers &= ~(1ull << requestor);
        if (e.sharers == 0)
            e.state = DirState::Uncached;
    }
}

} // namespace mpc::coherence
