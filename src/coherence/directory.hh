/**
 * @file
 * Directory-based CC-NUMA coherence fabric (full-map MSI).
 *
 * Every node owns a slice of memory (home for an address range chosen
 * by a placement policy) with a co-located directory. L2 misses become
 * GetS/GetX transactions; dirty-owner data is forwarded through the
 * home node (so cache-to-cache transfers cost more than plain remote
 * misses, matching the paper's 210-310 vs 180-260 cycle bands).
 *
 * Simplification: directory state transitions are simulation-atomic at
 * request time while message/occupancy timing is modeled with timeline
 * reservations, which avoids transient protocol races. This preserves
 * the latency/bandwidth/contention behaviour the paper's experiments
 * depend on without a full transient-state protocol engine.
 */

#ifndef MPC_COHERENCE_DIRECTORY_HH
#define MPC_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/continuation.hh"
#include "common/flatmap.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/eventq.hh"
#include "mem/mainmem.hh"
#include "noc/mesh.hh"
#include "obs/registry.hh"

namespace mpc::coherence
{

/**
 * Maps addresses to home nodes. Workloads register block-placed
 * regions; unregistered addresses interleave line-by-line.
 */
class PlacementPolicy
{
  public:
    PlacementPolicy(int num_nodes, int line_bytes)
        : numNodes_(num_nodes), lineBytes_(line_bytes)
    {}

    /**
     * Place [base, base+bytes) with node n owning the n-th equal block.
     */
    void
    addBlockRegion(Addr base, std::uint64_t bytes)
    {
        regions_.push_back({base, bytes});
    }

    /** Home node of @p addr. */
    NodeId
    home(Addr addr) const
    {
        for (const auto &r : regions_) {
            if (addr >= r.base && addr < r.base + r.bytes) {
                const std::uint64_t block =
                    (r.bytes + numNodes_ - 1) / numNodes_;
                return static_cast<NodeId>((addr - r.base) / block);
            }
        }
        return static_cast<NodeId>((addr / lineBytes_) % numNodes_);
    }

  private:
    struct Region
    {
        Addr base;
        std::uint64_t bytes;
    };

    int numNodes_;
    int lineBytes_;
    std::vector<Region> regions_;
};

/** Coherence fabric configuration. */
struct FabricConfig
{
    int lineBytes = 64;
    Tick dirLatency = 18;   ///< directory lookup + occupancy per txn
    Tick probeLatency = 12; ///< remote L2 tag access for fwd/inval
};

/** Aggregate protocol statistics. */
struct FabricStats
{
    std::uint64_t localReqs = 0;
    std::uint64_t remoteReqs = 0;
    std::uint64_t cacheToCache = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t writebacks = 0;
    StatSummary localLatency;
    StatSummary remoteLatency;
    StatSummary c2cLatency;
};

/**
 * The directory coherence fabric. Construct, attach each node's L2 and
 * memory slice, then hand node ports to the cache hierarchies.
 */
class CoherenceFabric
{
  public:
    CoherenceFabric(mem::EventQueue &eq, int num_nodes,
                    const FabricConfig &cfg, noc::Transport &net,
                    const PlacementPolicy &placement);

    /** Register node @p n's L2 cache (for probes). Not owned. */
    void attachCache(NodeId n, mem::Cache *l2);

    /** Register node @p n's memory slice. Not owned. */
    void attachMemory(NodeId n, mem::MainMemory *mem);

    /** The DownstreamPort to wire below node @p n's L2. */
    mem::DownstreamPort *port(NodeId n);

    const FabricStats &stats() const { return stats_; }

    /** Publish the directory/coherence counters on the telemetry
     *  registry (epoch Sampler). */
    void
    registerMetrics(obs::MetricsRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addCounter(prefix + ".localReqs", &stats_.localReqs);
        reg.addCounter(prefix + ".remoteReqs", &stats_.remoteReqs);
        reg.addCounter(prefix + ".cacheToCache", &stats_.cacheToCache);
        reg.addCounter(prefix + ".invalidations",
                       &stats_.invalidations);
        reg.addCounter(prefix + ".writebacks", &stats_.writebacks);
    }

    /**
     * Iterate directory entries: fn(lineAddr, state, sharers, owner)
     * with state as int (0=Uncached, 1=Shared, 2=Modified). Read-only;
     * used by the validation layer's protocol-invariant audit.
     */
    template <typename Fn>
    void
    forEachDirEntry(Fn &&fn) const
    {
        directory_.forEach([&fn](Addr addr, const DirEntry &e) {
            fn(addr, static_cast<int>(e.state), e.sharers, e.owner);
        });
    }

    /** Node @p n's attached L2 (null before attachCache). */
    const mem::Cache *
    cacheAt(NodeId n) const
    {
        return caches_[static_cast<size_t>(n)];
    }

    int numNodes() const { return numNodes_; }
    int lineBytes() const { return cfg_.lineBytes; }

    /**
     * Observer of every coherence probe (invalidation sent to a cache),
     * called as sink(requestor, victim, line_addr, resident) right
     * before the victim cache is probed; `resident` tells whether the
     * victim actually holds the line (a probe of a non-resident line
     * only flags an in-flight MSHR, which no same-cycle victim access
     * can observe). The sharded stepper uses this to detect the one
     * pattern it cannot replay bit-identically: a same-cycle probe of
     * a line the victim node itself touched, with the victim ordered
     * after the requestor (see System::runLoopSharded). Empty (the
     * default) costs one branch per probe.
     */
    using ProbeSink =
        std::function<void(NodeId requestor, NodeId victim,
                           Addr line_addr, bool resident)>;
    void setProbeSink(ProbeSink sink) { probeSink_ = std::move(sink); }

    /** Fault injection for validation tests: set node @p n's sharer bit
     *  on @p line_addr's entry without touching the entry state or any
     *  cache. On an Uncached or Modified entry this breaks a structural
     *  invariant the directory audit must flag. */
    void
    corruptSharerForTest(Addr line_addr, NodeId n)
    {
        entry(line_addr).sharers |= std::uint64_t(1) << n;
    }

  private:
    enum class DirState : std::uint8_t { Uncached, Shared, Modified };

    struct DirEntry
    {
        DirState state = DirState::Uncached;
        std::uint64_t sharers = 0;  ///< bitmask over nodes
        NodeId owner = -1;
    };

    /** Per-node port adapter. */
    class NodePort : public mem::DownstreamPort
    {
      public:
        NodePort(CoherenceFabric &fabric, NodeId node)
            : fabric_(fabric), node_(node)
        {}
        bool
        request(Addr line_addr, bool exclusive,
                Continuation on_fill) override
        {
            // Sharded parallel phase: directory state is shared across
            // shards, so capture the call in this thread's mailbox for
            // serial replay at the barrier (in node order — the same
            // order the single-thread stepper executes it in).
            if (auto *d = mem::EventQueue::deferTarget()) {
                d->captureFabric({line_addr, node_, exclusive, false,
                                  std::move(on_fill)});
                return true;    // handleRequest always accepts
            }
            return fabric_.handleRequest(node_, line_addr, exclusive,
                                         std::move(on_fill));
        }
        void
        writeback(Addr line_addr) override
        {
            if (auto *d = mem::EventQueue::deferTarget()) {
                d->captureFabric(
                    {line_addr, node_, false, true, Continuation{}});
                return;
            }
            fabric_.handleWriteback(node_, line_addr);
        }

      private:
        CoherenceFabric &fabric_;
        NodeId node_;
    };

    bool handleRequest(NodeId requestor, Addr line_addr, bool exclusive,
                       Continuation on_fill);
    void handleWriteback(NodeId requestor, Addr line_addr);

    DirEntry &entry(Addr line_addr) { return directory_[line_addr]; }

    int controlFlits() const { return noc::Transport::controlFlits; }
    int dataFlits() const;

    mem::EventQueue &eq_;
    int numNodes_;
    FabricConfig cfg_;
    noc::Transport &net_;
    PlacementPolicy placement_;
    std::vector<mem::Cache *> caches_;
    std::vector<mem::MainMemory *> memories_;
    std::vector<std::unique_ptr<NodePort>> ports_;
    std::vector<mem::TimelineResource> dirOcc_;
    /** Open-addressed: entries are created on first touch and never
     *  erased, the no-tombstone case FlatAddrMap is built for. */
    FlatAddrMap<DirEntry> directory_;
    FabricStats stats_;
    ProbeSink probeSink_;
};

} // namespace mpc::coherence

#endif // MPC_COHERENCE_DIRECTORY_HH
