#include "analysis/analysis.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace mpc::analysis
{

using ir::Expr;
using ir::Stmt;

namespace
{

bool
containsLoop(const Stmt &stmt)
{
    for (const auto &child : stmt.body) {
        if (child->kind == Stmt::Kind::Loop ||
            child->kind == Stmt::Kind::PtrLoop ||
            child->kind == Stmt::Kind::While || containsLoop(*child))
            return true;
    }
    return false;
}

void
findNests(Stmt &stmt, std::vector<ir::Stmt *> &chain,
          std::vector<NestPath> &out)
{
    const bool is_loop = stmt.kind == Stmt::Kind::Loop ||
                         stmt.kind == Stmt::Kind::PtrLoop ||
                         stmt.kind == Stmt::Kind::While;
    if (is_loop) {
        chain.push_back(&stmt);
        if (!containsLoop(stmt)) {
            NestPath path;
            path.loops = chain;
            out.push_back(std::move(path));
        } else {
            for (auto &child : stmt.body)
                findNests(*child, chain, out);
        }
        chain.pop_back();
    } else {
        for (auto &child : stmt.body)
            findNests(*child, chain, out);
    }
}

/** Collect memory refs in an expression tree (preorder). */
void
collectRefsInExpr(const Expr &expr, std::vector<const Expr *> &out)
{
    if (expr.isMemRef())
        out.push_back(&expr);
    for (const auto &child : expr.children)
        collectRefsInExpr(*child, out);
}

} // namespace

std::vector<NestPath>
findLoopNests(ir::Kernel &kernel)
{
    std::vector<NestPath> out;
    std::vector<ir::Stmt *> chain;
    for (auto &stmt : kernel.body)
        findNests(*stmt, chain, out);
    return out;
}

int
estimateBodySize(const ir::Stmt &inner)
{
    int count = 3;  // loop increment + compare + branch
    std::function<void(const Expr &)> count_expr =
        [&](const Expr &e) {
            switch (e.kind) {
              case Expr::Kind::ArrayRef:
                count += 2 + static_cast<int>(e.children.size());
                break;
              case Expr::Kind::Deref:
                count += 1;
                break;
              case Expr::Kind::Bin:
              case Expr::Kind::Un:
                count += 1;
                break;
              default:
                break;
            }
            for (const auto &child : e.children)
                count_expr(*child);
        };
    std::function<void(const Stmt &)> count_stmt = [&](const Stmt &s) {
        if (s.lhs)
            count_expr(*s.lhs);
        if (s.rhs)
            count_expr(*s.rhs);
        count += 1;
        for (const auto &child : s.body)
            count_stmt(*child);
    };
    for (const auto &child : inner.body)
        count_stmt(*child);
    if (inner.kind == Stmt::Kind::PtrLoop && inner.rhs)
        count_expr(*inner.rhs);
    return count;
}

int
LoopAnalysis::numLeading() const
{
    int n = 0;
    for (const auto &ref : refs)
        n += ref.leading;
    return n;
}

std::string
LoopAnalysis::toString() const
{
    std::ostringstream out;
    out << "refs:\n";
    for (size_t i = 0; i < refs.size(); ++i) {
        const RefInfo &r = refs[i];
        out << "  [" << i << "] " << r.expr->toString()
            << (r.isWrite ? " (write)" : "")
            << (r.regular ? " regular" : " irregular")
            << " stride=" << r.strideBytes << " L=" << r.lm
            << (r.leading ? " LEADING" : "")
            << (r.innerInvariant ? " invariant" : "") << "\n";
    }
    out << "edges:\n";
    for (const auto &e : edges) {
        out << "  " << e.from << " -> " << e.to
            << (e.isAddress ? " addr" : " line") << " dist=" << e.distance
            << "\n";
    }
    out << "recurrences: " << recurrences.size()
        << " alpha=" << alpha << (hasAddressRecurrence ? " (address)" : "")
        << "\n";
    out << "i=" << bodyInstrs << " dynUnroll=" << dynUnroll
        << " freg=" << freg << " firreg=" << firreg << " f=" << f << "\n";
    return out.str();
}

namespace
{

/** Tarjan SCC over the ref dependence graph. */
class SccFinder
{
  public:
    SccFinder(int n, const std::vector<DepEdge> &edges)
        : adj_(static_cast<size_t>(n))
    {
        for (size_t i = 0; i < edges.size(); ++i)
            adj_[static_cast<size_t>(edges[i].from)].push_back(
                static_cast<int>(i));
        edges_ = &edges;
        index_.assign(static_cast<size_t>(n), -1);
        low_.assign(static_cast<size_t>(n), 0);
        onStack_.assign(static_cast<size_t>(n), false);
        for (int v = 0; v < n; ++v)
            if (index_[static_cast<size_t>(v)] < 0)
                strongConnect(v);
    }

    const std::vector<std::vector<int>> &sccs() const { return sccs_; }

  private:
    void
    strongConnect(int v)
    {
        index_[v] = low_[v] = next_++;
        stack_.push_back(v);
        onStack_[v] = true;
        for (int ei : adj_[static_cast<size_t>(v)]) {
            const int w = (*edges_)[static_cast<size_t>(ei)].to;
            if (index_[w] < 0) {
                strongConnect(w);
                low_[v] = std::min(low_[v], low_[w]);
            } else if (onStack_[w]) {
                low_[v] = std::min(low_[v], index_[w]);
            }
        }
        if (low_[v] == index_[v]) {
            std::vector<int> scc;
            int w;
            do {
                w = stack_.back();
                stack_.pop_back();
                onStack_[w] = false;
                scc.push_back(w);
            } while (w != v);
            sccs_.push_back(std::move(scc));
        }
    }

    std::vector<std::vector<int>> adj_;
    const std::vector<DepEdge> *edges_;
    std::vector<int> index_, low_;
    std::vector<char> onStack_;
    std::vector<int> stack_;
    std::vector<std::vector<int>> sccs_;
    int next_ = 0;
};

/**
 * Minimum total distance over simple cycles inside one SCC (DFS path
 * enumeration; SCCs in loop kernels are tiny).
 */
std::int64_t
minCycleDistance(const std::vector<int> &scc,
                 const std::vector<DepEdge> &edges)
{
    std::set<int> members(scc.begin(), scc.end());
    std::int64_t best = -1;
    // DFS from each member; only visit members.
    for (int start : scc) {
        std::vector<std::pair<int, std::int64_t>> stack;
        std::set<int> visited;
        std::function<void(int, std::int64_t)> dfs =
            [&](int v, std::int64_t dist) {
                for (const auto &e : edges) {
                    if (e.from != v || !members.count(e.to))
                        continue;
                    if (e.to == start) {
                        const std::int64_t total = dist + e.distance;
                        if (best < 0 || total < best)
                            best = total;
                    } else if (!visited.count(e.to)) {
                        visited.insert(e.to);
                        dfs(e.to, dist + e.distance);
                        visited.erase(e.to);
                    }
                }
            };
        visited.insert(start);
        dfs(start, 0);
    }
    return best < 1 ? 1 : best;
}

} // namespace

LoopAnalysis
analyzeInnerLoop(const ir::Kernel &kernel, const NestPath &nest,
                 const AnalysisParams &params)
{
    LoopAnalysis out;
    const Stmt &inner = *nest.inner();
    const std::string inner_var = inner.var;

    // ------------------------------------------------------------------
    // 1. Collect references, in execution order, tagging writes.
    // ------------------------------------------------------------------
    struct Site
    {
        const Expr *expr;
        int stmtPos;
        bool isWrite;
    };
    std::vector<Site> sites;
    int pos = 0;
    std::function<void(const Stmt &)> collect = [&](const Stmt &s) {
        std::vector<const Expr *> in_stmt;
        if (s.kind == Stmt::Kind::Assign) {
            // RHS refs (reads), then subscript refs of the LHS (reads),
            // then the LHS itself (write).
            collectRefsInExpr(*s.rhs, in_stmt);
            for (const Expr *e : in_stmt)
                sites.push_back({e, pos, false});
            in_stmt.clear();
            for (const auto &child : s.lhs->children)
                collectRefsInExpr(*child, in_stmt);
            for (const Expr *e : in_stmt)
                sites.push_back({e, pos, false});
            if (s.lhs->isMemRef())
                sites.push_back({s.lhs.get(), pos, true});
        } else if (s.kind == Stmt::Kind::FlagSet ||
                   s.kind == Stmt::Kind::FlagWait) {
            // Synchronization accesses are not clustering candidates.
        }
        ++pos;
        for (const auto &child : s.body)
            collect(*child);
    };
    for (const auto &child : inner.body)
        collect(*child);
    // Pointer-chase advance load, conceptually at the end of the body.
    if (inner.kind == Stmt::Kind::PtrLoop && inner.rhs) {
        std::vector<const Expr *> in_stmt;
        collectRefsInExpr(*inner.rhs, in_stmt);
        for (const Expr *e : in_stmt)
            sites.push_back({e, pos, false});
    }

    // ------------------------------------------------------------------
    // 2. Classify each reference. A subscript is only "regular" if it
    // is affine over variables that are not redefined inside the loop
    // body (a subscript through a body-defined scalar — e.g. an index
    // loaded from memory — is indirect addressing, hence irregular).
    // ------------------------------------------------------------------
    std::set<std::string> body_defined;
    {
        std::function<void(const Stmt &)> scan_defs = [&](const Stmt &s) {
            if (s.kind == Stmt::Kind::Assign &&
                s.lhs->kind == Expr::Kind::VarRef)
                body_defined.insert(s.lhs->var);
            for (const auto &child : s.body)
                scan_defs(*child);
        };
        for (const auto &child : inner.body)
            scan_defs(*child);
        if (inner.kind == Stmt::Kind::PtrLoop)
            body_defined.insert(inner.var);
    }
    for (const Site &site : sites) {
        RefInfo info;
        info.expr = site.expr;
        info.refId = site.expr->refId;
        info.isWrite = site.isWrite;
        if (site.expr->kind == Expr::Kind::ArrayRef) {
            auto linear = linearIndexForm(*site.expr);
            if (linear) {
                for (const auto &[v, coef] : linear->coefs) {
                    if (coef != 0 && v != inner_var &&
                        body_defined.count(v)) {
                        linear.reset();
                        break;
                    }
                }
            }
            if (linear) {
                info.regular = true;
                info.index = *linear;
                // Per-iteration address movement includes the loop
                // step (descending loops move backwards).
                const std::int64_t step_mult =
                    inner.kind == Stmt::Kind::Loop ? inner.step : 1;
                info.strideBytes =
                    8 * linear->coef(inner_var) * step_mult;
                info.innerInvariant = info.strideBytes == 0;
            }
        }
        out.refs.push_back(std::move(info));
    }

    const int line = params.lineBytes;
    const int n = static_cast<int>(out.refs.size());

    // ------------------------------------------------------------------
    // 3. Locality: spatial groups, leaders, L_m; cache-line edges.
    // ------------------------------------------------------------------
    std::vector<int> group_of(static_cast<size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
        RefInfo &ri = out.refs[static_cast<size_t>(i)];
        if (!ri.regular)
            continue;
        if (group_of[static_cast<size_t>(i)] >= 0)
            continue;
        // A spatial group: same array, same index shape, and constants
        // within one cache line of the group seed — a miss on the
        // leader actually brings in the members' data. Copies a line
        // or more apart (e.g. A[j][i] vs A[j+1][i] after unroll-and-
        // jam) are separate leading references; that separation is the
        // whole point of the transformation.
        std::vector<int> members{i};
        for (int j = i + 1; j < n; ++j) {
            RefInfo &rj = out.refs[static_cast<size_t>(j)];
            if (!rj.regular || rj.expr->array != ri.expr->array)
                continue;
            if (group_of[static_cast<size_t>(j)] >= 0)
                continue;
            if (rj.index.sameShape(ri.index) &&
                std::abs(rj.index.c - ri.index.c) * 8 < line)
                members.push_back(j);
        }
        // First-touched member leads (smallest constant for positive
        // stride, largest for negative).
        int leader = members[0];
        for (int m : members) {
            const auto &cm = out.refs[static_cast<size_t>(m)].index.c;
            const auto &cl = out.refs[static_cast<size_t>(leader)].index.c;
            const bool positive =
                out.refs[static_cast<size_t>(m)].strideBytes >= 0;
            if (positive ? cm < cl : cm > cl)
                leader = m;
        }
        for (int m : members)
            group_of[static_cast<size_t>(m)] = leader;

        RefInfo &lead = out.refs[static_cast<size_t>(leader)];
        if (!lead.innerInvariant) {
            lead.leading = true;
            const std::int64_t stride = std::abs(lead.strideBytes);
            lead.lm = stride < line ? std::max<std::int64_t>(line / stride,
                                                             1)
                                    : 1;
            // Self-spatial cache-line dependence, distance 1.
            if (lead.lm > 1)
                out.edges.push_back({leader, leader, false, 1});
            // Leader -> member cache-line dependences.
            for (int m : members) {
                if (m == leader)
                    continue;
                const std::int64_t delta =
                    std::abs(out.refs[static_cast<size_t>(m)].index.c -
                             lead.index.c) * 8;
                const std::int64_t dist =
                    stride > 0 ? ceilDiv(delta, stride) : 0;
                out.edges.push_back({leader, m, false, dist});
            }
        }
        for (int m : members) {
            out.refs[static_cast<size_t>(m)].groupLeader = leader;
            out.refs[static_cast<size_t>(m)].lm = lead.lm;
        }
    }
    // Irregular references lead individually (no known sharing).
    for (int i = 0; i < n; ++i) {
        RefInfo &ri = out.refs[static_cast<size_t>(i)];
        if (!ri.regular) {
            ri.leading = true;
            ri.lm = 1;
            ri.groupLeader = i;
        }
    }

    // ------------------------------------------------------------------
    // 4. Address dependences.
    // ------------------------------------------------------------------
    // 4a. Direct: a ref nested in another ref's address expression.
    auto address_children = [](const Expr &e) {
        std::vector<const Expr *> inner_refs;
        if (e.kind == Expr::Kind::ArrayRef) {
            for (const auto &sub : e.children)
                collectRefsInExpr(*sub, inner_refs);
        } else if (e.kind == Expr::Kind::Deref) {
            collectRefsInExpr(*e.children[0], inner_refs);
        }
        return inner_refs;
    };
    auto index_of_expr = [&out](const Expr *e) {
        for (size_t i = 0; i < out.refs.size(); ++i)
            if (out.refs[i].expr == e)
                return static_cast<int>(i);
        return -1;
    };
    for (int b = 0; b < n; ++b) {
        for (const Expr *a_expr :
             address_children(*out.refs[static_cast<size_t>(b)].expr)) {
            const int a = index_of_expr(a_expr);
            if (a >= 0 && a != b)
                out.edges.push_back({a, b, true, 0});
        }
    }
    // 4b. Variable-mediated: scalar defined from a load, used in an
    // address. Definitions are ordered by statement position; a use
    // before its (only) def is loop-carried (distance 1).
    struct VarDef
    {
        int stmtPos;
        std::vector<int> sourceRefs;    ///< refs feeding the value
    };
    std::map<std::string, std::vector<VarDef>> defs;
    {
        int dpos = 0;
        std::function<void(const Stmt &)> scan = [&](const Stmt &s) {
            if (s.kind == Stmt::Kind::Assign &&
                s.lhs->kind == Expr::Kind::VarRef) {
                std::vector<const Expr *> srcs;
                collectRefsInExpr(*s.rhs, srcs);
                VarDef def;
                def.stmtPos = dpos;
                for (const Expr *e : srcs) {
                    const int idx = index_of_expr(e);
                    if (idx >= 0)
                        def.sourceRefs.push_back(idx);
                }
                // Transitive through earlier defs of used variables.
                std::function<void(const Expr &)> through =
                    [&](const Expr &e) {
                        if (e.kind == Expr::Kind::VarRef &&
                            defs.count(e.var)) {
                            for (int r : defs[e.var].back().sourceRefs)
                                def.sourceRefs.push_back(r);
                        }
                        for (const auto &c : e.children)
                            through(*c);
                    };
                through(*s.rhs);
                defs[s.lhs->var].push_back(std::move(def));
            }
            ++dpos;
            for (const auto &child : s.body)
                scan(*child);
        };
        for (const auto &child : inner.body)
            scan(*child);
        // PtrLoop advance defines the loop pointer at the body's end.
        if (inner.kind == Stmt::Kind::PtrLoop && inner.rhs) {
            VarDef def;
            def.stmtPos = dpos;
            const int idx = index_of_expr(inner.rhs.get());
            if (idx >= 0)
                def.sourceRefs.push_back(idx);
            defs[inner.var].push_back(std::move(def));
        }
    }
    for (int b = 0; b < n; ++b) {
        const RefInfo &rb = out.refs[static_cast<size_t>(b)];
        // Variables appearing in b's address expression. A counted
        // loop's index is plain induction arithmetic (no dependence),
        // but a PtrLoop's variable is the chased pointer itself.
        const bool counted = inner.kind == Stmt::Kind::Loop;
        std::set<std::string> vars;
        std::function<void(const Expr &)> collect_vars =
            [&](const Expr &e) {
                if (e.kind == Expr::Kind::VarRef &&
                    (!counted || e.var != inner_var))
                    vars.insert(e.var);
                for (const auto &c : e.children)
                    collect_vars(*c);
            };
        if (rb.expr->kind == Expr::Kind::ArrayRef) {
            for (const auto &sub : rb.expr->children)
                collect_vars(*sub);
        } else {
            collect_vars(*rb.expr->children[0]);
        }
        // Statement position of b.
        int b_pos = -1;
        for (const Site &site : sites) {
            if (site.expr == rb.expr) {
                b_pos = site.stmtPos;
                break;
            }
        }
        for (const auto &v : vars) {
            const auto it = defs.find(v);
            if (it == defs.end())
                continue;  // loop-invariant address part
            // Latest def strictly before b (a use in the same statement
            // as its def reads the previous iteration's value), else
            // loop-carried from the last def.
            const VarDef *chosen = nullptr;
            bool carried = false;
            for (const auto &def : it->second) {
                if (def.stmtPos < b_pos)
                    chosen = &def;
            }
            if (chosen == nullptr) {
                chosen = &it->second.back();
                carried = true;
            }
            for (int a : chosen->sourceRefs) {
                if (a != b || carried)
                    out.edges.push_back({a, b, true, carried ? 1 : 0});
            }
        }
    }

    // ------------------------------------------------------------------
    // 5. Recurrences.
    // ------------------------------------------------------------------
    SccFinder scc_finder(n, out.edges);
    for (const auto &scc : scc_finder.sccs()) {
        bool has_edge = false;
        bool has_addr = false;
        std::set<int> members(scc.begin(), scc.end());
        for (const auto &e : out.edges) {
            if (members.count(e.from) && members.count(e.to) &&
                (scc.size() > 1 || e.from == e.to)) {
                has_edge = true;
                has_addr |= e.isAddress;
            }
        }
        if (!has_edge)
            continue;
        Recurrence rec;
        rec.refs = scc;
        rec.isAddress = has_addr;
        for (int r : scc)
            rec.numLeading += out.refs[static_cast<size_t>(r)].leading;
        rec.iota = minCycleDistance(scc, out.edges);
        if (rec.numLeading == 0)
            continue;  // no miss references: irrelevant (Section 3.2.2)
        out.hasAddressRecurrence |= rec.isAddress;
        out.hasCacheLineRecurrence |= !rec.isAddress;
        out.recurrences.push_back(std::move(rec));
    }
    for (const auto &rec : out.recurrences)
        out.alpha = std::max(out.alpha, rec.alpha());

    // ------------------------------------------------------------------
    // 6. The f model (Equations 1-4).
    // ------------------------------------------------------------------
    out.bodyInstrs = params.bodySize ? params.bodySize(kernel, inner)
                                     : estimateBodySize(inner);
    out.dynUnroll = std::max<int>(
        1, static_cast<int>(ceilDiv(params.windowSize, out.bodyInstrs)));

    for (const auto &ref : out.refs) {
        if (!ref.leading)
            continue;
        double cm;
        if (out.hasAddressRecurrence) {
            cm = 1.0;   // Equation 1, address-recurrence case
        } else {
            cm = static_cast<double>(ceilDiv(
                params.windowSize,
                out.bodyInstrs * std::max<std::int64_t>(ref.lm, 1)));
            cm = std::max(cm, 1.0);
        }
        if (ref.regular) {
            out.freg += cm;                             // Equation 3
        } else {
            const double pm =
                params.missRate ? params.missRate(ref.refId) : 1.0;
            out.firregRaw += pm * cm;                   // Equation 4
        }
    }
    out.firreg = static_cast<int>(std::ceil(out.firregRaw - 1e-9));
    out.f = out.freg + out.firreg;                      // Equation 2
    return out;
}

} // namespace mpc::analysis
