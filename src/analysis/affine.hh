/**
 * @file
 * Affine-form extraction for subscript expressions: rewrite an integer
 * expression as sum(coef_v * v) + c over variables. Used by the
 * locality analysis (strides, spatial groups) and the dependence tests.
 */

#ifndef MPC_ANALYSIS_AFFINE_HH
#define MPC_ANALYSIS_AFFINE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ir/kernel.hh"

namespace mpc::analysis
{

/**
 * An affine combination of variables plus a constant. Variables may be
 * loop indices or symbolic scalars — what matters for locality is which
 * coefficients differ between two references.
 */
struct AffineForm
{
    std::map<std::string, std::int64_t> coefs;
    std::int64_t c = 0;

    /** Coefficient of @p var (0 if absent). */
    std::int64_t
    coef(const std::string &var) const
    {
        const auto it = coefs.find(var);
        return it == coefs.end() ? 0 : it->second;
    }

    /** True if the two forms have identical coefficients (possibly
     *  different constants). */
    bool
    sameShape(const AffineForm &other) const
    {
        // Compare ignoring zero entries.
        auto nonzero = [](const AffineForm &f) {
            std::map<std::string, std::int64_t> m;
            for (const auto &[v, k] : f.coefs)
                if (k != 0)
                    m[v] = k;
            return m;
        };
        return nonzero(*this) == nonzero(other);
    }

    AffineForm &
    operator+=(const AffineForm &other)
    {
        for (const auto &[v, k] : other.coefs)
            coefs[v] += k;
        c += other.c;
        return *this;
    }

    AffineForm &
    operator*=(std::int64_t scale)
    {
        for (auto &[v, k] : coefs)
            k *= scale;
        c *= scale;
        return *this;
    }
};

/**
 * Try to express @p expr as an affine form. Returns nullopt when the
 * expression is not affine (contains memory references, divisions, or
 * products of two variables) — such subscripts make the reference
 * irregular.
 */
std::optional<AffineForm> affineOf(const ir::Expr &expr);

/** Evaluate @p expr if it is a compile-time integer constant. */
std::optional<std::int64_t> constEval(const ir::Expr &expr);

/**
 * Linearized element-index form of an ArrayRef: the row-major index as
 * an affine form over variables. nullopt if any subscript is
 * non-affine.
 */
std::optional<AffineForm> linearIndexForm(const ir::Expr &array_ref);

} // namespace mpc::analysis

#endif // MPC_ANALYSIS_AFFINE_HH
