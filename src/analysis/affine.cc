#include "analysis/affine.hh"

#include "common/logging.hh"

namespace mpc::analysis
{

std::optional<std::int64_t>
constEval(const ir::Expr &expr)
{
    using K = ir::Expr::Kind;
    switch (expr.kind) {
      case K::IntConst:
        return expr.ival;
      case K::Bin: {
        const auto a = constEval(*expr.children[0]);
        const auto b = constEval(*expr.children[1]);
        if (!a || !b)
            return std::nullopt;
        switch (expr.bop) {
          case ir::BinOp::Add: return *a + *b;
          case ir::BinOp::Sub: return *a - *b;
          case ir::BinOp::Mul: return *a * *b;
          case ir::BinOp::Div: return *b != 0
                ? std::optional<std::int64_t>(*a / *b) : std::nullopt;
          case ir::BinOp::Mod: return *b != 0
                ? std::optional<std::int64_t>(*a % *b) : std::nullopt;
          case ir::BinOp::Min: return std::min(*a, *b);
          case ir::BinOp::Max: return std::max(*a, *b);
        }
        return std::nullopt;
      }
      case K::Un:
        if (expr.uop == ir::UnOp::Neg) {
            const auto a = constEval(*expr.children[0]);
            if (a)
                return -*a;
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

std::optional<AffineForm>
affineOf(const ir::Expr &expr)
{
    using K = ir::Expr::Kind;
    AffineForm form;
    switch (expr.kind) {
      case K::IntConst:
        form.c = expr.ival;
        return form;
      case K::VarRef:
        form.coefs[expr.var] = 1;
        return form;
      case K::Bin: {
        if (expr.bop == ir::BinOp::Add || expr.bop == ir::BinOp::Sub) {
            auto a = affineOf(*expr.children[0]);
            auto b = affineOf(*expr.children[1]);
            if (!a || !b)
                return std::nullopt;
            if (expr.bop == ir::BinOp::Sub)
                *b *= -1;
            *a += *b;
            return a;
        }
        if (expr.bop == ir::BinOp::Mul) {
            // One side must be a compile-time constant.
            const auto ka = constEval(*expr.children[0]);
            const auto kb = constEval(*expr.children[1]);
            if (ka) {
                auto b = affineOf(*expr.children[1]);
                if (!b)
                    return std::nullopt;
                *b *= *ka;
                return b;
            }
            if (kb) {
                auto a = affineOf(*expr.children[0]);
                if (!a)
                    return std::nullopt;
                *a *= *kb;
                return a;
            }
            return std::nullopt;
        }
        return std::nullopt;
      }
      case K::Un:
        if (expr.uop == ir::UnOp::Neg) {
            auto a = affineOf(*expr.children[0]);
            if (!a)
                return std::nullopt;
            *a *= -1;
            return a;
        }
        return std::nullopt;
      default:
        // Memory references, float constants: not affine.
        return std::nullopt;
    }
}

std::optional<AffineForm>
linearIndexForm(const ir::Expr &array_ref)
{
    MPC_ASSERT(array_ref.kind == ir::Expr::Kind::ArrayRef,
               "linearIndexForm needs an ArrayRef");
    const ir::Array &array = *array_ref.array;
    AffineForm total;
    std::int64_t row_stride = 1;
    // Row-major: last dimension contiguous; accumulate from the last
    // subscript backwards.
    for (size_t d = array.dims.size(); d-- > 0;) {
        auto sub = affineOf(*array_ref.children[d]);
        if (!sub)
            return std::nullopt;
        *sub *= row_stride;
        total += *sub;
        row_stride *= array.dims[d];
    }
    return total;
}

} // namespace mpc::analysis
