/**
 * @file
 * The paper's memory-parallelism analysis (Section 3).
 *
 * For an innermost loop, this pass:
 *  1. collects memory references and classifies them regular/irregular;
 *  2. runs locality analysis: spatial reference groups, leading
 *     references, inner-loop self-spatial locality (L_m);
 *  3. builds the memory-parallelism dependence graph with cache-line
 *     and address dependence edges (with iteration distances);
 *  4. finds recurrences (SCCs), classifies them cache-line vs address,
 *     and computes alpha = max R / iota;
 *  5. estimates per-iteration memory parallelism f = f_reg + f_irreg
 *     via C_m = ceil(W / (i * L_m)) (Equations 1-4), accounting for
 *     dynamic inner-loop unrolling by the instruction window and for
 *     irregular miss rates P_m.
 */

#ifndef MPC_ANALYSIS_ANALYSIS_HH
#define MPC_ANALYSIS_ANALYSIS_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/affine.hh"
#include "ir/kernel.hh"

namespace mpc::analysis
{

/** Chain of loops from outermost to the innermost loop under analysis. */
struct NestPath
{
    std::vector<ir::Stmt *> loops;

    ir::Stmt *inner() const { return loops.back(); }
    ir::Stmt *outer(int levels_up = 1) const
    {
        const int idx = static_cast<int>(loops.size()) - 1 - levels_up;
        return idx >= 0 ? loops[static_cast<size_t>(idx)] : nullptr;
    }
    int depth() const { return static_cast<int>(loops.size()); }
};

/** All innermost loops of a kernel with their enclosing loop chains. */
std::vector<NestPath> findLoopNests(ir::Kernel &kernel);

/** One classified memory reference. */
struct RefInfo
{
    const ir::Expr *expr = nullptr;     ///< ArrayRef or Deref
    int refId = -1;
    bool isWrite = false;
    bool regular = false;               ///< affine ArrayRef
    AffineForm index;                   ///< element-index form (regular)
    std::int64_t strideBytes = 0;       ///< wrt the inner loop var
    bool innerInvariant = false;        ///< stride 0 (temporal reuse)
    // Locality results:
    bool leading = false;               ///< can miss (group leader)
    int groupLeader = -1;               ///< index of this ref's leader
    std::int64_t lm = 1;                ///< iterations per cache line
};

/** A dependence edge in the memory-parallelism graph. */
struct DepEdge
{
    int from = -1;                      ///< RefInfo index
    int to = -1;
    bool isAddress = false;             ///< else cache-line
    std::int64_t distance = 0;          ///< inner-loop iterations
};

/** A recurrence (a non-trivial SCC of the dependence graph). */
struct Recurrence
{
    std::vector<int> refs;              ///< RefInfo indices in the SCC
    bool isAddress = false;             ///< contains an address edge
    int numLeading = 0;                 ///< R: leading refs in the SCC
    std::int64_t iota = 1;              ///< iterations around the cycle
    double alpha() const
    {
        return static_cast<double>(numLeading) /
               static_cast<double>(std::max<std::int64_t>(iota, 1));
    }
};

/** Tunables and environment for the analysis. */
struct AnalysisParams
{
    int windowSize = 64;        ///< W
    int lp = 10;                ///< simultaneous outstanding misses
    int lineBytes = 64;

    /**
     * Static instruction count of one inner-loop iteration (the `i`
     * parameter). Supplied by the code generator; a crude default
     * estimator is used when absent. Receives the kernel owning the
     * loop (the lowering needs its arrays and scalar types).
     */
    std::function<int(const ir::Kernel &, const ir::Stmt &inner)> bodySize;

    /** Measured miss rate P_m per refId for irregular references
     *  (cache profiling); defaults to 1.0. */
    std::function<double(int ref_id)> missRate;
};

/** Complete analysis result for one innermost loop. */
struct LoopAnalysis
{
    std::vector<RefInfo> refs;
    std::vector<DepEdge> edges;
    std::vector<Recurrence> recurrences;

    bool hasAddressRecurrence = false;
    bool hasCacheLineRecurrence = false;
    double alpha = 0.0;         ///< max over recurrences (0 if none)

    int bodyInstrs = 0;         ///< i
    int dynUnroll = 1;          ///< ceil(W / i)

    double freg = 0.0;
    double firregRaw = 0.0;     ///< sum P_m * C_m before rounding
    int firreg = 0;
    double f = 0.0;             ///< Equation 2

    /** Number of leading references. */
    int numLeading() const;

    std::string toString() const;
};

/** Analyze the innermost loop of @p nest within @p kernel. */
LoopAnalysis analyzeInnerLoop(const ir::Kernel &kernel,
                              const NestPath &nest,
                              const AnalysisParams &params);

/**
 * Fallback body-size estimator: counts IR operations (memory refs,
 * arithmetic nodes, loop overhead) as a proxy for lowered instruction
 * count. The driver normally wires the real codegen-based counter.
 */
int estimateBodySize(const ir::Stmt &inner);

} // namespace mpc::analysis

#endif // MPC_ANALYSIS_ANALYSIS_HH
