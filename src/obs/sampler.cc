#include "obs/sampler.hh"

#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace mpc::obs
{

Sampler::Sampler(Tick period, const MetricsRegistry *registry)
    : period_(period), registry_(registry)
{
    MPC_ASSERT(period_ > 0, "sampler period must be positive");
    MPC_ASSERT(registry_ != nullptr, "sampler needs a registry");
}

void
Sampler::addNode(int node, MissTracker *tracker)
{
    MPC_ASSERT(!began_, "sampler node added after begin()");
    nodes_.push_back({node, tracker, {}});
}

void
Sampler::addCore(int core_id, const CoreObs *core)
{
    MPC_ASSERT(!began_, "sampler core added after begin()");
    cores_.push_back({core_id, core, {}});
}

void
Sampler::begin(Tick start)
{
    began_ = true;
    nextDue_ = start + period_;
    lastValues_ = registry_->snapshot();
    for (Node &n : nodes_)
        n.last = snapMlp(*n.tracker);
    for (Core &c : cores_)
        c.last = c.obs->taxonomy();
}

Sampler::MlpSnap
Sampler::snapMlp(const MissTracker &tracker)
{
    const OccupancyHistogram &h = tracker.mlpHistogram();
    MlpSnap s;
    s.total = h.totalTicks();
    for (int level = 1; level <= h.maxLevel(); ++level) {
        const Tick ticks = h.ticksAt(level);
        s.ticks1 += ticks;
        s.weighted1 += static_cast<double>(ticks) * level;
    }
    return s;
}

void
Sampler::sampleAt(Tick t)
{
    MPC_ASSERT(began_, "sampleAt before begin()");
    // Keep timestamps strictly monotonic: finalize() at an exact epoch
    // boundary, or a duplicate boundary hit, contributes nothing.
    if (!epochs_.empty() && t <= epochs_.back().t)
        return;

    Epoch e;
    e.t = t;

    // Registry: counters as deltas, gauges as-is.
    const auto &metrics = registry_->metrics();
    std::vector<std::uint64_t> values = registry_->snapshot();
    e.metrics.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        e.metrics[i] = metrics[i].isGauge
                           ? values[i]
                           : values[i] - lastValues_[i];
    lastValues_ = std::move(values);

    // Per-node MLP: charge tracker time up to the boundary (sync is
    // the idempotent no-transition path), then diff the cumulative
    // histogram sums.
    for (Node &n : nodes_) {
        n.tracker->sync(t);
        const MlpSnap cur = snapMlp(*n.tracker);
        const double w1 = cur.weighted1 - n.last.weighted1;
        const Tick t1 = cur.ticks1 - n.last.ticks1;
        const Tick total = cur.total - n.last.total;
        NodeEpoch ne;
        ne.node = n.node;
        ne.mlp = t1 > 0 ? w1 / static_cast<double>(t1) : 0.0;
        ne.busyFrac = total > 0 ? static_cast<double>(t1) /
                                      static_cast<double>(total)
                                : 0.0;
        e.nodes.push_back(ne);
        n.last = cur;
    }

    // Per-core stall taxonomy deltas: successive differences of the
    // cumulative taxonomy, so summing every epoch (plus the final
    // partial one) reproduces the aggregate exactly.
    for (Core &c : cores_) {
        const StallTaxonomy &cur = c.obs->taxonomy();
        CoreEpoch ce;
        ce.core = c.core;
        for (int i = 0; i < numStallWhy; ++i)
            ce.stalls[i] = cur.slots[i] - c.last.slots[i];
        e.cores.push_back(ce);
        c.last = cur;
    }

    epochs_.push_back(std::move(e));
    while (nextDue_ <= t)
        nextDue_ += period_;
}

void
Sampler::finalize(Tick now)
{
    if (!began_)
        return;
    // The run rarely ends on an epoch boundary; emit the remainder so
    // the epoch series tiles the aggregates with nothing left over.
    sampleAt(now);
}

std::string
Sampler::toJson(const std::string &manifest_json) const
{
    std::ostringstream out;
    out << "{\n\"schema\": \"mpc-samples-v1\",\n";
    out << "\"manifest\": "
        << (manifest_json.empty() ? "null" : manifest_json) << ",\n";
    out << strprintf("\"period\": %llu,\n",
                     static_cast<unsigned long long>(period_));
    out << strprintf("\"epochCount\": %zu,\n", epochs_.size());

    out << "\"metricNames\": [";
    const auto &metrics = registry_->metrics();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        out << (i > 0 ? ", " : "");
        std::string quoted;
        json::escape(quoted, metrics[i].name);
        out << quoted;
    }
    out << "],\n\"metricKinds\": [";
    for (std::size_t i = 0; i < metrics.size(); ++i)
        out << (i > 0 ? ", " : "")
            << (metrics[i].isGauge ? "\"gauge\"" : "\"counter\"");
    out << "],\n\"epochs\": [\n";

    for (std::size_t n = 0; n < epochs_.size(); ++n) {
        const Epoch &e = epochs_[n];
        out << (n > 0 ? ",\n" : "");
        out << strprintf("{\"t\": %llu, \"metrics\": [",
                         static_cast<unsigned long long>(e.t));
        for (std::size_t i = 0; i < e.metrics.size(); ++i)
            out << (i > 0 ? ", " : "")
                << strprintf("%llu", static_cast<unsigned long long>(
                                         e.metrics[i]));
        out << "], \"nodes\": [";
        for (std::size_t i = 0; i < e.nodes.size(); ++i) {
            const NodeEpoch &ne = e.nodes[i];
            out << (i > 0 ? ", " : "")
                << strprintf("{\"node\": %d, \"mlp\": %.6f, "
                             "\"busyFrac\": %.6f}",
                             ne.node, ne.mlp, ne.busyFrac);
        }
        out << "], \"cores\": [";
        for (std::size_t i = 0; i < e.cores.size(); ++i) {
            const CoreEpoch &ce = e.cores[i];
            out << (i > 0 ? ", " : "")
                << strprintf("{\"core\": %d, \"stalls\": {", ce.core);
            for (int w = 0; w < numStallWhy; ++w)
                out << (w > 0 ? ", " : "")
                    << strprintf(
                           "\"%s\": %llu",
                           stallWhyName(static_cast<StallWhy>(w)),
                           static_cast<unsigned long long>(ce.stalls[w]));
            out << "}}";
        }
        out << "]}";
    }
    out << "\n]}\n";
    return out.str();
}

bool
Sampler::writeJson(const std::string &path,
                   const std::string &manifest_json) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = toJson(manifest_json);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return (std::fclose(f) == 0) && ok;
}

} // namespace mpc::obs
