/**
 * @file
 * Ring-buffer event tracer with Chrome-trace JSON export.
 *
 * Promoted from the validation layer's failure-only buffer into a
 * standalone backend shared by every producer of timeline data: the
 * validator's dispatch/retire/audit instants, the per-core stall spans,
 * the per-miss lifetime spans (MSHR allocation to fill), and the MSHR
 * occupancy counter tracks. One format, one dump path: a validation
 * failure dump and an end-of-run MPC_TRACE dump are both flushes of
 * this buffer.
 *
 * Recording is O(1) and allocation-free after construction (names must
 * be static strings; the ring holds fixed-size events and overwrites
 * the oldest once full). Export sorts the retained events by timestamp
 * — spans are recorded at their *end*, so raw ring order is not
 * chronological — and emits chrome://tracing "i" (instant), "X"
 * (complete/span), and "C" (counter) events plus thread_name metadata
 * for the registered tracks.
 */

#ifndef MPC_OBS_TRACE_HH
#define MPC_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mpc::obs
{

/** One recorded trace event (fixed size; names must be static strings). */
struct TraceEvent
{
    Tick ts = 0;                ///< start tick (instant/counter: the tick)
    Tick dur = 0;               ///< span length (0 for instants/counters)
    std::int32_t tid = -1;      ///< track id (core id, or a derived track)
    std::uint8_t phase = 0;     ///< Tracer::Phase
    const char *name = nullptr;
    std::uint64_t a0 = 0;       ///< args.a0 (counters: the value)
    std::uint64_t a1 = 0;
};

/**
 * Bounded ring buffer of TraceEvents with Chrome-trace JSON export.
 */
class Tracer
{
  public:
    enum Phase : std::uint8_t { Instant = 0, Span = 1, Counter = 2 };

    explicit Tracer(std::size_t capacity)
        : ring_(capacity > 0 ? capacity : 1)
    {}

    /** Record an instant event at @p tick on track @p tid. */
    void
    record(Tick tick, int tid, const char *name, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0)
    {
        push({tick, 0, tid, Instant, name, a0, a1});
    }

    /** Record a completed span [@p start, @p end] on track @p tid. */
    void
    span(Tick start, Tick end, int tid, const char *name,
         std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        push({start, end > start ? end - start : 1, tid, Span, name, a0,
              a1});
    }

    /** Record a counter sample (rendered as a stacked-area track). */
    void
    counter(Tick tick, int tid, const char *name, std::uint64_t value)
    {
        push({tick, 0, tid, Counter, name, value, 0});
    }

    /** Name track @p tid in the exported trace (metadata, not ringed). */
    void setTrackName(int tid, std::string name)
    {
        trackNames_[tid] = std::move(name);
    }

    /** Events currently retained (<= capacity). */
    std::size_t
    size() const
    {
        return count_ < ring_.size() ? static_cast<std::size_t>(count_)
                                     : ring_.size();
    }

    /** Events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return count_; }

    /** Events overwritten by ring wrap-around (lost from any dump). */
    std::uint64_t
    dropped() const
    {
        return count_ > ring_.size() ? count_ - ring_.size() : 0;
    }

    std::size_t capacity() const { return ring_.size(); }

    /**
     * Serialize recording for multi-threaded producers (the sharded
     * stepper's parallel core phase). Ring *slot* order for same-tick
     * events from different shards then depends on lock acquisition
     * order, so a trace dump is not byte-stable across sharded runs;
     * the dump's timestamp sort keeps it semantically equivalent.
     * Simulation results are never derived from the trace.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    /**
     * Write the retained events as a chrome://tracing JSON document,
     * sorted by timestamp (ties keep recording order). @return false on
     * I/O error.
     */
    bool dumpChromeJson(const std::string &path) const;

  private:
    void
    push(TraceEvent e)
    {
        if (concurrent_) {
            std::lock_guard<std::mutex> guard(mu_);
            ring_[count_ % ring_.size()] = e;
            ++count_;
            return;
        }
        ring_[count_ % ring_.size()] = e;
        ++count_;
    }

    std::vector<TraceEvent> ring_;
    std::uint64_t count_ = 0;
    std::map<int, std::string> trackNames_;
    std::mutex mu_;
    bool concurrent_ = false;
};

} // namespace mpc::obs

#endif // MPC_OBS_TRACE_HH
