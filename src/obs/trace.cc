#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>

namespace mpc::obs
{

bool
Tracer::dumpChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;

    // Gather retained events oldest-first, then order by timestamp:
    // spans enter the ring at completion time with ts = start, so ring
    // order alone is not chronological.
    const std::size_t n = size();
    const std::uint64_t first = count_ - n;
    std::vector<TraceEvent> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        events.push_back(ring_[(first + i) % ring_.size()]);
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts < b.ts;
                     });

    std::fputs("{\"traceEvents\":[\n", f);
    bool sep = false;
    for (const auto &[tid, name] : trackNames_) {
        std::fprintf(f,
                     "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                     "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                     sep ? ",\n" : "", tid, name.c_str());
        sep = true;
    }
    for (const TraceEvent &e : events) {
        const char *name = e.name != nullptr ? e.name : "?";
        switch (e.phase) {
          case Instant:
            std::fprintf(
                f,
                "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                "\"tid\":%d,\"ts\":%llu,"
                "\"args\":{\"a0\":%llu,\"a1\":%llu}}",
                sep ? ",\n" : "", name, e.tid,
                static_cast<unsigned long long>(e.ts),
                static_cast<unsigned long long>(e.a0),
                static_cast<unsigned long long>(e.a1));
            break;
          case Span:
            std::fprintf(
                f,
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
                "\"ts\":%llu,\"dur\":%llu,"
                "\"args\":{\"a0\":%llu,\"a1\":%llu}}",
                sep ? ",\n" : "", name, e.tid,
                static_cast<unsigned long long>(e.ts),
                static_cast<unsigned long long>(e.dur),
                static_cast<unsigned long long>(e.a0),
                static_cast<unsigned long long>(e.a1));
            break;
          case Counter:
            std::fprintf(
                f,
                "%s{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":%d,"
                "\"ts\":%llu,\"args\":{\"value\":%llu}}",
                sep ? ",\n" : "", name, e.tid,
                static_cast<unsigned long long>(e.ts),
                static_cast<unsigned long long>(e.a0));
            break;
          default:
            continue;
        }
        sep = true;
    }
    // Footer: how many events the ring overwrote before this dump. A
    // non-zero count means the timeline has a hole at its old end —
    // say so on stderr too, since nothing in the JSON is eye-catching.
    const std::uint64_t lost = dropped();
    std::fprintf(f, "\n],\n\"dropped_events\":%llu}\n",
                 static_cast<unsigned long long>(lost));
    if (lost > 0)
        std::fprintf(stderr,
                     "obs: trace ring overflowed: %llu event(s) dropped "
                     "(capacity %zu); oldest events are missing from %s\n",
                     static_cast<unsigned long long>(lost),
                     ring_.size(), path.c_str());
    return std::fclose(f) == 0;
}

} // namespace mpc::obs
