#include "obs/metrics.hh"

#include <sstream>

#include "common/logging.hh"

namespace mpc::obs
{

const char *
stallWhyName(StallWhy why)
{
    static const char *const names[numStallWhy] = {
        "stall.leader",      "stall.line-dep",  "stall.addr-dep",
        "stall.mshr-full",   "stall.window-full", "stall.sync",
        "stall.store",       "stall.cpu",       "stall.other",
    };
    return names[static_cast<int>(why)];
}

// --- MissTracker -----------------------------------------------------

MissTracker::MissTracker(int node, int num_mshrs, Tracer *tracer)
    : node_(node), tracer_(tracer), mlp_(num_mshrs)
{
    if (tracer_ != nullptr) {
        tracer_->setTrackName(missTrackId(),
                              strprintf("node %d misses", node));
        tracer_->setTrackName(counterTrackId(),
                              strprintf("node %d mshr", node));
    }
}

void
MissTracker::advance(Tick now, int reads, int total)
{
    MPC_ASSERT(now >= lastChange_, "obs time went backwards");
    const Tick elapsed = now - lastChange_;
    if (elapsed > 0)
        mlp_.record(lastReads_, elapsed);
    lastChange_ = now;

    // Cluster bookkeeping: a cluster spans the interval with >= 1 read
    // miss outstanding; its size is the number of read-miss arrivals.
    if (reads > lastReads_) {
        clusterArrivals_ += reads - lastReads_;
    } else if (reads == 0 && lastReads_ > 0) {
        clusters_.record(clusterArrivals_);
        clusterArrivals_ = 0;
    }

    if (tracer_ != nullptr && (reads != lastReads_ || total != lastTotal_)) {
        tracer_->counter(now, counterTrackId(), "mshr.read",
                         static_cast<std::uint64_t>(reads));
        tracer_->counter(now, counterTrackId(), "mshr.total",
                         static_cast<std::uint64_t>(total));
    }
    lastReads_ = reads;
    lastTotal_ = total;
}

void
MissTracker::missIssued(Tick now, std::uint64_t line_addr, bool is_load,
                        int read_occupancy, int total_occupancy)
{
    (void)line_addr;
    (void)is_load;
    advance(now, read_occupancy, total_occupancy);
}

void
MissTracker::missCoalesced(Tick now, std::uint64_t line_addr,
                           bool is_load, int read_occupancy,
                           int total_occupancy)
{
    (void)line_addr;
    (void)is_load;
    // A load coalescing into a write-only entry raises read occupancy.
    advance(now, read_occupancy, total_occupancy);
}

void
MissTracker::missFilled(Tick now, std::uint64_t line_addr,
                        Tick alloc_tick, bool had_read,
                        int read_occupancy, int total_occupancy)
{
    advance(now, read_occupancy, total_occupancy);
    if (tracer_ != nullptr)
        tracer_->span(alloc_tick, now, missTrackId(),
                      had_read ? "miss.read" : "miss.write", line_addr,
                      static_cast<std::uint64_t>(node_));
}

void
MissTracker::finalize(Tick now)
{
    advance(now, lastReads_, lastTotal_);
    if (clusterArrivals_ > 0) {
        // Open cluster at end of run (should not happen on clean runs;
        // graceful watchdog stops can leave one).
        clusters_.record(clusterArrivals_);
        clusterArrivals_ = 0;
    }
}

// --- CoreObs ---------------------------------------------------------

CoreObs::CoreObs(int core_id, Tracer *tracer, MissTracker *tracker)
    : coreId_(core_id), tracer_(tracer), tracker_(tracker)
{
    if (tracer_ != nullptr)
        tracer_->setTrackName(core_id, strprintf("core %d", core_id));
}

void
CoreObs::stallRange(Tick from, Tick to, StallWhy why, std::uint64_t slots)
{
    taxonomy_.add(why, slots);
    if (tracer_ == nullptr)
        return;
    if (spanOpen_ && why == spanWhy_ && from <= spanEnd_) {
        spanEnd_ = to;
        return;
    }
    if (spanOpen_)
        tracer_->span(spanStart_, spanEnd_, coreId_,
                      stallWhyName(spanWhy_));
    spanOpen_ = true;
    spanStart_ = from;
    spanEnd_ = to;
    spanWhy_ = why;
}

void
CoreObs::finalize(Tick now)
{
    (void)now;
    if (spanOpen_ && tracer_ != nullptr)
        tracer_->span(spanStart_, spanEnd_, coreId_,
                      stallWhyName(spanWhy_));
    spanOpen_ = false;
}

// --- RunMetrics ------------------------------------------------------

std::string
RunMetrics::toString() const
{
    std::ostringstream out;
    out << strprintf("measured MLP (mean reads outstanding | >=1): %.3f\n",
                     mlpMean());
    out << strprintf("time with >=1 read miss outstanding: %s\n",
                     fmtPercent(mlp.fracAtLeast(1)).c_str());
    out << "MLP histogram (fraction of time at >= N outstanding reads):\n";
    for (int level = 1; level <= mlp.maxLevel(); ++level) {
        const double frac = mlp.fracAtLeast(level);
        if (frac <= 0.0 && level > 1)
            break;
        out << strprintf("  >=%2d: %s\n", level,
                         fmtPercent(frac).c_str());
    }
    out << strprintf("miss clusters: %llu (mean size %.2f)\n",
                     static_cast<unsigned long long>(
                         clusterSizes.total()),
                     clusterSizes.mean());
    for (int size = 1; size <= clusterSizes.maxRecorded(); ++size)
        if (clusterSizes.countAt(size) > 0)
            out << strprintf("  size %2d: %llu\n", size,
                             static_cast<unsigned long long>(
                                 clusterSizes.countAt(size)));
    out << strprintf("stall taxonomy (%llu slots):\n",
                     static_cast<unsigned long long>(stall.total()));
    const std::uint64_t total = stall.total();
    for (int i = 0; i < numStallWhy; ++i) {
        const auto why = static_cast<StallWhy>(i);
        if (stall.at(why) == 0)
            continue;
        out << strprintf(
            "  %-18s %12llu  %s\n", stallWhyName(why),
            static_cast<unsigned long long>(stall.at(why)),
            fmtPercent(total > 0 ? static_cast<double>(stall.at(why)) /
                                       static_cast<double>(total)
                                 : 0.0)
                .c_str());
    }
    return out.str();
}

std::string
RunMetrics::toJson() const
{
    std::ostringstream out;
    out << "{";
    out << strprintf("\"mlpMean\": %.6f, ", mlpMean());
    out << strprintf("\"fracAtLeastOneRead\": %.6f, ",
                     mlp.fracAtLeast(1));
    out << "\"mlpFracAtLeast\": [";
    for (int level = 0; level <= mlp.maxLevel(); ++level)
        out << strprintf("%s%.6f", level > 0 ? ", " : "",
                         mlp.fracAtLeast(level));
    out << "], \"clusterSizes\": {";
    bool sep = false;
    for (int size = 0; size <= clusterSizes.maxRecorded(); ++size) {
        if (clusterSizes.countAt(size) == 0)
            continue;
        out << strprintf("%s\"%d\": %llu", sep ? ", " : "", size,
                         static_cast<unsigned long long>(
                             clusterSizes.countAt(size)));
        sep = true;
    }
    out << strprintf("}, \"clusterMeanSize\": %.6f, ",
                     clusterSizes.mean());
    out << "\"stallSlots\": {";
    for (int i = 0; i < numStallWhy; ++i) {
        const auto why = static_cast<StallWhy>(i);
        out << strprintf("%s\"%s\": %llu", i > 0 ? ", " : "",
                         stallWhyName(why),
                         static_cast<unsigned long long>(stall.at(why)));
    }
    out << "}, \"perRef\": {";
    bool ref_sep = false;
    for (const auto &[ref_id, r] : perRef) {
        out << strprintf(
            "%s\"%u\": {\"misses\": %llu, \"coalesced\": %llu, "
            "\"meanLatency\": %.3f, \"meanOverlap\": %.3f}",
            ref_sep ? ", " : "", ref_id,
            static_cast<unsigned long long>(r.misses),
            static_cast<unsigned long long>(r.coalesced),
            r.latency.mean(), r.overlap.mean());
        ref_sep = true;
    }
    out << "}}";
    return out.str();
}

} // namespace mpc::obs
