/**
 * @file
 * Miss-clustering metrics: the quantities the paper's argument turns on
 * but the basic stats never measured directly.
 *
 *  - MLP histogram: time-weighted outstanding read misses at the lowest
 *    cache level (the lp resource). Its conditional mean at level >= 1
 *    is the measured memory parallelism to compare against the
 *    analysis layer's predicted f = f_reg + f_irreg (Equations 1-4).
 *  - Cluster-size distribution: one cluster = a maximal interval during
 *    which at least one read miss is outstanding; its size = read-miss
 *    arrivals during the interval. Transformed code should shift mass
 *    from size-1 clusters toward size-lp clusters.
 *  - Stall taxonomy: every retire-slot stall the core charges, broken
 *    down by *why* the head could not retire — leading read miss,
 *    cache-line dependence (coalesced load), address dependence (load
 *    feeding a load), full MSHR file, full instruction window, sync,
 *    store, or plain CPU/frontend — mirroring Section 2's obstacles to
 *    overlap.
 *  - Per-static-reference miss attribution: latency and issue-time
 *    overlap per refId, connecting measured behaviour back to source
 *    references the transform reasons about.
 *
 * All collectors are driven by inline null-checked hooks (the
 * CoreMonitor pattern): an unattached collector costs one predictable
 * branch, and attaching one never changes simulation results.
 */

#ifndef MPC_OBS_METRICS_HH
#define MPC_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"

namespace mpc::obs
{

/** Why a retire slot stalled (refinement of the paper's breakdown). */
enum class StallWhy : std::uint8_t {
    Leader,     ///< head is the leading read miss of its cluster
    LineDep,    ///< head load coalesced into an outstanding line
    AddrDep,    ///< head waits on a register produced by an in-flight load
    MshrFull,   ///< head load was rejected by a full MSHR file
    WindowFull, ///< head read miss outstanding with the window full
    Sync,       ///< barrier / flag wait
    Store,      ///< store not yet retire-ready
    Cpu,        ///< frontend / functional units / empty window
    Other,      ///< drain: head completes later this cycle, AGEN, ports
};

constexpr int numStallWhy = 9;

/** Stable short name for reports and trace span labels. */
const char *stallWhyName(StallWhy why);

/** Retire-slot counters per StallWhy (slot units, like CoreStats). */
struct StallTaxonomy
{
    std::uint64_t slots[numStallWhy] = {};

    void
    add(StallWhy why, std::uint64_t n)
    {
        slots[static_cast<int>(why)] += n;
    }

    std::uint64_t at(StallWhy why) const
    {
        return slots[static_cast<int>(why)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto s : slots)
            sum += s;
        return sum;
    }

    void
    merge(const StallTaxonomy &other)
    {
        for (int i = 0; i < numStallWhy; ++i)
            slots[i] += other.slots[i];
    }
};

/** Miss behaviour of one static reference (keyed by refId). */
struct RefMissStats
{
    std::uint64_t misses = 0;       ///< loads that missed the L1
    std::uint64_t coalesced = 0;    ///< of those, rode an in-flight line
    StatSummary latency;            ///< issue -> data ready, cycles
    /** Outstanding lowest-level read misses observed right after each
     *  miss issued (its overlap with the cluster it joined). */
    StatSummary overlap;
};

/**
 * Per-node tracker of the lowest cache level's miss stream, fed by the
 * cache's MSHR transitions. Owns the MLP histogram and cluster-size
 * distribution; mirrors each transition to the tracer as counter
 * samples and per-miss lifetime spans when tracing is on.
 */
class MissTracker
{
  public:
    /**
     * @param node Node id (labels the trace tracks).
     * @param num_mshrs Histogram ceiling (the lp of this cache).
     * @param tracer Null when only metrics are collected.
     */
    MissTracker(int node, int num_mshrs, Tracer *tracer);

    /** A miss allocated an MSHR. Occupancies are post-transition. */
    void missIssued(Tick now, std::uint64_t line_addr, bool is_load,
                    int read_occupancy, int total_occupancy);

    /** An access coalesced into an outstanding MSHR. */
    void missCoalesced(Tick now, std::uint64_t line_addr, bool is_load,
                       int read_occupancy, int total_occupancy);

    /** An MSHR filled and deallocated. @p had_read mirrors Fig 4(a). */
    void missFilled(Tick now, std::uint64_t line_addr, Tick alloc_tick,
                    bool had_read, int read_occupancy,
                    int total_occupancy);

    /** Read-miss occupancy as of the last transition (overlap probe). */
    int currentReads() const { return lastReads_; }

    /** Total MSHR occupancy as of the last transition. */
    int currentTotal() const { return lastTotal_; }

    /**
     * Charge elapsed time up to @p now at the current occupancy without
     * changing it (epoch-boundary accounting for the Sampler). Same
     * no-transition path finalize() takes: idempotent, never opens or
     * closes a cluster, never emits a counter sample.
     */
    void sync(Tick now) { advance(now, lastReads_, lastTotal_); }

    /** Flush time accounting and any open cluster at end of run. */
    void finalize(Tick now);

    const OccupancyHistogram &mlpHistogram() const { return mlp_; }
    const CountHistogram &clusterSizes() const { return clusters_; }

    /** Trace track ids derived from the node id. */
    int missTrackId() const { return 1000 + node_; }
    int counterTrackId() const { return 2000 + node_; }

  private:
    /** Charge elapsed time at the previous levels, update cluster
     *  bookkeeping, and emit counter samples. */
    void advance(Tick now, int reads, int total);

    const int node_;
    Tracer *tracer_;
    OccupancyHistogram mlp_;
    CountHistogram clusters_;
    Tick lastChange_ = 0;
    int lastReads_ = 0;
    int lastTotal_ = 0;
    int clusterArrivals_ = 0;   ///< read-miss arrivals in the open cluster
};

/**
 * Per-core collector: stall taxonomy (charged at exactly the same
 * points, with exactly the same slot counts, as the core's own
 * CoreStats attribution — so taxonomy.total() equals the core's
 * non-busy slots) and per-refId miss attribution. Emits merged stall
 * spans and retire instants to the tracer when tracing is on.
 */
class CoreObs
{
  public:
    CoreObs(int core_id, Tracer *tracer, MissTracker *tracker);

    /** One window entry retired (trace instant only). */
    void
    retired(Tick now, int pc)
    {
        if (tracer_ != nullptr)
            tracer_->record(now, coreId_, "retire",
                            static_cast<std::uint64_t>(pc));
    }

    /**
     * @p slots retire slots of cycles [@p from, @p to) stalled for
     * @p why. Contiguous same-reason ranges merge into one trace span.
     */
    void stallRange(Tick from, Tick to, StallWhy why,
                    std::uint64_t slots);

    /** Outstanding read misses right now at this node's lowest cache
     *  (sampled by the core when a load issues). */
    int
    overlapNow() const
    {
        return tracker_ != nullptr ? tracker_->currentReads() : 0;
    }

    /** A load that missed the L1 completed. */
    void
    loadMiss(std::uint32_t ref_id, double latency_cycles,
             int overlap_at_issue, bool coalesced)
    {
        RefMissStats &r = perRef_[ref_id];
        ++r.misses;
        if (coalesced)
            ++r.coalesced;
        r.latency.sample(latency_cycles);
        r.overlap.sample(static_cast<double>(overlap_at_issue));
    }

    /** Flush the open stall span. */
    void finalize(Tick now);

    const StallTaxonomy &taxonomy() const { return taxonomy_; }
    const std::map<std::uint32_t, RefMissStats> &refStats() const
    {
        return perRef_;
    }

  private:
    const int coreId_;
    Tracer *tracer_;
    MissTracker *tracker_;
    StallTaxonomy taxonomy_;
    std::map<std::uint32_t, RefMissStats> perRef_;

    // Open stall span (trace only).
    bool spanOpen_ = false;
    Tick spanStart_ = 0;
    Tick spanEnd_ = 0;
    StallWhy spanWhy_ = StallWhy::Cpu;
};

/** Merged end-of-run metrics (across cores and nodes). */
struct RunMetrics
{
    bool enabled = false;
    OccupancyHistogram mlp;         ///< merged MLP histogram
    CountHistogram clusterSizes;
    StallTaxonomy stall;
    std::map<std::uint32_t, RefMissStats> perRef;

    /** Measured memory parallelism: mean MLP while >= 1 outstanding. */
    double mlpMean() const { return mlp.meanLevelAtLeast(1); }

    /** Human-readable block (mpclust --show-metrics). */
    std::string toString() const;

    /** JSON object (no trailing newline), for structured reports. */
    std::string toJson() const;
};

} // namespace mpc::obs

#endif // MPC_OBS_METRICS_HH
