/**
 * @file
 * Epoch sampler: time-resolved telemetry on top of the end-of-run obs
 * aggregates. Every N simulated cycles (MPC_SAMPLE=<cycles>) it
 * snapshots the MetricsRegistry plus the per-node MLP accounting and
 * per-core stall taxonomy, and emits one epoch of *deltas* — so the
 * per-epoch rows tile the end-of-run aggregates exactly.
 *
 * The paper's effect is temporal (miss clustering changes *when*
 * misses overlap), and the aggregates average warm-up, steady state,
 * and drain into one number; the epoch series is what shows where in a
 * run the transformed kernel earns its speedup.
 *
 * The sampler is driven from System::run between event draining and
 * core ticking, reads frozen state only, and never schedules events —
 * attaching it cannot change simulation results, and with MPC_SAMPLE
 * unset no Sampler exists at all (one null check per loop iteration).
 * In skip-ahead mode the run loop adds nextDue() to its wake
 * computation so epochs land exactly on period boundaries, as they do
 * in reference mode.
 */

#ifndef MPC_OBS_SAMPLER_HH
#define MPC_OBS_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"

namespace mpc::obs
{

class Sampler
{
  public:
    /** Per-node MLP over one epoch. */
    struct NodeEpoch
    {
        int node = 0;
        /** Mean outstanding read misses while >= 1 was outstanding. */
        double mlp = 0.0;
        /** Fraction of the epoch with >= 1 read miss outstanding. */
        double busyFrac = 0.0;
    };

    /** Per-core stall-taxonomy delta over one epoch (retire slots). */
    struct CoreEpoch
    {
        int core = 0;
        std::uint64_t stalls[numStallWhy] = {};
    };

    /** One sampling epoch, ending at tick t (timestamps are strictly
     *  monotonic across the epochs() sequence). */
    struct Epoch
    {
        Tick t = 0;
        /** Registry values, aligned with MetricsRegistry order:
         *  counters as deltas over the epoch, gauges as the value at
         *  the epoch end. */
        std::vector<std::uint64_t> metrics;
        std::vector<NodeEpoch> nodes;
        std::vector<CoreEpoch> cores;
    };

    /**
     * @param period Sampling period in cycles (> 0).
     * @param registry Declaratively registered component counters and
     *        gauges (not owned; registration completes before begin()).
     */
    Sampler(Tick period, const MetricsRegistry *registry);

    /** Track node @p node's miss stream for per-epoch MLP. */
    void addNode(int node, MissTracker *tracker);

    /** Track core @p core_id's stall taxonomy deltas. */
    void addCore(int core_id, const CoreObs *core);

    Tick period() const { return period_; }

    /** Next tick at which a sample is due (run-loop wake bound). */
    Tick nextDue() const { return nextDue_; }

    /** Capture baselines at run start (after all registration). */
    void begin(Tick start);

    /** Sample iff @p cycle has reached the next epoch boundary. */
    void
    maybeSample(Tick cycle)
    {
        if (cycle >= nextDue_)
            sampleAt(cycle);
    }

    /** Emit the final partial epoch (if any time elapsed since the
     *  last boundary) at end of run. */
    void finalize(Tick now);

    const std::vector<Epoch> &epochs() const { return epochs_; }

    /**
     * Render the whole series as a JSON document (schema
     * "mpc-samples-v1"). @p manifest_json is the RunManifest object to
     * embed, pre-rendered ("" embeds null).
     */
    std::string toJson(const std::string &manifest_json) const;

    /** toJson to @p path with a trailing newline. @return success. */
    bool writeJson(const std::string &path,
                   const std::string &manifest_json) const;

  private:
    /** Cumulative MLP-histogram state, for epoch differencing. */
    struct MlpSnap
    {
        double weighted1 = 0.0; ///< sum over levels>=1 of ticks*level
        Tick ticks1 = 0;        ///< ticks with >= 1 read outstanding
        Tick total = 0;         ///< all ticks accounted
    };

    struct Node
    {
        int node = 0;
        MissTracker *tracker = nullptr;
        MlpSnap last;
    };

    struct Core
    {
        int core = 0;
        const CoreObs *obs = nullptr;
        StallTaxonomy last;
    };

    void sampleAt(Tick t);
    static MlpSnap snapMlp(const MissTracker &tracker);

    const Tick period_;
    const MetricsRegistry *registry_;
    bool began_ = false;
    Tick nextDue_ = 0;
    std::vector<std::uint64_t> lastValues_;
    std::vector<Node> nodes_;
    std::vector<Core> cores_;
    std::vector<Epoch> epochs_;
};

} // namespace mpc::obs

#endif // MPC_OBS_SAMPLER_HH
