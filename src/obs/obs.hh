/**
 * @file
 * Observability facade: one Observer per System owns the shared tracer
 * and the per-core / per-node metric collectors, and merges them into a
 * RunMetrics snapshot at end of run.
 *
 * Creation is opt-in (SystemConfig::obsMetrics / obsTracePath, or the
 * validation layer needing the tracer); when no Observer exists every
 * hook pointer in cpu/mem stays null and the simulator pays one
 * predictable branch per hook site. Attaching an Observer never changes
 * simulation results — collectors only read frozen state.
 */

#ifndef MPC_OBS_OBS_HH
#define MPC_OBS_OBS_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace mpc::obs
{

struct ObsConfig
{
    /** Collect MLP / cluster / stall-taxonomy / per-ref metrics. */
    bool metrics = false;
    /** Create the ring-buffer tracer (validation needs it even when no
     *  end-of-run dump is requested). */
    bool trace = false;
    /** Dump the trace as Chrome-trace JSON here at end of run
     *  ("" = no end-of-run dump; failure dumps name their own path). */
    std::string tracePath;
    std::size_t traceCapacity = 1 << 16;
    /** Epoch sampling period in cycles (0 = no sampler; implies
     *  metrics when set). MPC_SAMPLE=<cycles> through the harness. */
    Tick samplePeriod = 0;
    /** Where to write the sampled time series ("" with a sampler means
     *  the caller dumps via sampler() itself). */
    std::string samplePath;
};

class Observer
{
  public:
    explicit Observer(const ObsConfig &cfg) : cfg_(cfg)
    {
        if (cfg_.trace || !cfg_.tracePath.empty())
            tracer_ = std::make_unique<Tracer>(cfg_.traceCapacity);
        if (cfg_.samplePeriod > 0) {
            registry_ = std::make_unique<MetricsRegistry>();
            sampler_ = std::make_unique<Sampler>(cfg_.samplePeriod,
                                                 registry_.get());
        }
    }

    const ObsConfig &config() const { return cfg_; }

    /** Shared tracer, or null when only metrics were requested. */
    Tracer *tracer() { return tracer_.get(); }

    /** Component-counter registry, or null without a sampler. */
    MetricsRegistry *registry() { return registry_.get(); }

    /** Epoch sampler, or null unless ObsConfig::samplePeriod. */
    Sampler *sampler() { return sampler_.get(); }

    /** Should cpu/mem hooks be wired at all? */
    bool collecting() const
    {
        return cfg_.metrics || tracer_ != nullptr;
    }

    /** Create the miss tracker for node @p node's lowest cache level. */
    MissTracker *
    attachNode(int node, int num_mshrs)
    {
        trackers_.push_back(std::make_unique<MissTracker>(
            node, num_mshrs, tracer_.get()));
        if (sampler_)
            sampler_->addNode(node, trackers_.back().get());
        return trackers_.back().get();
    }

    /** Create the collector for core @p core_id on node @p core_id. */
    CoreObs *
    attachCore(int core_id, MissTracker *tracker)
    {
        cores_.push_back(std::make_unique<CoreObs>(
            core_id, tracer_.get(), tracker));
        if (sampler_)
            sampler_->addCore(core_id, cores_.back().get());
        return cores_.back().get();
    }

    /** Flush time accounting and open spans at end of run. */
    void
    finalize(Tick now)
    {
        for (auto &t : trackers_)
            t->finalize(now);
        for (auto &c : cores_)
            c->finalize(now);
        if (sampler_)
            sampler_->finalize(now);
    }

    /** Merge every collector into one RunMetrics snapshot. */
    RunMetrics collect() const;

    /** Dump the trace (no-op without a tracer). @return success. */
    bool dumpTrace(const std::string &path) const;

    /** Dump the sampled time series with @p manifest_json embedded
     *  (no-op without a sampler). @return success. */
    bool
    dumpSamples(const std::string &path,
                const std::string &manifest_json) const
    {
        return sampler_ == nullptr ||
               sampler_->writeJson(path, manifest_json);
    }

  private:
    ObsConfig cfg_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<MetricsRegistry> registry_;
    std::unique_ptr<Sampler> sampler_;
    std::vector<std::unique_ptr<MissTracker>> trackers_;
    std::vector<std::unique_ptr<CoreObs>> cores_;
};

} // namespace mpc::obs

#endif // MPC_OBS_OBS_HH
