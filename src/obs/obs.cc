#include "obs/obs.hh"

namespace mpc::obs
{

RunMetrics
Observer::collect() const
{
    RunMetrics out;
    out.enabled = cfg_.metrics;
    int max_mshrs = 0;
    for (const auto &t : trackers_)
        max_mshrs = std::max(max_mshrs, t->mlpHistogram().maxLevel());
    out.mlp = OccupancyHistogram(max_mshrs);
    for (const auto &t : trackers_) {
        out.mlp.merge(t->mlpHistogram());
        out.clusterSizes.merge(t->clusterSizes());
    }
    for (const auto &c : cores_) {
        out.stall.merge(c->taxonomy());
        for (const auto &[ref_id, r] : c->refStats()) {
            RefMissStats &agg = out.perRef[ref_id];
            agg.misses += r.misses;
            agg.coalesced += r.coalesced;
            agg.latency.merge(r.latency);
            agg.overlap.merge(r.overlap);
        }
    }
    return out;
}

bool
Observer::dumpTrace(const std::string &path) const
{
    if (tracer_ == nullptr || path.empty())
        return false;
    return tracer_->dumpChromeJson(path);
}

} // namespace mpc::obs
