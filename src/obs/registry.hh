/**
 * @file
 * Central metrics registry: simulator components publish their counters
 * declaratively (name -> address, or name -> gauge closure) instead of
 * the sampler knowing every ad-hoc stats struct. The epoch Sampler
 * snapshots every registered metric by walking one flat vector, so
 * adding a counter to a component is one registerMetrics() line — no
 * sampler change, no new plumbing through System.
 *
 * Two metric kinds:
 *  - counter: a pointer to a live monotonically-increasing std::uint64_t
 *    inside a component's stats struct (Core retires, Cache misses,
 *    directory requests). The registry never owns the storage; the
 *    component must outlive the registry's last snapshot.
 *  - gauge: a closure evaluated at snapshot time for quantities with no
 *    resident counter (MSHR occupancy scans, event-queue depth).
 *
 * Registration happens once at System construction and only when a
 * Sampler exists, so the simulation hot path never sees the registry at
 * all; snapshotting reads frozen state only and cannot perturb results.
 */

#ifndef MPC_OBS_REGISTRY_HH
#define MPC_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace mpc::obs
{

class MetricsRegistry
{
  public:
    struct Metric
    {
        std::string name;
        const std::uint64_t *counter = nullptr; ///< live counter, or
        std::function<std::uint64_t()> gauge;   ///< sampled closure
        bool isGauge = false;

        std::uint64_t
        read() const
        {
            return isGauge ? gauge() : *counter;
        }
    };

    /** Register a live counter (not owned; must outlive snapshots). */
    void
    addCounter(std::string name, const std::uint64_t *counter)
    {
        MPC_ASSERT(counter != nullptr, "null counter registered");
        insertName(name);
        Metric m;
        m.name = std::move(name);
        m.counter = counter;
        metrics_.push_back(std::move(m));
    }

    /** Register a derived quantity sampled via @p fn at snapshot time. */
    void
    addGauge(std::string name, std::function<std::uint64_t()> fn)
    {
        MPC_ASSERT(fn != nullptr, "null gauge registered");
        insertName(name);
        Metric m;
        m.name = std::move(name);
        m.gauge = std::move(fn);
        m.isGauge = true;
        metrics_.push_back(std::move(m));
    }

    const std::vector<Metric> &metrics() const { return metrics_; }
    std::size_t size() const { return metrics_.size(); }

    /** Registered names, in registration order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(metrics_.size());
        for (const Metric &m : metrics_)
            out.push_back(m.name);
        return out;
    }

    /** Read every metric, in registration order. */
    std::vector<std::uint64_t>
    snapshot() const
    {
        std::vector<std::uint64_t> out;
        out.reserve(metrics_.size());
        for (const Metric &m : metrics_)
            out.push_back(m.read());
        return out;
    }

  private:
    void
    insertName(const std::string &name)
    {
        MPC_ASSERT(seen_.insert(name).second,
                   "duplicate metric name registered");
    }

    std::vector<Metric> metrics_;
    std::set<std::string> seen_;
};

} // namespace mpc::obs

#endif // MPC_OBS_REGISTRY_HH
