#include "validate/validate.hh"

#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/logging.hh"

namespace mpc::validate
{

using kisa::Op;

// --- CoreValidator ---------------------------------------------------

void
CoreValidator::fail(Tick now, std::string what)
{
    diverged_ = true;
    owner_.recordFailure(
        now, strprintf("core %d: %s", coreId_, what.c_str()));
}

void
CoreValidator::onDispatch(Tick now, int pc, const kisa::StepResult &res,
                          const kisa::RegFile &regs)
{
    owner_.trace().record(now, coreId_, "dispatch",
                          static_cast<std::uint64_t>(pc),
                          res.isMem ? res.memAddr : 0);
    ++dispatched_;
    if (diverged_)
        return;

    if (pc != shadowPc_) {
        fail(now, strprintf("control-flow divergence: core dispatched "
                            "pc=%d, golden model expects pc=%d",
                            pc, shadowPc_));
        return;
    }
    pendingRetire_.push_back(pc);

    // Re-step against the same shared MemoryImage (idempotent while the
    // register files agree; see file comment in validate.hh).
    const auto gres = kisa::step(program_, shadowPc_, shadowRegs_, mem_);
    shadowPc_ = gres.nextPc;

    if (gres.nextPc != res.nextPc || gres.isMem != res.isMem ||
        gres.memAddr != res.memAddr ||
        gres.branchTaken != res.branchTaken) {
        fail(now,
             strprintf("step divergence at pc=%d (%s): core "
                       "{next=%d mem=%d addr=0x%llx taken=%d} vs golden "
                       "{next=%d mem=%d addr=0x%llx taken=%d}",
                       pc, kisa::opName(program_.code[pc].op), res.nextPc,
                       res.isMem,
                       static_cast<unsigned long long>(res.memAddr),
                       res.branchTaken, gres.nextPc, gres.isMem,
                       static_cast<unsigned long long>(gres.memAddr),
                       gres.branchTaken));
        return;
    }

    if (std::memcmp(shadowRegs_.intRegs, regs.intRegs,
                    sizeof(shadowRegs_.intRegs)) != 0) {
        for (int r = 0; r < kisa::numIntRegs; ++r) {
            if (shadowRegs_.intRegs[r] != regs.intRegs[r]) {
                fail(now,
                     strprintf("register divergence after pc=%d: r%d "
                               "core=%lld golden=%lld",
                               pc, r,
                               static_cast<long long>(regs.intRegs[r]),
                               static_cast<long long>(
                                   shadowRegs_.intRegs[r])));
                return;
            }
        }
    }
    if (std::memcmp(shadowRegs_.fpRegs, regs.fpRegs,
                    sizeof(shadowRegs_.fpRegs)) != 0) {
        for (int r = 0; r < kisa::numFpRegs; ++r) {
            if (std::memcmp(&shadowRegs_.fpRegs[r], &regs.fpRegs[r],
                            sizeof(double)) != 0) {
                fail(now, strprintf("register divergence after pc=%d: "
                                    "f%d core=%g golden=%g",
                                    pc, r, regs.fpRegs[r],
                                    shadowRegs_.fpRegs[r]));
                return;
            }
        }
    }
}

void
CoreValidator::onRetire(Tick now, int pc, std::uint64_t seq)
{
    owner_.trace().record(now, coreId_, "retire",
                          static_cast<std::uint64_t>(pc), seq);
    ++retired_;
    if (diverged_)
        return;

    // Halt completes at dispatch without a functional step, so it never
    // enters the dispatch FIFO; check the golden model caught up to it.
    if (program_.code[pc].op == Op::Halt) {
        if (program_.code[shadowPc_].op != Op::Halt)
            fail(now, strprintf("Halt retired at pc=%d but golden model "
                                "is at pc=%d (%s)",
                                pc, shadowPc_,
                                kisa::opName(program_.code[shadowPc_].op)));
        return;
    }
    if (pendingRetire_.empty()) {
        fail(now, strprintf("pc=%d retired with no dispatch pending "
                            "(retire stream corrupt)",
                            pc));
        return;
    }
    if (pendingRetire_.front() != pc) {
        fail(now, strprintf("out-of-order retirement: pc=%d retired "
                            "while pc=%d is the oldest dispatched",
                            pc, pendingRetire_.front()));
        return;
    }
    pendingRetire_.pop_front();
}

void
CoreValidator::finalize(Tick now)
{
    if (diverged_)
        return;
    if (!pendingRetire_.empty())
        fail(now, strprintf("%zu dispatched instructions never retired "
                            "(oldest pc=%d)",
                            pendingRetire_.size(), pendingRetire_.front()));
    else if (retired_ > 0 && program_.code[shadowPc_].op != Op::Halt)
        fail(now, strprintf("run ended with golden model at pc=%d (%s), "
                            "not at Halt",
                            shadowPc_,
                            kisa::opName(program_.code[shadowPc_].op)));
}

// --- Validator -------------------------------------------------------

cpu::CoreMonitor *
Validator::attachCore(cpu::Core *core, const kisa::Program &program,
                      kisa::MemoryImage &mem)
{
    MPC_ASSERT(!started_, "attachCore after start");
    cores_.push_back(core);
    coreValidators_.push_back(std::make_unique<CoreValidator>(
        *this, core->id(), program, mem));
    progress_.push_back({});
    return coreValidators_.back().get();
}

void
Validator::attachHierarchy(mem::MemHierarchy *hier)
{
    MPC_ASSERT(!started_, "attachHierarchy after start");
    hiers_.push_back(hier);
}

void
Validator::attachFabric(const coherence::CoherenceFabric *fabric)
{
    MPC_ASSERT(!started_, "attachFabric after start");
    fabric_ = fabric;
}

void
Validator::start()
{
    started_ = true;
    lastSystemProgress_ = eq_.now();
    for (auto &p : progress_)
        p.lastChange = eq_.now();
    scheduleAudit();
}

void
Validator::scheduleAudit()
{
    eq_.scheduleIn(cfg_.auditPeriod, [this] {
        if (stopRequested_)
            return;
        auditNow(eq_.now());
        scheduleAudit();
    });
}

void
Validator::auditNow(Tick now)
{
    trace_.record(now, -1, "audit");
    auditMshrs(now);
    auditInclusion(now);
    auditDirectory(now);
    auditProgress(now);
}

void
Validator::auditMshrs(Tick now)
{
    for (std::size_t i = 0; i < hiers_.size(); ++i) {
        mem::MemHierarchy *hier = hiers_[i];
        const auto check = [&](const char *level,
                               const mem::MshrFile &mshrs) {
            for (const auto &e : mshrs.snapshot()) {
                if (now - e.allocTick <= cfg_.mshrTimeout)
                    continue;
                recordFailure(
                    now,
                    strprintf("node %zu %s MSHR leak: line 0x%llx "
                              "allocated at tick %llu still outstanding "
                              "(issued=%d targets=%d)",
                              i, level,
                              static_cast<unsigned long long>(e.lineAddr),
                              static_cast<unsigned long long>(e.allocTick),
                              e.issued, e.numTargets));
            }
        };
        check("L2", hier->l2().mshrs());
        if (!hier->singleLevel())
            check("L1", hier->l1().mshrs());
    }
}

void
Validator::auditInclusion(Tick now)
{
    // Two-strike: an L1 line may legitimately be missing from the L2
    // for the few cycles between the L2's fill and the L1's delayed
    // install (the L2 can evict in that window). A violation must
    // persist across two consecutive audits to be flagged.
    std::unordered_set<std::uint64_t> suspects;
    for (std::size_t i = 0; i < hiers_.size(); ++i) {
        mem::MemHierarchy *hier = hiers_[i];
        if (hier->singleLevel())
            continue;
        const mem::Cache &l2 = hier->l2();
        hier->l1().forEachLine([&](Addr line, mem::LineState, bool) {
            if (l2.isResident(line) ||
                l2.mshrs().find(line) != mem::MshrFile::invalidId)
                return;
            const std::uint64_t key =
                (static_cast<std::uint64_t>(i) << 48) | line;
            if (inclusionSuspects_.count(key) != 0)
                recordFailure(
                    now,
                    strprintf("node %zu inclusion violation: L1 holds "
                              "line 0x%llx absent from the L2 across two "
                              "audits",
                              i, static_cast<unsigned long long>(line)));
            else
                suspects.insert(key);
        });
    }
    inclusionSuspects_ = std::move(suspects);
}

void
Validator::auditDirectory(Tick now)
{
    if (fabric_ == nullptr)
        return;
    const int n = fabric_->numNodes();
    const std::uint64_t node_mask =
        n >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << n) - 1);

    // Pass 1: per-entry structural invariants of the atomic MSI
    // directory (no transient states to account for; see directory.hh).
    struct Ent
    {
        int state;
        std::uint64_t sharers;
        NodeId owner;
    };
    std::unordered_map<Addr, Ent> dir;
    fabric_->forEachDirEntry([&](Addr line, int state,
                                 std::uint64_t sharers, NodeId owner) {
        dir[line] = {state, sharers, owner};
        if ((sharers & ~node_mask) != 0)
            recordFailure(now,
                          strprintf("directory 0x%llx: sharer bits set "
                                    "beyond node count (mask 0x%llx)",
                                    static_cast<unsigned long long>(line),
                                    static_cast<unsigned long long>(
                                        sharers)));
        switch (state) {
          case 0:   // Uncached
            if (sharers != 0 || owner != -1)
                recordFailure(
                    now, strprintf("directory 0x%llx: Uncached with "
                                   "sharers=0x%llx owner=%d",
                                   static_cast<unsigned long long>(line),
                                   static_cast<unsigned long long>(sharers),
                                   owner));
            break;
          case 1:   // Shared
            if (sharers == 0 || owner != -1)
                recordFailure(
                    now, strprintf("directory 0x%llx: Shared with "
                                   "sharers=0x%llx owner=%d",
                                   static_cast<unsigned long long>(line),
                                   static_cast<unsigned long long>(sharers),
                                   owner));
            break;
          case 2:   // Modified
            if (owner < 0 || owner >= n ||
                sharers != (std::uint64_t(1) << owner))
                recordFailure(
                    now, strprintf("directory 0x%llx: Modified with "
                                   "owner=%d sharers=0x%llx (must be "
                                   "exactly the owner's bit)",
                                   static_cast<unsigned long long>(line),
                                   owner,
                                   static_cast<unsigned long long>(
                                       sharers)));
            break;
          default:
            recordFailure(now,
                          strprintf("directory 0x%llx: unknown state %d",
                                    static_cast<unsigned long long>(line),
                                    state));
        }
    });

    // Pass 2: cache-to-directory agreement. Directory updates are
    // simulation-atomic with cache probes, so any L2-resident line must
    // be listed for that node, and a Modified L2 line must match a
    // Modified directory entry owned by that node. (The converse does
    // not hold: Shared lines evict silently, so dir-listed nodes
    // without the line are legal.)
    for (NodeId node = 0; node < n; ++node) {
        const mem::Cache *cache = fabric_->cacheAt(node);
        if (cache == nullptr)
            continue;
        cache->forEachLine([&](Addr line, mem::LineState state, bool) {
            const auto it = dir.find(line);
            const std::uint64_t bit = std::uint64_t(1) << node;
            if (it == dir.end() || (it->second.sharers & bit) == 0) {
                recordFailure(
                    now,
                    strprintf("node %d L2 holds line 0x%llx not listed "
                              "in the directory",
                              node, static_cast<unsigned long long>(line)));
                return;
            }
            if (state == mem::LineState::Modified &&
                (it->second.state != 2 || it->second.owner != node))
                recordFailure(
                    now,
                    strprintf("node %d L2 holds line 0x%llx Modified but "
                              "directory has state=%d owner=%d",
                              node, static_cast<unsigned long long>(line),
                              it->second.state, it->second.owner));
        });
    }
}

void
Validator::auditProgress(Tick now)
{
    std::uint64_t total = 0;
    bool any_unfinished = false;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const cpu::Core *core = cores_[i];
        const std::uint64_t retired = core->stats().retired;
        total += retired;
        Progress &p = progress_[i];
        if (retired != p.retired) {
            p.retired = retired;
            p.lastChange = now;
        }
        if (core->done())
            continue;
        any_unfinished = true;
        if (now - p.lastChange >= cfg_.coreStallTimeout) {
            recordFailure(
                now, strprintf("watchdog: core %d retired nothing for "
                               "%llu cycles\n%s",
                               core->id(),
                               static_cast<unsigned long long>(
                                   now - p.lastChange),
                               diagnostics().c_str()));
            stopRequested_ = true;
            p.lastChange = now;     // don't re-fire every audit
        }
    }
    if (total != lastTotalRetired_) {
        lastTotalRetired_ = total;
        lastSystemProgress_ = now;
    } else if (any_unfinished &&
               now - lastSystemProgress_ >= cfg_.systemStallTimeout) {
        recordFailure(
            now,
            strprintf("watchdog: no core retired anything for %llu "
                      "cycles with unfinished cores\n%s",
                      static_cast<unsigned long long>(
                          now - lastSystemProgress_),
                      diagnostics().c_str()));
        stopRequested_ = true;
        lastSystemProgress_ = now;
    }
}

void
Validator::onNoEvent(Tick now)
{
    recordFailure(now,
                  "deadlock: no future event and no core wake with "
                  "unfinished cores\n" +
                      diagnostics());
    stopRequested_ = true;
}

std::string
Validator::diagnostics() const
{
    std::string out = "--- diagnostics ---\n";
    for (const cpu::Core *core : cores_) {
        if (core->done()) {
            out += strprintf("core %d: done\n", core->id());
            continue;
        }
        out += core->dumpWindow();
    }
    for (std::size_t i = 0; i < hiers_.size(); ++i) {
        const auto snap = hiers_[i]->l2().mshrs().snapshot();
        out += strprintf("node %zu L2 MSHRs: %zu outstanding\n", i,
                         snap.size());
        for (const auto &e : snap)
            out += strprintf("  line 0x%llx alloc=%llu issued=%d "
                             "excl=%d targets=%d\n",
                             static_cast<unsigned long long>(e.lineAddr),
                             static_cast<unsigned long long>(e.allocTick),
                             e.issued, e.exclusive, e.numTargets);
    }
    if (fabric_ != nullptr) {
        int counts[3] = {0, 0, 0};
        fabric_->forEachDirEntry(
            [&](Addr, int state, std::uint64_t, NodeId) {
                if (state >= 0 && state < 3)
                    ++counts[state];
            });
        out += strprintf("directory: %d uncached, %d shared, "
                         "%d modified entries\n",
                         counts[0], counts[1], counts[2]);
    }
    return out;
}

void
Validator::recordFailure(Tick tick, std::string what)
{
    std::lock_guard<std::mutex> guard(failMu_);
    trace_.record(tick, -1, "failure",
                  static_cast<std::uint64_t>(failures_.size()));
    failures_.push_back({tick, what});
    if (!traceDumped_ && !cfg_.traceDumpPath.empty()) {
        traceDumped_ = true;
        if (!trace_.dumpChromeJson(cfg_.traceDumpPath))
            warn(strprintf("validate: could not write trace to %s",
                           cfg_.traceDumpPath.c_str()));
        else
            warn(strprintf("validate: event trace dumped to %s",
                           cfg_.traceDumpPath.c_str()));
    }
    if (cfg_.failFast)
        fatal("validation failure at tick %llu: %s",
              static_cast<unsigned long long>(tick), what.c_str());
}

void
Validator::finalize(Tick now)
{
    if (stopRequested_)
        return;     // stopped mid-run; in-flight state is legitimate
    for (auto &cv : coreValidators_)
        cv->finalize(now);
    // All cores done means every miss filled and every write-buffer
    // store completed: the MSHR files must have drained.
    for (std::size_t i = 0; i < hiers_.size(); ++i) {
        const auto check = [&](const char *level,
                               const mem::MshrFile &mshrs) {
            for (const auto &e : mshrs.snapshot())
                recordFailure(
                    now,
                    strprintf("node %zu %s MSHR leaked at end of run: "
                              "line 0x%llx allocated at tick %llu "
                              "(issued=%d targets=%d)",
                              i, level,
                              static_cast<unsigned long long>(e.lineAddr),
                              static_cast<unsigned long long>(e.allocTick),
                              e.issued, e.numTargets));
        };
        check("L2", hiers_[i]->l2().mshrs());
        if (!hiers_[i]->singleLevel())
            check("L1", hiers_[i]->l1().mshrs());
    }
    auditDirectory(now);
    auditInclusion(now);
}

std::string
Validator::report() const
{
    if (failures_.empty())
        return "validate: no failures\n";
    std::string out =
        strprintf("validate: %zu failure(s)\n", failures_.size());
    for (const auto &f : failures_)
        out += strprintf("  [tick %llu] %s\n",
                         static_cast<unsigned long long>(f.tick),
                         f.what.c_str());
    return out;
}

} // namespace mpc::validate
