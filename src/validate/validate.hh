/**
 * @file
 * Opt-in simulator validation layer.
 *
 * Three families of checks, all read-only with respect to simulated
 * state, so enabling validation never perturbs results:
 *
 *  1. Retirement cross-check. A golden KISA interpreter runs in
 *     lockstep with each timing core. Because the timing core executes
 *     functionally at dispatch (see cpu/core.hh), architectural values
 *     exist at dispatch time: the golden model re-steps the same
 *     instruction against the same shared MemoryImage immediately after
 *     the core's own step (idempotent — with identical registers a
 *     store rewrites the identical value, and loads do not mutate) and
 *     compares pc, step outcome, and the full register file. Retirement
 *     itself is checked for stream integrity: window entries must
 *     retire exactly in dispatch order.
 *
 *  2. Structural audits, run periodically from the event queue:
 *     MSHR files (age-based leak detection, end-of-run drain),
 *     L1/L2 inclusion (two-strike: a line must be missing from the L2
 *     on two consecutive audits to be flagged, tolerating the
 *     fill-in-flight window), and the MSI directory (state/sharer/owner
 *     consistency, plus cache-to-directory agreement; dir-listed nodes
 *     without the line are legal — this protocol evicts Shared lines
 *     silently).
 *
 *  3. Progress watchdogs: per-core no-retire and system-wide
 *     no-progress timeouts. On expiry the validator records a failure
 *     with structured diagnostics (window dump, MSHR snapshots,
 *     directory state) and requests a graceful stop.
 *
 * Dispatch/retire/audit activity is recorded into the shared
 * observability tracer (obs::Tracer, owned by the System's
 * obs::Observer) and exported as Chrome-trace JSON (chrome://tracing)
 * on the first failure, when a dump path is configured.
 */

#ifndef MPC_VALIDATE_VALIDATE_HH
#define MPC_VALIDATE_VALIDATE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "coherence/directory.hh"
#include "cpu/core.hh"
#include "cpu/monitor.hh"
#include "kisa/interp.hh"
#include "mem/eventq.hh"
#include "mem/hierarchy.hh"
#include "obs/trace.hh"

namespace mpc::validate
{

/** Tuning knobs; defaults are safe for every shipped workload. */
struct ValidateConfig
{
    Tick auditPeriod = 4096;        ///< cycles between structural audits
    /** A single core retiring nothing for this long is stuck. Generous:
     *  barrier waits in the imbalanced kernels span millions of cycles. */
    Tick coreStallTimeout = 50'000'000;
    /** No core retiring (while unfinished) for this long is a deadlock. */
    Tick systemStallTimeout = 10'000'000;
    /** An MSHR outstanding this long will never fill (max observed real
     *  miss latency is tens of thousands of cycles). */
    Tick mshrTimeout = 2'000'000;
    /** Capacity of the shared observability tracer the owning System
     *  sizes for this validator. */
    std::size_t traceCapacity = 1 << 16;
    bool failFast = true;           ///< fatal() on the first failure
    std::string traceDumpPath;      ///< Chrome-trace JSON, dumped on failure
};

class Validator;

/**
 * Golden-model lockstep checker for one core (see file comment, item 1).
 * Attached to the core as its CoreMonitor.
 */
class CoreValidator : public cpu::CoreMonitor
{
  public:
    CoreValidator(Validator &owner, int core_id,
                  const kisa::Program &program, kisa::MemoryImage &mem)
        : owner_(owner), coreId_(core_id), program_(program), mem_(mem)
    {}

    void onDispatch(Tick now, int pc, const kisa::StepResult &res,
                    const kisa::RegFile &regs) override;
    void onRetire(Tick now, int pc, std::uint64_t seq) override;

    /** End-of-run checks: golden pc at Halt, dispatch FIFO drained. */
    void finalize(Tick now);

    bool diverged() const { return diverged_; }
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    /** Record a divergence and freeze the golden model (the shared
     *  MemoryImage may be tainted past this point; stepping on would
     *  only cascade noise). */
    void fail(Tick now, std::string what);

    Validator &owner_;
    const int coreId_;
    const kisa::Program &program_;
    kisa::MemoryImage &mem_;

    kisa::RegFile shadowRegs_;
    int shadowPc_ = 0;
    bool diverged_ = false;
    std::deque<int> pendingRetire_;     ///< dispatched pcs awaiting retire
    std::uint64_t dispatched_ = 0;
    std::uint64_t retired_ = 0;
};

/**
 * The validation controller: owns the per-core checkers, runs the
 * periodic structural audits and watchdogs, collects failures, and
 * exports the event trace. One instance per System, created when
 * SystemConfig::validate is set.
 */
class Validator
{
  public:
    struct Failure
    {
        Tick tick = 0;
        std::string what;
    };

    /** @p trace Shared observability tracer (owned by the System's
     *  obs::Observer; outlives the validator). */
    Validator(mem::EventQueue &eq, const ValidateConfig &cfg,
              obs::Tracer &trace)
        : eq_(eq), cfg_(cfg), trace_(trace)
    {}

    // --- attach phase (before start()) -------------------------------
    /** Create the lockstep checker for @p core; returns the monitor to
     *  attach. The core itself is kept for watchdog diagnostics. */
    cpu::CoreMonitor *attachCore(cpu::Core *core,
                                 const kisa::Program &program,
                                 kisa::MemoryImage &mem);
    void attachHierarchy(mem::MemHierarchy *hier);
    void attachFabric(const coherence::CoherenceFabric *fabric);

    /** Schedule the recurring structural audit on the event queue. */
    void start();

    /** Run every structural audit immediately (public for tests, which
     *  corrupt state post-run and expect the audit to object). */
    void auditNow(Tick now);

    /** End-of-run checks: MSHR drain, golden models halted, final audit. */
    void finalize(Tick now);

    /** Skip-ahead found no future event with cores unfinished. */
    void onNoEvent(Tick now);

    /** Record a failure; dumps the trace (first failure only) and, with
     *  failFast, aborts the simulation. */
    void recordFailure(Tick tick, std::string what);

    /** Watchdogs ask System::run to break out of the main loop. */
    bool stopRequested() const { return stopRequested_; }

    const std::vector<Failure> &failures() const { return failures_; }
    std::string report() const;
    obs::Tracer &trace() { return trace_; }
    const ValidateConfig &config() const { return cfg_; }

  private:
    void scheduleAudit();
    void auditMshrs(Tick now);
    void auditInclusion(Tick now);
    void auditDirectory(Tick now);
    void auditProgress(Tick now);

    /** Structured diagnostics for watchdog failures. */
    std::string diagnostics() const;

    /** Per-core progress bookkeeping for the watchdogs. */
    struct Progress
    {
        std::uint64_t retired = 0;
        Tick lastChange = 0;
    };

    mem::EventQueue &eq_;
    ValidateConfig cfg_;
    obs::Tracer &trace_;

    std::vector<cpu::Core *> cores_;
    std::vector<std::unique_ptr<CoreValidator>> coreValidators_;
    std::vector<mem::MemHierarchy *> hiers_;
    const coherence::CoherenceFabric *fabric_ = nullptr;

    std::vector<Progress> progress_;
    Tick lastSystemProgress_ = 0;
    std::uint64_t lastTotalRetired_ = 0;

    /** Inclusion suspects from the previous audit (two-strike). Keyed
     *  by (node << 48) | lineAddr. */
    std::unordered_set<std::uint64_t> inclusionSuspects_;

    std::vector<Failure> failures_;
    /** recordFailure can race across shard workers under sharded
     *  stepping (monitor hooks run on shard threads). */
    std::mutex failMu_;
    bool stopRequested_ = false;
    bool traceDumped_ = false;
    bool started_ = false;
};

} // namespace mpc::validate

#endif // MPC_VALIDATE_VALIDATE_HH
