#include "harness/report.hh"

#include <algorithm>
#include <sstream>

#include "common/stats.hh"

namespace mpc::harness
{

namespace
{

/** Category values of one run, normalized so Base totals 100. */
struct Bars
{
    double instr, sync, cpu, data, total;
};

Bars
barsOf(const sys::RunResult &run, double base_total)
{
    Bars bars;
    const double scale = base_total > 0 ? 100.0 / base_total : 0.0;
    bars.instr = run.instrCycles * scale;
    bars.sync = run.syncCycles * scale;
    bars.cpu = run.cpuComponent() * scale;
    bars.data = run.dataComponent() * scale;
    bars.total = static_cast<double>(run.cycles) * scale;
    return bars;
}

double
attributedTotal(const sys::RunResult &run)
{
    return run.instrCycles + run.syncCycles + run.cpuComponent() +
           run.dataComponent();
}

} // namespace

std::string
formatFig3(const std::vector<std::string> &names,
           const std::vector<PairResult> &pairs,
           const std::string &title)
{
    TablePrinter table;
    table.setHeader({"app", "variant", "total", "instr", "sync", "cpu",
                     "data"});
    StatSummary reductions;
    for (size_t a = 0; a < pairs.size(); ++a) {
        // Normalize both runs to the Base run's attributed time (the
        // paper normalizes each app to its own base).
        const double base_total = attributedTotal(pairs[a].base.result);
        const Bars base = barsOf(pairs[a].base.result, base_total);
        const Bars clust = barsOf(pairs[a].clust.result, base_total);
        table.addRow({names[a], "Base", fmtDouble(base.total, 1),
                      fmtDouble(base.instr, 1), fmtDouble(base.sync, 1),
                      fmtDouble(base.cpu, 1), fmtDouble(base.data, 1)});
        table.addRow({"", "Clust", fmtDouble(clust.total, 1),
                      fmtDouble(clust.instr, 1),
                      fmtDouble(clust.sync, 1), fmtDouble(clust.cpu, 1),
                      fmtDouble(clust.data, 1)});
        reductions.sample(pairs[a].reductionPct());
    }
    std::ostringstream out;
    out << "== " << title << " ==\n"
        << "(normalized execution time; Base = 100, categories in "
           "base-run units)\n"
        << table.render()
        << strprintf("execution time reduction: min %.1f%%  "
                     "max %.1f%%  avg %.1f%%\n",
                     reductions.min(), reductions.max(),
                     reductions.mean());
    return out.str();
}

std::string
formatReductionTable(const std::vector<std::string> &names,
                     const std::vector<PairResult> &pairs,
                     const std::string &row_label,
                     const std::string &title)
{
    TablePrinter table;
    std::vector<std::string> header{"% execution time reduced"};
    for (const auto &name : names)
        header.push_back(name);
    table.setHeader(header);
    std::vector<std::string> cells{row_label};
    for (size_t a = 0; a < names.size(); ++a) {
        if (a < pairs.size())
            cells.push_back(fmtDouble(pairs[a].reductionPct(), 1));
        else
            cells.push_back("N/A");
    }
    table.addRow(cells);
    std::ostringstream out;
    out << "== " << title << " ==\n" << table.render();
    return out.str();
}

std::string
formatFig4(const std::vector<std::string> &labels,
           const std::vector<const sys::RunResult *> &runs,
           const std::string &title)
{
    std::ostringstream out;
    out << "== " << title << " ==\n";
    // (a) read-MSHR utilization
    for (int part = 0; part < 2; ++part) {
        out << (part == 0
                    ? "(a) fraction of time >= N L2 MSHRs hold read "
                      "misses\n"
                    : "(b) fraction of time >= N L2 MSHRs in use "
                      "(reads + writes)\n");
        TablePrinter table;
        std::vector<std::string> header{"N"};
        for (const auto &label : labels)
            header.push_back(label);
        table.setHeader(header);
        const int max_level = runs.empty()
                                  ? 10
                                  : runs[0]->l2TotalMshr.maxLevel();
        for (int level = 0; level <= max_level; ++level) {
            std::vector<std::string> cells{std::to_string(level)};
            for (const sys::RunResult *run : runs) {
                const auto &hist = part == 0 ? run->l2ReadMshr
                                             : run->l2TotalMshr;
                cells.push_back(fmtDouble(hist.fracAtLeast(level), 3));
            }
            table.addRow(cells);
        }
        out << table.render();
    }
    return out.str();
}

std::string
formatLatbench(const PairResult &pair, double ns_per_cycle,
               std::uint64_t misses_base, std::uint64_t misses_clust,
               const std::string &title)
{
    const auto &base = pair.base.result;
    const auto &clust = pair.clust.result;
    auto stall_per_miss = [ns_per_cycle](const sys::RunResult &run,
                                         std::uint64_t misses) {
        return misses > 0
                   ? run.dataComponent() / static_cast<double>(misses) *
                         ns_per_cycle
                   : 0.0;
    };
    const double base_stall = stall_per_miss(base, misses_base);
    const double clust_stall = stall_per_miss(clust, misses_clust);

    TablePrinter table;
    table.setHeader({"variant", "stall/miss (ns)", "total lat (ns)",
                     "bus util", "bank util"});
    auto total_lat = [ns_per_cycle](const sys::RunResult &run) {
        return run.cores[0].longMissLatency.mean() * ns_per_cycle;
    };
    table.addRow({"Base", fmtDouble(base_stall, 1),
                  fmtDouble(total_lat(base), 1),
                  fmtPercent(base.busUtilization),
                  fmtPercent(base.bankUtilization)});
    table.addRow({"Clust", fmtDouble(clust_stall, 1),
                  fmtDouble(total_lat(clust), 1),
                  fmtPercent(clust.busUtilization),
                  fmtPercent(clust.bankUtilization)});
    std::ostringstream out;
    out << "== " << title << " ==\n"
        << table.render()
        << strprintf("stall-per-miss speedup: %.2fx\n",
                     clust_stall > 0 ? base_stall / clust_stall : 0.0);
    return out.str();
}

std::string
formatDriverSummary(const std::string &name,
                    const transform::DriverReport &report)
{
    std::ostringstream out;
    out << "-- driver decisions for " << name << " --\n"
        << report.toString();
    return out.str();
}

} // namespace mpc::harness
