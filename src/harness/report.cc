#include "harness/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/stats.hh"

namespace mpc::harness
{

namespace
{

/** Category values of one run, normalized so Base totals 100. */
struct Bars
{
    double instr, sync, cpu, data, total;
};

Bars
barsOf(const sys::RunResult &run, double base_total)
{
    Bars bars;
    const double scale = base_total > 0 ? 100.0 / base_total : 0.0;
    bars.instr = run.instrCycles * scale;
    bars.sync = run.syncCycles * scale;
    bars.cpu = run.cpuComponent() * scale;
    bars.data = run.dataComponent() * scale;
    bars.total = static_cast<double>(run.cycles) * scale;
    return bars;
}

double
attributedTotal(const sys::RunResult &run)
{
    return run.instrCycles + run.syncCycles + run.cpuComponent() +
           run.dataComponent();
}

} // namespace

std::string
formatFig3(const std::vector<std::string> &names,
           const std::vector<PairResult> &pairs,
           const std::string &title)
{
    TablePrinter table;
    table.setHeader({"app", "variant", "total", "instr", "sync", "cpu",
                     "data"});
    StatSummary reductions;
    for (size_t a = 0; a < pairs.size(); ++a) {
        // Normalize both runs to the Base run's attributed time (the
        // paper normalizes each app to its own base).
        const double base_total = attributedTotal(pairs[a].base.result);
        const Bars base = barsOf(pairs[a].base.result, base_total);
        const Bars clust = barsOf(pairs[a].clust.result, base_total);
        table.addRow({names[a], "Base", fmtDouble(base.total, 1),
                      fmtDouble(base.instr, 1), fmtDouble(base.sync, 1),
                      fmtDouble(base.cpu, 1), fmtDouble(base.data, 1)});
        table.addRow({"", "Clust", fmtDouble(clust.total, 1),
                      fmtDouble(clust.instr, 1),
                      fmtDouble(clust.sync, 1), fmtDouble(clust.cpu, 1),
                      fmtDouble(clust.data, 1)});
        reductions.sample(pairs[a].reductionPct());
    }
    std::ostringstream out;
    out << "== " << title << " ==\n"
        << "(normalized execution time; Base = 100, categories in "
           "base-run units)\n"
        << table.render()
        << strprintf("execution time reduction: min %.1f%%  "
                     "max %.1f%%  avg %.1f%%\n",
                     reductions.min(), reductions.max(),
                     reductions.mean());
    return out.str();
}

std::string
formatReductionTable(const std::vector<std::string> &names,
                     const std::vector<PairResult> &pairs,
                     const std::string &row_label,
                     const std::string &title)
{
    TablePrinter table;
    std::vector<std::string> header{"% execution time reduced"};
    for (const auto &name : names)
        header.push_back(name);
    table.setHeader(header);
    std::vector<std::string> cells{row_label};
    for (size_t a = 0; a < names.size(); ++a) {
        if (a < pairs.size())
            cells.push_back(fmtDouble(pairs[a].reductionPct(), 1));
        else
            cells.push_back("N/A");
    }
    table.addRow(cells);
    std::ostringstream out;
    out << "== " << title << " ==\n" << table.render();
    return out.str();
}

Fig4Series
fig4Series(const std::vector<std::string> &labels,
           const std::vector<const sys::RunResult *> &runs)
{
    Fig4Series s;
    s.labels = labels;
    s.maxLevel = runs.empty() ? 10 : runs[0]->l2TotalMshr.maxLevel();
    for (const sys::RunResult *run : runs) {
        std::vector<double> read, total;
        for (int level = 0; level <= s.maxLevel; ++level) {
            read.push_back(run->l2ReadMshr.fracAtLeast(level));
            total.push_back(run->l2TotalMshr.fracAtLeast(level));
        }
        s.fracRead.push_back(std::move(read));
        s.fracTotal.push_back(std::move(total));
    }
    return s;
}

std::string
formatFig4(const std::vector<std::string> &labels,
           const std::vector<const sys::RunResult *> &runs,
           const std::string &title)
{
    const Fig4Series s = fig4Series(labels, runs);
    std::ostringstream out;
    out << "== " << title << " ==\n";
    for (int part = 0; part < 2; ++part) {
        out << (part == 0
                    ? "(a) fraction of time >= N L2 MSHRs hold read "
                      "misses\n"
                    : "(b) fraction of time >= N L2 MSHRs in use "
                      "(reads + writes)\n");
        TablePrinter table;
        std::vector<std::string> header{"N"};
        for (const auto &label : s.labels)
            header.push_back(label);
        table.setHeader(header);
        const auto &series = part == 0 ? s.fracRead : s.fracTotal;
        for (int level = 0; level <= s.maxLevel; ++level) {
            std::vector<std::string> cells{std::to_string(level)};
            for (const auto &run : series)
                cells.push_back(
                    fmtDouble(run[static_cast<std::size_t>(level)], 3));
            table.addRow(cells);
        }
        out << table.render();
    }
    return out.str();
}

bool
writeFig4Json(const std::string &path,
              const std::vector<std::string> &labels,
              const std::vector<const sys::RunResult *> &runs,
              const std::string &manifest_json)
{
    const Fig4Series s = fig4Series(labels, runs);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\n  \"manifest\": %s,\n",
                 manifest_json.empty() ? "null" : manifest_json.c_str());
    std::fprintf(f, "  \"maxLevel\": %d,\n  \"runs\": [\n",
                 s.maxLevel);
    for (std::size_t i = 0; i < s.labels.size(); ++i) {
        std::fprintf(f, "    {\"label\": \"%s\",\n     \"fracAtLeastRead\": [",
                     s.labels[i].c_str());
        for (std::size_t l = 0; l < s.fracRead[i].size(); ++l)
            std::fprintf(f, "%s%.6f", l == 0 ? "" : ", ",
                         s.fracRead[i][l]);
        std::fprintf(f, "],\n     \"fracAtLeastTotal\": [");
        for (std::size_t l = 0; l < s.fracTotal[i].size(); ++l)
            std::fprintf(f, "%s%.6f", l == 0 ? "" : ", ",
                         s.fracTotal[i][l]);
        std::fprintf(f, "]}%s\n",
                     i + 1 < s.labels.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
}

double
measuredMlp(const sys::RunResult &run)
{
    return run.l2ReadMshr.meanLevelAtLeast(1);
}

std::string
formatModelVsMeasured(const std::vector<std::string> &names,
                      const std::vector<PairResult> &pairs,
                      const std::string &title)
{
    TablePrinter table;
    table.setHeader({"app", "loop", "u", "f base", "f clust",
                     "MLP base", "MLP clust"});
    for (std::size_t a = 0; a < pairs.size(); ++a) {
        const auto &nests = pairs[a].clust.report.nests;
        const std::string mlp_base =
            fmtDouble(measuredMlp(pairs[a].base.result), 2);
        const std::string mlp_clust =
            fmtDouble(measuredMlp(pairs[a].clust.result), 2);
        if (nests.empty()) {
            table.addRow({names[a], "-", "-", "-", "-", mlp_base,
                          mlp_clust});
            continue;
        }
        for (std::size_t n = 0; n < nests.size(); ++n) {
            const auto &nest = nests[n];
            const int u = nest.unrollDegree * nest.innerUnrollDegree;
            table.addRow({n == 0 ? names[a] : "", nest.loopVar,
                          std::to_string(u),
                          fmtDouble(nest.fBefore, 2),
                          fmtDouble(nest.fAfter, 2),
                          n == 0 ? mlp_base : "",
                          n == 0 ? mlp_clust : ""});
        }
    }
    std::ostringstream out;
    out << "== " << title << " ==\n"
        << "(f = predicted overlapped misses per cluster, Equations "
           "1-4;\n MLP = measured mean outstanding L2 read misses "
           "while >= 1)\n"
        << table.render();
    return out.str();
}

bool
writeModelVsMeasuredJson(const std::string &path,
                         const std::vector<std::string> &names,
                         const std::vector<PairResult> &pairs,
                         const std::string &manifest_json)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\n  \"manifest\": %s,\n",
                 manifest_json.empty() ? "null" : manifest_json.c_str());
    std::fprintf(f, "  \"apps\": [\n");
    for (std::size_t a = 0; a < pairs.size(); ++a) {
        std::fprintf(
            f,
            "    {\"app\": \"%s\", \"mlpBase\": %.6f, "
            "\"mlpClust\": %.6f,\n     \"nests\": [",
            names[a].c_str(), measuredMlp(pairs[a].base.result),
            measuredMlp(pairs[a].clust.result));
        const auto &nests = pairs[a].clust.report.nests;
        for (std::size_t n = 0; n < nests.size(); ++n) {
            const auto &nest = nests[n];
            std::fprintf(
                f,
                "%s\n      {\"loop\": \"%s\", \"fBefore\": %.6f, "
                "\"fAfter\": %.6f, \"unroll\": %d, "
                "\"innerUnroll\": %d}",
                n == 0 ? "" : ",", nest.loopVar.c_str(), nest.fBefore,
                nest.fAfter, nest.unrollDegree, nest.innerUnrollDegree);
        }
        std::fprintf(f, "%s]}%s\n", nests.empty() ? "" : "\n     ",
                     a + 1 < pairs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
}

std::string
formatLatbench(const PairResult &pair, double ns_per_cycle,
               std::uint64_t misses_base, std::uint64_t misses_clust,
               const std::string &title)
{
    const auto &base = pair.base.result;
    const auto &clust = pair.clust.result;
    auto stall_per_miss = [ns_per_cycle](const sys::RunResult &run,
                                         std::uint64_t misses) {
        return misses > 0
                   ? run.dataComponent() / static_cast<double>(misses) *
                         ns_per_cycle
                   : 0.0;
    };
    const double base_stall = stall_per_miss(base, misses_base);
    const double clust_stall = stall_per_miss(clust, misses_clust);

    TablePrinter table;
    table.setHeader({"variant", "stall/miss (ns)", "total lat (ns)",
                     "bus util", "bank util"});
    auto total_lat = [ns_per_cycle](const sys::RunResult &run) {
        return run.cores[0].longMissLatency.mean() * ns_per_cycle;
    };
    table.addRow({"Base", fmtDouble(base_stall, 1),
                  fmtDouble(total_lat(base), 1),
                  fmtPercent(base.busUtilization),
                  fmtPercent(base.bankUtilization)});
    table.addRow({"Clust", fmtDouble(clust_stall, 1),
                  fmtDouble(total_lat(clust), 1),
                  fmtPercent(clust.busUtilization),
                  fmtPercent(clust.bankUtilization)});
    std::ostringstream out;
    out << "== " << title << " ==\n"
        << table.render()
        << strprintf("stall-per-miss speedup: %.2fx\n",
                     clust_stall > 0 ? base_stall / clust_stall : 0.0);
    return out.str();
}

std::string
formatDriverSummary(const std::string &name,
                    const transform::DriverReport &report)
{
    std::ostringstream out;
    out << "-- driver decisions for " << name << " --\n"
        << report.toString();
    return out.str();
}

} // namespace mpc::harness
