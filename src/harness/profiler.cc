#include "harness/profiler.hh"

#include <bit>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mpc::harness
{

namespace
{

/** Tag-only set-associative LRU cache model. Geometry is power-of-two
 *  (asserted, like the timing cache), so the per-access set lookup is
 *  shift-and-mask — this hook runs once per simulated memory access,
 *  and a hardware division here was the profiler's hottest operation. */
class TagCache
{
  public:
    explicit TagCache(const mem::CacheConfig &cfg)
        : ways_(cfg.numSets() * static_cast<size_t>(cfg.assoc)),
          assoc_(cfg.assoc)
    {
        MPC_ASSERT(isPowerOf2(cfg.lineBytes),
                   "line size must be power of 2");
        MPC_ASSERT(isPowerOf2(cfg.numSets()),
                   "set count must be power of 2");
        lineShift_ = std::countr_zero(
            static_cast<std::uint64_t>(cfg.lineBytes));
        setMask_ = cfg.numSets() - 1;
    }

    /** Access @p addr; @return true on hit. */
    bool
    access(Addr addr)
    {
        const Addr line = addr >> lineShift_;   // tags are line numbers
        MPC_ASSERT(line < 0xffffffffu, "address beyond 32-bit line space");
        const auto tag = static_cast<std::uint32_t>(line);
        const size_t set = line & setMask_;
        Way *const base = ways_.data() + set * static_cast<size_t>(assoc_);
        // Hit scan first — tags only, no LRU bookkeeping. Hits are the
        // common case and this keeps their path to a handful of 32-bit
        // compares in one host cache line; the victim scan runs only
        // on a miss (first-minimum tie-break, as always).
        for (Way *w = base; w < base + assoc_; ++w) {
            if (w->tag == tag) {
                w->lru = ++clock_;
                return true;
            }
        }
        Way *victim = base;
        for (Way *w = base + 1; w < base + assoc_; ++w)
            if (w->lru < victim->lru)
                victim = w;
        victim->tag = tag;
        victim->lru = ++clock_;
        return false;
    }

    /** Drop @p addr's line if present (remote write invalidation). */
    void
    invalidate(Addr addr)
    {
        const Addr line = addr >> lineShift_;
        MPC_ASSERT(line < 0xffffffffu, "address beyond 32-bit line space");
        const auto tag = static_cast<std::uint32_t>(line);
        const size_t set = line & setMask_;
        Way *const base = ways_.data() + set * static_cast<size_t>(assoc_);
        for (Way *w = base; w < base + assoc_; ++w) {
            if (w->tag == tag) {
                w->tag = invalidTag;
                w->lru = 0;
            }
        }
    }

  private:
    static constexpr std::uint32_t invalidTag = 0xffffffffu;

    /** Tag and LRU stamp side by side, 8 bytes per way: a 4-way set
     *  is half a 64-byte host cache line, so the whole table is twice
     *  as cache-resident as a 16-byte layout and an access touches one
     *  line. 32-bit fields suffice: line numbers are asserted to fit
     *  (tags are line numbers, and 2^32 lines is 256 GiB of simulated
     *  address space), and the LRU clock ticks at most once per
     *  executed instruction, bounded by the 2^31 execution budget. */
    struct Way
    {
        std::uint32_t tag = invalidTag;
        std::uint32_t lru = 0;
    };

    std::vector<Way> ways_;
    int assoc_;
    std::uint32_t clock_ = 0;
    int lineShift_ = 0;
    std::uint64_t setMask_ = 0;
};

/** Per-refId tallies kept in a flat array during the replay — refIds
 *  are small dense codegen-assigned ids, so indexing beats a hash
 *  probe per access — then merged into the profile's map at the end
 *  (ascending id, so insertion order is deterministic). */
class FlatCounts
{
  public:
    void
    tally(std::uint32_t ref_id, bool hit)
    {
        if (ref_id == 0xffffffff)
            return;
        if (ref_id >= counts_.size()) [[unlikely]]
            counts_.resize(static_cast<std::size_t>(ref_id) + 1);
        Entry &entry = counts_[ref_id];
        ++entry.accesses;
        entry.misses += !hit;
    }

    /** Visit non-empty ids ascending: fn(id, accesses, misses). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint32_t id = 0; id < counts_.size(); ++id)
            if (counts_[id].accesses != 0)
                fn(id, counts_[id].accesses, counts_[id].misses);
    }

  private:
    struct Entry
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
    };

    std::vector<Entry> counts_;
};

} // namespace

CacheProfile
CacheProfile::measure(const kisa::Program &program,
                      kisa::MemoryImage &scratch,
                      const mem::CacheConfig &geometry)
{
    CacheProfile profile;
    TagCache cache(geometry);
    FlatCounts tallies;
    // Statically-typed hook: inlines into the execution loop instead
    // of paying a std::function dispatch per memory access. The tier
    // (MPC_EXEC_TIER) only changes how fast the replay runs; both
    // backends report the identical access stream.
    kisa::executeWithHook(
        program, scratch,
        [&](int, const kisa::Instr &instr, Addr addr, bool) {
            tallies.tally(instr.refId, cache.access(addr));
        },
        1ull << 31);
    tallies.forEach([&](std::uint32_t id, std::uint64_t accesses,
                        std::uint64_t misses) {
        auto &counts = profile.counts_[id];
        counts.accesses += accesses;
        counts.misses += misses;
    });
    return profile;
}

CacheProfile
CacheProfile::measureMulti(const std::vector<kisa::Program> &programs,
                           kisa::MemoryImage &scratch,
                           const mem::CacheConfig &geometry)
{
    CacheProfile profile;
    std::vector<TagCache> caches(programs.size(), TagCache(geometry));
    FlatCounts tallies;
    kisa::executeWithHook(
        programs, scratch,
        [&](int core, const kisa::Instr &instr, Addr addr,
            bool is_load) {
            const bool hit =
                caches[static_cast<size_t>(core)].access(addr);
            if (!is_load) {
                for (size_t c = 0; c < caches.size(); ++c)
                    if (c != static_cast<size_t>(core))
                        caches[c].invalidate(addr);
            }
            tallies.tally(instr.refId, hit);
        },
        1ull << 31);
    tallies.forEach([&](std::uint32_t id, std::uint64_t accesses,
                        std::uint64_t misses) {
        auto &counts = profile.counts_[id];
        counts.accesses += accesses;
        counts.misses += misses;
    });
    return profile;
}

double
CacheProfile::missRate(int ref_id) const
{
    const Counts *counts =
        ref_id < 0 ? nullptr
                   : counts_.find(static_cast<std::uint32_t>(ref_id));
    if (counts == nullptr || counts->accesses == 0)
        return 1.0;
    return static_cast<double>(counts->misses) /
           static_cast<double>(counts->accesses);
}

std::uint64_t
CacheProfile::accesses(int ref_id) const
{
    const Counts *counts =
        ref_id < 0 ? nullptr
                   : counts_.find(static_cast<std::uint32_t>(ref_id));
    return counts == nullptr ? 0 : counts->accesses;
}

} // namespace mpc::harness
