#include "harness/profiler.hh"

#include <vector>

#include "common/types.hh"

namespace mpc::harness
{

namespace
{

/** Tag-only set-associative LRU cache model. */
class TagCache
{
  public:
    explicit TagCache(const mem::CacheConfig &cfg)
        : lineBytes_(cfg.lineBytes),
          numSets_(cfg.numSets()),
          sets_(cfg.numSets() * static_cast<size_t>(cfg.assoc),
                invalidAddr),
          assoc_(cfg.assoc), lru_(sets_.size(), 0)
    {}

    /** Access @p addr; @return true on hit. */
    bool
    access(Addr addr)
    {
        const Addr line = alignDown(addr, lineBytes_);
        const size_t set = (line / lineBytes_) % numSets_;
        const size_t base = set * static_cast<size_t>(assoc_);
        size_t victim = base;
        for (size_t w = base; w < base + static_cast<size_t>(assoc_);
             ++w) {
            if (sets_[w] == line) {
                lru_[w] = ++clock_;
                return true;
            }
            if (lru_[w] < lru_[victim])
                victim = w;
        }
        sets_[victim] = line;
        lru_[victim] = ++clock_;
        return false;
    }

    /** Drop @p addr's line if present (remote write invalidation). */
    void
    invalidate(Addr addr)
    {
        const Addr line = alignDown(addr, lineBytes_);
        const size_t set = (line / lineBytes_) % numSets_;
        const size_t base = set * static_cast<size_t>(assoc_);
        for (size_t w = base; w < base + static_cast<size_t>(assoc_);
             ++w) {
            if (sets_[w] == line) {
                sets_[w] = invalidAddr;
                lru_[w] = 0;
            }
        }
    }

  private:
    Addr lineBytes_;
    std::uint64_t numSets_;
    std::vector<Addr> sets_;
    int assoc_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t clock_ = 0;
};

} // namespace

CacheProfile
CacheProfile::measure(const kisa::Program &program,
                      kisa::MemoryImage &scratch,
                      const mem::CacheConfig &geometry)
{
    CacheProfile profile;
    TagCache cache(geometry);
    kisa::Interpreter interp(scratch);
    interp.addCore(program);
    // Statically-typed hook: inlines into the interpreter loop instead
    // of paying a std::function dispatch per memory access.
    interp.runWithHook(
        [&](int, const kisa::Instr &instr, Addr addr, bool) {
            const bool hit = cache.access(addr);
            if (instr.refId == 0xffffffff)
                return;
            auto &counts = profile.counts_[instr.refId];
            ++counts.accesses;
            counts.misses += !hit;
        },
        1ull << 31);
    return profile;
}

CacheProfile
CacheProfile::measureMulti(const std::vector<kisa::Program> &programs,
                           kisa::MemoryImage &scratch,
                           const mem::CacheConfig &geometry)
{
    CacheProfile profile;
    std::vector<TagCache> caches(programs.size(), TagCache(geometry));
    kisa::Interpreter interp(scratch);
    for (const auto &program : programs)
        interp.addCore(program);
    interp.runWithHook(
        [&](int core, const kisa::Instr &instr, Addr addr,
            bool is_load) {
            const bool hit =
                caches[static_cast<size_t>(core)].access(addr);
            if (!is_load) {
                for (size_t c = 0; c < caches.size(); ++c)
                    if (c != static_cast<size_t>(core))
                        caches[c].invalidate(addr);
            }
            if (instr.refId == 0xffffffff)
                return;
            auto &counts = profile.counts_[instr.refId];
            ++counts.accesses;
            counts.misses += !hit;
        },
        1ull << 31);
    return profile;
}

double
CacheProfile::missRate(int ref_id) const
{
    const Counts *counts =
        ref_id < 0 ? nullptr
                   : counts_.find(static_cast<std::uint32_t>(ref_id));
    if (counts == nullptr || counts->accesses == 0)
        return 1.0;
    return static_cast<double>(counts->misses) /
           static_cast<double>(counts->accesses);
}

std::uint64_t
CacheProfile::accesses(int ref_id) const
{
    const Counts *counts =
        ref_id < 0 ? nullptr
                   : counts_.find(static_cast<std::uint32_t>(ref_id));
    return counts == nullptr ? 0 : counts->accesses;
}

} // namespace mpc::harness
