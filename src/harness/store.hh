/**
 * @file
 * ResultStore: the on-disk content-addressed store behind every
 * cached simulation result — the experiment farm (harness/farm.hh),
 * the store-backed ParallelRunner path, and the mpctune result cache
 * (which PR 9 migrated off its private tune_*.json format).
 *
 * Keys are fixed-width lowercase-hex content hashes (the Job layer
 * composes them from kernel-IR hash x configKey hash; see
 * harness/job.hh). Values are opaque JSON objects. Layout is a
 * two-level directory sharded by key prefix so millions of entries
 * never land in one directory:
 *
 *     <dir>/<key[0:2]>/<key[2:4]>/<key>.json
 *
 * Durability discipline:
 *  - writes go to a unique temp file in the same directory, then
 *    rename() into place — readers never observe a torn entry, and
 *    two concurrent writers of the same key both succeed (last rename
 *    wins; both wrote the same content-addressed value);
 *  - reads validate that the entry parses as a JSON object; a corrupt
 *    or truncated entry is treated as a miss and moved into
 *    <dir>/quarantine/ (never deleted — a damaged entry is evidence),
 *    counted in stats().bad;
 *  - callers that impose more schema on the value (the Job layer) can
 *    quarantine() an entry that passed the JSON check but failed
 *    theirs.
 *
 * The store is process-local state over shared files: stats() counters
 * are per-ResultStore-instance, guarded by a mutex so ParallelRunner
 * threads can share one instance.
 */

#ifndef MPC_HARNESS_STORE_HH
#define MPC_HARNESS_STORE_HH

#include <memory>
#include <mutex>
#include <string>

namespace mpc::harness
{

class ResultStore
{
  public:
    /** Counter snapshot (per instance, not per directory). */
    struct Stats
    {
        int hits = 0;       ///< get() served a valid entry
        int misses = 0;     ///< get() found nothing
        int bad = 0;        ///< corrupt entries quarantined
        int writes = 0;     ///< put() completed
    };

    /** Open (creating directories lazily on first put). */
    explicit ResultStore(std::string dir);

    /** The store MPC_STORE names, or null when the variable is unset
     *  or empty. */
    static std::unique_ptr<ResultStore> fromEnv();

    const std::string &dir() const { return dir_; }

    /** True iff @p key is a plausible store key: at least 8 lowercase
     *  hex characters (shorter keys cannot shard two levels). */
    static bool validKey(const std::string &key);

    /** Sharded entry path for @p key (valid keys only). */
    std::string pathFor(const std::string &key) const;

    /**
     * Fetch the entry under @p key into @p value. Returns false on a
     * miss; a present-but-corrupt entry (unreadable, empty, or not a
     * parseable JSON object) is quarantined and reported as a miss.
     */
    bool get(const std::string &key, std::string &value);

    /**
     * Atomically publish @p value under @p key (temp file + rename).
     * Returns false on I/O failure (disk full, unwritable dir);
     * callers treat that as "store disabled", never as fatal.
     */
    bool put(const std::string &key, const std::string &value);

    /**
     * Move the entry under @p key into <dir>/quarantine/ (uniquified
     * with a numeric suffix if needed) and count it bad. Safe to call
     * for a key with no entry (no-op).
     */
    void quarantine(const std::string &key);

    Stats stats() const;

  private:
    std::string dir_;
    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace mpc::harness

#endif // MPC_HARNESS_STORE_HH
