#include "harness/farm.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>

#include "common/logging.hh"
#include "harness/parallel.hh"
#include "kisa/exec_threaded.hh"

namespace fs = std::filesystem;

namespace mpc::harness
{

namespace
{

volatile std::sig_atomic_t g_interrupted = 0;

void
onSigint(int)
{
    g_interrupted = 1;
}

/** Ack/error messages travel on single-line channels. */
std::string
oneLine(std::string s)
{
    for (char &c : s)
        if (c == '\n' || c == '\r')
            c = ' ';
    return s;
}

/** Record a given-up job next to the store's corrupt entries, so a
 *  quarantined sweep leaves evidence of what failed and why. */
void
quarantineJob(ResultStore &store, const std::string &key,
              const Job &job, const std::string &error)
{
    const std::string dir = store.dir() + "/quarantine";
    std::error_code ec;
    fs::create_directories(dir, ec);
    json::ObjectWriter w;
    w.field("schema", "mpc-farm-quarantine-v1")
        .field("key", key)
        .field("error", error)
        .raw("job", job.toJson());
    std::ofstream out(dir + "/job_" + key + ".json");
    out << w.str() << "\n";
}

/**
 * Resolve keys and serve every job already in the store; the rest
 * land in @p pending in job order.
 */
void
prescan(const std::vector<Job> &jobs, ResultStore &store,
        FarmReport &rep, std::deque<std::size_t> &pending)
{
    rep.jobs.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        FarmJobOutcome &o = rep.jobs[i];
        o.key = jobKey(jobs[i]);
        std::string text;
        if (store.get(o.key, text)) {
            JobResult cached;
            if (JobResult::fromJson(text, cached) && cached.ok) {
                o.ok = true;
                o.fromStore = true;
                o.cycles = cached.result.cycles;
                continue;
            }
            store.quarantine(o.key);
        }
        pending.push_back(i);
    }
}

void
tallyTotals(FarmReport &rep)
{
    rep.hits = rep.simulated = rep.failed = 0;
    for (const FarmJobOutcome &o : rep.jobs) {
        if (!o.ok)
            ++rep.failed;
        else if (o.fromStore)
            ++rep.hits;
        else
            ++rep.simulated;
    }
}

/** Pull each simulated job's cycle count out of the store for the
 *  report table (hits got theirs during the prescan). */
void
fillCycles(FarmReport &rep, ResultStore &store)
{
    for (FarmJobOutcome &o : rep.jobs) {
        if (!o.ok || o.fromStore)
            continue;
        std::string text;
        JobResult result;
        if (store.get(o.key, text) &&
            JobResult::fromJson(text, result))
            o.cycles = result.result.cycles;
    }
}

FarmReport
runInProcess(const std::vector<Job> &jobs, ResultStore &store,
             const FarmOptions &opts)
{
    FarmReport rep;
    std::deque<std::size_t> pending;
    prescan(jobs, store, rep, pending);

    std::size_t limit = pending.size();
    if (opts.maxJobs > 0 &&
        static_cast<std::size_t>(opts.maxJobs) < limit) {
        limit = static_cast<std::size_t>(opts.maxJobs);
        rep.interrupted = true;
    }
    std::vector<std::function<void()>> tasks;
    for (std::size_t k = 0; k < pending.size(); ++k) {
        const std::size_t i = pending[k];
        if (k >= limit) {
            rep.jobs[i].error = "not dispatched (interrupted)";
            continue;
        }
        tasks.push_back([&jobs, &store, &opts, &rep, i] {
            FarmJobOutcome &o = rep.jobs[i];
            for (int a = 0; a <= opts.retries && !o.ok; ++a) {
                ++o.attempts;
                bool from_store = false;
                const JobResult r =
                    runJob(jobs[i], &store, &from_store);
                if (r.ok) {
                    o.ok = true;
                    o.fromStore = from_store;
                    o.cycles = r.result.cycles;
                } else {
                    o.error = r.error;
                }
            }
            if (!o.ok) {
                o.quarantined = true;
                quarantineJob(store, o.key, jobs[i], o.error);
            }
        });
    }
    ParallelRunner(opts.workers).run(tasks);
    tallyTotals(rep);
    return rep;
}

/** One forked `mpcfarm --worker` with its job/ack pipe ends. */
struct WorkerProc
{
    pid_t pid = -1;
    int in = -1;                ///< coordinator -> worker job lines
    int out = -1;               ///< worker -> coordinator ack lines
    long job = -1;              ///< dispatched job index (-1 = idle)
    std::string buf;            ///< partial ack line
    std::chrono::steady_clock::time_point start;
};

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
spawnWorker(WorkerProc &p, const std::string &binary,
            const std::string &store_dir)
{
    int to_worker[2];
    int from_worker[2];
    if (pipe(to_worker) != 0)
        return false;
    if (pipe(from_worker) != 0) {
        close(to_worker[0]);
        close(to_worker[1]);
        return false;
    }
    const pid_t pid = fork();
    if (pid < 0) {
        for (const int fd : {to_worker[0], to_worker[1],
                             from_worker[0], from_worker[1]})
            close(fd);
        return false;
    }
    if (pid == 0) {
        dup2(to_worker[0], STDIN_FILENO);
        dup2(from_worker[1], STDOUT_FILENO);
        for (const int fd : {to_worker[0], to_worker[1],
                             from_worker[0], from_worker[1]})
            close(fd);
        execl(binary.c_str(), "mpcfarm", "--worker", "--store",
              store_dir.c_str(), static_cast<char *>(nullptr));
        _exit(127);
    }
    close(to_worker[0]);
    close(from_worker[1]);
    p.pid = pid;
    p.in = to_worker[1];
    p.out = from_worker[0];
    p.job = -1;
    p.buf.clear();
    return true;
}

FarmReport
runSubprocess(const std::vector<Job> &jobs, ResultStore &store,
              const FarmOptions &opts)
{
    FarmReport rep;
    std::deque<std::size_t> pending;
    prescan(jobs, store, rep, pending);

    const std::string binary =
        opts.workerBinary.empty() ? "/proc/self/exe"
                                  : opts.workerBinary;
    int workers =
        opts.workers > 0 ? opts.workers : ParallelRunner::defaultThreads();
    workers = std::max(
        1, std::min<int>(workers, static_cast<int>(pending.size())));

    // The coordinator owns ^C: stop dispatching, drain in-flight jobs
    // (workers ignore SIGINT), report interrupted. EPIPE from a dead
    // worker must come back as a write() error, not kill us.
    g_interrupted = 0;
    struct sigaction sa_int = {};
    struct sigaction old_int = {};
    sa_int.sa_handler = onSigint;
    sigaction(SIGINT, &sa_int, &old_int);
    struct sigaction sa_pipe = {};
    struct sigaction old_pipe = {};
    sa_pipe.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &sa_pipe, &old_pipe);

    std::vector<WorkerProc> procs(
        static_cast<std::size_t>(workers));
    int completions = 0;
    bool stop = pending.empty();

    const auto failAttempt = [&](long i, const std::string &why) {
        FarmJobOutcome &o = rep.jobs[static_cast<std::size_t>(i)];
        o.error = why;
        if (o.attempts <= opts.retries) {
            pending.push_front(static_cast<std::size_t>(i));
        } else {
            o.quarantined = true;
            quarantineJob(store, o.key,
                          jobs[static_cast<std::size_t>(i)], o.error);
        }
    };

    const auto dispatch = [&](WorkerProc &p) {
        if (pending.empty())
            return false;
        const std::size_t i = pending.front();
        if (!writeAll(p.in, jobs[i].toJson() + "\n"))
            return false;    // worker died; its EOF resolves it
        pending.pop_front();
        ++rep.jobs[i].attempts;
        p.job = static_cast<long>(i);
        p.start = std::chrono::steady_clock::now();
        return true;
    };

    const auto reap = [](WorkerProc &p) {
        if (p.pid >= 0)
            waitpid(p.pid, nullptr, 0);
        if (p.in >= 0)
            close(p.in);
        if (p.out >= 0)
            close(p.out);
        p.pid = -1;
        p.in = -1;
        p.out = -1;
    };

    while (true) {
        if (g_interrupted && !stop) {
            stop = true;
            rep.interrupted = true;
        }
        if (opts.maxJobs > 0 && completions >= opts.maxJobs &&
            !stop) {
            stop = true;
            rep.interrupted = true;
        }

        // Feed idle workers (spawning replacements as needed).
        if (!stop) {
            for (WorkerProc &p : procs) {
                if (pending.empty())
                    break;
                if (p.pid < 0 &&
                    !spawnWorker(p, binary, store.dir())) {
                    stop = true;
                    rep.interrupted = true;
                    break;
                }
                if (p.job < 0)
                    dispatch(p);
            }
        }
        // Idle workers with nothing further coming: close their job
        // pipe so they exit on EOF.
        for (WorkerProc &p : procs) {
            if (p.pid >= 0 && p.job < 0 && p.in >= 0 &&
                (stop || pending.empty())) {
                close(p.in);
                p.in = -1;
            }
        }

        std::vector<pollfd> fds;
        std::vector<std::size_t> owners;
        for (std::size_t w = 0; w < procs.size(); ++w) {
            if (procs[w].pid >= 0) {
                fds.push_back({procs[w].out, POLLIN, 0});
                owners.push_back(w);
            }
        }
        if (fds.empty()) {
            if (stop || pending.empty())
                break;
            continue;    // respawn next iteration
        }

        // Short poll period: bounds SIGINT/timeout reaction time.
        const int rc = poll(fds.data(),
                            static_cast<nfds_t>(fds.size()), 200);
        if (rc < 0 && errno != EINTR)
            break;

        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (fds[k].revents == 0)
                continue;
            WorkerProc &p = procs[owners[k]];
            char tmp[4096];
            const ssize_t n = read(p.out, tmp, sizeof(tmp));
            if (n > 0) {
                p.buf.append(tmp, static_cast<std::size_t>(n));
                std::size_t nl;
                while ((nl = p.buf.find('\n')) !=
                       std::string::npos) {
                    const std::string line = p.buf.substr(0, nl);
                    p.buf.erase(0, nl + 1);
                    const long i = p.job;
                    p.job = -1;
                    if (i < 0)
                        continue;    // stray ack
                    if (line.rfind("ok ", 0) == 0) {
                        rep.jobs[static_cast<std::size_t>(i)].ok =
                            true;
                        ++completions;
                    } else {
                        std::string why = "worker error";
                        const auto sp = line.find(
                            ' ', line.rfind("err ", 0) == 0 ? 4 : 0);
                        if (sp != std::string::npos)
                            why = line.substr(sp + 1);
                        failAttempt(i, why);
                    }
                }
            } else {
                // EOF/error: the worker exited. Mid-job, that is a
                // crash — account one failed attempt.
                const long i = p.job;
                p.job = -1;
                reap(p);
                if (i >= 0)
                    failAttempt(i, "worker exited unexpectedly");
            }
        }

        if (opts.timeoutSeconds > 0) {
            const auto now = std::chrono::steady_clock::now();
            for (WorkerProc &p : procs) {
                if (p.pid < 0 || p.job < 0)
                    continue;
                const double elapsed =
                    std::chrono::duration<double>(now - p.start)
                        .count();
                if (elapsed > opts.timeoutSeconds)
                    kill(p.pid, SIGKILL);    // EOF path accounts it
            }
        }
    }

    for (WorkerProc &p : procs)
        if (p.pid >= 0)
            reap(p);

    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGPIPE, &old_pipe, nullptr);

    for (const std::size_t i : pending) {
        FarmJobOutcome &o = rep.jobs[i];
        if (!o.ok && !o.quarantined && o.error.empty())
            o.error = "not dispatched (interrupted)";
    }
    fillCycles(rep, store);
    tallyTotals(rep);
    return rep;
}

} // namespace

std::string
FarmReport::toString(const std::vector<Job> &job_list) const
{
    std::string out = strprintf("farm: %d job(s), %d failed\n",
                                static_cast<int>(job_list.size()),
                                failed);
    for (std::size_t i = 0;
         i < jobs.size() && i < job_list.size(); ++i) {
        const Job &job = job_list[i];
        const FarmJobOutcome &o = jobs[i];
        const std::string what =
            !job.spec.pipeline.empty()
                ? job.spec.pipeline
                : (job.spec.clustered ? "clustered" : "base");
        std::string status;
        if (o.ok)
            status = strprintf(
                "cycles %llu",
                static_cast<unsigned long long>(o.cycles));
        else if (o.quarantined)
            status = "FAILED (quarantined): " + o.error;
        else
            status = "FAILED: " + o.error;
        out += strprintf("[%d] %-12s scale %d %2dp %-24s %s\n",
                         static_cast<int>(i), job.workload.c_str(),
                         job.scale, std::max(job.spec.procs, 1),
                         what.c_str(), status.c_str());
    }
    if (interrupted)
        out += "farm: interrupted before completion\n";
    return out;
}

bool
parseJobStream(std::istream &in, std::vector<Job> &out,
               std::string &error)
{
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        Job job;
        std::string err;
        if (!Job::fromJson(line, job, err)) {
            error = strprintf("line %d: %s", lineno, err.c_str());
            return false;
        }
        out.push_back(job);
    }
    return true;
}

FarmReport
runFarm(const std::vector<Job> &jobs, ResultStore &store,
        const FarmOptions &opts)
{
    if (opts.inProcess)
        return runInProcess(jobs, store, opts);
    return runSubprocess(jobs, store, opts);
}

int
farmWorkerMain(const std::string &store_dir)
{
    std::signal(SIGINT, SIG_IGN);    // the coordinator manages ^C
    ResultStore store(store_dir);
    const char *crash = std::getenv("MPC_FARM_TEST_CRASH");
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        Job job;
        std::string error;
        if (!Job::fromJson(line, job, error)) {
            std::printf("err - %s\n", oneLine(error).c_str());
            std::fflush(stdout);
            continue;
        }
        if (crash != nullptr && crash[0] != '\0' &&
            job.workload == crash)
            _exit(42);    // injected crash (farm retry tests)
        // stdout is the ack channel; jobs never dump IR here.
        job.spec.dumpIr.clear();
        if (job.spec.execTier == "interp")
            kisa::pinExecTier(kisa::ExecTier::Interp);
        else if (job.spec.execTier == "threaded")
            kisa::pinExecTier(kisa::ExecTier::Threaded);
        else
            kisa::clearExecTierPin();
        const std::string key = jobKey(job);
        const JobResult result = runJob(job, &store);
        if (result.ok)
            std::printf("ok %s\n", key.c_str());
        else
            std::printf("err %s %s\n", key.c_str(),
                        oneLine(result.error).c_str());
        std::fflush(stdout);
    }
    return 0;
}

} // namespace mpc::harness
