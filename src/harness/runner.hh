/**
 * @file
 * Experiment runner: prepares a workload for a system configuration
 * (scaled caches, optional clustering transformation with profiled
 * miss rates, per-core lowering, data placement) and runs it on the
 * simulator. The figure/table benches and integration tests are built
 * on these entry points.
 */

#ifndef MPC_HARNESS_RUNNER_HH
#define MPC_HARNESS_RUNNER_HH

#include <string>

#include "system/system.hh"
#include "transform/driver.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{

struct RunSpec
{
    sys::SystemConfig config = sys::baseConfig();
    int procs = 1;
    bool clustered = false;     ///< apply the driver + scheduler
    int maxUnroll = 16;         ///< U
    Tick maxCycles = Tick(1) << 36;

    /**
     * Transformation pipeline spec ("cluster,prefetch"); empty means
     * the default driver pipeline when @ref clustered is set. A
     * non-empty spec implies a transforming run even when @ref
     * clustered is false.
     */
    std::string pipeline;

    /** IR dump mode: "" (off) or "after-each-pass" (to stdout). */
    std::string dumpIr;

    /**
     * Execution tier this job was keyed for: "" (resolve from the
     * ambient MPC_EXEC_TIER / pin at run time), "interp", or
     * "threaded". Tiers execute bit-identically, so this never changes
     * results — it exists so serialized jobs record which tier ran
     * them and farm workers can pin it (harness/job.hh).
     */
    std::string execTier;
};

/** One simulation run, plus what the compiler did to get there. */
struct WorkloadRun
{
    sys::RunResult result;
    /** No nests for base runs; passes may still list "partition". */
    transform::DriverReport report;
    std::string kernelText;             ///< final (possibly transformed)
    /** RunManifest JSON of this run (harness/manifest.hh): embed it in
     *  any artifact derived from @ref result. */
    std::string manifestJson;
};

/** Prepare and simulate @p workload under @p spec. */
WorkloadRun runWorkload(const workloads::Workload &workload,
                        const RunSpec &spec);

/** Base + clustered runs of the same workload/config/procs. */
struct PairResult
{
    WorkloadRun base;
    WorkloadRun clust;

    /** Percent execution-time reduction (Table 3's metric). */
    double
    reductionPct() const
    {
        const double b = static_cast<double>(base.result.cycles);
        const double c = static_cast<double>(clust.result.cycles);
        return b > 0 ? (1.0 - c / b) * 100.0 : 0.0;
    }
};

PairResult runPair(const workloads::Workload &workload,
                   const sys::SystemConfig &config, int procs);

/** Apply the workload's scaled cache size to a configuration. */
sys::SystemConfig scaleConfig(sys::SystemConfig config,
                              const workloads::Workload &workload);

/**
 * Build the transformation driver's parameters for @p workload on
 * @p config: machine knobs (lp from the MSHR count, window size, line
 * bytes) plus the profiled per-reference miss rates Section 3.2.2
 * calls for — measured by functionally executing the UNtransformed
 * @p kernel (already partitioned when @p procs > 1) against the target
 * cache geometry, with the run-matched multiprocessor profile attached
 * when @p procs > 1. Candidate-independent, so the autotuner profiles
 * once and reuses the result across every pipeline spec it tries;
 * runWorkload calls this on its transforming path.
 */
transform::DriverParams makeDriverParams(
    const workloads::Workload &workload, const ir::Kernel &kernel,
    const sys::SystemConfig &config, int procs, int maxUnroll);

} // namespace mpc::harness

#endif // MPC_HARNESS_RUNNER_HH
