/**
 * @file
 * Service layer of the experiment farm: a work-queue runner that
 * executes a stream of serialized Jobs across worker processes and
 * writes every completed JobResult to the ResultStore.
 *
 * Topology: the coordinator (runFarm) fork/execs `mpcfarm --worker`
 * processes, each consuming single-line job JSON over its stdin pipe
 * and answering one ack line ("ok <key>" / "err <key> <reason>") per
 * job on stdout. Dispatch is demand-driven — a worker gets its next
 * job the moment it acks the previous one — which is work stealing
 * with the queue held by the coordinator. Before dispatching, the
 * coordinator probes the store under the job key, so a resumed sweep
 * (same job file, store already populated) re-simulates nothing.
 *
 * Failure containment:
 *  - a worker that exits mid-job (crash, OOM kill) or overruns the
 *    per-job timeout (SIGKILL) costs one attempt; the job is
 *    re-dispatched up to FarmOptions::retries times, then quarantined
 *    (recorded under <store>/quarantine/job_<key>.json, reported
 *    FAILED, never retried again in this run);
 *  - SIGINT stops dispatching, drains the in-flight jobs (workers
 *    ignore SIGINT so the terminal's ^C does not kill them mid-write),
 *    and reports interrupted — rerunning resumes from the store.
 *
 * The report's toString() is deterministic (job lines + failure
 * count): store hit/miss counters are stderr-only, so a cold sweep and
 * its warm rerun print byte-identical reports.
 */

#ifndef MPC_HARNESS_FARM_HH
#define MPC_HARNESS_FARM_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/job.hh"
#include "harness/store.hh"

namespace mpc::harness
{

struct FarmOptions
{
    /** Worker processes (<= 0: MPC_JOBS, else hardware threads). */
    int workers = 0;
    /** Per-job wall-clock timeout in seconds; overruns are SIGKILLed
     *  and count as a failed attempt. 0 = no timeout. */
    double timeoutSeconds = 0.0;
    /** Re-dispatches allowed after a failed attempt (so a job runs at
     *  most 1 + retries times) before quarantine. */
    int retries = 1;
    /**
     * Stop dispatching after this many jobs have simulated (0 = no
     * limit) and report interrupted — the test hook that emulates a
     * mid-sweep kill deterministically.
     */
    int maxJobs = 0;
    /** Run jobs on threads in this process instead of forking workers
     *  (unit tests; no timeout support). */
    bool inProcess = false;
    /** Worker executable (mpcfarm); "" = /proc/self/exe, which is
     *  correct when the coordinator IS mpcfarm. */
    std::string workerBinary;
};

/** Outcome of one job, by job-list index. */
struct FarmJobOutcome
{
    std::string key;        ///< content key (ResultStore address)
    bool ok = false;
    bool fromStore = false; ///< served without simulating
    bool quarantined = false;
    int attempts = 0;       ///< dispatches (0 for a store hit)
    std::string error;      ///< last failure reason when !ok
    Tick cycles = 0;        ///< result cycles when ok
};

struct FarmReport
{
    std::vector<FarmJobOutcome> jobs;
    int hits = 0;           ///< served from the store
    int simulated = 0;
    int failed = 0;
    bool interrupted = false;

    /** Deterministic per-job table (no store counters, no timing):
     *  byte-identical between a cold sweep and its warm rerun. */
    std::string toString(const std::vector<Job> &jobs) const;
};

/**
 * Parse a job file / stdin stream: one Job JSON per line, blank lines
 * and '#' comments skipped. @return false (with @p error naming the
 * line) on the first malformed job.
 */
bool parseJobStream(std::istream &in, std::vector<Job> &out,
                    std::string &error);

/** Execute @p jobs through @p store (see file comment). */
FarmReport runFarm(const std::vector<Job> &jobs, ResultStore &store,
                   const FarmOptions &opts = {});

/** `mpcfarm --worker` entry: job JSONL on stdin, acks on stdout. */
int farmWorkerMain(const std::string &store_dir);

} // namespace mpc::harness

#endif // MPC_HARNESS_FARM_HH
