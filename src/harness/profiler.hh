/**
 * @file
 * Miss-rate profiling for irregular references (the P_m parameter of
 * Equation 4). Runs the base program functionally through a tag-only
 * cache model with the target L2 geometry and reports per-refId miss
 * rates — the "cache simulation or profiling" the paper prescribes.
 */

#ifndef MPC_HARNESS_PROFILER_HH
#define MPC_HARNESS_PROFILER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flatmap.hh"
#include "kisa/exec_threaded.hh"
#include "kisa/program.hh"
#include "mem/config.hh"

namespace mpc::harness
{

/** Per-static-reference access/miss counts. */
class CacheProfile
{
  public:
    /**
     * Functionally execute @p program against (a scratch copy is NOT
     * made; pass a disposable image) and record per-refId miss rates
     * in a cache of @p geometry.
     */
    static CacheProfile measure(const kisa::Program &program,
                                kisa::MemoryImage &scratch,
                                const mem::CacheConfig &geometry);

    /**
     * Multiprocessor variant: functionally execute the per-core
     * @p programs together (barrier/flag semantics intact) with one
     * tag cache of @p geometry per core and write-invalidate between
     * them, so communication misses — absent from the sequential
     * single-cache profile — are measured. Per-refId counts aggregate
     * across cores.
     */
    static CacheProfile measureMulti(
        const std::vector<kisa::Program> &programs,
        kisa::MemoryImage &scratch, const mem::CacheConfig &geometry);

    /** Measured miss rate of @p ref_id; 1.0 (pessimistic) if unseen. */
    double missRate(int ref_id) const;

    /** Accesses recorded for @p ref_id. */
    std::uint64_t accesses(int ref_id) const;

    /** Adapter for analysis/driver parameter wiring. */
    std::function<double(int)>
    asFunction() const
    {
        return [this](int ref_id) { return missRate(ref_id); };
    }

  private:
    struct Counts
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
    };
    /** refIds are small dense codegen-assigned ids; see DenseRefMap. */
    DenseRefMap<Counts> counts_;
};

} // namespace mpc::harness

#endif // MPC_HARNESS_PROFILER_HH
