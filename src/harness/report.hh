/**
 * @file
 * Paper-shaped report formatting: the Figure 3 normalized execution-
 * time breakdowns, the Table 3 reduction table, the Figure 4 MSHR
 * utilization series, and the Latbench latency table.
 */

#ifndef MPC_HARNESS_REPORT_HH
#define MPC_HARNESS_REPORT_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace mpc::harness
{

/**
 * Figure 3 style: per application, Base and Clust bars normalized to
 * the Base run (100.0), broken into Instr / Sync / CPU / Data
 * categories. Returns the rendered table plus a summary line with the
 * min/max/average total reduction.
 */
std::string formatFig3(const std::vector<std::string> &names,
                       const std::vector<PairResult> &pairs,
                       const std::string &title);

/** Table 3 style: percent execution time reduced per application.
 *  @p row_label names the row (e.g. "multiprocessor"). */
std::string formatReductionTable(
    const std::vector<std::string> &names,
    const std::vector<PairResult> &pairs,
    const std::string &row_label,
    const std::string &title);

/**
 * Figure 4 style: for each run, the fraction of time at least N L2
 * MSHRs are occupied (reads and total), N = 0..max.
 */
std::string formatFig4(const std::vector<std::string> &labels,
                       const std::vector<const sys::RunResult *> &runs,
                       const std::string &title);

/**
 * The Figure 4 data as one series table: fracRead[run][level] and
 * fracTotal[run][level] are the fractions of time at least `level` L2
 * MSHRs hold read misses / are in use. Single source of truth for the
 * text table (formatFig4) and the JSON export (writeFig4Json).
 */
struct Fig4Series
{
    std::vector<std::string> labels;
    int maxLevel = 0;
    std::vector<std::vector<double>> fracRead;
    std::vector<std::vector<double>> fracTotal;
};

Fig4Series fig4Series(const std::vector<std::string> &labels,
                      const std::vector<const sys::RunResult *> &runs);

/** Write the Figure 4 series as JSON, with the invocation's
 *  RunManifest spliced in ("" renders "manifest": null).
 *  @return false on I/O error. */
bool writeFig4Json(const std::string &path,
                   const std::vector<std::string> &labels,
                   const std::vector<const sys::RunResult *> &runs,
                   const std::string &manifest_json = "");

/**
 * Measured memory parallelism of a run: the time-weighted mean number
 * of outstanding L2 read misses, conditioned on at least one being
 * outstanding (the conditional mean of the Figure 4(a) histogram).
 * Collected on every run — no observability layer required.
 */
double measuredMlp(const sys::RunResult &run);

/**
 * Model vs measured: per loop nest, the analysis layer's predicted
 * f = f_reg + f_irreg before/after clustering (Equations 1-4) next to
 * the whole-app measured MLP of the base and clustered runs.
 */
std::string formatModelVsMeasured(
    const std::vector<std::string> &names,
    const std::vector<PairResult> &pairs,
    const std::string &title);

/** The same table as structured JSON, with the invocation's
 *  RunManifest spliced in ("" renders "manifest": null).
 *  @return false on I/O error. */
bool writeModelVsMeasuredJson(const std::string &path,
                              const std::vector<std::string> &names,
                              const std::vector<PairResult> &pairs,
                              const std::string &manifest_json = "");

/** Latbench: per-miss stall and total latency, base vs clustered. */
std::string formatLatbench(const PairResult &pair, double ns_per_cycle,
                           std::uint64_t misses_base,
                           std::uint64_t misses_clust,
                           const std::string &title);

/** One-line driver summary for an application. */
std::string formatDriverSummary(const std::string &name,
                                const transform::DriverReport &report);

} // namespace mpc::harness

#endif // MPC_HARNESS_REPORT_HH
