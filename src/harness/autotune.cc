#include "harness/autotune.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/job.hh"
#include "harness/parallel.hh"
#include "harness/report.hh"
#include "harness/store.hh"
#include "transform/pipeline.hh"

namespace mpc::harness
{

namespace
{

/** "spec=... config=... tier=..." provenance line for the stderr
 *  cache-hit echo, from a stored entry's run manifest. Empty when the
 *  manifest is missing (a hand-seeded store entry). */
std::string
manifestSummary(const std::string &manifest_json)
{
    json::Value man;
    if (manifest_json.empty() || !json::parse(manifest_json, man) ||
        man.t != json::Value::T::Obj)
        return "";
    const std::string pipe = json::strField(man, "pipeline");
    return strprintf("spec=%s config=%s tier=%s",
                     pipe.empty() ? "(base)" : pipe.c_str(),
                     json::strField(man, "configHash").c_str(),
                     json::strField(man, "execTier").c_str());
}

/** The default-everything spec body the degree/factor variants edit. */
constexpr const char *kFullTail =
    "postlude-interchange,scalar-replace,inner-unroll";

} // namespace

std::vector<std::string>
candidateSpecs(const transform::DriverParams &params)
{
    std::vector<std::string> specs;
    std::set<std::string> seen;
    const auto add = [&](const std::string &spec) {
        if (seen.insert(spec).second)
            specs.push_back(spec);
    };
    // The hand-tuned default first: it is the baseline every candidate
    // must beat and is exempt from model pruning.
    const std::string hand = transform::pipelineSpecFromParams(params);
    add(hand);
    // Cluster-degree sweep (the unroll-and-jam cap), with and without
    // software prefetching behind it.
    for (const int degree : {2, 4, 8, 16}) {
        const std::string body = strprintf(
            "fuse,cluster(maxDegree=%d),%s", degree, kFullTail);
        add(body);
        add(body + ",prefetch(dist=4)");
    }
    // Inner-unroll factor sweep at the default cluster degree.
    for (const int factor : {2, 4})
        add(strprintf("fuse,cluster,postlude-interchange,"
                      "scalar-replace,inner-unroll(factor=%d)",
                      factor));
    // Prefetch-distance sweep on top of the hand spec.
    for (const int dist : {2, 8})
        add(hand + strprintf(",prefetch(dist=%d)", dist));
    // The minimal pipeline: clustering alone.
    add("fuse,cluster");
    return specs;
}

std::string
TuneReport::toString() const
{
    std::string out = strprintf(
        "mpctune %s  procs %d\n", workload.c_str(), procs);
    out += strprintf("  base (untransformed)  cycles %12llu  mlp %.2f\n",
                     static_cast<unsigned long long>(baseCycles),
                     baseMlp);
    out += strprintf("  hand spec: %s\n\n", handSpec.c_str());
    out += strprintf("  %-56s %8s %12s %6s %8s\n", "spec", "pred f",
                     "cycles", "mlp", "reduce%");
    for (const CandidateResult &cand : candidates) {
        std::string status;
        if (cand.pruned)
            status = "      (model-pruned)";
        else if (cand.failed)
            status = "      FAILED: " + cand.note;
        else if (cand.measured)
            status = strprintf("%12llu %6.2f %7.1f%%",
                               static_cast<unsigned long long>(
                                   cand.cycles),
                               cand.mlp, cand.reductionPct);
        out += strprintf("  %-56s %8.2f %s%s\n", cand.spec.c_str(),
                         cand.predictedF, status.c_str(),
                         cand.spec == handSpec ? "  [hand]" : "");
    }
    const CandidateResult *win = best();
    if (win != nullptr) {
        const double hand_red =
            baseCycles > 0 && handCycles > 0
                ? (1.0 -
                   static_cast<double>(handCycles) /
                       static_cast<double>(baseCycles)) *
                      100.0
                : 0.0;
        out += strprintf(
            "\n  best: %s\n  cycles %llu (%.1f%% vs base; hand spec "
            "%.1f%%)\n",
            win->spec.c_str(),
            static_cast<unsigned long long>(win->cycles),
            win->reductionPct, hand_red);
    } else {
        out += "\n  best: (none measured)\n";
    }
    return out;
}

std::string
TuneReport::toJson() const
{
    // Deliberately excludes cache hit/miss state and wall times: the
    // tuned-spec JSON must be byte-identical between a cold run and a
    // fully cached rerun.
    std::string out = "{\n  \"workload\": ";
    json::escape(out, workload);
    out += strprintf(",\n  \"procs\": %d", procs);
    out += strprintf(",\n  \"baseCycles\": %llu",
                     static_cast<unsigned long long>(baseCycles));
    out += ",\n  \"baseMlp\": " + json::num(baseMlp);
    out += ",\n  \"handSpec\": ";
    json::escape(out, handSpec);
    out += strprintf(",\n  \"handCycles\": %llu",
                     static_cast<unsigned long long>(handCycles));
    out += ",\n  \"bestSpec\": ";
    json::escape(out, best() != nullptr ? best()->spec : "");
    out += ",\n  \"candidates\": [";
    for (size_t i = 0; i < candidates.size(); ++i) {
        const CandidateResult &c = candidates[i];
        out += i > 0 ? ",\n    {" : "\n    {";
        out += "\"spec\": ";
        json::escape(out, c.spec);
        out += ", \"predictedF\": " + json::num(c.predictedF);
        out += ", \"pruned\": ";
        out += c.pruned ? "true" : "false";
        out += ", \"measured\": ";
        out += c.measured ? "true" : "false";
        out += ", \"failed\": ";
        out += c.failed ? "true" : "false";
        out += strprintf(", \"cycles\": %llu",
                         static_cast<unsigned long long>(c.cycles));
        out += ", \"mlp\": " + json::num(c.mlp);
        out += ", \"reductionPct\": " + json::num(c.reductionPct);
        out += ", \"note\": ";
        json::escape(out, c.note);
        out += "}";
    }
    out += candidates.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

TuneReport
tune(const workloads::Workload &workload, const TuneOptions &opts)
{
    TuneReport report;
    report.workload = workload.name;
    const int procs = opts.procs < 0
                          ? std::max(workload.defaultProcs, 1)
                          : std::max(opts.procs, 1);
    report.procs = procs;
    const sys::SystemConfig scaled = scaleConfig(opts.config, workload);

    // Partition once (procs > 1): candidates transform the partitioned
    // kernel exactly as runWorkload will, so model predictions and the
    // functional screen see the kernel the simulation runs.
    ir::Kernel kernel = workload.kernel.clone();
    if (procs > 1) {
        transform::Pipeline partition;
        std::string error;
        if (!transform::Pipeline::parse("partition", partition, error))
            fatal("mpctune: %s", error.c_str());
        partition.verifyMode = transform::VerifyMode::Off;
        transform::DriverParams partition_params;
        partition.run(kernel, partition_params);
    }

    // One profile serves every candidate: the miss rates are measured
    // on the UNtransformed kernel, so they are candidate-independent.
    const transform::DriverParams params =
        makeDriverParams(workload, kernel, scaled, procs, 16);
    report.handSpec = transform::pipelineSpecFromParams(params);

    const auto init = [&workload](kisa::MemoryImage &image) {
        workload.init(image);
    };
    const std::uint64_t ref_digest =
        transform::functionalChecksum(kernel, init);

    // --- stage 1: analytic model ranks the candidates ----------------
    const std::vector<std::string> specs = candidateSpecs(params);
    std::vector<ir::Kernel> transformed;
    transformed.reserve(specs.size());
    for (const std::string &spec : specs) {
        CandidateResult cand;
        cand.spec = spec;
        transform::Pipeline pipeline;
        std::string error;
        if (!transform::Pipeline::parse(spec, pipeline, error))
            fatal("mpctune: bad candidate spec '%s': %s", spec.c_str(),
                  error.c_str());
        pipeline.verifyMode = transform::VerifyMode::Off;
        ir::Kernel clone = kernel.clone();
        const transform::PipelineReport pr =
            pipeline.run(clone, params);
        for (const auto &nest : pr.nests)
            cand.predictedF += nest.fAfter;
        transformed.push_back(std::move(clone));
        report.candidates.push_back(std::move(cand));
    }

    // Prune to the sim budget by predicted f (descending; ties keep
    // generation order). The hand spec at index 0 always survives.
    const int budget = std::max(opts.simBudget, 1);
    std::vector<size_t> order(report.candidates.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return report.candidates[a].predictedF >
                                report.candidates[b].predictedF;
                     });
    std::set<size_t> survivors{0};
    for (const size_t idx : order) {
        if (static_cast<int>(survivors.size()) >= budget)
            break;
        survivors.insert(idx);
    }
    for (size_t i = 0; i < report.candidates.size(); ++i)
        if (survivors.find(i) == survivors.end()) {
            report.candidates[i].pruned = true;
            report.candidates[i].note = "below model cut";
        }

    // --- stage 2a: functional screen on the exec tier ----------------
    for (const size_t idx : survivors) {
        CandidateResult &cand = report.candidates[idx];
        if (!transform::functionallyCheckable(transformed[idx], true))
            continue;
        const std::uint64_t digest =
            transform::functionalChecksum(transformed[idx], init);
        if (digest != ref_digest) {
            cand.failed = true;
            cand.note = strprintf(
                "functional screen: checksum %016llx != base %016llx",
                static_cast<unsigned long long>(digest),
                static_cast<unsigned long long>(ref_digest));
        }
    }

    // --- stage 2b: simulate (through the result store) ---------------
    const bool caching = !opts.cacheDir.empty();
    std::unique_ptr<ResultStore> store;
    if (caching)
        store = std::make_unique<ResultStore>(opts.cacheDir);
    ResultStore *const store_ptr = store.get();

    struct SimJob
    {
        int candidate = -1;     ///< -1: the untransformed base run
        std::string spec;       ///< display label ("(base)" for base)
        std::uint64_t cycles = 0;
        double mlp = 0.0;
        bool fromCache = false;
        bool failed = false;
        std::string note;
        std::string summary;    ///< provenance from the stored entry
    };
    std::vector<SimJob> sims;
    {
        SimJob base_job;
        base_job.spec = "(base)";
        sims.push_back(std::move(base_job));
    }
    for (const size_t idx : survivors) {
        if (report.candidates[idx].failed)
            continue;
        SimJob job;
        job.candidate = static_cast<int>(idx);
        job.spec = report.candidates[idx].spec;
        sims.push_back(std::move(job));
    }

    std::vector<std::function<void()>> jobs;
    std::vector<std::string> labels;
    for (SimJob &job : sims) {
        labels.push_back(workload.name + ":" + job.spec);
        jobs.push_back([&job, &workload, &opts, store_ptr, procs] {
            try {
                RunSpec spec;
                spec.config = opts.config;
                spec.procs = procs;
                spec.maxCycles = opts.maxCycles;
                if (job.candidate >= 0)
                    spec.pipeline = job.spec;
                bool from_store = false;
                const WorkloadRun run = runStoredWorkload(
                    workload, spec, opts.scale, store_ptr,
                    &from_store);
                job.cycles = run.result.cycles;
                job.mlp = measuredMlp(run.result);
                job.fromCache = from_store;
                if (from_store)
                    job.summary = manifestSummary(run.manifestJson);
            } catch (const std::exception &e) {
                job.failed = true;
                job.note = e.what();
            }
        });
    }
    ParallelRunner(opts.threads).run(jobs, labels);

    // --- fold the measurements back into the report ------------------
    for (const SimJob &job : sims) {
        if (job.fromCache) {
            ++report.cacheHits;
            // Echo the stored entry's provenance. Stderr only (stdout
            // must not depend on store state), and from this
            // sequential loop, not the parallel jobs, so the order is
            // deterministic.
            if (!job.summary.empty())
                std::fprintf(stderr, "mpctune: cache hit: %s\n",
                             job.summary.c_str());
        } else if (caching && !job.failed)
            ++report.cacheMisses;
        if (job.candidate < 0) {
            report.baseCycles = job.cycles;
            report.baseMlp = job.mlp;
            if (job.failed)
                fatal("mpctune: base run failed: %s", job.note.c_str());
            continue;
        }
        CandidateResult &cand = report.candidates[job.candidate];
        if (job.failed) {
            cand.failed = true;
            cand.note = "simulation: " + job.note;
            continue;
        }
        cand.measured = true;
        cand.cached = job.fromCache;
        cand.cycles = job.cycles;
        cand.mlp = job.mlp;
    }
    for (CandidateResult &cand : report.candidates) {
        if (!cand.measured || report.baseCycles == 0)
            continue;
        cand.reductionPct =
            (1.0 - static_cast<double>(cand.cycles) /
                       static_cast<double>(report.baseCycles)) *
            100.0;
        if (cand.spec == report.handSpec)
            report.handCycles = cand.cycles;
    }

    // Winner: fewest cycles; ties prefer the hand spec, then the
    // lexicographically smaller spec — reruns must agree.
    for (size_t i = 0; i < report.candidates.size(); ++i) {
        const CandidateResult &cand = report.candidates[i];
        if (!cand.measured)
            continue;
        if (report.bestIndex < 0) {
            report.bestIndex = static_cast<int>(i);
            continue;
        }
        const CandidateResult &cur =
            report.candidates[report.bestIndex];
        const bool better =
            cand.cycles < cur.cycles ||
            (cand.cycles == cur.cycles &&
             ((cand.spec == report.handSpec &&
               cur.spec != report.handSpec) ||
              (cur.spec != report.handSpec &&
               cand.spec < cur.spec)));
        if (better)
            report.bestIndex = static_cast<int>(i);
    }
    return report;
}

} // namespace mpc::harness
