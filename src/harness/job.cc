#include "harness/job.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>

#include "common/logging.hh"
#include "harness/manifest.hh"
#include "kisa/exec_threaded.hh"

namespace mpc::harness
{

namespace
{

std::uint64_t
hexField(const json::Value &v, const std::string &name)
{
    const std::string s = json::strField(v, name);
    return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 16);
}

int
intField(const json::Value &v, const std::string &name, int dflt = 0)
{
    return static_cast<int>(json::numField(v, name, dflt));
}

Tick
tickField(const json::Value &v, const std::string &name, Tick dflt = 0)
{
    return static_cast<Tick>(
        json::numField(v, name, static_cast<double>(dflt)));
}

std::string
cacheToJson(const mem::CacheConfig &c)
{
    json::ObjectWriter w;
    w.field("sizeBytes", static_cast<std::uint64_t>(c.sizeBytes))
        .field("assoc", c.assoc)
        .field("lineBytes", c.lineBytes)
        .field("numMshrs", c.numMshrs)
        .field("numPorts", c.numPorts)
        .field("hitLatency", static_cast<std::uint64_t>(c.hitLatency))
        .field("fillLatency",
               static_cast<std::uint64_t>(c.fillLatency));
    return w.str();
}

void
cacheFromJson(const json::Value &v, mem::CacheConfig &c)
{
    c.sizeBytes = static_cast<std::uint64_t>(
        json::numField(v, "sizeBytes",
                       static_cast<double>(c.sizeBytes)));
    c.assoc = intField(v, "assoc", c.assoc);
    c.lineBytes = intField(v, "lineBytes", c.lineBytes);
    c.numMshrs = intField(v, "numMshrs", c.numMshrs);
    c.numPorts = intField(v, "numPorts", c.numPorts);
    c.hitLatency = tickField(v, "hitLatency", c.hitLatency);
    c.fillLatency = tickField(v, "fillLatency", c.fillLatency);
}

/** Render @p v back to JSON text (objects in key order; numbers via
 *  json::num, so integers come back float-looking — our parsers
 *  accept both). */
void
renderValue(const json::Value &v, std::string &out)
{
    using T = json::Value::T;
    switch (v.t) {
    case T::Null:
        out += "null";
        break;
    case T::Bool:
        out += v.b ? "true" : "false";
        break;
    case T::Num:
        out += json::num(v.num);
        break;
    case T::Str:
        json::escape(out, v.str);
        break;
    case T::Arr:
        out += "[";
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            if (i > 0)
                out += ", ";
            renderValue(v.arr[i], out);
        }
        out += "]";
        break;
    case T::Obj:
        out += "{";
        for (auto it = v.obj.begin(); it != v.obj.end(); ++it) {
            if (it != v.obj.begin())
                out += ", ";
            json::escape(out, it->first);
            out += ": ";
            renderValue(it->second, out);
        }
        out += "}";
        break;
    }
}

std::string
histToJson(const OccupancyHistogram &h)
{
    std::string out = "[";
    for (int l = 0; l <= h.maxLevel(); ++l) {
        if (l > 0)
            out += ", ";
        out += strprintf("%llu", static_cast<unsigned long long>(
                                     h.ticksAt(l)));
    }
    out += "]";
    return out;
}

OccupancyHistogram
histFromJson(const json::Value &v)
{
    if (v.t != json::Value::T::Arr || v.arr.empty())
        return OccupancyHistogram();
    OccupancyHistogram h(static_cast<int>(v.arr.size()) - 1);
    for (std::size_t l = 0; l < v.arr.size(); ++l)
        h.record(static_cast<int>(l),
                 static_cast<Tick>(v.arr[l].num));
    return h;
}

/** Resolve the tier a job would execute under right now. */
std::string
effectiveTier(const RunSpec &spec)
{
    if (!spec.execTier.empty())
        return spec.execTier;
    return kisa::execTierName(kisa::execTierFromEnv());
}

bool
runManifestFromJson(const json::Value &v, RunManifest &m)
{
    if (v.t != json::Value::T::Obj)
        return false;
    m.workload = json::strField(v, "workload");
    m.kernelHash = hexField(v, "kernelHash");
    m.configName = json::strField(v, "config");
    m.configHash = hexField(v, "configHash");
    m.procs = intField(v, "procs", 1);
    m.pipeline = json::strField(v, "pipeline");
    m.execTier = json::strField(v, "execTier");
    m.stepMode = json::strField(v, "stepMode");
    m.obs = json::boolField(v, "obs");
    m.validate = json::boolField(v, "validate");
    m.samplePeriod = tickField(v, "samplePeriod");
    m.host = json::strField(v, "host");
    return true;
}

} // namespace

std::string
configToJson(const sys::SystemConfig &config)
{
    const cpu::CoreConfig &core = config.core;
    json::ObjectWriter cw;
    cw.field("fetchWidth", core.fetchWidth)
        .field("issueWidth", core.issueWidth)
        .field("retireWidth", core.retireWidth)
        .field("windowSize", core.windowSize)
        .field("memQueueSize", core.memQueueSize)
        .field("maxBranches", core.maxBranches)
        .field("numAlus", core.numAlus)
        .field("numFpus", core.numFpus)
        .field("numAddrUnits", core.numAddrUnits)
        .field("latIntAlu", static_cast<std::uint64_t>(core.latIntAlu))
        .field("latIntMul", static_cast<std::uint64_t>(core.latIntMul))
        .field("latFpArith",
               static_cast<std::uint64_t>(core.latFpArith))
        .field("latFpDiv", static_cast<std::uint64_t>(core.latFpDiv))
        .field("latFpSqrt", static_cast<std::uint64_t>(core.latFpSqrt))
        .field("latAddrGen",
               static_cast<std::uint64_t>(core.latAddrGen))
        .field("mispredictPenalty",
               static_cast<std::uint64_t>(core.mispredictPenalty))
        .field("predictorEntries", core.predictorEntries)
        .field("storeIssueWidth", core.storeIssueWidth);

    const mem::MemBusConfig &bus = config.membus;
    json::ObjectWriter bw;
    bw.field("numBanks", bus.numBanks)
        .field("interleave", static_cast<int>(bus.interleave))
        .field("bankAccessLatency",
               static_cast<std::uint64_t>(bus.bankAccessLatency))
        .field("cpuCyclesPerBusCycle", bus.cpuCyclesPerBusCycle)
        .field("busWidthBytes", bus.busWidthBytes)
        .field("busArbLatency",
               static_cast<std::uint64_t>(bus.busArbLatency));

    json::ObjectWriter mw;
    mw.field("flitBytes", config.mesh.flitBytes)
        .field("cpuCyclesPerNetCycle",
               config.mesh.cpuCyclesPerNetCycle)
        .field("hopDelayNetCycles", config.mesh.hopDelayNetCycles);

    json::ObjectWriter fw;
    fw.field("lineBytes", config.fabric.lineBytes)
        .field("dirLatency",
               static_cast<std::uint64_t>(config.fabric.dirLatency))
        .field("probeLatency",
               static_cast<std::uint64_t>(config.fabric.probeLatency));

    json::ObjectWriter sw;
    sw.field("busWidthBytes", config.smp.busWidthBytes)
        .field("cpuCyclesPerBusCycle", config.smp.cpuCyclesPerBusCycle)
        .field("arbCycles",
               static_cast<std::uint64_t>(config.smp.arbCycles));

    json::ObjectWriter w;
    w.field("name", config.name)
        .field("nsPerCycle", config.nsPerCycle)
        .field("skipAhead", config.skipAhead)
        .field("singleLevel", config.hier.singleLevel)
        .field("smpBus", config.smpBus)
        .raw("l1", cacheToJson(config.hier.l1))
        .raw("l2", cacheToJson(config.hier.l2))
        .raw("core", cw.str())
        .raw("membus", bw.str())
        .raw("mesh", mw.str())
        .raw("fabric", fw.str())
        .raw("smp", sw.str());
    return w.str();
}

bool
configFromJson(const json::Value &v, sys::SystemConfig &out,
               std::string &error)
{
    if (v.t != json::Value::T::Obj) {
        error = "config is not a JSON object";
        return false;
    }
    sys::SystemConfig config;    // defaults = baseConfig-shaped struct
    config.name = json::strField(v, "name");
    if (config.name.empty()) {
        error = "config has no name";
        return false;
    }
    config.nsPerCycle =
        json::numField(v, "nsPerCycle", config.nsPerCycle);
    if (const json::Value *f = v.field("skipAhead"))
        config.skipAhead = f->b;
    if (const json::Value *f = v.field("singleLevel"))
        config.hier.singleLevel = f->b;
    if (const json::Value *f = v.field("smpBus"))
        config.smpBus = f->b;
    if (const json::Value *f = v.field("l1"))
        cacheFromJson(*f, config.hier.l1);
    if (const json::Value *f = v.field("l2"))
        cacheFromJson(*f, config.hier.l2);
    if (const json::Value *f = v.field("core")) {
        cpu::CoreConfig &core = config.core;
        core.fetchWidth = intField(*f, "fetchWidth", core.fetchWidth);
        core.issueWidth = intField(*f, "issueWidth", core.issueWidth);
        core.retireWidth =
            intField(*f, "retireWidth", core.retireWidth);
        core.windowSize = intField(*f, "windowSize", core.windowSize);
        core.memQueueSize =
            intField(*f, "memQueueSize", core.memQueueSize);
        core.maxBranches =
            intField(*f, "maxBranches", core.maxBranches);
        core.numAlus = intField(*f, "numAlus", core.numAlus);
        core.numFpus = intField(*f, "numFpus", core.numFpus);
        core.numAddrUnits =
            intField(*f, "numAddrUnits", core.numAddrUnits);
        core.latIntAlu = tickField(*f, "latIntAlu", core.latIntAlu);
        core.latIntMul = tickField(*f, "latIntMul", core.latIntMul);
        core.latFpArith = tickField(*f, "latFpArith", core.latFpArith);
        core.latFpDiv = tickField(*f, "latFpDiv", core.latFpDiv);
        core.latFpSqrt = tickField(*f, "latFpSqrt", core.latFpSqrt);
        core.latAddrGen = tickField(*f, "latAddrGen", core.latAddrGen);
        core.mispredictPenalty =
            tickField(*f, "mispredictPenalty", core.mispredictPenalty);
        core.predictorEntries =
            intField(*f, "predictorEntries", core.predictorEntries);
        core.storeIssueWidth =
            intField(*f, "storeIssueWidth", core.storeIssueWidth);
    }
    if (const json::Value *f = v.field("membus")) {
        mem::MemBusConfig &bus = config.membus;
        bus.numBanks = intField(*f, "numBanks", bus.numBanks);
        bus.interleave = static_cast<mem::Interleave>(intField(
            *f, "interleave", static_cast<int>(bus.interleave)));
        bus.bankAccessLatency =
            tickField(*f, "bankAccessLatency", bus.bankAccessLatency);
        bus.cpuCyclesPerBusCycle = intField(
            *f, "cpuCyclesPerBusCycle", bus.cpuCyclesPerBusCycle);
        bus.busWidthBytes =
            intField(*f, "busWidthBytes", bus.busWidthBytes);
        bus.busArbLatency =
            tickField(*f, "busArbLatency", bus.busArbLatency);
    }
    if (const json::Value *f = v.field("mesh")) {
        config.mesh.flitBytes =
            intField(*f, "flitBytes", config.mesh.flitBytes);
        config.mesh.cpuCyclesPerNetCycle =
            intField(*f, "cpuCyclesPerNetCycle",
                     config.mesh.cpuCyclesPerNetCycle);
        config.mesh.hopDelayNetCycles =
            intField(*f, "hopDelayNetCycles",
                     config.mesh.hopDelayNetCycles);
    }
    if (const json::Value *f = v.field("fabric")) {
        config.fabric.lineBytes =
            intField(*f, "lineBytes", config.fabric.lineBytes);
        config.fabric.dirLatency =
            tickField(*f, "dirLatency", config.fabric.dirLatency);
        config.fabric.probeLatency =
            tickField(*f, "probeLatency", config.fabric.probeLatency);
    }
    if (const json::Value *f = v.field("smp")) {
        config.smp.busWidthBytes =
            intField(*f, "busWidthBytes", config.smp.busWidthBytes);
        config.smp.cpuCyclesPerBusCycle =
            intField(*f, "cpuCyclesPerBusCycle",
                     config.smp.cpuCyclesPerBusCycle);
        config.smp.arbCycles =
            tickField(*f, "arbCycles", config.smp.arbCycles);
    }
    out = config;
    return true;
}

std::string
runSpecToJson(const RunSpec &spec)
{
    json::ObjectWriter w;
    w.raw("config", configToJson(spec.config))
        .field("procs", spec.procs)
        .field("clustered", spec.clustered)
        .field("maxUnroll", spec.maxUnroll)
        .field("maxCycles", static_cast<std::uint64_t>(spec.maxCycles))
        .field("pipeline", spec.pipeline)
        .field("dumpIr", spec.dumpIr)
        .field("execTier", spec.execTier);
    return w.str();
}

bool
runSpecFromJson(const json::Value &v, RunSpec &out, std::string &error)
{
    if (v.t != json::Value::T::Obj) {
        error = "spec is not a JSON object";
        return false;
    }
    RunSpec spec;
    // config is optional in hand-written job files: absent means the
    // default baseConfig() the RunSpec already carries.
    if (const json::Value *config = v.field("config");
        config != nullptr && !configFromJson(*config, spec.config, error))
        return false;
    spec.procs = intField(v, "procs", spec.procs);
    spec.clustered = json::boolField(v, "clustered");
    spec.maxUnroll = intField(v, "maxUnroll", spec.maxUnroll);
    spec.maxCycles = tickField(v, "maxCycles", spec.maxCycles);
    spec.pipeline = json::strField(v, "pipeline");
    spec.dumpIr = json::strField(v, "dumpIr");
    spec.execTier = json::strField(v, "execTier");
    out = spec;
    return true;
}

std::string
Job::toJson() const
{
    json::ObjectWriter w;
    w.field("schema", "mpc-job-v1")
        .field("workload", workload)
        .field("scale", scale)
        .raw("spec", runSpecToJson(spec));
    return w.str();
}

bool
Job::fromJson(const std::string &text, Job &out, std::string &error)
{
    json::Value root;
    if (!json::parse(text, root) || root.t != json::Value::T::Obj) {
        error = "malformed job JSON";
        return false;
    }
    const std::string schema = json::strField(root, "schema");
    if (schema != "mpc-job-v1") {
        error = "unknown job schema '" + schema + "'";
        return false;
    }
    Job job;
    job.workload = json::strField(root, "workload");
    if (!workloads::isKnownWorkload(job.workload)) {
        error = "unknown workload '" + job.workload + "'";
        return false;
    }
    job.scale = intField(root, "scale", job.scale);
    const json::Value *spec = root.field("spec");
    if (spec == nullptr) {
        error = "job has no spec";
        return false;
    }
    if (!runSpecFromJson(*spec, job.spec, error))
        return false;
    out = job;
    return true;
}

workloads::Workload
materializeJob(const Job &job)
{
    workloads::SizeParams size;
    size.scale = job.scale;
    return workloads::makeByName(job.workload, size);
}

std::string
jobKeyText(const workloads::Workload &workload, const RunSpec &spec,
           int scale)
{
    const sys::SystemConfig scaled =
        scaleConfig(spec.config, workload);
    const int procs = std::max(spec.procs, 1);
    return configKey(scaled, procs) +
           strprintf("|workload=%s|scale=%d|clustered=%d|unroll=%d"
                     "|maxCycles=%llu|pipeline=%s|tier=%s|step=%s",
                     workload.name.c_str(), scale,
                     spec.clustered ? 1 : 0, spec.maxUnroll,
                     static_cast<unsigned long long>(spec.maxCycles),
                     spec.pipeline.c_str(),
                     effectiveTier(spec).c_str(),
                     spec.config.skipAhead ? "skip" : "reference");
}

std::string
jobKeyFor(const workloads::Workload &workload, const RunSpec &spec,
          int scale)
{
    return json::hex64(fnv1a(workload.kernel.toString())) +
           json::hex64(fnv1a(jobKeyText(workload, spec, scale)));
}

std::string
jobKey(const Job &job)
{
    return jobKeyFor(materializeJob(job), job.spec, job.scale);
}

std::string
JobResult::toJson() const
{
    json::ObjectWriter rw;
    rw.field("cycles", static_cast<std::uint64_t>(result.cycles))
        .field("nsPerCycle", result.nsPerCycle)
        .field("instructions", result.instructions)
        .field("busyCycles", result.busyCycles)
        .field("dataReadCycles", result.dataReadCycles)
        .field("dataWriteCycles", result.dataWriteCycles)
        .field("syncCycles", result.syncCycles)
        .field("cpuCycles", result.cpuCycles)
        .field("instrCycles", result.instrCycles)
        .field("busUtilization", result.busUtilization)
        .field("bankUtilization", result.bankUtilization)
        .raw("l2ReadMshr", histToJson(result.l2ReadMshr))
        .raw("l2TotalMshr", histToJson(result.l2TotalMshr));

    json::ObjectWriter w;
    w.field("schema", "mpc-jobresult-v1").field("ok", ok).field("error",
                                                                error);
    // Omitted (not null) when absent: the house parser has no null
    // literal. Store entries always carry one — only successful runs
    // are ever put, and those have a manifest.
    if (!manifestJson.empty())
        w.raw("manifest", manifestJson);
    w.raw("result", rw.str()).raw("report", report.toJson());
    return w.str();
}

bool
JobResult::fromJson(const std::string &text, JobResult &out)
{
    json::Value root;
    if (!json::parse(text, root) || root.t != json::Value::T::Obj)
        return false;
    if (json::strField(root, "schema") != "mpc-jobresult-v1")
        return false;
    JobResult jr;
    jr.ok = json::boolField(root, "ok");
    jr.error = json::strField(root, "error");

    const json::Value *man = root.field("manifest");
    if (man != nullptr && man->t == json::Value::T::Obj) {
        RunManifest m;
        if (!runManifestFromJson(*man, m))
            return false;
        jr.manifestJson = m.toJson();
    }

    const json::Value *res = root.field("result");
    if (res == nullptr || res->t != json::Value::T::Obj)
        return false;
    jr.result.cycles = tickField(*res, "cycles");
    jr.result.nsPerCycle =
        json::numField(*res, "nsPerCycle", jr.result.nsPerCycle);
    jr.result.instructions = static_cast<std::uint64_t>(
        json::numField(*res, "instructions"));
    jr.result.busyCycles = json::numField(*res, "busyCycles");
    jr.result.dataReadCycles = json::numField(*res, "dataReadCycles");
    jr.result.dataWriteCycles =
        json::numField(*res, "dataWriteCycles");
    jr.result.syncCycles = json::numField(*res, "syncCycles");
    jr.result.cpuCycles = json::numField(*res, "cpuCycles");
    jr.result.instrCycles = json::numField(*res, "instrCycles");
    jr.result.busUtilization = json::numField(*res, "busUtilization");
    jr.result.bankUtilization =
        json::numField(*res, "bankUtilization");
    if (const json::Value *h = res->field("l2ReadMshr"))
        jr.result.l2ReadMshr = histFromJson(*h);
    if (const json::Value *h = res->field("l2TotalMshr"))
        jr.result.l2TotalMshr = histFromJson(*h);

    if (const json::Value *rep = root.field("report");
        rep != nullptr && rep->t == json::Value::T::Obj) {
        std::string rep_text;
        renderValue(*rep, rep_text);
        if (!transform::PipelineReport::fromJson(rep_text, jr.report))
            return false;
    }
    out = jr;
    return true;
}

std::string
blankManifestHost(const std::string &manifest_json)
{
    json::Value root;
    if (!json::parse(manifest_json, root) ||
        root.t != json::Value::T::Obj)
        return manifest_json;
    RunManifest m;
    if (!runManifestFromJson(root, m))
        return manifest_json;
    m.host = "";
    return m.toJson();
}

bool
storeEligible(const RunSpec &spec)
{
    if (!spec.dumpIr.empty())
        return false;
    // These layers must attach to a real simulation (they check it or
    // emit artifacts from it); a served result would silently skip
    // them — and a store entry lacks the per-core/cache/obs stats an
    // instrumented consumer reads.
    for (const char *gate :
         {"MPC_VALIDATE", "MPC_OBS", "MPC_TRACE", "MPC_SAMPLE",
          "MPC_VERIFY_PASSES"}) {
        if (const char *v = std::getenv(gate);
            v != nullptr && v[0] != '\0')
            return false;
    }
    return true;
}

WorkloadRun
runStoredWorkload(const workloads::Workload &workload,
                  const RunSpec &spec, int scale, ResultStore *store,
                  bool *from_store)
{
    if (from_store != nullptr)
        *from_store = false;
    if (store == nullptr || !storeEligible(spec))
        return runWorkload(workload, spec);

    const std::string key = jobKeyFor(workload, spec, scale);
    std::string text;
    if (store->get(key, text)) {
        JobResult cached;
        if (JobResult::fromJson(text, cached) && cached.ok) {
            WorkloadRun out;
            out.result = cached.result;
            out.report = cached.report;
            out.manifestJson = cached.manifestJson;
            if (from_store != nullptr)
                *from_store = true;
            return out;
        }
        // Parsed as JSON (store::get's check) but not as a JobResult:
        // quarantine at this layer's schema.
        store->quarantine(key);
    }

    WorkloadRun run = runWorkload(workload, spec);
    JobResult jr;
    jr.ok = true;
    jr.result = run.result;
    jr.report = run.report;
    jr.manifestJson = blankManifestHost(run.manifestJson);
    store->put(key, jr.toJson());
    return run;
}

JobResult
runJob(const Job &job, ResultStore *store, bool *from_store)
{
    JobResult out;
    if (!workloads::isKnownWorkload(job.workload)) {
        out.ok = false;
        out.error = "unknown workload '" + job.workload + "'";
        if (from_store != nullptr)
            *from_store = false;
        return out;
    }
    try {
        const workloads::Workload workload = materializeJob(job);
        const WorkloadRun run = runStoredWorkload(
            workload, job.spec, job.scale, store, from_store);
        out.ok = true;
        out.result = run.result;
        out.report = run.report;
        out.manifestJson = blankManifestHost(run.manifestJson);
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

} // namespace mpc::harness
