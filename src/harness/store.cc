#include "harness/store.hh"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace fs = std::filesystem;

namespace mpc::harness
{

namespace
{

/** Process-unique temp-file counter (pid alone is not enough: several
 *  ResultStore instances and threads share one process). */
std::atomic<unsigned> tempCounter{0};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        return false;
    out = ss.str();
    return true;
}

} // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("ResultStore: empty directory");
    while (dir_.size() > 1 && dir_.back() == '/')
        dir_.pop_back();
}

std::unique_ptr<ResultStore>
ResultStore::fromEnv()
{
    const char *dir = std::getenv("MPC_STORE");
    if (dir == nullptr || dir[0] == '\0')
        return nullptr;
    return std::make_unique<ResultStore>(dir);
}

bool
ResultStore::validKey(const std::string &key)
{
    if (key.size() < 8)
        return false;
    for (const char c : key) {
        const bool hex =
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex)
            return false;
    }
    return true;
}

std::string
ResultStore::pathFor(const std::string &key) const
{
    if (!validKey(key))
        fatal("ResultStore: invalid key '%s'", key.c_str());
    return dir_ + "/" + key.substr(0, 2) + "/" + key.substr(2, 2) +
           "/" + key + ".json";
}

bool
ResultStore::get(const std::string &key, std::string &value)
{
    const std::string path = pathFor(key);
    std::string text;
    if (!readFile(path, text)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return false;
    }
    json::Value root;
    if (text.empty() || !json::parse(text, root) ||
        root.t != json::Value::T::Obj) {
        quarantine(key);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return false;
    }
    value = std::move(text);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return true;
}

bool
ResultStore::put(const std::string &key, const std::string &value)
{
    const std::string path = pathFor(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return false;
    // Unique temp name in the final directory so rename() stays within
    // one filesystem and is atomic.
    const std::string tmp = strprintf(
        "%s.tmp.%d.%u", path.c_str(), static_cast<int>(getpid()),
        tempCounter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << value;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writes;
    return true;
}

void
ResultStore::quarantine(const std::string &key)
{
    const std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return;
    const std::string qdir = dir_ + "/quarantine";
    fs::create_directories(qdir, ec);
    std::string dst = qdir + "/" + key + ".json";
    for (int n = 1; fs::exists(dst, ec); ++n)
        dst = strprintf("%s/%s.%d.json", qdir.c_str(), key.c_str(), n);
    std::error_code rename_ec;
    fs::rename(path, dst, rename_ec);
    if (rename_ec) {
        // Cross-device or racing quarantine: fall back to removing the
        // bad entry so it cannot be served again.
        fs::remove(path, rename_ec);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.bad;
}

ResultStore::Stats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace mpc::harness
