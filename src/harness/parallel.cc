#include "harness/parallel.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace mpc::harness
{

ParallelRunner::ParallelRunner(int threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
}

int
ParallelRunner::defaultThreads()
{
    if (const char *env = std::getenv("MPC_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
ParallelRunner::run(const std::vector<std::function<void()>> &jobs,
                    const std::vector<std::string> &labels,
                    std::vector<double> *wall_seconds) const
{
    if (wall_seconds != nullptr)
        wall_seconds->assign(jobs.size(), 0.0);
    if (jobs.empty())
        return;
    const int workers =
        std::min<int>(threads_, static_cast<int>(jobs.size()));
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::size_t first_index = 0;
    std::atomic<bool> failed{false};
    std::atomic<int> failures{0};

    auto drain = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            const auto t0 = std::chrono::steady_clock::now();
            try {
                jobs[i]();
                if (wall_seconds != nullptr)
                    (*wall_seconds)[i] =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            } catch (...) {
                // Record the first failure; later jobs still run so
                // every result slot settles before we rethrow.
                ++failures;
                if (!failed.exchange(true)) {
                    first_error = std::current_exception();
                    first_index = i;
                }
            }
        }
    };

    if (workers <= 1) {
        drain();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            pool.emplace_back(drain);
        for (auto &th : pool)
            th.join();
    }
    if (first_error) {
        std::string who = "parallel job " + std::to_string(first_index);
        if (first_index < labels.size() && !labels[first_index].empty())
            who += " (" + labels[first_index] + ")";
        try {
            std::rethrow_exception(first_error);
        } catch (const std::exception &e) {
            throw std::runtime_error(
                who + " failed: " + e.what() + " [" +
                std::to_string(failures.load()) + " of " +
                std::to_string(jobs.size()) + " jobs failed]");
        }
        // Exceptions not derived from std::exception propagate
        // unwrapped from the rethrow above.
    }
}

TimedWorkloadRun
runWorkloadTimed(const workloads::Workload &workload, const RunSpec &spec)
{
    using clock = std::chrono::steady_clock;
    TimedWorkloadRun out;
    const auto t0 = clock::now();
    out.run = runWorkload(workload, spec);
    const auto t1 = clock::now();
    out.timing.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.timing.cyclesPerSec =
        out.timing.wallSeconds > 0.0
            ? static_cast<double>(out.run.result.cycles) /
                  out.timing.wallSeconds
            : 0.0;
    return out;
}

std::vector<TimedPairResult>
runPairsParallel(const std::vector<PairJob> &jobs, int threads)
{
    std::vector<TimedPairResult> results(jobs.size());
    std::vector<std::function<void()>> tasks;
    std::vector<std::string> labels;
    tasks.reserve(jobs.size() * 2);
    labels.reserve(jobs.size() * 2);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        labels.push_back(jobs[i].label + "/base");
        labels.push_back(jobs[i].label + "/clust");
        // Base and clustered runs of one pair are independent sims; the
        // workload is only read (kernel.clone() per run), so the two
        // tasks may share it.
        tasks.push_back([&jobs, &results, i] {
            const PairJob &job = jobs[i];
            RunSpec spec;
            spec.config = job.config;
            spec.procs = job.procs;
            spec.clustered = false;
            results[i].pair.base = runWorkload(job.workload, spec);
        });
        tasks.push_back([&jobs, &results, i] {
            const PairJob &job = jobs[i];
            RunSpec spec;
            spec.config = job.config;
            spec.procs = job.procs;
            spec.clustered = true;
            results[i].pair.clust = runWorkload(job.workload, spec);
        });
    }
    // The runner is the single timing source: per-job wall times come
    // back by index and are folded into the pair results by label order.
    std::vector<double> wall;
    ParallelRunner(threads).run(tasks, labels, &wall);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto rate = [](double secs, Tick cycles) {
            return secs > 0.0 ? static_cast<double>(cycles) / secs : 0.0;
        };
        results[i].baseTiming.wallSeconds = wall[2 * i];
        results[i].baseTiming.cyclesPerSec =
            rate(wall[2 * i], results[i].pair.base.result.cycles);
        results[i].clustTiming.wallSeconds = wall[2 * i + 1];
        results[i].clustTiming.cyclesPerSec =
            rate(wall[2 * i + 1], results[i].pair.clust.result.cycles);
    }
    return results;
}

} // namespace mpc::harness
