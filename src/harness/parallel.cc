#include "harness/parallel.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "harness/job.hh"

namespace mpc::harness
{

ParallelRunner::ParallelRunner(int threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
}

int
ParallelRunner::budgetThreads(int jobs_env, int shards, int hw,
                              bool *oversubscribed)
{
    if (hw < 1)
        hw = 1;
    if (shards < 1)
        shards = 1;
    if (oversubscribed != nullptr)
        *oversubscribed = false;
    if (jobs_env >= 1) {
        // Explicit MPC_JOBS wins, but flag the total host-thread
        // demand (jobs × shards-per-sim) exceeding the machine.
        if (oversubscribed != nullptr)
            *oversubscribed = jobs_env * shards > hw;
        return jobs_env;
    }
    // Unset: budget workers so that workers × shards ~ the machine.
    return std::max(1, hw / shards);
}

int
ParallelRunner::defaultThreads()
{
    int jobs_env = 0;
    if (const char *env = std::getenv("MPC_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            jobs_env = n;
    }
    int shards = 1;
    if (const char *env = std::getenv("MPC_SHARDS")) {
        const int n = std::atoi(env);
        if (n > 1)
            shards = n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    bool over = false;
    const int workers = budgetThreads(
        jobs_env, shards, hw > 0 ? static_cast<int>(hw) : 1, &over);
    if (over) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            std::fprintf(stderr,
                         "warning: MPC_JOBS=%d x MPC_SHARDS=%d "
                         "oversubscribes %u hardware threads\n",
                         jobs_env, shards, hw);
    }
    return workers;
}

void
ParallelRunner::run(const std::vector<std::function<void()>> &jobs,
                    const std::vector<std::string> &labels,
                    std::vector<double> *wall_seconds,
                    int retries) const
{
    if (wall_seconds != nullptr)
        wall_seconds->assign(jobs.size(), 0.0);
    if (jobs.empty())
        return;
    const int workers =
        std::min<int>(threads_, static_cast<int>(jobs.size()));
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::size_t first_index = 0;
    std::atomic<bool> failed{false};
    std::atomic<int> failures{0};

    auto drain = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            // A job is charged as failed only after every attempt is
            // exhausted: a retried-then-succeeded job is a success,
            // and its wall slot settles once — with the successful
            // attempt's time, not the sum over failed tries.
            for (int attempt = 0; attempt <= retries; ++attempt) {
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    jobs[i]();
                    if (wall_seconds != nullptr)
                        (*wall_seconds)[i] =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
                    break;
                } catch (...) {
                    if (attempt < retries)
                        continue;
                    // Final attempt failed: record the first failure;
                    // later jobs still run so every result slot
                    // settles before we rethrow.
                    ++failures;
                    if (!failed.exchange(true)) {
                        first_error = std::current_exception();
                        first_index = i;
                    }
                }
            }
        }
    };

    if (workers <= 1) {
        drain();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            pool.emplace_back(drain);
        for (auto &th : pool)
            th.join();
    }
    if (first_error) {
        std::string who = "parallel job " + std::to_string(first_index);
        if (first_index < labels.size() && !labels[first_index].empty())
            who += " (" + labels[first_index] + ")";
        try {
            std::rethrow_exception(first_error);
        } catch (const std::exception &e) {
            throw std::runtime_error(
                who + " failed: " + e.what() + " [" +
                std::to_string(failures.load()) + " of " +
                std::to_string(jobs.size()) + " jobs failed]");
        }
        // Exceptions not derived from std::exception propagate
        // unwrapped from the rethrow above.
    }
}

TimedWorkloadRun
runWorkloadTimed(const workloads::Workload &workload, const RunSpec &spec)
{
    using clock = std::chrono::steady_clock;
    TimedWorkloadRun out;
    const auto t0 = clock::now();
    out.run = runWorkload(workload, spec);
    const auto t1 = clock::now();
    out.timing.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.timing.cyclesPerSec =
        out.timing.wallSeconds > 0.0
            ? static_cast<double>(out.run.result.cycles) /
                  out.timing.wallSeconds
            : 0.0;
    return out;
}

std::vector<TimedPairResult>
runPairsParallel(const std::vector<PairJob> &jobs, int threads)
{
    // Store-backed path: with MPC_STORE set (and no env gate that
    // demands real simulation), serve completed runs from the store
    // and publish fresh ones to it. The instance is shared across
    // worker threads (ResultStore is thread-safe) and its counters go
    // to stderr below — stdout stays byte-identical warm or cold.
    std::unique_ptr<ResultStore> store = ResultStore::fromEnv();
    ResultStore *store_ptr = store.get();

    std::vector<TimedPairResult> results(jobs.size());
    std::vector<std::function<void()>> tasks;
    std::vector<std::string> labels;
    tasks.reserve(jobs.size() * 2);
    labels.reserve(jobs.size() * 2);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        labels.push_back(jobs[i].label + "/base");
        labels.push_back(jobs[i].label + "/clust");
        // Base and clustered runs of one pair are independent sims; the
        // workload is only read (kernel.clone() per run), so the two
        // tasks may share it.
        tasks.push_back([&jobs, &results, store_ptr, i] {
            const PairJob &job = jobs[i];
            RunSpec spec;
            spec.config = job.config;
            spec.procs = job.procs;
            spec.clustered = false;
            results[i].pair.base = runStoredWorkload(
                job.workload, spec, job.scale, store_ptr);
        });
        tasks.push_back([&jobs, &results, store_ptr, i] {
            const PairJob &job = jobs[i];
            RunSpec spec;
            spec.config = job.config;
            spec.procs = job.procs;
            spec.clustered = true;
            results[i].pair.clust = runStoredWorkload(
                job.workload, spec, job.scale, store_ptr);
        });
    }
    // The runner is the single timing source: per-job wall times come
    // back by index and are folded into the pair results by label order.
    std::vector<double> wall;
    ParallelRunner(threads).run(tasks, labels, &wall);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto rate = [](double secs, Tick cycles) {
            return secs > 0.0 ? static_cast<double>(cycles) / secs : 0.0;
        };
        results[i].baseTiming.wallSeconds = wall[2 * i];
        results[i].baseTiming.cyclesPerSec =
            rate(wall[2 * i], results[i].pair.base.result.cycles);
        results[i].clustTiming.wallSeconds = wall[2 * i + 1];
        results[i].clustTiming.cyclesPerSec =
            rate(wall[2 * i + 1], results[i].pair.clust.result.cycles);
    }
    if (store != nullptr) {
        const ResultStore::Stats s = store->stats();
        std::fprintf(stderr,
                     "store %s: %d hit(s), %d miss(es), %d bad\n",
                     store->dir().c_str(), s.hits, s.misses, s.bad);
    }
    return results;
}

} // namespace mpc::harness
