#include "harness/runner.hh"

#include "codegen/codegen.hh"
#include "transform/transforms.hh"
#include "common/logging.hh"
#include <cstdlib>
#include <set>

#include "harness/profiler.hh"

namespace mpc::harness
{

sys::SystemConfig
scaleConfig(sys::SystemConfig config, const workloads::Workload &workload)
{
    // Scale the lowest cache level with the input, as the paper does
    // (Woo et al. methodology). Line size and MSHR count stay fixed.
    if (config.hier.singleLevel)
        config.hier.l1.sizeBytes = workload.l2Bytes;
    else
        config.hier.l2.sizeBytes = workload.l2Bytes;

    // Opt-in validation layer (CI runs the integration suite with
    // MPC_VALIDATE=1); MPC_VALIDATE_TRACE names the Chrome-trace JSON
    // dumped on a failure.
    if (const char *env = std::getenv("MPC_VALIDATE");
        env != nullptr && env[0] == '1') {
        config.validate = true;
        if (const char *trace = std::getenv("MPC_VALIDATE_TRACE"))
            config.validateTracePath = trace;
    }

    // Opt-in observability layer (src/obs): MPC_OBS=1 collects the
    // MLP/cluster/stall metrics; MPC_TRACE=<path> dumps the ring-buffer
    // Chrome trace at end of run (runWorkload uniquifies the path per
    // run so parallel benches do not clobber each other).
    if (const char *env = std::getenv("MPC_OBS");
        env != nullptr && env[0] == '1')
        config.obsMetrics = true;
    if (const char *trace = std::getenv("MPC_TRACE");
        trace != nullptr && trace[0] != '\0')
        config.obsTracePath = trace;
    return config;
}

namespace
{

/** trace.json -> trace.<workload>.<base|clust>.<N>p.json */
std::string
uniquifyTracePath(const std::string &path, const std::string &workload,
                  bool clustered, int procs)
{
    const std::string tag =
        strprintf(".%s.%s.%dp", workload.c_str(),
                  clustered ? "clust" : "base", std::max(procs, 1));
    const auto dot = path.rfind('.');
    const auto slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

} // namespace

WorkloadRun
runWorkload(const workloads::Workload &workload, const RunSpec &spec)
{
    WorkloadRun out;
    sys::SystemConfig config = scaleConfig(spec.config, workload);
    if (!config.obsTracePath.empty())
        config.obsTracePath =
            uniquifyTracePath(config.obsTracePath, workload.name,
                              spec.clustered, spec.procs);

    ir::Kernel kernel = workload.kernel.clone();

    // Partition parallel loops per processor at the IR level before any
    // transformation, so unroll-and-jam operates on each processor's
    // own range (balanced chunks, per-processor postludes).
    if (spec.procs > 1)
        transform::partitionParallelLoops(kernel);

    if (spec.clustered) {
        // Profile P_m on the base uniprocessor binary with the target
        // cache geometry (Section 3.2.2: "measured through cache
        // simulation or profiling").
        kisa::MemoryImage scratch;
        workload.init(scratch);
        const kisa::Program base_prog = codegen::lower(kernel);
        const auto &geometry = config.hier.singleLevel
                                   ? config.hier.l1
                                   : config.hier.l2;
        const CacheProfile profile =
            CacheProfile::measure(base_prog, scratch, geometry);

        transform::DriverParams params;
        params.lp = geometry.numMshrs;
        params.windowSize = config.core.windowSize;
        params.lineBytes = geometry.lineBytes;
        params.maxUnroll = spec.maxUnroll;
        params.bodySize = codegen::loweredBodySize;
        params.missRate = [profile](int ref_id) {
            return profile.missRate(ref_id);
        };
        if (spec.procs > 1) {
            // Run-matched profile: the partitioned per-core programs
            // through per-core caches with write-invalidation, so the
            // driver can see when partitioning shrank a stream's
            // footprint below the cache and its static miss estimate
            // stopped being realizable (communication misses only).
            kisa::MemoryImage multi_scratch;
            workload.init(multi_scratch);
            const auto per_core =
                codegen::lowerForCores(kernel, spec.procs, false, {});
            const CacheProfile realized = CacheProfile::measureMulti(
                per_core, multi_scratch, geometry);
            params.realizedMissRate = [realized](int ref_id) {
                return realized.missRate(ref_id);
            };
            params.realizedAccesses = [realized](int ref_id) {
                return realized.accesses(ref_id);
            };
        }
        out.report = transform::applyClustering(kernel, params);
    }

    out.kernelText = kernel.toString();

    const int procs = std::max(spec.procs, 1);
    std::set<std::uint32_t> leading;
    for (int ref_id : out.report.leadingRefIds)
        leading.insert(static_cast<std::uint32_t>(ref_id));
    auto programs = codegen::lowerForCores(kernel, procs,
                                           spec.clustered, leading);

    kisa::MemoryImage image;
    workload.init(image);

    coherence::PlacementPolicy placement(procs,
                                         config.fabric.lineBytes);
    if (workload.place)
        workload.place(placement);

    sys::System system(config, std::move(programs), image, &placement);
    out.result = system.run(spec.maxCycles);
    return out;
}

PairResult
runPair(const workloads::Workload &workload,
        const sys::SystemConfig &config, int procs)
{
    PairResult pair;
    RunSpec spec;
    spec.config = config;
    spec.procs = procs;
    spec.clustered = false;
    pair.base = runWorkload(workload, spec);
    spec.clustered = true;
    pair.clust = runWorkload(workload, spec);
    return pair;
}

} // namespace mpc::harness
