#include "harness/runner.hh"

#include "codegen/codegen.hh"
#include "transform/transforms.hh"
#include "common/logging.hh"
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "harness/manifest.hh"
#include "harness/profiler.hh"

namespace mpc::harness
{

sys::SystemConfig
scaleConfig(sys::SystemConfig config, const workloads::Workload &workload)
{
    // Scale the lowest cache level with the input, as the paper does
    // (Woo et al. methodology). Line size and MSHR count stay fixed.
    if (config.hier.singleLevel)
        config.hier.l1.sizeBytes = workload.l2Bytes;
    else
        config.hier.l2.sizeBytes = workload.l2Bytes;

    // Opt-in validation layer (CI runs the integration suite with
    // MPC_VALIDATE=1); MPC_VALIDATE_TRACE names the Chrome-trace JSON
    // dumped on a failure.
    if (const char *env = std::getenv("MPC_VALIDATE");
        env != nullptr && env[0] == '1') {
        config.validate = true;
        if (const char *trace = std::getenv("MPC_VALIDATE_TRACE"))
            config.validateTracePath = trace;
    }

    // Opt-in observability layer (src/obs): MPC_OBS=1 collects the
    // MLP/cluster/stall metrics; MPC_TRACE=<path> dumps the ring-buffer
    // Chrome trace at end of run (runWorkload uniquifies the path per
    // run so parallel benches do not clobber each other).
    if (const char *env = std::getenv("MPC_OBS");
        env != nullptr && env[0] == '1')
        config.obsMetrics = true;
    if (const char *trace = std::getenv("MPC_TRACE");
        trace != nullptr && trace[0] != '\0')
        config.obsTracePath = trace;

    // Opt-in epoch sampler: MPC_SAMPLE=<cycles> sets the sampling
    // period; MPC_SAMPLE_PATH overrides the time-series JSON path
    // (default SAMPLES.json; runWorkload uniquifies it per run, like
    // the trace path).
    if (const char *env = std::getenv("MPC_SAMPLE");
        env != nullptr && env[0] != '\0') {
        const long long period = std::atoll(env);
        if (period > 0) {
            config.samplePeriod = static_cast<Tick>(period);
            config.samplePath = "SAMPLES.json";
            if (const char *path = std::getenv("MPC_SAMPLE_PATH");
                path != nullptr && path[0] != '\0')
                config.samplePath = path;
        }
    }

    // Sharded multiprocessor stepping: MPC_SHARDS=<k> runs k host
    // threads per simulation (System::run clamps to the node count, so
    // uniprocessor runs stay single-threaded). Results are bit-identical
    // at any shard count; this is purely a host-speed knob, and — like
    // the toggles above — it never enters configKey().
    if (const char *env = std::getenv("MPC_SHARDS");
        env != nullptr && env[0] != '\0') {
        const long long shards = std::atoll(env);
        if (shards > 0)
            config.shards = static_cast<int>(std::min(shards, 64ll));
    }
    return config;
}

namespace
{

/** trace.json -> trace.<workload>.<base|clust>.<N>p.json */
std::string
uniquifyTracePath(const std::string &path, const std::string &workload,
                  bool clustered, int procs)
{
    const std::string tag =
        strprintf(".%s.%s.%dp", workload.c_str(),
                  clustered ? "clust" : "base", std::max(procs, 1));
    const auto dot = path.rfind('.');
    const auto slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

/** Trace track id for the compiler-pass spans (cores use 0..N-1). */
constexpr int kCompilerTrack = -2;

/** Parse @p spec through the registry, fataling on a bad spec. */
transform::Pipeline
makePipeline(const std::string &spec, const workloads::Workload &workload,
             const RunSpec &run_spec)
{
    transform::Pipeline pipeline;
    std::string error;
    if (!transform::Pipeline::parse(spec, pipeline, error))
        fatal("invalid pipeline spec: %s", error.c_str());
    // Give the verifier the workload's real memory initializer so the
    // per-pass equivalence check (MPC_VERIFY_PASSES=1) interprets every
    // kernel over real data instead of falling back to the synthetic
    // fill (or, for pointer-chase kernels, structural checks only).
    pipeline.initMemory = [&workload](kisa::MemoryImage &image) {
        workload.init(image);
    };
    if (run_spec.dumpIr == "after-each-pass")
        pipeline.afterPass = [](const std::string &pass,
                                const ir::Kernel &kernel) {
            std::printf("==== IR after pass '%s' ====\n%s",
                        pass.c_str(), kernel.toString().c_str());
        };
    else if (!run_spec.dumpIr.empty())
        fatal("unknown IR dump mode '%s' (expected 'after-each-pass')",
              run_spec.dumpIr.c_str());
    return pipeline;
}

/**
 * Replay the per-pass wall times as spans on a dedicated compiler
 * track (microsecond pseudo-ticks starting at 0), so an MPC_TRACE
 * timeline shows what the transformation pipeline did before the
 * simulated execution. Names come from the registry so the tracer
 * only ever sees process-lifetime strings.
 */
void
replayCompilerTrace(sys::System &system, const transform::DriverReport &report)
{
    if (obs::Observer *observer = system.observer()) {
        if (obs::Tracer *tracer = observer->tracer();
            tracer != nullptr && !report.passes.empty()) {
            tracer->setTrackName(kCompilerTrack, "compiler passes");
            // String literals: the tracer keeps event-name pointers.
            const std::string &vt = report.verifyTier;
            const char *verify_name =
                vt == "threaded"    ? "verify/threaded"
                : vt == "interp"    ? "verify/interp"
                : vt == "evaluator" ? "verify/evaluator"
                                    : nullptr;
            Tick now = 0;
            if (verify_name != nullptr &&
                report.refChecksumMs > 0.0) {
                const Tick dur = std::max<Tick>(
                    1, static_cast<Tick>(report.refChecksumMs *
                                         1000.0));
                tracer->span(now, now + dur, kCompilerTrack,
                             verify_name);
                now += dur;
            }
            for (const auto &pass : report.passes) {
                const Tick dur = std::max<Tick>(
                    1, static_cast<Tick>(pass.wallMs * 1000.0));
                tracer->span(now, now + dur, kCompilerTrack,
                             transform::PassRegistry::instance()
                                 .stableName(pass.pass),
                             static_cast<std::uint64_t>(pass.actions),
                             pass.skipped ? 1 : 0);
                now += dur;
                if (verify_name != nullptr && pass.verifyMs > 0.0) {
                    const Tick vdur = std::max<Tick>(
                        1,
                        static_cast<Tick>(pass.verifyMs * 1000.0));
                    tracer->span(now, now + vdur, kCompilerTrack,
                                 verify_name);
                    now += vdur;
                }
            }
        }
    }
}

} // namespace

transform::DriverParams
makeDriverParams(const workloads::Workload &workload,
                 const ir::Kernel &kernel,
                 const sys::SystemConfig &config, int procs,
                 int max_unroll)
{
    // Profile P_m on the base uniprocessor binary with the target
    // cache geometry (Section 3.2.2: "measured through cache
    // simulation or profiling").
    kisa::MemoryImage scratch;
    workload.init(scratch);
    const kisa::Program base_prog = codegen::lower(kernel);
    const auto &geometry =
        config.hier.singleLevel ? config.hier.l1 : config.hier.l2;
    const CacheProfile profile =
        CacheProfile::measure(base_prog, scratch, geometry);

    transform::DriverParams params;
    params.lp = geometry.numMshrs;
    params.windowSize = config.core.windowSize;
    params.lineBytes = geometry.lineBytes;
    params.maxUnroll = max_unroll;
    params.bodySize = codegen::loweredBodySize;
    params.missRate = [profile](int ref_id) {
        return profile.missRate(ref_id);
    };
    if (procs > 1) {
        // Run-matched profile: the partitioned per-core programs
        // through per-core caches with write-invalidation, so the
        // driver can see when partitioning shrank a stream's
        // footprint below the cache and its static miss estimate
        // stopped being realizable (communication misses only).
        kisa::MemoryImage multi_scratch;
        workload.init(multi_scratch);
        const auto per_core =
            codegen::lowerForCores(kernel, procs, false, {});
        const CacheProfile realized = CacheProfile::measureMulti(
            per_core, multi_scratch, geometry);
        params.realizedMissRate = [realized](int ref_id) {
            return realized.missRate(ref_id);
        };
        params.realizedAccesses = [realized](int ref_id) {
            return realized.accesses(ref_id);
        };
    }
    return params;
}

WorkloadRun
runWorkload(const workloads::Workload &workload, const RunSpec &spec)
{
    WorkloadRun out;
    sys::SystemConfig config = scaleConfig(spec.config, workload);
    if (!config.obsTracePath.empty())
        config.obsTracePath =
            uniquifyTracePath(config.obsTracePath, workload.name,
                              spec.clustered, spec.procs);
    if (!config.samplePath.empty())
        config.samplePath =
            uniquifyTracePath(config.samplePath, workload.name,
                              spec.clustered, spec.procs);

    ir::Kernel kernel = workload.kernel.clone();
    const bool transforming = spec.clustered || !spec.pipeline.empty();

    // Partition parallel loops per processor at the IR level before any
    // transformation, so unroll-and-jam operates on each processor's
    // own range (balanced chunks, per-processor postludes). Partitioning
    // is itself a registered pass run as a one-pass pipeline, so it gets
    // the same per-pass verification as the main transformation.
    std::vector<transform::PassReport> partition_passes;
    if (spec.procs > 1) {
        transform::Pipeline partition =
            makePipeline("partition", workload, spec);
        transform::DriverParams partition_params;
        partition_passes =
            std::move(partition.run(kernel, partition_params).passes);
    }

    std::string spec_string;  // "" = base (untransformed)
    if (transforming) {
        const transform::DriverParams params = makeDriverParams(
            workload, kernel, config, spec.procs, spec.maxUnroll);
        spec_string = spec.pipeline.empty()
                          ? transform::pipelineSpecFromParams(params)
                          : spec.pipeline;
        transform::Pipeline pipeline =
            makePipeline(spec_string, workload, spec);
        out.report = pipeline.run(kernel, params);
    }
    if (!partition_passes.empty())
        out.report.passes.insert(out.report.passes.begin(),
                                 std::make_move_iterator(
                                     partition_passes.begin()),
                                 std::make_move_iterator(
                                     partition_passes.end()));

    out.kernelText = kernel.toString();

    const int procs = std::max(spec.procs, 1);

    std::set<std::uint32_t> leading;
    for (int ref_id : out.report.leadingRefIds)
        leading.insert(static_cast<std::uint32_t>(ref_id));

    // The simulation tail, parameterized by the final configuration:
    // a sharded run that throws ShardRestart (a same-cycle sharing
    // pattern sharded stepping cannot reproduce bit-identically) is
    // rebuilt from scratch — fresh image, programs, System — and rerun
    // single-threaded, which is always exact.
    auto simulate = [&](sys::SystemConfig cfg) {
        // Provenance for every artifact this run emits: built from the
        // final (transformed) kernel text and the scaled, env-applied
        // configuration — including the shard count actually used —
        // and handed to the System before construction so the
        // sampler's time-series JSON can embed it.
        out.manifestJson = makeRunManifest(workload.name,
                                           out.kernelText, cfg, procs,
                                           spec_string)
                               .toJson();
        cfg.manifestJson = out.manifestJson;

        auto programs = codegen::lowerForCores(kernel, procs,
                                               transforming, leading);

        kisa::MemoryImage image;
        workload.init(image);

        coherence::PlacementPolicy placement(procs,
                                             cfg.fabric.lineBytes);
        if (workload.place)
            workload.place(placement);

        sys::System system(cfg, std::move(programs), image, &placement);
        replayCompilerTrace(system, out.report);
        out.result = system.run(spec.maxCycles);
    };

    if (config.shards > 1) {
        try {
            simulate(config);
        } catch (const sys::ShardRestart &e) {
            std::fprintf(stderr, "mpc: %s (%s%s/%dp)\n", e.what(),
                         workload.name.c_str(),
                         spec.clustered ? "/clust" : "/base", procs);
            sys::SystemConfig serial = config;
            serial.shards = 0;
            simulate(serial);
        }
    } else {
        simulate(config);
    }
    return out;
}

PairResult
runPair(const workloads::Workload &workload,
        const sys::SystemConfig &config, int procs)
{
    PairResult pair;
    RunSpec spec;
    spec.config = config;
    spec.procs = procs;
    spec.clustered = false;
    pair.base = runWorkload(workload, spec);
    spec.clustered = true;
    pair.clust = runWorkload(workload, spec);
    return pair;
}

} // namespace mpc::harness
