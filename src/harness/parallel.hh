/**
 * @file
 * Parallel experiment scheduler. Each simulation is deterministic (a
 * sharded sim — MPC_SHARDS > 1 — uses that many host threads but stays
 * bit-identical to single-thread stepping); what runs concurrently here
 * is *independent* sims — the base/clustered runs of every figure or
 * table bench, or an ablation sweep's grid points. Results are stored
 * by job index, so output order (and therefore every bench's stdout)
 * is identical at any thread count, including 1.
 *
 * The two knobs multiply: MPC_JOBS concurrent sims × MPC_SHARDS host
 * threads each. defaultThreads() therefore budgets the worker count as
 * hardware_concurrency / shards when MPC_JOBS is unset, and warns on
 * stderr when an explicit MPC_JOBS × MPC_SHARDS oversubscribes the
 * machine.
 */

#ifndef MPC_HARNESS_PARALLEL_HH
#define MPC_HARNESS_PARALLEL_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace mpc::harness
{

/** Host-side cost of one simulation run. */
struct RunTiming
{
    double wallSeconds = 0.0;
    /** Simulated cycles per wall-clock second (the sim rate). */
    double cyclesPerSec = 0.0;
};

/**
 * A fixed pool of worker threads draining an indexed job list.
 * Thread count comes from MPC_JOBS, else std::thread::hardware_
 * concurrency divided by the per-sim shard count (see file comment).
 * With one thread, jobs run inline on the caller.
 */
class ParallelRunner
{
  public:
    /** @param threads 0 selects defaultThreads(). */
    explicit ParallelRunner(int threads = 0);

    /** MPC_JOBS if set (clamped to >= 1; stderr warning when it
     *  oversubscribes — see budgetThreads), else hardware concurrency
     *  divided by the MPC_SHARDS per-sim thread count. */
    static int defaultThreads();

    /**
     * The budgeting rule behind defaultThreads(), parameterized for
     * tests: @p jobs_env / @p shards are the parsed MPC_JOBS (0 =
     * unset) and MPC_SHARDS (<= 1 = single-thread sims) values and
     * @p hw the hardware thread count. Returns the worker count; sets
     * @p oversubscribed when an explicit jobs_env × shards exceeds hw
     * (the caller decides whether to warn).
     */
    static int budgetThreads(int jobs_env, int shards, int hw,
                             bool *oversubscribed = nullptr);

    int threads() const { return threads_; }

    /**
     * Run every job to completion. Jobs must be independent: they may
     * not touch shared mutable state (each writes only its own result
     * slot). Exceptions propagate to the caller after all jobs finish:
     * every non-throwing job's result slot settles, and the first
     * failure is rethrown as a std::runtime_error naming the job's
     * index (and label, when @p labels provides one) plus the total
     * failure count. Exceptions not derived from std::exception
     * propagate unwrapped.
     *
     * @p wall_seconds, when non-null, is resized to jobs.size() and
     * receives each job's host wall-time by job index — the single
     * timing source the benches report (keyed by label).
     *
     * @p retries re-runs a throwing job up to that many extra times on
     * the same worker before it counts as failed. A job that retries
     * and then succeeds is NOT a failure: it contributes no failure
     * count, and its wall_seconds slot settles exactly once, with the
     * successful attempt's time (failed attempts are not billed).
     */
    void run(const std::vector<std::function<void()>> &jobs,
             const std::vector<std::string> &labels = {},
             std::vector<double> *wall_seconds = nullptr,
             int retries = 0) const;

  private:
    int threads_;
};

/** runWorkload plus wall-clock measurement. */
struct TimedWorkloadRun
{
    WorkloadRun run;
    RunTiming timing;
};

TimedWorkloadRun runWorkloadTimed(const workloads::Workload &workload,
                                  const RunSpec &spec);

/** One base+clustered experiment in a parallel bench. */
struct PairJob
{
    std::string label;
    workloads::Workload workload;
    sys::SystemConfig config;
    int procs = 1;
    /** Size scale the workload was built with (job-key input on the
     *  store-backed path; see harness/job.hh). */
    int scale = 2;
};

/** PairResult plus per-run host timings. */
struct TimedPairResult
{
    PairResult pair;
    RunTiming baseTiming;
    RunTiming clustTiming;
};

/**
 * Run the base and clustered sims of every job concurrently (two
 * independent tasks per pair). Results come back in job order.
 *
 * When MPC_STORE names a ResultStore (and no validation/observability
 * env gate forces real simulation — harness::storeEligible), each run
 * is served from the store when present and published to it when not,
 * and hit/miss counters print to stderr. Stdout derived from the
 * results is byte-identical warm or cold; warm runs report ~zero wall
 * time for served sims.
 */
std::vector<TimedPairResult>
runPairsParallel(const std::vector<PairJob> &jobs, int threads = 0);

} // namespace mpc::harness

#endif // MPC_HARNESS_PARALLEL_HH
