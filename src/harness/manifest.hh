/**
 * @file
 * RunManifest: the provenance record embedded in every JSON artifact
 * the harness and benches emit (BENCH_*.json, MODEL_VS_MEASURED_*.json,
 * FIG4_mshr.json, SAMPLES time series, and the autotune result cache).
 *
 * An artifact without provenance is a number without units: once the
 * experiment farm compares hundreds of JSON files, nothing but the
 * manifest says which kernel text, machine configuration, pipeline
 * spec, execution tier, and step mode produced each one. The manifest
 * identifies a run by content hashes — FNV-1a of the final
 * (transformed) kernel IR text and of the simulation-relevant
 * configuration fields — so two artifacts disagree exactly when their
 * inputs did. mpcreport cross-checks manifests when merging artifacts
 * and warns on mismatches.
 *
 * configKey() is the single source of truth for "the configuration
 * fields a simulation result depends on"; the Job layer (job.hh)
 * appends its spec/tier/maxCycles tail to the same string to form
 * ResultStore content keys, so a config edit anywhere moves every
 * dependent store key.
 */

#ifndef MPC_HARNESS_MANIFEST_HH
#define MPC_HARNESS_MANIFEST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "system/config.hh"

namespace mpc::harness
{

/** FNV-1a over a byte string (kernel and config content hashes). */
std::uint64_t fnv1a(const std::string &text);

/** Self-describing provenance of one run or bench invocation
 *  (schema "mpc-manifest-v1"). Every field always renders. */
struct RunManifest
{
    /** Workload name, or the bench/tool name for aggregates. */
    std::string workload;
    /** FNV-1a of the kernel IR text (0 = aggregate, no single kernel). */
    std::uint64_t kernelHash = 0;
    std::string configName;
    /** FNV-1a of configKey(config, procs). */
    std::uint64_t configHash = 0;
    /** Processor count (0 = aggregate over mixed counts). */
    int procs = 1;
    /** Pipeline spec ("" = base / untransformed). */
    std::string pipeline;
    std::string execTier;   ///< "interp" | "threaded"
    std::string stepMode;   ///< "skip" | "reference"
    bool obs = false;       ///< metrics collectors attached
    bool validate = false;  ///< validation layer attached
    Tick samplePeriod = 0;  ///< epoch sampler period (0 = off)
    /** Host-thread shards the run stepped with (0/1 = single-thread).
     *  Provenance only: sharded results are bit-identical to the
     *  single-thread stepper, so — like obs/validate — shards is
     *  deliberately NOT part of configKey() and never moves a
     *  ResultStore content key (tests/test_store.cc asserts this). */
    int shards = 0;
    /** Host identification ("" in artifacts that must be byte-stable
     *  across hosts, e.g. autotune cache entries). */
    std::string host;

    /** Render as a JSON object (shared json::ObjectWriter; hashes as
     *  16-digit hex strings; no trailing newline). */
    std::string toJson() const;
};

/**
 * The configuration fields a simulation result depends on, rendered as
 * a stable string for hashing. Anything that changes cycles must
 * appear here; observability/validation toggles must not (they are
 * guaranteed not to change results).
 */
std::string configKey(const sys::SystemConfig &config, int procs);

/** FNV-1a of configKey(). */
std::uint64_t configHash(const sys::SystemConfig &config, int procs);

/** "<sysname> <release> <machine>" of this host ("" if unknown). */
std::string hostString();

/**
 * Manifest for one simulated run: @p config must be the scaled,
 * env-applied configuration the System is constructed with, and
 * @p kernel_text the final kernel (after partition + transforms) —
 * runWorkload builds this right before constructing the System.
 */
RunManifest makeRunManifest(const std::string &workload,
                            const std::string &kernel_text,
                            const sys::SystemConfig &config, int procs,
                            const std::string &pipeline);

/**
 * Manifest for a bench/tool invocation that aggregates several runs
 * (BENCH_*.json, MODEL_VS_MEASURED_*.json, FIG4_mshr.json): no single
 * kernel hash; @p procs 0 when the runs mix processor counts.
 */
RunManifest makeInvocationManifest(const std::string &label,
                                   const sys::SystemConfig &config,
                                   int procs);

} // namespace mpc::harness

#endif // MPC_HARNESS_MANIFEST_HH
