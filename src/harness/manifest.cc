#include "harness/manifest.hh"

#include <sys/utsname.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "kisa/exec_threaded.hh"

namespace mpc::harness
{

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
RunManifest::toJson() const
{
    json::ObjectWriter w;
    w.field("schema", "mpc-manifest-v1")
        .field("workload", workload)
        .field("kernelHash", json::hex64(kernelHash))
        .field("config", configName)
        .field("configHash", json::hex64(configHash))
        .field("procs", procs)
        .field("pipeline", pipeline)
        .field("execTier", execTier)
        .field("stepMode", stepMode)
        .field("obs", obs)
        .field("validate", validate)
        .field("samplePeriod", static_cast<std::uint64_t>(samplePeriod))
        .field("shards", shards)
        .field("host", host);
    return w.str();
}

std::string
configKey(const sys::SystemConfig &config, int procs)
{
    const auto cache = [](const mem::CacheConfig &c) {
        return strprintf("%llu/%d/%d/%d/%d/%llu/%llu",
                         static_cast<unsigned long long>(c.sizeBytes),
                         c.assoc, c.lineBytes, c.numMshrs, c.numPorts,
                         static_cast<unsigned long long>(c.hitLatency),
                         static_cast<unsigned long long>(c.fillLatency));
    };
    const cpu::CoreConfig &core = config.core;
    const std::string core_key = strprintf(
        "%d/%d/%d/%d/%d/%d/%d/%d/%llu/%llu/%llu/%llu/%llu/%llu/%llu/"
        "%d/%d",
        core.fetchWidth, core.issueWidth, core.retireWidth,
        core.memQueueSize, core.maxBranches, core.numAlus, core.numFpus,
        core.numAddrUnits,
        static_cast<unsigned long long>(core.latIntAlu),
        static_cast<unsigned long long>(core.latIntMul),
        static_cast<unsigned long long>(core.latFpArith),
        static_cast<unsigned long long>(core.latFpDiv),
        static_cast<unsigned long long>(core.latFpSqrt),
        static_cast<unsigned long long>(core.latAddrGen),
        static_cast<unsigned long long>(core.mispredictPenalty),
        core.predictorEntries, core.storeIssueWidth);
    const mem::MemBusConfig &bus = config.membus;
    const std::string bus_key = strprintf(
        "%d/%d/%llu/%d/%d/%llu", bus.numBanks,
        static_cast<int>(bus.interleave),
        static_cast<unsigned long long>(bus.bankAccessLatency),
        bus.cpuCyclesPerBusCycle, bus.busWidthBytes,
        static_cast<unsigned long long>(bus.busArbLatency));
    return strprintf(
        "%s|ns=%.6f|l1=%s|l2=%s|single=%d|win=%d|smp=%d|procs=%d"
        "|core=%s|bus=%s|mesh=%d/%d/%d|fab=%d/%llu/%llu|smpbus=%d/%d/"
        "%llu",
        config.name.c_str(), config.nsPerCycle,
        cache(config.hier.l1).c_str(), cache(config.hier.l2).c_str(),
        config.hier.singleLevel ? 1 : 0, config.core.windowSize,
        config.smpBus ? 1 : 0, procs, core_key.c_str(),
        bus_key.c_str(), config.mesh.flitBytes,
        config.mesh.cpuCyclesPerNetCycle,
        config.mesh.hopDelayNetCycles, config.fabric.lineBytes,
        static_cast<unsigned long long>(config.fabric.dirLatency),
        static_cast<unsigned long long>(config.fabric.probeLatency),
        config.smp.busWidthBytes, config.smp.cpuCyclesPerBusCycle,
        static_cast<unsigned long long>(config.smp.arbCycles));
}

std::uint64_t
configHash(const sys::SystemConfig &config, int procs)
{
    return fnv1a(configKey(config, procs));
}

std::string
hostString()
{
    struct utsname u;
    if (uname(&u) != 0)
        return "";
    return strprintf("%s %s %s", u.sysname, u.release, u.machine);
}

namespace
{

/** The fields both manifest flavours derive the same way. */
RunManifest
commonManifest(const sys::SystemConfig &config, int procs)
{
    RunManifest m;
    m.configName = config.name;
    m.configHash = configHash(config, procs);
    m.procs = procs;
    m.execTier = kisa::execTierName(kisa::execTierFromEnv());
    m.stepMode = config.skipAhead ? "skip" : "reference";
    m.obs = config.obsMetrics;
    m.validate = config.validate;
    m.samplePeriod = config.samplePeriod;
    m.shards = config.shards;
    m.host = hostString();
    return m;
}

} // namespace

RunManifest
makeRunManifest(const std::string &workload,
                const std::string &kernel_text,
                const sys::SystemConfig &config, int procs,
                const std::string &pipeline)
{
    RunManifest m = commonManifest(config, procs);
    m.workload = workload;
    m.kernelHash = fnv1a(kernel_text);
    m.pipeline = pipeline;
    return m;
}

RunManifest
makeInvocationManifest(const std::string &label,
                       const sys::SystemConfig &config, int procs)
{
    RunManifest m = commonManifest(config, procs);
    m.workload = label;
    return m;
}

} // namespace mpc::harness
