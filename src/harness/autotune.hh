/**
 * @file
 * Model-pruned pipeline autotuner (the mpctune tool's engine).
 *
 * The search space is knob-carrying pipeline specs
 * ("cluster(maxDegree=8),prefetch(dist=4)" — see transform/pipeline.hh
 * for the grammar). Candidates flow through two stages:
 *
 *  1. Model stage — every candidate's pipeline runs on a clone of the
 *     (partitioned) kernel with the profiled DriverParams, and the
 *     Eq 1-4 analytic predictions (summed per-nest f after
 *     transformation) rank them. Only the top simBudget survive; the
 *     hand-tuned default spec (pipelineSpecFromParams) always does,
 *     so tuning can never report a winner without having measured the
 *     baseline it must beat.
 *
 *  2. Measure stage — survivors are screened functionally (the
 *     threaded exec tier digests the transformed kernel's arrays and
 *     must match the untransformed kernel's digest; a mismatch kills
 *     the candidate, not the tune) and then simulated, fanned out
 *     through harness::ParallelRunner. A per-job try/catch keeps one
 *     bad candidate from aborting the sweep.
 *
 * Simulation results live in the shared content-addressed ResultStore
 * (harness/store.hh), keyed by the Job layer's content key —
 * (FNV-1a of the kernel IR text) x (FNV-1a of configKey + spec tail) —
 * so re-running a tune never re-simulates: the second run is 100%
 * store hits with byte-identical report output, and a tune shares
 * results with any farm sweep or bench that ran the same jobs against
 * the same store. Hit/miss counts go to stderr only — stdout must not
 * depend on store state. (PR 7's private tune_*.json cache files were
 * absorbed into this store.)
 */

#ifndef MPC_HARNESS_AUTOTUNE_HH
#define MPC_HARNESS_AUTOTUNE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/manifest.hh"
#include "harness/runner.hh"

namespace mpc::harness
{

struct TuneOptions
{
    sys::SystemConfig config = sys::baseConfig();
    int procs = -1;         ///< -1: the workload's default
    int simBudget = 8;      ///< candidates simulated after model pruning
    /** ResultStore directory for sim results; empty: caching off. */
    std::string cacheDir;
    int threads = 0;        ///< ParallelRunner threads (0 = default)
    Tick maxCycles = Tick(1) << 36;
    /** Size scale the workload was built with (job-key input). */
    int scale = 2;
};

/** One candidate spec's trip through the two stages. */
struct CandidateResult
{
    std::string spec;
    double predictedF = 0.0;    ///< sum of per-nest f after (Eq 1-4)
    bool pruned = false;        ///< dropped by the model stage
    bool measured = false;      ///< simulated (or served from cache)
    bool cached = false;        ///< sim result came from the cache
    bool failed = false;        ///< screen mismatch or sim exception
    std::string note;
    std::uint64_t cycles = 0;
    double mlp = 0.0;           ///< measured MLP (l2 read-MSHR mean)
    double reductionPct = 0.0;  ///< vs the untransformed base run
};

struct TuneReport
{
    std::string workload;
    int procs = 1;
    std::uint64_t baseCycles = 0;   ///< untransformed run
    double baseMlp = 0.0;
    std::string handSpec;           ///< pipelineSpecFromParams default
    std::uint64_t handCycles = 0;
    std::vector<CandidateResult> candidates;    ///< ranked, hand included
    int bestIndex = -1;             ///< into candidates; -1 = none ran
    int cacheHits = 0;
    int cacheMisses = 0;

    const CandidateResult *
    best() const
    {
        return bestIndex >= 0 ? &candidates[bestIndex] : nullptr;
    }

    /** Human-readable tuned-vs-hand table. Deterministic: contains no
     *  wall times or cache-state-dependent text. */
    std::string toString() const;

    /** Machine-readable result (same determinism guarantee). */
    std::string toJson() const;
};

/**
 * Tune @p workload under @p opts: generate the candidate grid, prune
 * with the analytic model, screen and simulate the survivors, and
 * return the ranked report (bestIndex = fewest cycles; ties prefer the
 * hand spec, then the lexicographically smaller spec, so reruns are
 * stable).
 */
TuneReport tune(const workloads::Workload &workload,
                const TuneOptions &opts);

/**
 * The candidate specs the tuner searches: the hand-tuned default
 * first, then cluster-degree, prefetch-distance, and inner-unroll
 * variations of it. Deduplicated, deterministic order.
 */
std::vector<std::string> candidateSpecs(
    const transform::DriverParams &params);

} // namespace mpc::harness

#endif // MPC_HARNESS_AUTOTUNE_HH
