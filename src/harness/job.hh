/**
 * @file
 * Job layer of the experiment farm: a serialized, content-addressed
 * unit of simulation work.
 *
 *  - RunSpec/SystemConfig JSON: every simulation-relevant field
 *    round-trips (config overrides, pipeline spec, procs, exec tier,
 *    step mode), so a Job survives a pipe or a job file byte-exactly.
 *  - Job = (workload name, size scale, RunSpec). Its content key is
 *    composed from the PR 8 manifest fields — FNV-1a of the
 *    UNtransformed kernel IR text x FNV-1a of configKey() of the
 *    scaled config plus a spec/tier/step tail — two 16-digit hex
 *    halves, computable without simulating or profiling anything.
 *  - JobResult carries the RunResult counters and histograms the
 *    figure benches print, the DriverReport, and the run manifest
 *    (host-blanked so store entries are byte-stable across hosts).
 *  - runStoredWorkload()/runJob(): the store-backed execution path —
 *    check the ResultStore under the job key, simulate on a miss,
 *    publish the JobResult. Doubles render via json::num (%.17g), so
 *    a warm run's stdout is byte-identical to the cold run that filled
 *    the store.
 *
 * Store hits return a WorkloadRun whose RunResult holds only the
 * serialized subset (no per-core stats, cache stats, or obs metrics)
 * and whose kernelText is empty; consumers needing those fields must
 * run without a store (the env gates in storeEligible() enforce this
 * for the validation/observability layers).
 */

#ifndef MPC_HARNESS_JOB_HH
#define MPC_HARNESS_JOB_HH

#include <string>

#include "common/json.hh"
#include "harness/runner.hh"
#include "harness/store.hh"

namespace mpc::harness
{

/** Render @p config for a job file: every simulation-relevant field
 *  (the configKey() set), nothing observational. */
std::string configToJson(const sys::SystemConfig &config);

/** Parse configToJson() output over default-constructed presets.
 *  @return false (with @p error set) on malformed input. */
bool configFromJson(const json::Value &v, sys::SystemConfig &out,
                    std::string &error);

std::string runSpecToJson(const RunSpec &spec);
bool runSpecFromJson(const json::Value &v, RunSpec &out,
                     std::string &error);

/** One serialized simulation: workload x scale x RunSpec. */
struct Job
{
    std::string workload;   ///< workloads::makeByName() name
    int scale = 2;          ///< workloads::SizeParams::scale
    RunSpec spec;

    /** Single-line JSON (schema "mpc-job-v1") — safe for JSONL job
     *  files and the farm's worker pipes. */
    std::string toJson() const;
    static bool fromJson(const std::string &text, Job &out,
                         std::string &error);
};

/** Instantiate the job's workload (fatals on an unknown name). */
workloads::Workload materializeJob(const Job &job);

/**
 * The composition string the second key half hashes (exposed for tests
 * and key-debugging): configKey() of the scaled config plus the
 * workload/scale/spec/tier/step tail. The kernel text is hashed
 * separately into the first half.
 */
std::string jobKeyText(const workloads::Workload &workload,
                       const RunSpec &spec, int scale);

/** 32-hex-digit content key: hex64(fnv1a(untransformed kernel text))
 *  then hex64(fnv1a(jobKeyText())). Materializes the workload. */
std::string jobKey(const Job &job);

/** jobKey() when the workload is already materialized. */
std::string jobKeyFor(const workloads::Workload &workload,
                      const RunSpec &spec, int scale);

/** Serialized outcome of one job (schema "mpc-jobresult-v1"). */
struct JobResult
{
    bool ok = false;
    std::string error;          ///< failure reason when !ok

    /** The RunResult subset every figure/table bench prints: cycles,
     *  components, utilizations, and the L2 MSHR histograms. */
    sys::RunResult result;
    transform::DriverReport report;
    /** Run manifest JSON, host-blanked for cross-host stability. */
    std::string manifestJson;

    std::string toJson() const;
    static bool fromJson(const std::string &text, JobResult &out);
};

/** Re-render @p manifest_json with its host field blanked (identity
 *  for anything that fails to parse). */
std::string blankManifestHost(const std::string &manifest_json);

/**
 * True when results may be served from / published to a store: no
 * validation, observability, tracing, sampling, or per-pass
 * verification requested (those runs must actually simulate), and the
 * spec dumps no IR.
 */
bool storeEligible(const RunSpec &spec);

/**
 * runWorkload() behind the store: serve a hit under the job key, else
 * simulate and publish. @p store may be null (plain run); ineligible
 * specs (storeEligible()) bypass the store. @p from_store, when
 * non-null, reports whether the result came from the store.
 */
WorkloadRun runStoredWorkload(const workloads::Workload &workload,
                              const RunSpec &spec, int scale,
                              ResultStore *store,
                              bool *from_store = nullptr);

/**
 * Execute @p job through @p store (never throws: failures come back as
 * ok=false JobResults, so a farm worker survives any job).
 */
JobResult runJob(const Job &job, ResultStore *store,
                 bool *from_store = nullptr);

} // namespace mpc::harness

#endif // MPC_HARNESS_JOB_HH
