/**
 * @file
 * Processor core configuration. Defaults follow Table 1 of the paper:
 * 500 MHz, 4-wide fetch/retire, 64-entry instruction window, 32-entry
 * memory queue, 16 outstanding branches, 2 ALUs / 2 FPUs / 2 address
 * units, and the listed functional-unit latencies.
 */

#ifndef MPC_CPU_CONFIG_HH
#define MPC_CPU_CONFIG_HH

#include "common/types.hh"

namespace mpc::cpu
{

struct CoreConfig
{
    int fetchWidth = 4;         ///< instructions dispatched per cycle
    int issueWidth = 4;         ///< instructions issued per cycle
    int retireWidth = 4;        ///< instructions retired per cycle
    int windowSize = 64;        ///< instruction window (reorder buffer)
    int memQueueSize = 32;      ///< in-flight loads + buffered stores
    int maxBranches = 16;       ///< unresolved branches in flight

    int numAlus = 2;
    int numFpus = 2;
    int numAddrUnits = 2;

    Tick latIntAlu = 1;
    Tick latIntMul = 7;         ///< integer multiply/divide
    Tick latFpArith = 3;        ///< most FPU ops
    Tick latFpDiv = 16;
    Tick latFpSqrt = 33;
    Tick latAddrGen = 1;

    /** Extra cycles from branch resolution to fetch restart. */
    Tick mispredictPenalty = 4;

    /** Branch predictor table entries (2-bit counters). */
    int predictorEntries = 1024;

    /** Write-buffer store issue attempts per cycle. */
    int storeIssueWidth = 2;
};

} // namespace mpc::cpu

#endif // MPC_CPU_CONFIG_HH
