/**
 * @file
 * Observation interface for the out-of-order core, consumed by the
 * validation layer (src/validate). The core invokes the hooks behind a
 * null check, so an unattached monitor costs one predictable branch per
 * dispatch/retire and nothing else; the interface lives here (not in
 * src/validate) so cpu does not depend on the validation library.
 */

#ifndef MPC_CPU_MONITOR_HH
#define MPC_CPU_MONITOR_HH

#include "common/types.hh"
#include "kisa/interp.hh"

namespace mpc::cpu
{

/**
 * Callbacks from one core's pipeline. Because the core executes
 * functionally at dispatch (see core.hh), architectural values exist at
 * dispatch time; onDispatch fires immediately *after* the core's own
 * kisa::step so a golden model can re-step the same instruction against
 * the same memory state and compare. onRetire fires once per retired
 * window entry, in order.
 */
class CoreMonitor
{
  public:
    virtual ~CoreMonitor() = default;

    /**
     * The core architecturally executed program.code[pc].
     * @param res  The core's own step result.
     * @param regs The core's architectural registers, post-step.
     */
    virtual void onDispatch(Tick now, int pc, const kisa::StepResult &res,
                            const kisa::RegFile &regs) = 0;

    /** Window entry for program.code[pc] retired (in program order). */
    virtual void onRetire(Tick now, int pc, std::uint64_t seq) = 0;
};

} // namespace mpc::cpu

#endif // MPC_CPU_MONITOR_HH
