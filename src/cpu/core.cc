#include "cpu/core.hh"

#include <bit>

#include "common/logging.hh"

namespace mpc::cpu
{

using kisa::Op;
using kisa::OpClass;

Core::Core(int id, mem::EventQueue &eq, const CoreConfig &cfg,
           const kisa::Program &program, kisa::MemoryImage &mem,
           mem::MemHierarchy &hier, SyncDevice *sync)
    : id_(id), eq_(eq), cfg_(cfg), program_(program), mem_(mem),
      hier_(hier), sync_(sync), predictor_(cfg.predictorEntries),
      window_(std::bit_ceil(static_cast<size_t>(cfg.windowSize))),
      windowMask_(window_.size() - 1),
      windowCap_(static_cast<std::uint64_t>(cfg.windowSize)),
      intWriter_(kisa::numIntRegs, 0), fpWriter_(kisa::numFpRegs, 0),
      aluBusy_(static_cast<size_t>(cfg.numAlus), 0),
      fpuBusy_(static_cast<size_t>(cfg.numFpus), 0),
      addrBusy_(static_cast<size_t>(cfg.numAddrUnits), 0)
{
    MPC_ASSERT(!program.code.empty(), "empty program");
    MPC_ASSERT(program.meta.size() == program.code.size(),
               "program missing predecode sidecar (call predecode())");
#ifndef NDEBUG
    // The sidecar is derived data; step() plus the opcode helpers stay
    // the single semantic definition. Cross-check on every construction
    // in debug builds.
    for (size_t i = 0; i < program.code.size(); ++i)
        MPC_ASSERT(program.meta[i] == kisa::deriveMeta(program.code[i]),
                   "stale predecode sidecar at pc %zu", i);
#endif
}

bool
Core::done() const
{
    return haltRetired_ && writeBuffer_.empty();
}

void
Core::tick()
{
    const Tick now = eq_.now();
    if (now >= faultTick_) {
        // Validation-test fault injection (see injectRegisterFaultAt).
        regs_.intRegs[faultReg_] ^= 1;
        faultTick_ = maxTick;
    }
    if (lastTick_ != maxTick && now > lastTick_ + 1 && !haltRetired_) {
        // Skip-ahead catch-up: reference mode would have ticked through
        // the quiescent cycles, retiring nothing and charging the full
        // retire width to the stall category of the (unchanged) window
        // head each cycle. Batch-charge the identical amount.
        const Tick skipped = now - lastTick_ - 1;
        attributeStall(sleepCat_,
                       skipped * static_cast<Tick>(cfg_.retireWidth));
        if (obs_ != nullptr)
            obs_->stallRange(lastTick_ + 1, now, sleepWhy_,
                             skipped *
                                 static_cast<Tick>(cfg_.retireWidth));
    }
    lastTick_ = now;
    doRetire(now);
    doIssue(now);
    doDispatch(now);
    drainWriteBuffer(now);
#ifndef NDEBUG
    auditScanCounts();
#endif
    if (quiescence_)
        nextWake_ = computeNextWake(now);
}

void
Core::auditScanCounts() const
{
#ifndef NDEBUG
    int pending = 0;
    int completed = 0;
    for (std::uint64_t seq = headSeq_; seq < tailSeq_; ++seq) {
        switch (slot(seq).state) {
          case EState::WaitOperands:
          case EState::WaitAgen:
          case EState::WaitCache:
            ++pending;
            break;
          case EState::Completed:
            ++completed;
            break;
          case EState::Outstanding:
          case EState::WaitSync:
            break;
        }
    }
    MPC_ASSERT(pending == issuePending_,
               "issuePending_ drift: counted %d, tracked %d", pending,
               issuePending_);
    MPC_ASSERT(completed == completedInWindow_,
               "completedInWindow_ drift: counted %d, tracked %d",
               completed, completedInWindow_);
#endif
}

Tick
Core::computeNextWake(Tick now)
{
    // Stall category reference mode's doRetire would charge while this
    // core sleeps: recomputed from post-tick state, which is exactly the
    // state reference mode would see at the start of each skipped cycle.
    if (obs_ != nullptr)
        sleepWhy_ = classifyWhy();
    sleepCat_ = StallCat::Cpu;
    if (headSeq_ < tailSeq_) {
        const Entry &head = slot(headSeq_);
        if (head.isLoad)
            sleepCat_ = StallCat::DataRead;
        else if (head.instr->op == Op::Barrier ||
                 head.instr->op == Op::FlagWait)
            sleepCat_ = StallCat::Sync;
    }

    if (done())
        return maxTick;

    // The write buffer retries rejected stores every cycle (mutating
    // cache reject counters), so any not-yet-outstanding entry keeps
    // the core ticking.
    for (const auto &wb : writeBuffer_)
        if (!wb.outstanding)
            return now + 1;

    Tick wake = maxTick;

    if (dispatchBlockedSync_) {
        const Entry &blocked = slot(blockedSyncSeq_);
        if (blocked.instr->op == Op::FlagWait)
            return now + 1;     // polls functional memory every cycle
        if (blocked.state == EState::Completed)
            return now + 1;     // barrier released; unblocks next tick
        // Barrier pending: the release callback calls wakeAt.
    } else if (!haltDispatched_) {
        if (now < fetchResumeTick_) {
            // Mispredict redirect. maxTick = branch not yet issued; its
            // issue is tracked through the window scan below.
            if (fetchResumeTick_ != maxTick)
                wake = std::min(wake, fetchResumeTick_);
        } else if (tailSeq_ - headSeq_ < windowCap_) {
            const kisa::InstrMeta &m = program_.meta[pc_];
            const bool branch_gated = m.isBranch &&
                                      unresolvedBranches_ >= cfg_.maxBranches;
            const bool mem_gated = m.isMem &&
                                   memQueueUsed_ >= cfg_.memQueueSize;
            if (!branch_gated && !mem_gated)
                return now + 1; // can dispatch next cycle
            // Gated: freed by a retire (window scan below), a write-
            // buffer completion, or a branch-resolution event (both
            // call wakeAt).
        }
        // Window full: unblocked by a retire, tracked below.
    }

    // Outstanding/WaitSync entries contribute nothing (their
    // completion callbacks call wakeAt), so stop after the last
    // scan-relevant entry — counted by issuePending_ plus
    // completedInWindow_ — instead of walking the whole window.
    int remaining = issuePending_ + completedInWindow_;
    for (std::uint64_t seq = headSeq_; remaining > 0 && seq < tailSeq_;
         ++seq) {
        const Entry &e = slot(seq);
        switch (e.state) {
          case EState::WaitOperands:
            --remaining;
            // Issuable but blocked on issue width or a busy unit.
            if (producerDone(e.prodA, now) && producerDone(e.prodB, now))
                return now + 1;
            // Producers are window entries themselves and are covered
            // by their own cases in this scan.
            break;
          case EState::WaitAgen:
            --remaining;
            wake = std::min(wake, std::max(e.readyTick, now + 1));
            break;
          case EState::WaitCache:
            return now + 1;     // cache retry mutates reject counters
          case EState::Completed:
            --remaining;
            if (e.completeTick > now)
                wake = std::min(wake, e.completeTick);
            else if (seq == headSeq_)
                return now + 1; // retire width exhausted this cycle
            break;
          case EState::Outstanding:
          case EState::WaitSync:
            break;              // completion callbacks call wakeAt
        }
    }
    return std::max(wake, now + 1);
}

bool
Core::producerDone(std::uint64_t prod, Tick now) const
{
    if (prod == 0)
        return true;
    const std::uint64_t seq = prod - 1;
    if (seq < headSeq_)
        return true;  // already retired, hence completed
    const Entry &p = slot(seq);
    return p.state == EState::Completed && p.completeTick <= now;
}

void
Core::recordProducers(Entry &entry, const kisa::Instr &instr,
                      const kisa::InstrMeta &meta)
{
    using kisa::noReg;
    entry.prodA = 0;
    entry.prodB = 0;
    if (instr.ra != noReg) {
        entry.prodA = meta.srcAFp ? fpWriter_[instr.ra]
                                  : intWriter_[instr.ra];
    }
    if (instr.rb != noReg) {
        entry.prodB = meta.srcBFp ? fpWriter_[instr.rb]
                                  : intWriter_[instr.rb];
    }
}

Tick
Core::tryFunctionalUnit(OpClass cls, Tick now)
{
    std::vector<Tick> *pool = nullptr;
    Tick lat = 1;
    bool blocking = false;
    switch (cls) {
      case OpClass::IntAlu:
        pool = &aluBusy_;
        lat = cfg_.latIntAlu;
        break;
      case OpClass::IntMul:
        pool = &aluBusy_;
        lat = cfg_.latIntMul;
        blocking = true;  // iterative multiply/divide unit
        break;
      case OpClass::FpArith:
        pool = &fpuBusy_;
        lat = cfg_.latFpArith;
        break;
      case OpClass::FpDiv:
        pool = &fpuBusy_;
        lat = cfg_.latFpDiv;
        blocking = true;
        break;
      case OpClass::FpSqrt:
        pool = &fpuBusy_;
        lat = cfg_.latFpSqrt;
        blocking = true;
        break;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        pool = &addrBusy_;
        lat = cfg_.latAddrGen;
        break;
      default:
        panic("tryFunctionalUnit: op class has no unit");
    }
    for (Tick &busy_until : *pool) {
        if (busy_until <= now) {
            busy_until = now + (blocking ? lat : 1);
            return now + lat;
        }
    }
    return maxTick;
}

void
Core::doRetire(Tick now)
{
    if (haltRetired_)
        return;

    int retired = 0;
    while (retired < cfg_.retireWidth && headSeq_ < tailSeq_) {
        Entry &e = slot(headSeq_);
        if (e.state != EState::Completed || e.completeTick > now)
            break;
        if (e.isStore) {
            WbEntry wb;
            wb.addr = e.memAddr;
            wb.refId = e.instr->refId;
            wb.id = nextWbId_++;
            writeBuffer_.push_back(wb);
            ++stats_.stores;
        }
        if (e.isLoad || e.isPrefetch) {
            --memQueueUsed_;
            if (e.isLoad)
                ++stats_.loads;
        }
        if (e.instr->op == Op::Halt) {
            haltRetired_ = true;
            stats_.doneTick = now;
        }
        if (monitor_)
            monitor_->onRetire(now, e.pc, headSeq_);
        if (obs_ != nullptr)
            obs_->retired(now, e.pc);
        ++headSeq_;
        --completedInWindow_;   // retiring entries are always Completed
        ++retired;
        ++stats_.retired;
        if (haltRetired_)
            break;
    }

    stats_.busySlots += static_cast<std::uint64_t>(retired);
    const int stall_slots = cfg_.retireWidth - retired;
    if (stall_slots <= 0 || haltRetired_)
        return;

    StallCat cat = StallCat::Cpu;
    if (headSeq_ < tailSeq_) {
        const Entry &head = slot(headSeq_);
        const Op op = head.instr->op;
        if (head.isLoad && head.state != EState::Completed)
            cat = StallCat::DataRead;
        else if (head.isLoad)
            cat = StallCat::DataRead;  // completed later this cycle
        else if (op == Op::Barrier || op == Op::FlagWait)
            cat = StallCat::Sync;
        else if (head.isStore && head.state != EState::Completed)
            cat = StallCat::Cpu;  // store waits on operands/AGEN
        else
            cat = StallCat::Cpu;
    }
    attributeStall(cat, stall_slots);
    if (obs_ != nullptr)
        obs_->stallRange(now, now + 1, classifyWhy(),
                         static_cast<std::uint64_t>(stall_slots));
}

obs::StallWhy
Core::classifyWhy() const
{
    if (headSeq_ >= tailSeq_)
        return obs::StallWhy::Cpu;      // empty window: fetch/mispredict
    const Entry &head = slot(headSeq_);
    const Op op = head.instr->op;
    if (op == Op::Barrier || op == Op::FlagWait)
        return obs::StallWhy::Sync;
    if (head.isLoad) {
        switch (head.state) {
          case EState::WaitCache:
            return head.rejectMshr ? obs::StallWhy::MshrFull
                                   : obs::StallWhy::Other;
          case EState::Outstanding:
            if (head.coalesced)
                return obs::StallWhy::LineDep;
            if (head.addrFromLoad)
                return obs::StallWhy::AddrDep;
            return tailSeq_ - headSeq_ >= windowCap_
                       ? obs::StallWhy::WindowFull
                       : obs::StallWhy::Leader;
          default:
            // WaitOperands/WaitAgen (issue-side latency) or Completed
            // (drains later this same cycle).
            return obs::StallWhy::Other;
        }
    }
    if (head.isStore && head.state != EState::Completed)
        return obs::StallWhy::Store;
    return obs::StallWhy::Other;
}

bool
Core::producerLoadInFlight(std::uint64_t prod, Tick now) const
{
    if (prod == 0)
        return false;
    const std::uint64_t seq = prod - 1;
    if (seq < headSeq_)
        return false;   // retired: value was available long before
    const Entry &p = slot(seq);
    return p.isLoad &&
           !(p.state == EState::Completed && p.completeTick <= now);
}

void
Core::attributeStall(StallCat cat, std::uint64_t slots)
{
    const auto s = slots;
    switch (cat) {
      case StallCat::Busy:
        stats_.busySlots += s;
        break;
      case StallCat::DataRead:
        stats_.dataReadSlots += s;
        break;
      case StallCat::DataWrite:
        stats_.dataWriteSlots += s;
        break;
      case StallCat::Sync:
        stats_.syncSlots += s;
        break;
      case StallCat::Cpu:
      case StallCat::Instr:
        stats_.cpuSlots += s;
        break;
    }
}

bool
Core::tryLoadAccess(std::uint64_t seq, Tick now)
{
    Entry &e = slot(seq);
    mem::AccessInfo info;
    const auto status = hier_.load(
        e.memAddr, e.instr->refId,
        [this, seq](Tick t) {
            wakeAt(t);
            Entry &entry = slot(seq);
            entry.state = EState::Completed;
            ++completedInWindow_;
            entry.completeTick = t;
            const auto latency =
                static_cast<double>(t - entry.issueTick);
            const Tick l1_hit = hier_.l1().config().hitLatency;
            if (latency > static_cast<double>(l1_hit) + 1) {
                stats_.loadMissLatency.sample(latency);
                if (obs_ != nullptr)
                    obs_->loadMiss(entry.instr->refId, latency,
                                   entry.obsOverlap, entry.coalesced);
            }
            const Tick l2_hit = hier_.l2().config().hitLatency;
            if (latency > static_cast<double>(l1_hit + l2_hit) + 4)
                stats_.longMissLatency.sample(latency);
        },
        &info);
    if (status != mem::Cache::Status::Ok) {
        e.rejectMshr = status == mem::Cache::Status::RejectMshr;
        return false;
    }
    e.state = EState::Outstanding;
    --issuePending_;
    e.issueTick = now;
    e.coalesced = info.coalesced;
    if (obs_ != nullptr)
        e.obsOverlap = obs_->overlapNow();
    return true;
}

void
Core::doIssue(Tick now)
{
    // The scan acts only on WaitOperands/WaitAgen/WaitCache entries;
    // stop once all of them (counted by issuePending_) have been
    // visited instead of walking the rest of the window. Processing an
    // entry never puts a *later* entry into a pending state, so a
    // single forward pass with a snapshot count is exact.
    int remaining = issuePending_;
    int budget = cfg_.issueWidth;
    for (std::uint64_t seq = headSeq_; remaining > 0 && seq < tailSeq_;
         ++seq) {
        Entry &e = slot(seq);
        switch (e.state) {
          case EState::WaitOperands: {
            --remaining;
            if (budget <= 0)
                break;
            if (!producerDone(e.prodA, now) || !producerDone(e.prodB, now))
                break;
            const kisa::InstrMeta &m = *e.meta;
            const OpClass cls = m.cls;
            if (cls == OpClass::Nop) {
                e.state = EState::Completed;
                --issuePending_;
                ++completedInWindow_;
                e.completeTick = now;
                break;
            }
            const Tick done = tryFunctionalUnit(cls, now);
            if (done == maxTick)
                break;  // no free unit this cycle
            --budget;
            if (m.isMem) {
                // Address generation; cache access follows.
                e.state = EState::WaitAgen;
                e.readyTick = done;
            } else {
                e.state = EState::Completed;
                --issuePending_;
                ++completedInWindow_;
                e.completeTick = done;
                if (m.isBranch) {
                    eq_.schedule(done, [this] {
                        --unresolvedBranches_;
                        wakeAt(eq_.now());  // may unblock dispatch
                    });
                    if (e.mispredicted)
                        fetchResumeTick_ = done + cfg_.mispredictPenalty;
                }
            }
            break;
          }
          case EState::WaitAgen:
            --remaining;
            if (now >= e.readyTick) {
                if (e.isStore) {
                    // Store is retire-ready once its address and data
                    // are known; memory is updated from the write
                    // buffer after retirement (release consistency).
                    e.state = EState::Completed;
                    --issuePending_;
                    ++completedInWindow_;
                    e.completeTick = e.readyTick;
                } else if (e.isPrefetch) {
                    // Fire-and-forget; dropped if the cache rejects.
                    hier_.load(e.memAddr, e.instr->refId,
                               mem::CompletionFn{});
                    e.state = EState::Completed;
                    --issuePending_;
                    ++completedInWindow_;
                    e.completeTick = e.readyTick;
                } else {
                    e.state = EState::WaitCache;
                    tryLoadAccess(seq, now);
                }
            }
            break;
          case EState::WaitCache:
            --remaining;
            tryLoadAccess(seq, now);
            break;
          case EState::Outstanding:
          case EState::WaitSync:
          case EState::Completed:
            break;
        }
    }
}

void
Core::doDispatch(Tick now)
{
    for (int n = 0; n < cfg_.fetchWidth; ++n) {
        if (haltDispatched_)
            return;
        if (dispatchBlockedSync_) {
            Entry &blocked = slot(blockedSyncSeq_);
            const kisa::Instr &in = *blocked.instr;
            if (in.op == Op::FlagWait) {
                const Addr addr = static_cast<Addr>(
                    regs_.intRegs[in.ra] + in.imm);
                const auto value =
                    static_cast<std::int64_t>(mem_.ld64(addr));
                if (value < regs_.intRegs[in.rb])
                    return;  // still waiting
                // Condition satisfied: architecturally execute it now.
                auto res = kisa::step(program_, blocked.pc, regs_, mem_);
                MPC_ASSERT(!res.syncBlocked, "flag re-check failed");
                if (monitor_)
                    monitor_->onDispatch(now, blocked.pc, res, regs_);
                pc_ = res.nextPc;
                blocked.state = EState::Completed;
                ++completedInWindow_;
                blocked.completeTick = now;
                dispatchBlockedSync_ = false;
            } else {
                // Barrier: released by the SyncDevice callback.
                if (blocked.state != EState::Completed)
                    return;
                dispatchBlockedSync_ = false;
            }
            continue;
        }
        if (now < fetchResumeTick_)
            return;  // mispredict redirect pending
        if (tailSeq_ - headSeq_ >= windowCap_)
            return;  // window full

        const kisa::Instr &in = program_.code[pc_];
        const kisa::InstrMeta &m = program_.meta[pc_];
        if (m.isBranch && unresolvedBranches_ >= cfg_.maxBranches)
            return;
        if (m.isMem && memQueueUsed_ >= cfg_.memQueueSize)
            return;

        const std::uint64_t seq = tailSeq_++;
        Entry &e = slot(seq);
        e = Entry{};
        e.instr = &in;
        e.meta = &m;
        e.pc = pc_;
        recordProducers(e, in, m);

        if (in.op == Op::Halt) {
            e.state = EState::Completed;
            ++completedInWindow_;
            e.completeTick = now;
            haltDispatched_ = true;
            return;
        }
        if (in.op == Op::FlagWait) {
            e.state = EState::WaitSync;
            dispatchBlockedSync_ = true;
            blockedSyncSeq_ = seq;
            return;  // poll next cycle (at least one cycle of wait)
        }
        if (in.op == Op::Barrier) {
            MPC_ASSERT(sync_ != nullptr, "Barrier with no SyncDevice");
            auto res = kisa::step(program_, pc_, regs_, mem_);
            if (monitor_)
                monitor_->onDispatch(now, e.pc, res, regs_);
            pc_ = res.nextPc;
            e.state = EState::WaitSync;
            dispatchBlockedSync_ = true;
            blockedSyncSeq_ = seq;
            sync_->arrive(id_, [this, seq] {
                wakeAt(eq_.now());
                Entry &entry = slot(seq);
                entry.state = EState::Completed;
                ++completedInWindow_;
                entry.completeTick = eq_.now();
            });
            // The last arriver's callback fires synchronously; loop
            // re-checks dispatchBlockedSync_ next iteration.
            continue;
        }

        // Ordinary instruction: functionally execute at dispatch.
        // The entry stays WaitOperands, so it joins the issue scan.
        ++issuePending_;
        auto res = kisa::step(program_, pc_, regs_, mem_);
        const int branch_pc = pc_;
        if (monitor_)
            monitor_->onDispatch(now, branch_pc, res, regs_);
        pc_ = res.nextPc;

        if (res.isMem) {
            e.memAddr = res.memAddr;
            if (in.op == Op::Prefetch) {
                // Nonbinding: occupies a memory-queue slot but never
                // blocks retirement.
                e.isPrefetch = true;
            } else {
                e.isLoad = res.isLoad;
                e.isStore = !res.isLoad;
            }
            ++memQueueUsed_;
            if (obs_ != nullptr && e.isLoad)
                e.addrFromLoad = producerLoadInFlight(e.prodA, now) ||
                                 producerLoadInFlight(e.prodB, now);
        }
        if (m.isBranch) {
            ++stats_.branches;
            ++unresolvedBranches_;
            const bool predicted = predictor_.predict(branch_pc, in);
            predictor_.update(branch_pc, in, res.branchTaken);
            if (predicted != res.branchTaken) {
                e.mispredicted = true;
                ++stats_.mispredicts;
                // Block fetch until the branch resolves (set at issue).
                fetchResumeTick_ = maxTick;
                // Record destination register writer after mispredict
                // handling below; branches have no destination.
                return;
            }
        }
        if (m.writesReg) {
            if (m.destFp)
                fpWriter_[in.rd] = seq + 1;
            else
                intWriter_[in.rd] = seq + 1;
        }
    }
}

std::string
Core::dumpWindow() const
{
    static const char *const state_names[] = {
        "WaitOperands", "WaitAgen", "WaitCache",
        "Outstanding",  "WaitSync", "Completed",
    };
    std::string out = strprintf(
        "core %d: pc=%d window=%llu..%llu wb=%zu memq=%d%s%s%s\n", id_,
        pc_, static_cast<unsigned long long>(headSeq_),
        static_cast<unsigned long long>(tailSeq_), writeBuffer_.size(),
        memQueueUsed_, dispatchBlockedSync_ ? " sync-blocked" : "",
        haltDispatched_ ? " halt-dispatched" : "",
        haltRetired_ ? " halt-retired" : "");
    for (std::uint64_t seq = headSeq_; seq < tailSeq_; ++seq) {
        const Entry &e = slot(seq);
        out += strprintf(
            "  [%llu] pc=%-4d %-8s %-12s complete=%lld",
            static_cast<unsigned long long>(seq), e.pc,
            kisa::opName(e.instr->op),
            state_names[static_cast<int>(e.state)],
            e.completeTick == maxTick
                ? -1LL
                : static_cast<long long>(e.completeTick));
        if (e.memAddr != invalidAddr)
            out += strprintf(" addr=0x%llx%s",
                             static_cast<unsigned long long>(e.memAddr),
                             e.isLoad      ? " load"
                             : e.isStore   ? " store"
                             : e.isPrefetch ? " prefetch"
                                            : "");
        out += "\n";
    }
    return out;
}

void
Core::drainWriteBuffer(Tick now)
{
    (void)now;
    int tries = cfg_.storeIssueWidth;
    for (auto &wb : writeBuffer_) {
        if (tries <= 0)
            break;
        if (wb.outstanding)
            continue;
        const std::uint64_t id = wb.id;
        const auto status =
            hier_.store(wb.addr, wb.refId, [this, id](Tick t) {
                wakeAt(t);  // frees a memory-queue slot
                for (auto it = writeBuffer_.begin();
                     it != writeBuffer_.end(); ++it) {
                    if (it->id == id) {
                        writeBuffer_.erase(it);
                        break;
                    }
                }
                --memQueueUsed_;
            });
        if (status != mem::Cache::Status::Ok)
            break;  // port or MSHR pressure; retry next cycle
        wb.outstanding = true;
        --tries;
    }
}

} // namespace mpc::cpu
