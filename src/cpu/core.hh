/**
 * @file
 * Cycle-stepped out-of-order processor core.
 *
 * Modeling approach: instructions execute *functionally* at dispatch
 * (the standard functional-first technique of sim-outorder-style
 * simulators), while issue, memory access, completion, and in-order
 * retirement are timed separately. This keeps the timing model honest
 * about the phenomena the paper studies — window occupancy, nonblocking
 * loads, MSHR back-pressure, in-order retire stalls — while guaranteeing
 * functional correctness of transformed kernels.
 *
 * Execution-time attribution follows the paper (Section 5.2): each
 * cycle, retired/retireWidth is counted as busy time; the remainder is
 * charged to the first instruction that could not retire — data-read
 * stall for incomplete loads, sync stall for Barrier/FlagWait, data-
 * write stall for stores blocked on a full write buffer, CPU stall
 * otherwise. Cycles with an empty window count as CPU (fetch/mispredict)
 * time; instruction-memory stalls are structurally zero because the
 * kernel programs are resident (the paper also measured near-zero
 * I-stalls for these loop-intensive codes).
 */

#ifndef MPC_CPU_CORE_HH
#define MPC_CPU_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/config.hh"
#include "cpu/monitor.hh"
#include "cpu/predictor.hh"
#include "cpu/sync.hh"
#include "kisa/interp.hh"
#include "kisa/memimage.hh"
#include "kisa/program.hh"
#include "mem/eventq.hh"
#include "mem/hierarchy.hh"
#include "obs/metrics.hh"
#include "obs/registry.hh"

namespace mpc::cpu
{

/** Stall-time categories, per the paper's execution-time breakdown. */
enum class StallCat { Busy, DataRead, DataWrite, Sync, Cpu, Instr };

/** Per-core statistics. Slot units: one cycle = retireWidth slots. */
struct CoreStats
{
    Tick doneTick = 0;              ///< cycle the Halt retired
    std::uint64_t retired = 0;      ///< instructions retired
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t branches = 0;

    std::uint64_t busySlots = 0;
    std::uint64_t dataReadSlots = 0;
    std::uint64_t dataWriteSlots = 0;
    std::uint64_t syncSlots = 0;
    std::uint64_t cpuSlots = 0;

    /** Latency (issue to data-ready) of loads that missed the L1. */
    StatSummary loadMissLatency;
    /** Latency of loads that went past the L2 (long misses). */
    StatSummary longMissLatency;

    /** Seconds-equivalent helpers (in cycles). */
    double
    busyCycles(int retire_width) const
    {
        return static_cast<double>(busySlots) / retire_width;
    }
};

/**
 * One simulated out-of-order core running a KISA program.
 */
class Core
{
  public:
    /**
     * @param sync Barrier device; may be null for uniprocessor kernels
     *        that never execute Barrier.
     */
    Core(int id, mem::EventQueue &eq, const CoreConfig &cfg,
         const kisa::Program &program, kisa::MemoryImage &mem,
         mem::MemHierarchy &hier, SyncDevice *sync);

    /** Advance one cycle at the event queue's current time. */
    void tick();

    /**
     * Quiescence protocol: the earliest cycle at which ticking this
     * core can change any state (its own, the caches', or the stats).
     * System::run fast-forwards to min(next event, next core wake)
     * instead of ticking every core every cycle; a sleeping core
     * catches up its per-cycle stall attribution on its next tick, so
     * results are bit-identical to the reference cycle-step mode.
     * maxTick means "woken only by an event or sync callback".
     */
    Tick nextWake() const { return nextWake_; }

    /**
     * Reference cycle-step mode ticks every core every cycle, so the
     * wake computation is pure overhead there; System disables it when
     * skipAhead is off (nextWake_ stays 0 = always runnable).
     */
    void enableQuiescence(bool on) { quiescence_ = on; }

    /** True once Halt retired and all buffered stores drained. */
    bool done() const;

    /**
     * Sharded-stepping hazard inputs: the next fetch pc (index into the
     * program; instructions within a fetch group of it may dispatch —
     * and so arrive at a barrier or read a flag — this very tick), and
     * whether dispatch is parked on a FlagWait (which polls shared
     * functional memory every cycle). System::run serializes any cycle
     * where either could interact across shards.
     */
    int fetchPc() const { return pc_; }
    bool
    blockedOnFlagWait() const
    {
        return dispatchBlockedSync_ &&
               slot(blockedSyncSeq_).instr->op == kisa::Op::FlagWait;
    }

    const CoreStats &stats() const { return stats_; }
    int id() const { return id_; }

    /** Architectural registers (for post-run result checks). */
    const kisa::RegFile &regs() const { return regs_; }

    /** Attach a validation observer (not owned; null detaches). */
    void attachMonitor(CoreMonitor *monitor) { monitor_ = monitor; }

    /** Attach the observability sink (not owned; null detaches). All
     *  hooks read frozen pipeline state only, so attaching never
     *  changes simulated results. */
    void attachObs(obs::CoreObs *obs) { obs_ = obs; }

    /** Publish this core's counters on the telemetry registry (epoch
     *  Sampler); names are "<prefix>.<counter>". */
    void
    registerMetrics(obs::MetricsRegistry &reg,
                    const std::string &prefix) const
    {
        reg.addCounter(prefix + ".retired", &stats_.retired);
        reg.addCounter(prefix + ".loads", &stats_.loads);
        reg.addCounter(prefix + ".stores", &stats_.stores);
        reg.addCounter(prefix + ".branches", &stats_.branches);
        reg.addCounter(prefix + ".mispredicts", &stats_.mispredicts);
        reg.addCounter(prefix + ".busySlots", &stats_.busySlots);
        reg.addCounter(prefix + ".dataReadSlots",
                       &stats_.dataReadSlots);
        reg.addCounter(prefix + ".dataWriteSlots",
                       &stats_.dataWriteSlots);
        reg.addCounter(prefix + ".syncSlots", &stats_.syncSlots);
        reg.addCounter(prefix + ".cpuSlots", &stats_.cpuSlots);
    }

    /**
     * Fault injection for validation tests: at the first tick at or
     * after @p when, flip the low bit of integer register @p reg. The
     * golden lockstep checker must flag the divergence on the next
     * instruction that reads or overwrites the register.
     */
    void
    injectRegisterFaultAt(Tick when, std::uint16_t reg)
    {
        faultTick_ = when;
        faultReg_ = reg;
    }

    /** Dump the in-flight window (one entry per line) for diagnostics. */
    std::string dumpWindow() const;

    /** Instruction-window occupancy (for tests). */
    int windowOccupancy() const
    {
        return static_cast<int>(tailSeq_ - headSeq_);
    }

  private:
    /** Scheduling state of a window entry. */
    enum class EState : std::uint8_t {
        WaitOperands,   ///< source registers not ready
        WaitAgen,       ///< memory op: address generation in flight
        WaitCache,      ///< memory op: retrying cache access
        Outstanding,    ///< load launched into the hierarchy
        WaitSync,       ///< Barrier/FlagWait pending
        Completed,
    };

    struct Entry
    {
        const kisa::Instr *instr = nullptr;
        const kisa::InstrMeta *meta = nullptr;  ///< predecode sidecar
        int pc = 0;
        EState state = EState::WaitOperands;
        Tick completeTick = maxTick;
        Tick readyTick = 0;         ///< operands-ready lower bound
        std::uint64_t prodA = 0;    ///< producer seqs (0 = none; seq+1)
        std::uint64_t prodB = 0;
        Addr memAddr = invalidAddr;
        bool isLoad = false;
        bool isStore = false;
        bool isPrefetch = false;
        bool mispredicted = false;
        Tick issueTick = maxTick;   ///< cache-access launch (loads)

        // Observability annotations (never read by the timing model).
        bool coalesced = false;     ///< load merged into in-flight line
        bool rejectMshr = false;    ///< last cache retry hit MSHR limit
        bool addrFromLoad = false;  ///< address depends on in-flight load
        int obsOverlap = -1;        ///< outstanding reads after issue
    };

    Entry &slot(std::uint64_t seq) { return window_[seq & windowMask_]; }
    const Entry &slot(std::uint64_t seq) const
    {
        return window_[seq & windowMask_];
    }

    /** True if producer @p prod (seq+1 encoding) has completed. */
    bool producerDone(std::uint64_t prod, Tick now) const;

    void doRetire(Tick now);
    void doIssue(Tick now);
    void doDispatch(Tick now);
    void drainWriteBuffer(Tick now);

    /** Record the producer seqs for the sources of @p instr. */
    void recordProducers(Entry &entry, const kisa::Instr &instr,
                         const kisa::InstrMeta &meta);

    /** Try to claim a functional unit of @p cls at @p now.
     *  @return completion tick, or maxTick if no unit is free. */
    Tick tryFunctionalUnit(kisa::OpClass cls, Tick now);

    /** Attribute the non-busy remainder of a cycle (or of a batch of
     *  skipped stall cycles). */
    void attributeStall(StallCat cat, std::uint64_t slots);

    /** Refine the stall into the observability taxonomy. Pure function
     *  of frozen window state (no clock reads), so the answer is stable
     *  across a quiescent sleep window: any state change wakes the
     *  core. */
    obs::StallWhy classifyWhy() const;

    /** True if @p prod (seq+1 encoding) is an in-flight load at @p now
     *  (dispatch-time address-dependence detection). */
    bool producerLoadInFlight(std::uint64_t prod, Tick now) const;

    /**
     * Compute the earliest cycle after @p now at which a tick could
     * change state, from post-tick state (see nextWake). Also records
     * the stall category reference mode would charge while we sleep.
     */
    Tick computeNextWake(Tick now);

    /** Completion callbacks pull the wake tick forward to @p t. */
    void
    wakeAt(Tick t)
    {
        if (t < nextWake_)
            nextWake_ = t;
    }

    /** Launch a load into the memory hierarchy. */
    bool tryLoadAccess(std::uint64_t seq, Tick now);

    /** Debug-build recount of issuePending_/completedInWindow_. */
    void auditScanCounts() const;

    const int id_;
    mem::EventQueue &eq_;
    CoreConfig cfg_;
    const kisa::Program &program_;
    kisa::MemoryImage &mem_;
    mem::MemHierarchy &hier_;
    SyncDevice *sync_;
    BranchPredictor predictor_;

    kisa::RegFile regs_;
    int pc_ = 0;

    /**
     * Window ring buffer, sized to the next power of two above the
     * configured capacity so slot() indexes with a mask instead of a
     * runtime modulo (a division on every window access otherwise —
     * slot() sits inside every per-cycle scan). At most windowCap_
     * seqs are in flight, so masked indices never collide.
     */
    std::vector<Entry> window_;
    std::uint64_t windowMask_ = 0;  ///< window_.size() - 1
    std::uint64_t windowCap_ = 0;   ///< configured capacity (<= size)
    std::uint64_t headSeq_ = 0;     ///< oldest in-flight
    std::uint64_t tailSeq_ = 0;     ///< next to allocate

    /**
     * Scan-relevance counters: how many window entries are in a state
     * the doIssue / computeNextWake scans act on (everything except
     * Outstanding and WaitSync, whose case arms are no-ops). The scans
     * stop once they have visited that many relevant entries, so a
     * window full of outstanding misses costs O(few) instead of
     * O(windowSize) per tick. Maintained at every state transition;
     * audited against a full recount in debug builds (auditScanCounts).
     */
    int issuePending_ = 0;          ///< WaitOperands|WaitAgen|WaitCache
    int completedInWindow_ = 0;     ///< Completed, not yet retired

    /** Youngest in-flight producer per register (seq+1; 0 = none). */
    std::vector<std::uint64_t> intWriter_;
    std::vector<std::uint64_t> fpWriter_;

    /** Per-unit busy-until ticks for each FU pool. */
    std::vector<Tick> aluBusy_;
    std::vector<Tick> fpuBusy_;
    std::vector<Tick> addrBusy_;
    int issuedThisCycle_ = 0;
    Tick issueCycle_ = maxTick;

    // Dispatch-blocking conditions.
    bool haltDispatched_ = false;
    bool dispatchBlockedSync_ = false;  ///< barrier/flag at dispatch
    std::uint64_t blockedSyncSeq_ = 0;
    Tick fetchResumeTick_ = 0;          ///< mispredict redirect
    int unresolvedBranches_ = 0;

    // Write buffer (shares the memory queue with in-flight loads).
    struct WbEntry
    {
        Addr addr = invalidAddr;
        std::uint32_t refId = 0xffffffff;
        std::uint64_t id = 0;
        bool outstanding = false;
    };
    std::vector<WbEntry> writeBuffer_;
    std::uint64_t nextWbId_ = 1;
    /** In-window memory ops plus write-buffer entries. */
    int memQueueUsed_ = 0;

    bool haltRetired_ = false;
    CoreStats stats_;

    CoreMonitor *monitor_ = nullptr;
    obs::CoreObs *obs_ = nullptr;
    Tick faultTick_ = maxTick;      ///< pending injected fault (tests)
    std::uint16_t faultReg_ = 0;

    // Quiescence bookkeeping (see nextWake).
    bool quiescence_ = true;        ///< compute wakes at all?
    Tick nextWake_ = 0;             ///< earliest useful tick
    Tick lastTick_ = maxTick;       ///< cycle of the last tick (sentinel:
                                    ///< never ticked)
    StallCat sleepCat_ = StallCat::Cpu; ///< stall charged while asleep
    obs::StallWhy sleepWhy_ = obs::StallWhy::Cpu; ///< taxonomy twin
};

} // namespace mpc::cpu

#endif // MPC_CPU_CORE_HH
