/**
 * @file
 * Barrier rendezvous device shared by the simulated cores. Arrival and
 * release happen during core ticks; release callbacks complete each
 * core's Barrier instruction so its retire stall is attributed to
 * synchronization time.
 */

#ifndef MPC_CPU_SYNC_HH
#define MPC_CPU_SYNC_HH

#include <functional>
#include <vector>

#include "common/logging.hh"

namespace mpc::cpu
{

class SyncDevice
{
  public:
    explicit SyncDevice(int num_cores) : numCores_(num_cores) {}

    /**
     * Core @p core_id arrives at the current barrier episode.
     * @p on_release runs (synchronously, from the last arriver's tick)
     * when every core has arrived.
     */
    void
    arrive(int core_id, std::function<void()> on_release)
    {
        (void)core_id;
        waiting_.push_back(std::move(on_release));
        if (static_cast<int>(waiting_.size()) == numCores_) {
            // Move out first: callbacks may arrive at the next barrier.
            std::vector<std::function<void()>> release;
            release.swap(waiting_);
            for (auto &fn : release)
                fn();
        }
        MPC_ASSERT(static_cast<int>(waiting_.size()) <= numCores_,
                   "more barrier arrivals than cores");
    }

    int numCores() const { return numCores_; }

  private:
    int numCores_;
    std::vector<std::function<void()>> waiting_;
};

} // namespace mpc::cpu

#endif // MPC_CPU_SYNC_HH
