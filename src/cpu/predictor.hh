/**
 * @file
 * A small dynamic branch predictor: per-PC 2-bit saturating counters,
 * initialized by the static backward-taken / forward-not-taken rule.
 * Loop branches train quickly; loop exits mispredict, which is how
 * inner-loop trip-count effects (e.g., strip-mining's shorter inner
 * loops) show up in the timing model.
 */

#ifndef MPC_CPU_PREDICTOR_HH
#define MPC_CPU_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "kisa/isa.hh"

namespace mpc::cpu
{

class BranchPredictor
{
  public:
    explicit BranchPredictor(int entries)
        : counters_(static_cast<size_t>(entries), 0xff)
    {}

    /** Predict taken/not-taken for the branch at @p pc. */
    bool
    predict(int pc, const kisa::Instr &instr)
    {
        if (instr.op == kisa::Op::Jmp)
            return true;  // unconditional
        std::uint8_t &ctr = slot(pc);
        if (ctr == 0xff)
            ctr = instr.target <= pc ? 2 : 1;  // BTFN initialization
        return ctr >= 2;
    }

    /** Train with the actual outcome. */
    void
    update(int pc, const kisa::Instr &instr, bool taken)
    {
        if (instr.op == kisa::Op::Jmp)
            return;
        std::uint8_t &ctr = slot(pc);
        if (ctr == 0xff)
            ctr = instr.target <= pc ? 2 : 1;
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
    }

  private:
    std::uint8_t &
    slot(int pc)
    {
        return counters_[static_cast<size_t>(pc) % counters_.size()];
    }

    // 0xff = uninitialized; otherwise 0..3 saturating counter.
    std::vector<std::uint8_t> counters_;
};

} // namespace mpc::cpu

#endif // MPC_CPU_PREDICTOR_HH
