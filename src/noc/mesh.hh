/**
 * @file
 * Interconnect transports for the multiprocessor: a 2D wormhole mesh
 * with XY routing (the base CC-NUMA configuration, Table 1: 64-bit
 * links, 2 network cycles of delay per hop) and a shared split bus (the
 * Exemplar-like SMP configuration). Contention is modeled by per-link
 * occupancy timelines.
 */

#ifndef MPC_NOC_MESH_HH
#define MPC_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/eventq.hh"

namespace mpc::noc
{

/** Abstract message transport between nodes. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Send a @p flits -flit message from @p src to @p dst, starting no
     * earlier than @p start. @return the arrival tick at @p dst.
     */
    virtual Tick send(Tick start, NodeId src, NodeId dst, int flits) = 0;

    /** Flits needed for a control message (header only). */
    static constexpr int controlFlits = 1;

    /** Flits for a data message carrying @p line_bytes of data over
     *  @p flit_bytes -wide links. */
    static int
    dataFlits(int line_bytes, int flit_bytes)
    {
        return 1 + static_cast<int>(ceilDiv(line_bytes, flit_bytes));
    }
};

struct MeshConfig
{
    int flitBytes = 8;              ///< 64-bit links
    int cpuCyclesPerNetCycle = 2;   ///< 500 MHz CPU / 250 MHz mesh
    int hopDelayNetCycles = 2;      ///< per-hop flit delay (Table 1)
};

/**
 * 2D mesh with dimension-order (XY) routing. Node n sits at
 * (n % width, n / width); width is chosen as the smallest power-of-two
 * split giving a near-square grid.
 */
class Mesh : public Transport
{
  public:
    Mesh(int num_nodes, const MeshConfig &cfg);

    Tick send(Tick start, NodeId src, NodeId dst, int flits) override;

    int width() const { return width_; }
    int height() const { return height_; }

    /** Number of hops on the XY route (for tests). */
    int hopCount(NodeId src, NodeId dst) const;

    /** Aggregate link-busy ticks (utilization numerator). */
    Tick totalLinkBusy() const;

  private:
    /** Directed link index from @p node toward direction @p dir
     *  (0=+x, 1=-x, 2=+y, 3=-y). */
    size_t
    linkIndex(int node, int dir) const
    {
        return static_cast<size_t>(node) * 4 + static_cast<size_t>(dir);
    }

    int numNodes_;
    int width_;
    int height_;
    MeshConfig cfg_;
    std::vector<mem::TimelineResource> links_;
};

struct SharedBusConfig
{
    int busWidthBytes = 8;
    int cpuCyclesPerBusCycle = 3;
    Tick arbCycles = 1;             ///< per message, in bus cycles
};

/**
 * A single shared split-transaction bus connecting all nodes (SMP).
 */
class SharedBus : public Transport
{
  public:
    explicit SharedBus(const SharedBusConfig &cfg) : cfg_(cfg) {}

    Tick
    send(Tick start, NodeId src, NodeId dst, int flits) override
    {
        (void)src;
        (void)dst;
        const Tick occ = static_cast<Tick>(
            (cfg_.arbCycles + flits) * cfg_.cpuCyclesPerBusCycle);
        const Tick begin = bus_.reserve(start, occ);
        return begin + occ;
    }

    Tick busyTicks() const { return bus_.busyTicks(); }

  private:
    SharedBusConfig cfg_;
    mem::TimelineResource bus_;
};

} // namespace mpc::noc

#endif // MPC_NOC_MESH_HH
