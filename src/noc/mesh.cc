#include "noc/mesh.hh"

#include "common/logging.hh"

namespace mpc::noc
{

Mesh::Mesh(int num_nodes, const MeshConfig &cfg)
    : numNodes_(num_nodes), cfg_(cfg)
{
    MPC_ASSERT(num_nodes >= 1, "mesh needs at least one node");
    // Near-square factorization: largest w <= sqrt(n) dividing n.
    width_ = 1;
    for (int w = 1; w * w <= num_nodes; ++w)
        if (num_nodes % w == 0)
            width_ = num_nodes / w;
    height_ = num_nodes / width_;
    links_.resize(static_cast<size_t>(num_nodes) * 4);
}

int
Mesh::hopCount(NodeId src, NodeId dst) const
{
    const int sx = src % width_, sy = src / width_;
    const int dx = dst % width_, dy = dst / width_;
    return std::abs(sx - dx) + std::abs(sy - dy);
}

Tick
Mesh::send(Tick start, NodeId src, NodeId dst, int flits)
{
    MPC_ASSERT(src >= 0 && src < numNodes_ && dst >= 0 && dst < numNodes_,
               "node id out of range");
    if (src == dst)
        return start;  // node-internal transfer

    const Tick occ = static_cast<Tick>(flits) * cfg_.cpuCyclesPerNetCycle;
    const Tick hop_delay = static_cast<Tick>(cfg_.hopDelayNetCycles) *
                           cfg_.cpuCyclesPerNetCycle;

    int x = src % width_, y = src / width_;
    const int dx = dst % width_, dy = dst / width_;
    Tick t = start;
    int node = src;
    while (x != dx || y != dy) {
        int dir;
        if (x < dx) {
            dir = 0;
            ++x;
        } else if (x > dx) {
            dir = 1;
            --x;
        } else if (y < dy) {
            dir = 2;
            ++y;
        } else {
            dir = 3;
            --y;
        }
        // Serialize the message onto this link, then incur the hop delay.
        const Tick begin = links_[linkIndex(node, dir)].reserve(t, occ);
        t = begin + occ + hop_delay;
        node = y * width_ + x;
    }
    return t;
}

Tick
Mesh::totalLinkBusy() const
{
    Tick busy = 0;
    for (const auto &link : links_)
        busy += link.busyTicks();
    return busy;
}

} // namespace mpc::noc
