/**
 * @file
 * Loop-nest intermediate representation.
 *
 * Kernels are the unit the clustering framework operates on: a set of
 * arrays (row-major, 8-byte elements), scalar variables, and a
 * statement tree of counted loops, pointer-chase loops, assignments,
 * and synchronization statements. The analysis passes (src/analysis)
 * classify memory references; the transformations (src/transform)
 * rewrite the tree; the code generator (src/codegen) lowers it to KISA.
 */

#ifndef MPC_IR_KERNEL_HH
#define MPC_IR_KERNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mpc::ir
{

/** Element type of arrays and scalars. */
enum class ScalType { I64, F64 };

/**
 * A dense row-major array of 8-byte elements. The last dimension is
 * contiguous in memory.
 */
struct Array
{
    std::string name;
    ScalType elem = ScalType::F64;
    std::vector<std::int64_t> dims;
    Addr base = 0;      ///< assigned by layoutArrays()

    std::int64_t
    numElems() const
    {
        std::int64_t n = 1;
        for (auto d : dims)
            n *= d;
        return n;
    }

    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(numElems()) * 8;
    }

    /** Row-major linear index of the given subscripts. */
    std::int64_t linearIndex(const std::vector<std::int64_t> &subs) const;

    /** Byte address of the given element (after layout). */
    Addr addrOf(const std::vector<std::int64_t> &subs) const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Binary operators. */
enum class BinOp { Add, Sub, Mul, Div, Mod, Min, Max };

/** Unary operators. */
enum class UnOp { Neg, Sqrt, Abs, Trunc /* f64 -> i64 */ };

/**
 * Expression node (tagged union style; see the `kind` field for which
 * members are meaningful).
 */
struct Expr
{
    enum class Kind {
        IntConst,   ///< ival
        FloatConst, ///< fval
        VarRef,     ///< var (scalar variable or loop index)
        ArrayRef,   ///< array + children = subscripts; refId
        Deref,      ///< children[0] = pointer expr; ival = byte offset;
                    ///< refId (pointer-chasing field access)
        Bin,        ///< bop + children[0..1]
        Un,         ///< uop + children[0]
    };

    Kind kind = Kind::IntConst;
    std::int64_t ival = 0;
    double fval = 0.0;
    std::string var;
    const Array *array = nullptr;
    BinOp bop = BinOp::Add;
    UnOp uop = UnOp::Neg;
    std::vector<ExprPtr> children;

    /** Value type of a Deref (pointer loads are I64; payload fields
     *  may be F64). Meaningless for other kinds. */
    ScalType vtype = ScalType::I64;

    /**
     * Stable identity of a static memory reference, preserved across
     * transformation cloning so that profiled miss rates (P_m) and
     * simulator statistics can be attributed to the original reference.
     * Assigned by assignRefIds(); -1 until then.
     */
    int refId = -1;

    bool isMemRef() const
    {
        return kind == Kind::ArrayRef || kind == Kind::Deref;
    }

    ExprPtr clone() const;
    std::string toString() const;
};

// --- expression factories --------------------------------------------
ExprPtr iconst(std::int64_t v);
ExprPtr fconst(double v);
ExprPtr varref(std::string name);
ExprPtr aref(const Array *array, std::vector<ExprPtr> subs);
ExprPtr deref(ExprPtr ptr, std::int64_t byte_offset,
              ScalType vtype = ScalType::I64);
ExprPtr bin(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr un(UnOp op, ExprPtr a);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr divx(ExprPtr a, ExprPtr b);
ExprPtr minx(ExprPtr a, ExprPtr b);
ExprPtr modx(ExprPtr a, ExprPtr b);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/**
 * Statement node.
 */
struct Stmt
{
    enum class Kind {
        Assign,     ///< lhs = rhs (lhs: VarRef, ArrayRef, or Deref)
        Loop,       ///< for (var = lo; var < hi; var += step) body
        PtrLoop,    ///< for (var = lo; var != 0; var = *(var+step)) body
        While,      ///< while (lo != 0) body  (jammed pointer chases)
        Prefetch,   ///< nonbinding prefetch of lhs (a memory ref)
        Barrier,    ///< multiprocessor barrier
        FlagSet,    ///< store rhs to flag location lhs (release)
        FlagWait,   ///< wait until value at lhs >= rhs (acquire)
    };

    Kind kind = Kind::Assign;

    // Assign / FlagSet / FlagWait
    ExprPtr lhs;
    ExprPtr rhs;

    // Loop / PtrLoop
    std::string var;
    ExprPtr lo;                 ///< PtrLoop: initial pointer expression
    ExprPtr hi;
    std::int64_t step = 1;      ///< PtrLoop: byte offset of next field
    std::vector<StmtPtr> body;

    /**
     * Loop marked safe for iteration reordering and multiprocessor
     * partitioning (the paper assumes such annotations for the
     * pointer-based codes Mp3d and MST).
     */
    bool parallel = false;

    /** Free marker for driver passes (copied by clone). */
    int mark = 0;

    /** Loop bounds already rewritten to per-processor ranges; codegen
     *  must not partition it again. */
    bool prePartitioned = false;

    StmtPtr clone() const;
    std::string toString(int indent = 0) const;
};

// --- statement factories ---------------------------------------------
StmtPtr assign(ExprPtr lhs, ExprPtr rhs);
StmtPtr forLoop(std::string var, ExprPtr lo, ExprPtr hi,
                std::vector<StmtPtr> body, std::int64_t step = 1,
                bool parallel = false);
StmtPtr ptrLoop(std::string var, ExprPtr init, std::int64_t next_offset,
                std::vector<StmtPtr> body);
StmtPtr whileLoop(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr prefetch(ExprPtr ref);
StmtPtr barrier();
StmtPtr flagSet(ExprPtr loc, ExprPtr value);
StmtPtr flagWait(ExprPtr loc, ExprPtr value);

/**
 * A complete kernel.
 */
struct Kernel
{
    Kernel() = default;
    // Copying must go through clone() (array pointers need remapping).
    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;
    Kernel(Kernel &&) = default;
    Kernel &operator=(Kernel &&) = default;

    std::string name;
    std::deque<Array> arrays;                   ///< stable addresses
    std::map<std::string, ScalType> scalars;
    std::vector<StmtPtr> body;

    /** Declare an array; returned pointer stays valid. */
    Array *addArray(std::string name, ScalType elem,
                    std::vector<std::int64_t> dims);

    /** Declare a scalar variable (loop indices are implicit). */
    void declareScalar(std::string name, ScalType type);

    Array *findArray(const std::string &name);
    const Array *findArray(const std::string &name) const;

    Kernel clone() const;
    std::string toString() const;
};

/**
 * Assign stable refIds to memory references that do not have one yet
 * (preorder). @return the number of distinct ids in the kernel.
 */
int assignRefIds(Kernel &kernel);

/**
 * Assign base addresses to all arrays: consecutive, line-aligned, with
 * @p gap_bytes of padding between arrays.
 */
void layoutArrays(Kernel &kernel, Addr base = 0x10000000,
                  Addr align = 64, Addr gap_bytes = 4096);

/** Walk all expressions in a statement subtree (preorder). */
void walkExprs(const Stmt &stmt, const std::function<void(const Expr &)> &fn);
void walkExprs(Stmt &stmt, const std::function<void(Expr &)> &fn);

/** Walk all statements in a subtree (preorder, including @p stmt). */
void walkStmts(Stmt &stmt, const std::function<void(Stmt &)> &fn);
void walkStmts(const Stmt &stmt,
               const std::function<void(const Stmt &)> &fn);

} // namespace mpc::ir

#endif // MPC_IR_KERNEL_HH
