#include "ir/eval.hh"

#include <cmath>

#include "common/logging.hh"

namespace mpc::ir
{

Evaluator::Evaluator(const Kernel &kernel, kisa::MemoryImage &mem)
    : kernel_(kernel), mem_(mem)
{
    for (const auto &array : kernel_.arrays)
        MPC_ASSERT(array.base != 0, "evaluate before layoutArrays");
}

Addr
Evaluator::evalAddress(const Expr &ref)
{
    if (ref.kind == Expr::Kind::ArrayRef) {
        std::int64_t index = 0;
        for (size_t d = 0; d < ref.children.size(); ++d) {
            const std::int64_t sub = evalExpr(*ref.children[d]).asInt();
            MPC_ASSERT(sub >= 0 && sub < ref.array->dims[d],
                       ref.array->name.c_str());
            index = index * ref.array->dims[d] + sub;
        }
        return ref.array->base + static_cast<Addr>(index) * 8;
    }
    MPC_ASSERT(ref.kind == Expr::Kind::Deref, "not a memory reference");
    const std::int64_t ptr = evalExpr(*ref.children[0]).asInt();
    return static_cast<Addr>(ptr + ref.ival);
}

Evaluator::Value
Evaluator::evalExpr(const Expr &expr)
{
    Value v;
    switch (expr.kind) {
      case Expr::Kind::IntConst:
        v.i = expr.ival;
        return v;
      case Expr::Kind::FloatConst:
        v.isFp = true;
        v.f = expr.fval;
        return v;
      case Expr::Kind::VarRef: {
        const auto it = vars_.find(expr.var);
        if (it != vars_.end())
            return it->second;
        const auto st = kernel_.scalars.find(expr.var);
        if (st != kernel_.scalars.end() && st->second == ScalType::F64)
            v.isFp = true;
        return v;
      }
      case Expr::Kind::ArrayRef: {
        const Addr addr = evalAddress(expr);
        if (expr.array->elem == ScalType::F64) {
            v.isFp = true;
            v.f = mem_.ldF64(addr);
        } else {
            v.i = static_cast<std::int64_t>(mem_.ld64(addr));
        }
        return v;
      }
      case Expr::Kind::Deref: {
        const Addr addr = evalAddress(expr);
        if (expr.vtype == ScalType::F64) {
            v.isFp = true;
            v.f = mem_.ldF64(addr);
        } else {
            v.i = static_cast<std::int64_t>(mem_.ld64(addr));
        }
        return v;
      }
      case Expr::Kind::Bin: {
        const Value a = evalExpr(*expr.children[0]);
        const Value b = evalExpr(*expr.children[1]);
        if (a.isFp || b.isFp) {
            v.isFp = true;
            const double x = a.asFp(), y = b.asFp();
            switch (expr.bop) {
              case BinOp::Add: v.f = x + y; break;
              case BinOp::Sub: v.f = x - y; break;
              case BinOp::Mul: v.f = x * y; break;
              case BinOp::Div: v.f = x / y; break;
              case BinOp::Mod: v.f = std::fmod(x, y); break;
              case BinOp::Min: v.f = std::min(x, y); break;
              case BinOp::Max: v.f = std::max(x, y); break;
            }
        } else {
            const std::int64_t x = a.i, y = b.i;
            switch (expr.bop) {
              case BinOp::Add: v.i = x + y; break;
              case BinOp::Sub: v.i = x - y; break;
              case BinOp::Mul: v.i = x * y; break;
              case BinOp::Div: v.i = y != 0 ? x / y : 0; break;
              case BinOp::Mod: v.i = y != 0 ? x % y : 0; break;
              case BinOp::Min: v.i = std::min(x, y); break;
              case BinOp::Max: v.i = std::max(x, y); break;
            }
        }
        return v;
      }
      case Expr::Kind::Un: {
        const Value a = evalExpr(*expr.children[0]);
        switch (expr.uop) {
          case UnOp::Neg:
            if (a.isFp) {
                v.isFp = true;
                v.f = -a.f;
            } else {
                v.i = -a.i;
            }
            return v;
          case UnOp::Sqrt:
            v.isFp = true;
            v.f = std::sqrt(a.asFp());
            return v;
          case UnOp::Abs:
            if (a.isFp) {
                v.isFp = true;
                v.f = std::fabs(a.f);
            } else {
                v.i = std::abs(a.i);
            }
            return v;
          case UnOp::Trunc:
            v.i = a.asInt();
            return v;
        }
        return v;
      }
    }
    panic("evalExpr: bad expression kind");
}

void
Evaluator::storeTo(const Expr &lhs, Value value)
{
    if (lhs.kind == Expr::Kind::VarRef) {
        // Keep the declared type of the variable if any.
        const auto st = kernel_.scalars.find(lhs.var);
        if (st != kernel_.scalars.end()) {
            Value coerced;
            if (st->second == ScalType::F64) {
                coerced.isFp = true;
                coerced.f = value.asFp();
            } else {
                coerced.i = value.asInt();
            }
            vars_[lhs.var] = coerced;
        } else {
            vars_[lhs.var] = value;
        }
        return;
    }
    const Addr addr = evalAddress(lhs);
    const ScalType type = lhs.kind == Expr::Kind::ArrayRef
                              ? lhs.array->elem
                              : lhs.vtype;
    if (type == ScalType::F64)
        mem_.stF64(addr, value.asFp());
    else
        mem_.st64(addr, static_cast<std::uint64_t>(value.asInt()));
}

void
Evaluator::execStmt(const Stmt &stmt)
{
    ++stmts_;
    if (stmts_ > (1ull << 32))
        fatal("Evaluator: statement budget exceeded - runaway kernel?");
    switch (stmt.kind) {
      case Stmt::Kind::Assign:
        storeTo(*stmt.lhs, evalExpr(*stmt.rhs));
        break;
      case Stmt::Kind::Loop: {
        const std::int64_t lo = evalExpr(*stmt.lo).asInt();
        Value iv;
        iv.i = lo;
        vars_[stmt.var] = iv;
        for (std::int64_t i = lo;; i += stmt.step) {
            // Re-evaluate the bound each iteration (it may reference
            // variables mutated in the body, e.g. min-jammed loops).
            const std::int64_t hi = evalExpr(*stmt.hi).asInt();
            if (stmt.step > 0 ? i >= hi : i <= hi)
                break;
            vars_[stmt.var].i = i;
            for (const auto &child : stmt.body)
                execStmt(*child);
        }
        break;
      }
      case Stmt::Kind::PtrLoop: {
        Value p;
        p.i = evalExpr(*stmt.lo).asInt();
        vars_[stmt.var] = p;
        while (vars_[stmt.var].i != 0) {
            for (const auto &child : stmt.body)
                execStmt(*child);
            const Addr next = static_cast<Addr>(vars_[stmt.var].i +
                                                stmt.step);
            vars_[stmt.var].i =
                static_cast<std::int64_t>(mem_.ld64(next));
        }
        break;
      }
      case Stmt::Kind::While:
        while (evalExpr(*stmt.lo).asInt() != 0) {
            for (const auto &child : stmt.body)
                execStmt(*child);
        }
        break;
      case Stmt::Kind::Prefetch:
        break;  // nonbinding: no architectural effect
      case Stmt::Kind::Barrier:
        break;  // single-threaded reference semantics
      case Stmt::Kind::FlagSet:
        storeTo(*stmt.lhs, evalExpr(*stmt.rhs));
        break;
      case Stmt::Kind::FlagWait:
        break;
    }
}

void
Evaluator::run()
{
    for (const auto &stmt : kernel_.body)
        execStmt(*stmt);
}

std::int64_t
Evaluator::intVar(const std::string &name) const
{
    const auto it = vars_.find(name);
    return it == vars_.end() ? 0 : it->second.asInt();
}

double
Evaluator::fpVar(const std::string &name) const
{
    const auto it = vars_.find(name);
    return it == vars_.end() ? 0.0 : it->second.asFp();
}

std::uint64_t
checksumArrays(const Kernel &kernel, const kisa::MemoryImage &mem)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const auto &array : kernel.arrays) {
        for (std::int64_t e = 0; e < array.numElems(); ++e) {
            const std::uint64_t word =
                mem.ld64(array.base + static_cast<Addr>(e) * 8);
            hash ^= word;
            hash *= 0x100000001b3ull;
        }
    }
    return hash;
}

void
fillArraysSynthetic(const Kernel &kernel, kisa::MemoryImage &mem)
{
    int array_index = 0;
    for (const auto &array : kernel.arrays) {
        if (array.elem == ScalType::F64) {
            const std::int64_t n = array.numElems();
            for (std::int64_t i = 0; i < n; ++i) {
                const double v =
                    0.5 +
                    static_cast<double>((i * 37 + array_index * 101) %
                                        251) /
                        251.0;
                mem.stF64(array.base + static_cast<Addr>(i) * 8, v);
            }
        }
        ++array_index;
    }
}

void
initKernelMemory(const Kernel &kernel, kisa::MemoryImage &mem,
                 const std::function<void(kisa::MemoryImage &)> &init)
{
    if (init)
        init(mem);
    else
        fillArraysSynthetic(kernel, mem);
}

} // namespace mpc::ir
