/**
 * @file
 * Reference evaluator for IR kernels, executing directly against a
 * KISA memory image. This is the semantic golden model at the IR
 * layer: transformation tests compare base-vs-transformed kernel
 * results here, and codegen tests compare this evaluator against the
 * KISA interpreter running the lowered program (a three-way check).
 *
 * Multiprocessor synchronization statements are no-ops here (the
 * evaluator runs a kernel single-threaded, which is the sequential
 * semantics those kernels are data-race-free refinements of).
 */

#ifndef MPC_IR_EVAL_HH
#define MPC_IR_EVAL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ir/kernel.hh"
#include "kisa/memimage.hh"

namespace mpc::ir
{

/**
 * Executes a kernel's statement tree.
 */
class Evaluator
{
  public:
    /** Arrays must be laid out (layoutArrays) before evaluation. */
    Evaluator(const Kernel &kernel, kisa::MemoryImage &mem);

    /** Run the kernel body to completion. */
    void run();

    /** Pre-seed an integer scalar before run() (e.g. __procid). */
    void
    setVar(const std::string &name, std::int64_t value)
    {
        vars_[name] = Value{.isFp = false, .i = value, .f = 0.0};
    }

    /** Scalar values after run() (0 if never assigned). */
    std::int64_t intVar(const std::string &name) const;
    double fpVar(const std::string &name) const;

    /** Dynamic statement count (for loop-trip sanity checks). */
    std::uint64_t stmtCount() const { return stmts_; }

  private:
    struct Value
    {
        bool isFp = false;
        std::int64_t i = 0;
        double f = 0.0;

        double asFp() const { return isFp ? f : static_cast<double>(i); }
        std::int64_t
        asInt() const
        {
            return isFp ? static_cast<std::int64_t>(f) : i;
        }
    };

    Value evalExpr(const Expr &expr);
    Addr evalAddress(const Expr &ref);
    void execStmt(const Stmt &stmt);
    void storeTo(const Expr &lhs, Value value);

    const Kernel &kernel_;
    kisa::MemoryImage &mem_;
    std::map<std::string, Value> vars_;
    std::uint64_t stmts_ = 0;
};

/**
 * Deterministic digest of all array contents of @p kernel in @p mem
 * (FNV-1a over the raw words). Used to compare kernel results.
 */
std::uint64_t checksumArrays(const Kernel &kernel,
                             const kisa::MemoryImage &mem);

/**
 * Deterministic, varied fill of all F64 arrays of @p kernel (arrays
 * must be laid out); I64 arrays stay zero — zero is the safe value for
 * anything used as an index or pointer. This is the fallback fill for
 * equivalence checks on kernels without a real initializer.
 */
void fillArraysSynthetic(const Kernel &kernel, kisa::MemoryImage &mem);

/**
 * Initialize @p mem for executing @p kernel: the workload's real
 * initializer when provided, else fillArraysSynthetic. The single
 * helper shared by the pipeline verifier, the functional benches, and
 * the differential tests, so every execution tier starts from an
 * identical image.
 */
void initKernelMemory(
    const Kernel &kernel, kisa::MemoryImage &mem,
    const std::function<void(kisa::MemoryImage &)> &init = {});

} // namespace mpc::ir

#endif // MPC_IR_EVAL_HH
