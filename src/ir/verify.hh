/**
 * @file
 * Structural verifier for IR kernels. Checks the invariants every
 * transformation must preserve, so a broken pass is caught at the
 * pass boundary instead of as a mysterious codegen or simulator
 * failure three layers later:
 *
 *  - the statement tree is a tree (every Stmt owned exactly once, no
 *    null statement or expression links, expected operand arity);
 *  - loops are well formed (named index, bounds present, nonzero step)
 *    and no loop shadows the index variable of an enclosing loop;
 *  - every ArrayRef points at an array owned by the kernel and carries
 *    exactly one subscript per dimension;
 *  - every memory reference has an assigned refId (>= 0), and — when
 *    @ref VerifyOptions::requireDenseRefIds is set, which the pass
 *    pipeline does for its *input* kernel — the refIds are dense
 *    (0..max with no gaps; transformations may later erase references,
 *    so density is only an invariant of freshly assigned kernels).
 *
 * The verifier is pure and read-only; it never mutates the kernel.
 */

#ifndef MPC_IR_VERIFY_HH
#define MPC_IR_VERIFY_HH

#include <string>

#include "ir/kernel.hh"

namespace mpc::ir
{

struct VerifyOptions
{
    /** Require every memory reference to have refId >= 0 (set after
     *  assignRefIds; the pass pipeline runs with this on). */
    bool requireRefIds = true;

    /** Additionally require refIds 0..max with no gaps (input kernels
     *  straight out of assignRefIds). */
    bool requireDenseRefIds = false;
};

/**
 * Check the structural invariants of @p kernel. @return an empty
 * string when the kernel is well formed, else a one-line description
 * of the first violation found.
 */
std::string verify(const Kernel &kernel, const VerifyOptions &options = {});

} // namespace mpc::ir

#endif // MPC_IR_VERIFY_HH
