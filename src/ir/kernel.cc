#include "ir/kernel.hh"

#include <functional>
#include <sstream>

#include "common/logging.hh"

namespace mpc::ir
{

std::int64_t
Array::linearIndex(const std::vector<std::int64_t> &subs) const
{
    MPC_ASSERT(subs.size() == dims.size(), "subscript count mismatch");
    std::int64_t idx = 0;
    for (size_t d = 0; d < dims.size(); ++d) {
        MPC_ASSERT(subs[d] >= 0 && subs[d] < dims[d],
                   "subscript out of bounds");
        idx = idx * dims[d] + subs[d];
    }
    return idx;
}

Addr
Array::addrOf(const std::vector<std::int64_t> &subs) const
{
    return base + static_cast<Addr>(linearIndex(subs)) * 8;
}

ExprPtr
Expr::clone() const
{
    auto copy = std::make_unique<Expr>();
    copy->kind = kind;
    copy->ival = ival;
    copy->fval = fval;
    copy->var = var;
    copy->array = array;
    copy->bop = bop;
    copy->uop = uop;
    copy->vtype = vtype;
    copy->refId = refId;
    for (const auto &child : children)
        copy->children.push_back(child->clone());
    return copy;
}

std::string
Expr::toString() const
{
    switch (kind) {
      case Kind::IntConst:
        return std::to_string(ival);
      case Kind::FloatConst:
        return strprintf("%g", fval);
      case Kind::VarRef:
        return var;
      case Kind::ArrayRef: {
        std::string s = array->name;
        for (const auto &sub : children)
            s += "[" + sub->toString() + "]";
        return s;
      }
      case Kind::Deref:
        return strprintf("*(%s + %lld)", children[0]->toString().c_str(),
                         static_cast<long long>(ival));
      case Kind::Bin: {
        const char *op = "?";
        switch (bop) {
          case BinOp::Add: op = "+"; break;
          case BinOp::Sub: op = "-"; break;
          case BinOp::Mul: op = "*"; break;
          case BinOp::Div: op = "/"; break;
          case BinOp::Mod: op = "%"; break;
          case BinOp::Min: op = "min"; break;
          case BinOp::Max: op = "max"; break;
        }
        if (bop == BinOp::Min || bop == BinOp::Max) {
            return strprintf("%s(%s, %s)", op,
                             children[0]->toString().c_str(),
                             children[1]->toString().c_str());
        }
        return strprintf("(%s %s %s)", children[0]->toString().c_str(), op,
                         children[1]->toString().c_str());
      }
      case Kind::Un: {
        const char *op = uop == UnOp::Neg      ? "-"
                         : uop == UnOp::Sqrt ? "sqrt"
                         : uop == UnOp::Abs  ? "abs"
                                             : "trunc";
        return strprintf("%s(%s)", op, children[0]->toString().c_str());
      }
    }
    return "?";
}

ExprPtr
iconst(std::int64_t v)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::IntConst;
    e->ival = v;
    return e;
}

ExprPtr
fconst(double v)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::FloatConst;
    e->fval = v;
    return e;
}

ExprPtr
varref(std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::VarRef;
    e->var = std::move(name);
    return e;
}

ExprPtr
aref(const Array *array, std::vector<ExprPtr> subs)
{
    MPC_ASSERT(array != nullptr, "aref of null array");
    MPC_ASSERT(subs.size() == array->dims.size(),
               "aref subscript count mismatch");
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::ArrayRef;
    e->array = array;
    e->children = std::move(subs);
    return e;
}

ExprPtr
deref(ExprPtr ptr, std::int64_t byte_offset, ScalType vtype)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Deref;
    e->ival = byte_offset;
    e->vtype = vtype;
    e->children.push_back(std::move(ptr));
    return e;
}

ExprPtr
bin(BinOp op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Bin;
    e->bop = op;
    e->children.push_back(std::move(a));
    e->children.push_back(std::move(b));
    return e;
}

ExprPtr
un(UnOp op, ExprPtr a)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Un;
    e->uop = op;
    e->children.push_back(std::move(a));
    return e;
}

ExprPtr add(ExprPtr a, ExprPtr b) { return bin(BinOp::Add, std::move(a), std::move(b)); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return bin(BinOp::Sub, std::move(a), std::move(b)); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return bin(BinOp::Mul, std::move(a), std::move(b)); }
ExprPtr divx(ExprPtr a, ExprPtr b) { return bin(BinOp::Div, std::move(a), std::move(b)); }
ExprPtr minx(ExprPtr a, ExprPtr b) { return bin(BinOp::Min, std::move(a), std::move(b)); }
ExprPtr modx(ExprPtr a, ExprPtr b) { return bin(BinOp::Mod, std::move(a), std::move(b)); }

StmtPtr
Stmt::clone() const
{
    auto copy = std::make_unique<Stmt>();
    copy->kind = kind;
    if (lhs)
        copy->lhs = lhs->clone();
    if (rhs)
        copy->rhs = rhs->clone();
    copy->var = var;
    if (lo)
        copy->lo = lo->clone();
    if (hi)
        copy->hi = hi->clone();
    copy->step = step;
    copy->parallel = parallel;
    copy->mark = mark;
    copy->prePartitioned = prePartitioned;
    for (const auto &stmt : body)
        copy->body.push_back(stmt->clone());
    return copy;
}

std::string
Stmt::toString(int indent) const
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    std::ostringstream out;
    switch (kind) {
      case Kind::Assign:
        out << pad << lhs->toString() << " = " << rhs->toString() << "\n";
        break;
      case Kind::Loop:
        out << pad << "for (" << var << " = " << lo->toString() << "; "
            << var << (step < 0 ? " > " : " < ") << hi->toString()
            << "; " << var << " += " << step << ")"
            << (parallel ? " [parallel]" : "") << "\n";
        for (const auto &s : body)
            out << s->toString(indent + 1);
        break;
      case Kind::PtrLoop:
        out << pad << "for (" << var << " = " << lo->toString() << "; "
            << var << " != 0; " << var << " = *(" << var << " + " << step
            << "))" << (parallel ? " [parallel]" : "") << "\n";
        for (const auto &s : body)
            out << s->toString(indent + 1);
        break;
      case Kind::While:
        out << pad << "while (" << lo->toString() << " != 0)\n";
        for (const auto &s : body)
            out << s->toString(indent + 1);
        break;
      case Kind::Prefetch:
        out << pad << "prefetch " << lhs->toString() << "\n";
        break;
      case Kind::Barrier:
        out << pad << "barrier\n";
        break;
      case Kind::FlagSet:
        out << pad << "flag_set " << lhs->toString() << " = "
            << rhs->toString() << "\n";
        break;
      case Kind::FlagWait:
        out << pad << "flag_wait " << lhs->toString() << " >= "
            << rhs->toString() << "\n";
        break;
    }
    return out.str();
}

StmtPtr
assign(ExprPtr lhs, ExprPtr rhs)
{
    MPC_ASSERT(lhs->kind == Expr::Kind::VarRef || lhs->isMemRef(),
               "assign target must be an lvalue");
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Assign;
    s->lhs = std::move(lhs);
    s->rhs = std::move(rhs);
    return s;
}

StmtPtr
forLoop(std::string var, ExprPtr lo, ExprPtr hi,
        std::vector<StmtPtr> body, std::int64_t step, bool parallel)
{
    MPC_ASSERT(step != 0, "zero loop step");
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Loop;
    s->var = std::move(var);
    s->lo = std::move(lo);
    s->hi = std::move(hi);
    s->step = step;
    s->body = std::move(body);
    s->parallel = parallel;
    return s;
}

StmtPtr
ptrLoop(std::string var, ExprPtr init, std::int64_t next_offset,
        std::vector<StmtPtr> body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::PtrLoop;
    s->var = var;
    s->lo = std::move(init);
    s->step = next_offset;
    s->body = std::move(body);
    // Materialize the loop-advance load `var = *(var + next_offset)` as
    // an expression so analysis sees the pointer-chase memory reference
    // (an address recurrence of distance 1) and codegen can lower it.
    s->rhs = deref(varref(std::move(var)), next_offset);
    return s;
}

StmtPtr
whileLoop(ExprPtr cond, std::vector<StmtPtr> body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::While;
    s->lo = std::move(cond);
    s->body = std::move(body);
    return s;
}

StmtPtr
prefetch(ExprPtr ref)
{
    MPC_ASSERT(ref->isMemRef(), "prefetch target must be a memory ref");
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Prefetch;
    s->lhs = std::move(ref);
    return s;
}

StmtPtr
barrier()
{
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Barrier;
    return s;
}

StmtPtr
flagSet(ExprPtr loc, ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::FlagSet;
    s->lhs = std::move(loc);
    s->rhs = std::move(value);
    return s;
}

StmtPtr
flagWait(ExprPtr loc, ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::FlagWait;
    s->lhs = std::move(loc);
    s->rhs = std::move(value);
    return s;
}

Array *
Kernel::addArray(std::string name, ScalType elem,
                 std::vector<std::int64_t> dims)
{
    arrays.push_back(Array{std::move(name), elem, std::move(dims), 0});
    return &arrays.back();
}

void
Kernel::declareScalar(std::string name, ScalType type)
{
    scalars[std::move(name)] = type;
}

Array *
Kernel::findArray(const std::string &name)
{
    for (auto &array : arrays)
        if (array.name == name)
            return &array;
    return nullptr;
}

const Array *
Kernel::findArray(const std::string &name) const
{
    return const_cast<Kernel *>(this)->findArray(name);
}

Kernel
Kernel::clone() const
{
    Kernel copy;
    copy.name = name;
    copy.arrays = arrays;   // values; remap pointers below
    copy.scalars = scalars;
    for (const auto &stmt : body)
        copy.body.push_back(stmt->clone());
    // Remap array pointers in the cloned tree to the cloned arrays.
    for (auto &stmt : copy.body) {
        walkExprs(*stmt, [&copy](Expr &e) {
            if (e.kind == Expr::Kind::ArrayRef)
                e.array = copy.findArray(e.array->name);
        });
    }
    return copy;
}

std::string
Kernel::toString() const
{
    std::ostringstream out;
    out << "kernel " << name << "\n";
    for (const auto &array : arrays) {
        out << "  array " << array.name << "[";
        for (size_t d = 0; d < array.dims.size(); ++d)
            out << (d ? "," : "") << array.dims[d];
        out << "] " << (array.elem == ScalType::F64 ? "f64" : "i64")
            << "\n";
    }
    for (const auto &stmt : body)
        out << stmt->toString(1);
    return out.str();
}

namespace
{

void
walkExprTree(Expr &expr, const std::function<void(Expr &)> &fn)
{
    fn(expr);
    for (auto &child : expr.children)
        walkExprTree(*child, fn);
}

} // namespace

void
walkExprs(Stmt &stmt, const std::function<void(Expr &)> &fn)
{
    walkStmts(stmt, [&fn](Stmt &s) {
        for (Expr *root : {s.lhs.get(), s.rhs.get(), s.lo.get(),
                           s.hi.get()}) {
            if (root != nullptr)
                walkExprTree(*root, fn);
        }
    });
}

void
walkExprs(const Stmt &stmt, const std::function<void(const Expr &)> &fn)
{
    walkExprs(const_cast<Stmt &>(stmt),
              [&fn](Expr &e) { fn(static_cast<const Expr &>(e)); });
}

void
walkStmts(Stmt &stmt, const std::function<void(Stmt &)> &fn)
{
    fn(stmt);
    for (auto &child : stmt.body)
        walkStmts(*child, fn);
}

void
walkStmts(const Stmt &stmt, const std::function<void(const Stmt &)> &fn)
{
    walkStmts(const_cast<Stmt &>(stmt),
              [&fn](Stmt &s) { fn(static_cast<const Stmt &>(s)); });
}

int
assignRefIds(Kernel &kernel)
{
    int next = 0;
    // First find the maximum already-assigned id.
    for (auto &stmt : kernel.body) {
        walkExprs(*stmt, [&next](Expr &e) {
            if (e.isMemRef() && e.refId >= next)
                next = e.refId + 1;
        });
    }
    for (auto &stmt : kernel.body) {
        walkExprs(*stmt, [&next](Expr &e) {
            if (e.isMemRef() && e.refId < 0)
                e.refId = next++;
        });
    }
    return next;
}

void
layoutArrays(Kernel &kernel, Addr base, Addr align, Addr gap_bytes)
{
    Addr cursor = base;
    for (auto &array : kernel.arrays) {
        cursor = alignUp(cursor, align);
        array.base = cursor;
        cursor += array.sizeBytes() + gap_bytes;
    }
}

} // namespace mpc::ir
