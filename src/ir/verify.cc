#include "ir/verify.hh"

#include <set>
#include <vector>

#include "common/logging.hh"

namespace mpc::ir
{

namespace
{

/** Walk state threaded through the recursive checks. */
struct Checker
{
    Checker(const Kernel &k, const VerifyOptions &o)
        : kernel(k), opts(o)
    {
    }

    const Kernel &kernel;
    const VerifyOptions &opts;
    std::set<const Stmt *> seen;        ///< ownership: each Stmt once
    std::vector<std::string> loopVars;  ///< enclosing loop index stack
    std::set<int> refIds;
    std::string error;                  ///< first violation

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what;
        return false;
    }

    bool
    ownedArray(const Array *array) const
    {
        for (const auto &a : kernel.arrays)
            if (&a == array)
                return true;
        return false;
    }

    bool
    checkExpr(const Expr &expr)
    {
        for (const auto &child : expr.children)
            if (child == nullptr)
                return fail("null expression child in " +
                            std::string("expr kind ") +
                            std::to_string(static_cast<int>(expr.kind)));
        switch (expr.kind) {
          case Expr::Kind::IntConst:
          case Expr::Kind::FloatConst:
            break;
          case Expr::Kind::VarRef:
            if (expr.var.empty())
                return fail("VarRef with empty variable name");
            break;
          case Expr::Kind::ArrayRef:
            if (expr.array == nullptr)
                return fail("ArrayRef with null array");
            if (!ownedArray(expr.array))
                return fail("ArrayRef to array '" + expr.array->name +
                            "' not owned by the kernel");
            if (expr.children.size() != expr.array->dims.size())
                return fail("ArrayRef to '" + expr.array->name + "' has " +
                            std::to_string(expr.children.size()) +
                            " subscripts for " +
                            std::to_string(expr.array->dims.size()) +
                            " dimensions");
            break;
          case Expr::Kind::Deref:
            if (expr.children.size() != 1)
                return fail("Deref without exactly one pointer operand");
            break;
          case Expr::Kind::Bin:
            if (expr.children.size() != 2)
                return fail("Bin without exactly two operands");
            break;
          case Expr::Kind::Un:
            if (expr.children.size() != 1)
                return fail("Un without exactly one operand");
            break;
        }
        if (expr.isMemRef()) {
            if (opts.requireRefIds && expr.refId < 0)
                return fail("memory reference without an assigned refId "
                            "(run assignRefIds)");
            if (expr.refId >= 0)
                refIds.insert(expr.refId);
        }
        for (const auto &child : expr.children)
            if (!checkExpr(*child))
                return false;
        return true;
    }

    bool
    checkBody(const std::vector<StmtPtr> &body)
    {
        for (const auto &child : body) {
            if (child == nullptr)
                return fail("null statement in a body list");
            if (!checkStmt(*child))
                return false;
        }
        return true;
    }

    bool
    checkStmt(const Stmt &stmt)
    {
        if (!seen.insert(&stmt).second)
            return fail("statement owned twice (aliased subtree)");
        switch (stmt.kind) {
          case Stmt::Kind::Assign:
            if (stmt.lhs == nullptr || stmt.rhs == nullptr)
                return fail("Assign with missing lhs or rhs");
            if (stmt.lhs->kind != Expr::Kind::VarRef &&
                stmt.lhs->kind != Expr::Kind::ArrayRef &&
                stmt.lhs->kind != Expr::Kind::Deref)
                return fail("Assign lhs is not a variable or memory "
                            "reference");
            return checkExpr(*stmt.lhs) && checkExpr(*stmt.rhs);
          case Stmt::Kind::Loop: {
            if (stmt.var.empty())
                return fail("Loop with empty index variable");
            if (stmt.lo == nullptr || stmt.hi == nullptr)
                return fail("Loop '" + stmt.var + "' with missing bound");
            if (stmt.step == 0)
                return fail("Loop '" + stmt.var + "' with zero step");
            for (const auto &enclosing : loopVars)
                if (enclosing == stmt.var)
                    return fail("loop variable '" + stmt.var +
                                "' shadows an enclosing loop");
            if (!checkExpr(*stmt.lo) || !checkExpr(*stmt.hi))
                return false;
            loopVars.push_back(stmt.var);
            const bool ok = checkBody(stmt.body);
            loopVars.pop_back();
            return ok;
          }
          case Stmt::Kind::PtrLoop: {
            if (stmt.var.empty())
                return fail("PtrLoop with empty pointer variable");
            if (stmt.lo == nullptr)
                return fail("PtrLoop '" + stmt.var +
                            "' with missing initial pointer");
            for (const auto &enclosing : loopVars)
                if (enclosing == stmt.var)
                    return fail("loop variable '" + stmt.var +
                                "' shadows an enclosing loop");
            if (!checkExpr(*stmt.lo))
                return false;
            loopVars.push_back(stmt.var);
            const bool ok = checkBody(stmt.body);
            loopVars.pop_back();
            return ok;
          }
          case Stmt::Kind::While:
            if (stmt.lo == nullptr)
                return fail("While with missing condition");
            return checkExpr(*stmt.lo) && checkBody(stmt.body);
          case Stmt::Kind::Prefetch:
            if (stmt.lhs == nullptr || !stmt.lhs->isMemRef())
                return fail("Prefetch without a memory reference");
            return checkExpr(*stmt.lhs);
          case Stmt::Kind::Barrier:
            return true;
          case Stmt::Kind::FlagSet:
          case Stmt::Kind::FlagWait:
            if (stmt.lhs == nullptr || stmt.rhs == nullptr)
                return fail("flag statement with missing operand");
            return checkExpr(*stmt.lhs) && checkExpr(*stmt.rhs);
        }
        return fail("statement with unknown kind");
    }
};

} // namespace

std::string
verify(const Kernel &kernel, const VerifyOptions &options)
{
    Checker checker(kernel, options);
    for (const auto &stmt : kernel.body) {
        if (stmt == nullptr)
            return "null statement in the kernel body";
        if (!checker.checkStmt(*stmt))
            return checker.error;
    }
    if (options.requireDenseRefIds && !checker.refIds.empty()) {
        const int max_id = *checker.refIds.rbegin();
        if (*checker.refIds.begin() < 0 ||
            static_cast<int>(checker.refIds.size()) != max_id + 1)
            return "refIds are not dense (gaps in 0.." +
                   std::to_string(max_id) + ")";
    }
    return "";
}

} // namespace mpc::ir
