/**
 * @file
 * Experiment E6 (Section 5.2 sensitivity): 1 GHz processors with all
 * memory and interconnect parameters unchanged in ns/MHz. The paper
 * reports similar total reductions (5-36% multi avg 21%; 12-50% uni
 * avg 33%) with a larger share coming from memory parallelism.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    const auto config = sys::oneGHzConfig();

    std::fprintf(stderr, "uniprocessor 1 GHz runs...\n");
    const auto uni =
        bench::runApps(bench::allAppNames(), config, false, size);
    std::printf("%s\n",
                harness::formatFig3(
                    uni.names, uni.pairs,
                    "E6: uniprocessor at 1 GHz "
                    "(paper: 12-50% reduction, avg 33%)")
                    .c_str());

    std::fprintf(stderr, "multiprocessor 1 GHz runs...\n");
    const auto multi =
        bench::runApps(bench::allAppNames(), config, true, size);
    std::printf("%s\n",
                harness::formatFig3(
                    multi.names, multi.pairs,
                    "E6: multiprocessor at 1 GHz "
                    "(paper: 5-36% reduction, avg 21%)")
                    .c_str());
    bench::reportModelVsMeasured("1ghz_uni", uni);
    bench::reportModelVsMeasured("1ghz_multi", multi);
    bench::reportTimings("1ghz_uni", uni);
    bench::reportTimings("1ghz_multi", multi);
    return 0;
}
