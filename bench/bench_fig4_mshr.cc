/**
 * @file
 * Experiment E5 (Figure 4): L2 MSHR utilization for the multiprocessor
 * runs of Ocean and LU, the paper's two extremes. (a) plots the
 * fraction of time at least N MSHRs are occupied by read misses;
 * (b) the same for total (read + write) occupancy. The paper's shape:
 * the transformations barely move Ocean (its base already clusters
 * some) but convert LU from almost-never >1 outstanding read miss to
 * 2+ outstanding 20% of the time and up to 9 at times.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();

    const auto ocean = workloads::makeOcean(size);
    std::fprintf(stderr, "running ocean (%d procs)...\n",
                 ocean.defaultProcs);
    const auto ocean_pair =
        harness::runPair(ocean, sys::baseConfig(), ocean.defaultProcs);

    const auto lu = workloads::makeLu(size);
    std::fprintf(stderr, "running lu (%d procs)...\n", lu.defaultProcs);
    const auto lu_pair =
        harness::runPair(lu, sys::baseConfig(), lu.defaultProcs);

    std::vector<std::string> labels{"Ocean", "Ocean(clust)", "LU",
                                    "LU(clust)"};
    std::vector<const sys::RunResult *> runs{
        &ocean_pair.base.result, &ocean_pair.clust.result,
        &lu_pair.base.result, &lu_pair.clust.result};
    std::printf("%s",
                harness::formatFig4(
                    labels, runs,
                    "E5 / Figure 4: L2 MSHR utilization (multiprocessor "
                    "Ocean and LU)")
                    .c_str());
    return 0;
}
