/**
 * @file
 * Experiment E5 (Figure 4): L2 MSHR utilization for the multiprocessor
 * runs of Ocean and LU, the paper's two extremes. (a) plots the
 * fraction of time at least N MSHRs are occupied by read misses;
 * (b) the same for total (read + write) occupancy. The paper's shape:
 * the transformations barely move Ocean (its base already clusters
 * some) but convert LU from almost-never >1 outstanding read miss to
 * 2+ outstanding 20% of the time and up to 9 at times.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();

    std::vector<harness::PairJob> jobs(2);
    jobs[0].workload = workloads::makeOcean(size);
    jobs[1].workload = workloads::makeLu(size);
    for (auto &job : jobs) {
        job.label = job.workload.name;
        job.config = bench::applyStepMode(sys::baseConfig());
        job.procs = job.workload.defaultProcs;
        job.scale = size.scale;
    }
    std::fprintf(stderr, "running ocean and lu pairs in parallel...\n");
    const auto results = harness::runPairsParallel(jobs);
    const auto &ocean_pair = results[0].pair;
    const auto &lu_pair = results[1].pair;

    std::vector<std::string> labels{"Ocean", "Ocean(clust)", "LU",
                                    "LU(clust)"};
    std::vector<const sys::RunResult *> runs{
        &ocean_pair.base.result, &ocean_pair.clust.result,
        &lu_pair.base.result, &lu_pair.clust.result};
    std::printf("%s",
                harness::formatFig4(
                    labels, runs,
                    "E5 / Figure 4: L2 MSHR utilization (multiprocessor "
                    "Ocean and LU)")
                    .c_str());
    // Structured twin of the table above, from the same Fig4Series,
    // stamped with the invocation's provenance (procs 0: the two apps
    // run at their own default processor counts).
    const std::string manifest =
        harness::makeInvocationManifest(
            "fig4_mshr", bench::applyStepMode(sys::baseConfig()), 0)
            .toJson();
    if (!harness::writeFig4Json("FIG4_mshr.json", labels, runs,
                                manifest))
        std::fprintf(stderr, "warning: cannot write FIG4_mshr.json\n");
    return 0;
}
