/**
 * @file
 * Ablation A2 (Section 3.3): separating the contributions of the
 * transformation stages on Mp3d (the window-constraint workload) and
 * LU (the recurrence workload): none / scheduling only / transform
 * only / both. In the paper's framework the stages compose: unrolling
 * exposes independent misses; clustering-aware scheduling packs them
 * within a window span.
 */

#include "bench_common.hh"

#include "codegen/codegen.hh"
#include "common/logging.hh"
#include "harness/profiler.hh"
#include "transform/driver.hh"

namespace
{

using namespace mpc;

Tick
runVariant(const workloads::Workload &w, bool transform, bool schedule)
{
    ir::Kernel kernel = w.kernel.clone();
    std::set<std::uint32_t> leading;
    if (transform) {
        kisa::MemoryImage scratch;
        w.init(scratch);
        const auto base_prog = codegen::lower(kernel);
        mem::CacheConfig geometry;
        geometry.sizeBytes = w.l2Bytes;
        geometry.assoc = 4;
        const auto profile = harness::CacheProfile::measure(
            base_prog, scratch, geometry);
        transform::DriverParams params;
        params.lp = 10;
        params.bodySize = codegen::loweredBodySize;
        params.missRate = [&profile](int id) {
            return profile.missRate(id);
        };
        // Through the pass factory, like the harness and mpclust.
        transform::Pipeline pipeline;
        std::string error;
        if (!transform::Pipeline::parse(
                transform::pipelineSpecFromParams(params), pipeline,
                error))
            fatal("bad pipeline spec: %s", error.c_str());
        const auto report = pipeline.run(kernel, params);
        for (int id : report.leadingRefIds)
            leading.insert(static_cast<std::uint32_t>(id));
    }
    auto programs =
        codegen::lowerForCores(kernel, 1, schedule, leading);
    kisa::MemoryImage image;
    w.init(image);
    auto config = bench::applyStepMode(
        harness::scaleConfig(sys::baseConfig(), w));
    sys::System system(config, std::move(programs), image);
    return system.run().cycles;
}

} // namespace

int
main()
{
    const auto size = bench::scaleFromEnv();
    std::printf("=== A2: transformation vs scheduling ablation "
                "(uniprocessor) ===\n\n");

    static constexpr const char *apps[] = {"mp3d", "lu", "erlebacher"};
    // Variant grid (transform, schedule) per app; all 12 sims are
    // independent, so the whole grid goes through the pool at once.
    static constexpr std::pair<bool, bool> variants[] = {
        {false, false}, {false, true}, {true, false}, {true, true}};
    constexpr std::size_t nvar = std::size(variants);

    std::vector<workloads::Workload> loads;
    for (const char *name : apps)
        loads.push_back(workloads::makeByName(name, size));
    std::vector<Tick> cycles(std::size(apps) * nvar, 0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t a = 0; a < std::size(apps); ++a)
        for (std::size_t v = 0; v < nvar; ++v)
            tasks.push_back([&loads, &cycles, a, v] {
                cycles[a * nvar + v] = runVariant(
                    loads[a], variants[v].first, variants[v].second);
            });
    std::fprintf(stderr, "running %zu variants in parallel...\n",
                 tasks.size());
    harness::ParallelRunner().run(tasks);

    for (std::size_t a = 0; a < std::size(apps); ++a) {
        const Tick none = cycles[a * nvar + 0];
        const Tick sched = cycles[a * nvar + 1];
        const Tick xform = cycles[a * nvar + 2];
        const Tick both = cycles[a * nvar + 3];
        auto pct = [none](Tick t) {
            return (1.0 - double(t) / double(none)) * 100.0;
        };
        std::printf("%s:\n", apps[a]);
        std::printf("  none            %9llu cycles\n",
                    (unsigned long long)none);
        std::printf("  schedule only   %9llu cycles  (%5.1f%%)\n",
                    (unsigned long long)sched, pct(sched));
        std::printf("  transform only  %9llu cycles  (%5.1f%%)\n",
                    (unsigned long long)xform, pct(xform));
        std::printf("  both            %9llu cycles  (%5.1f%%)\n\n",
                    (unsigned long long)both, pct(both));
    }
    return 0;
}
