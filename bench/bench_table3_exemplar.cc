/**
 * @file
 * Experiment E4 (Table 3): percent execution time reduced on the
 * Convex Exemplar substitute configuration (180 MHz PA-8000-like
 * cores, single-level cache, 32-byte lines, shared bus, skewed bank
 * interleaving), uniprocessor and multiprocessor. The paper reports
 * 9-38% reductions for 6 of 7 applications, with multiprocessor Ocean
 * degrading about 3%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    const auto config = sys::exemplarConfig();

    std::fprintf(stderr, "multiprocessor runs...\n");
    const auto multi =
        bench::runApps(bench::allAppNames(), config, true, size);
    std::fprintf(stderr, "uniprocessor runs...\n");
    const auto uni =
        bench::runApps(bench::allAppNames(), config, false, size);

    std::printf("%s\n",
                harness::formatReductionTable(
                    multi.names, multi.pairs, "multiprocessor",
                    "E4 / Table 3 (multiprocessor, Exemplar-like): "
                    "% execution time reduced")
                    .c_str());
    std::printf("%s\n",
                harness::formatReductionTable(
                    uni.names, uni.pairs, "uniprocessor",
                    "E4 / Table 3 (uniprocessor, Exemplar-like): "
                    "% execution time reduced "
                    "(paper: 9-38% for 6 of 7 apps)")
                    .c_str());
    bench::reportModelVsMeasured("table3_exemplar_multi", multi);
    bench::reportModelVsMeasured("table3_exemplar_uni", uni);
    bench::reportTimings("table3_exemplar_multi", multi);
    bench::reportTimings("table3_exemplar_uni", uni);
    return 0;
}
