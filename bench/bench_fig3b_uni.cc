/**
 * @file
 * Experiment E3 (Figure 3(b)): uniprocessor normalized execution time
 * with the Instr/Sync/CPU/Data breakdown, base vs clustered, for all
 * seven applications. The paper reports 11-49% reductions averaging
 * 30%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    const auto r = bench::runApps(bench::allAppNames(),
                                  sys::baseConfig(), false, size);
    std::printf("%s\n",
                harness::formatFig3(
                    r.names, r.pairs,
                    "E3 / Figure 3(b): uniprocessor execution time "
                    "(paper: 11-49% reduction, avg 30%)")
                    .c_str());
    for (size_t i = 0; i < r.names.size(); ++i)
        std::printf("%s",
                    harness::formatDriverSummary(r.names[i],
                                                 r.pairs[i].clust.report)
                        .c_str());
    bench::reportModelVsMeasured("fig3b_uni", r);
    bench::reportTimings("fig3b_uni", r);
    return 0;
}
