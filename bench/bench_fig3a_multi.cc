/**
 * @file
 * Experiment E2 (Figure 3(a)): multiprocessor normalized execution
 * time with the Instr/Sync/CPU/Data breakdown, base vs clustered, for
 * the six multiprocessor applications. The paper reports 5-39%
 * execution-time reductions averaging 20%.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    const auto r = bench::runApps(bench::allAppNames(),
                                  sys::baseConfig(), true, size);
    std::printf("%s\n",
                harness::formatFig3(
                    r.names, r.pairs,
                    "E2 / Figure 3(a): multiprocessor execution time "
                    "(paper: 5-39% reduction, avg 20%)")
                    .c_str());
    for (size_t i = 0; i < r.names.size(); ++i)
        std::printf("%s",
                    harness::formatDriverSummary(r.names[i],
                                                 r.pairs[i].clust.report)
                        .c_str());
    bench::reportModelVsMeasured("fig3a_multi", r);
    bench::reportTimings("fig3a_multi", r);
    return 0;
}
