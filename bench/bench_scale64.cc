/**
 * @file
 * S1: 64-node mesh scaling study. Runs regular multiprocessor apps at
 * 16 and 64 processors, base vs clustered, on the base directory-mesh
 * configuration, and reports how the clustering win and the
 * execution-time breakdown move as the machine grows (the paper's
 * machines stop at 16 nodes; this is the "does the transformation
 * still pay at scale" extrapolation).
 *
 * Stdout is deterministic (simulated results only; host timings go to
 * stderr), so MPC_SHARDS=k sweeps diff byte-clean against the
 * single-thread stepper. Writes SCALE64.json (the BENCH_*.json
 * bench+runs shape, so mpcreport folds it into its report).
 */

#include "bench_common.hh"

#include <cstdio>
#include <vector>

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    const auto config = bench::applyStepMode(sys::baseConfig());

    struct Row
    {
        const char *app;
        int procs;
    };
    const std::vector<Row> rows = {
        {"ocean", 16}, {"ocean", 64},
        {"fft", 16},   {"fft", 64},
        {"em3d", 16},  {"em3d", 64},
    };

    std::vector<harness::PairJob> jobs;
    for (const auto &row : rows) {
        harness::PairJob job;
        job.label =
            std::string(row.app) + "/" + std::to_string(row.procs) + "p";
        job.workload = workloads::makeByName(row.app, size);
        job.config = config;
        job.procs = row.procs;
        job.scale = size.scale;
        jobs.push_back(std::move(job));
    }

    harness::ParallelRunner runner;
    std::fprintf(stderr,
                 "  running %zu experiment pairs on %d thread%s...\n",
                 jobs.size(), runner.threads(),
                 runner.threads() > 1 ? "s" : "");
    const auto t0 = std::chrono::steady_clock::now();
    auto timed = harness::runPairsParallel(jobs, runner.threads());
    const double total = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    std::printf("S1: mesh scaling to 64 nodes (base config, "
                "scale %d)\n",
                size.scale);
    std::printf("%-12s %14s %14s %8s   %s\n", "app/procs",
                "base cycles", "clust cycles", "reduct",
                "clust breakdown cpu/data/sync (cycles)");
    std::vector<bench::JsonRun> runs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &pair = timed[i].pair;
        const auto &base = pair.base.result;
        const auto &clust = pair.clust.result;
        std::printf("%-12s %14llu %14llu %7.1f%%   "
                    "%.0f / %.0f / %.0f\n",
                    jobs[i].label.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(clust.cycles),
                    pair.reductionPct(), clust.cpuComponent(),
                    clust.dataComponent(), clust.syncCycles);
        runs.push_back({jobs[i].label + "/base",
                        timed[i].baseTiming.wallSeconds, base.cycles,
                        timed[i].baseTiming.cyclesPerSec});
        runs.push_back({jobs[i].label + "/clust",
                        timed[i].clustTiming.wallSeconds, clust.cycles,
                        timed[i].clustTiming.cyclesPerSec});
    }

    std::fprintf(stderr, "\n-- host cost (%d thread%s, %.2fs total) --\n",
                 runner.threads(), runner.threads() > 1 ? "s" : "",
                 total);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        std::fprintf(stderr,
                     "%-12s base  %6.2fs  %9.0f cyc/s   "
                     "clust %6.2fs  %9.0f cyc/s\n",
                     jobs[i].label.c_str(),
                     timed[i].baseTiming.wallSeconds,
                     timed[i].baseTiming.cyclesPerSec,
                     timed[i].clustTiming.wallSeconds,
                     timed[i].clustTiming.cyclesPerSec);

    // SCALE64.json: the standard bench shape under its own name.
    std::FILE *f = std::fopen("SCALE64.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warning: cannot write SCALE64.json\n");
        return 0;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"manifest\": %s,\n",
                 harness::makeInvocationManifest("scale64", config, 0)
                     .toJson()
                     .c_str());
    std::fprintf(f, "  \"bench\": \"scale64\",\n");
    std::fprintf(f, "  \"scale\": %d,\n", size.scale);
    std::fprintf(f, "  \"stepMode\": \"%s\",\n",
                 bench::referenceStepMode() ? "reference" : "skip");
    std::fprintf(f, "  \"threads\": %d,\n", runner.threads());
    std::fprintf(f, "  \"totalWallSeconds\": %.6f,\n", total);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i)
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"wallSeconds\": %.6f, "
                     "\"simCycles\": %llu, \"cyclesPerSec\": %.1f}%s\n",
                     runs[i].label.c_str(), runs[i].wallSeconds,
                     static_cast<unsigned long long>(runs[i].simCycles),
                     runs[i].cyclesPerSec,
                     i + 1 < runs.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote SCALE64.json\n");
    return 0;
}
