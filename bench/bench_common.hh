/**
 * @file
 * Shared plumbing for the figure/table benches: scale selection via
 * the MPC_SCALE environment variable (1 = quick, 2 = default paper-
 * shape runs, 3 = large), and run helpers with progress output.
 */

#ifndef MPC_BENCH_COMMON_HH
#define MPC_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace mpc::bench
{

inline workloads::SizeParams
scaleFromEnv()
{
    workloads::SizeParams size;
    size.scale = 2;
    if (const char *env = std::getenv("MPC_SCALE"))
        size.scale = std::atoi(env);
    if (size.scale < 1 || size.scale > 3)
        size.scale = 2;
    return size;
}

/** Run base+clust for each named app and collect the pairs. */
inline std::pair<std::vector<std::string>,
                 std::vector<harness::PairResult>>
runApps(const std::vector<std::string> &names,
        const sys::SystemConfig &config, bool multiprocessor,
        const workloads::SizeParams &size)
{
    std::vector<std::string> used;
    std::vector<harness::PairResult> pairs;
    for (const auto &name : names) {
        const auto w = workloads::makeByName(name, size);
        const int procs = multiprocessor ? w.defaultProcs : 1;
        if (procs == 0)
            continue;   // uniprocessor-only app in a multi experiment
        std::fprintf(stderr, "  running %s (%d proc%s)...\n",
                     name.c_str(), std::max(procs, 1),
                     procs > 1 ? "s" : "");
        pairs.push_back(harness::runPair(w, config, procs));
        used.push_back(name + (procs > 1
                                   ? "/" + std::to_string(procs) + "p"
                                   : ""));
    }
    return {used, pairs};
}

inline const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> names{
        "em3d", "erlebacher", "fft", "lu", "mp3d", "mst", "ocean"};
    return names;
}

} // namespace mpc::bench

#endif // MPC_BENCH_COMMON_HH
