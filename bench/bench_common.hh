/**
 * @file
 * Shared plumbing for the figure/table benches:
 *
 *  - scale selection via MPC_SCALE (1 = quick, 2 = default paper-shape
 *    runs, 3 = large);
 *  - step-mode selection via MPC_STEP_MODE ("reference" forces the
 *    cycle-step loop; anything else keeps quiescence skip-ahead on —
 *    results are bit-identical either way);
 *  - parallel experiment execution on harness::ParallelRunner (thread
 *    count via MPC_JOBS), with per-run wall-clock/sim-rate reporting;
 *  - machine-readable BENCH_<name>.json emission.
 */

#ifndef MPC_BENCH_COMMON_HH
#define MPC_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/manifest.hh"
#include "harness/parallel.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace mpc::bench
{

inline workloads::SizeParams
scaleFromEnv()
{
    workloads::SizeParams size;
    size.scale = 2;
    if (const char *env = std::getenv("MPC_SCALE"))
        size.scale = std::atoi(env);
    if (size.scale < 1 || size.scale > 3)
        size.scale = 2;
    return size;
}

/** True when MPC_STEP_MODE=reference requests the cycle-step loop. */
inline bool
referenceStepMode()
{
    const char *env = std::getenv("MPC_STEP_MODE");
    return env != nullptr && std::string(env) == "reference";
}

/** Apply the MPC_STEP_MODE knob to a system configuration. */
inline sys::SystemConfig
applyStepMode(sys::SystemConfig config)
{
    if (referenceStepMode())
        config.skipAhead = false;
    return config;
}

/** One timed run for the JSON report. */
struct JsonRun
{
    std::string label;
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;
    double cyclesPerSec = 0.0;
};

/**
 * Write BENCH_<bench>.json in the working directory: host cost and sim
 * rate per run, plus the bench-wide totals CI trends over time.
 */
inline void
writeBenchJson(const std::string &bench, const std::vector<JsonRun> &runs,
               int threads, double total_wall_seconds,
               const std::string &manifest_json = "")
{
    const std::string path = "BENCH_" + bench + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"manifest\": %s,\n",
                 manifest_json.empty() ? "null" : manifest_json.c_str());
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench.c_str());
    std::fprintf(f, "  \"scale\": %d,\n", scaleFromEnv().scale);
    std::fprintf(f, "  \"stepMode\": \"%s\",\n",
                 referenceStepMode() ? "reference" : "skip");
    std::fprintf(f, "  \"threads\": %d,\n", threads);
    std::fprintf(f, "  \"totalWallSeconds\": %.6f,\n", total_wall_seconds);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"wallSeconds\": %.6f, "
                     "\"simCycles\": %llu, \"cyclesPerSec\": %.1f}%s\n",
                     r.label.c_str(), r.wallSeconds,
                     static_cast<unsigned long long>(r.simCycles),
                     r.cyclesPerSec, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/** What a figure/table bench gets back from a parallel app sweep. */
struct AppRunResults
{
    std::vector<std::string> names;
    std::vector<harness::PairResult> pairs;
    std::vector<harness::RunTiming> baseTimings;
    std::vector<harness::RunTiming> clustTimings;
    int threads = 1;
    double totalWallSeconds = 0.0;
    /** The (step-mode-applied) configuration the sweep ran under and
     *  the processor count for provenance (0 = apps ran at their own
     *  defaultProcs), so the report helpers can build the invocation
     *  manifest with the bench's name. */
    sys::SystemConfig config;
    int manifestProcs = 1;
};

/** Invocation RunManifest JSON for a sweep's aggregate artifacts. */
inline std::string
invocationManifestJson(const std::string &bench, const AppRunResults &r)
{
    return harness::makeInvocationManifest(bench, r.config,
                                           r.manifestProcs)
        .toJson();
}

/**
 * Run base+clust for each named app, all sims in parallel. Output
 * (names, pairs) order matches @p names regardless of thread count.
 */
inline AppRunResults
runApps(const std::vector<std::string> &names,
        const sys::SystemConfig &config, bool multiprocessor,
        const workloads::SizeParams &size)
{
    const sys::SystemConfig cfg = applyStepMode(config);
    std::vector<harness::PairJob> jobs;
    for (const auto &name : names) {
        auto w = workloads::makeByName(name, size);
        const int procs = multiprocessor ? w.defaultProcs : 1;
        if (procs == 0)
            continue;   // uniprocessor-only app in a multi experiment
        harness::PairJob job;
        job.label = name + (procs > 1
                                ? "/" + std::to_string(procs) + "p"
                                : "");
        job.workload = std::move(w);
        job.config = cfg;
        job.procs = procs;
        job.scale = size.scale;
        jobs.push_back(std::move(job));
    }

    harness::ParallelRunner runner;
    std::fprintf(stderr, "  running %zu experiment pairs on %d thread%s...\n",
                 jobs.size(), runner.threads(),
                 runner.threads() > 1 ? "s" : "");

    const auto t0 = std::chrono::steady_clock::now();
    auto timed = harness::runPairsParallel(jobs, runner.threads());
    const auto t1 = std::chrono::steady_clock::now();

    AppRunResults out;
    out.threads = runner.threads();
    out.totalWallSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.config = cfg;
    out.manifestProcs = multiprocessor ? 0 : 1;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        out.names.push_back(jobs[i].label);
        out.pairs.push_back(std::move(timed[i].pair));
        out.baseTimings.push_back(timed[i].baseTiming);
        out.clustTimings.push_back(timed[i].clustTiming);
    }
    return out;
}

/**
 * Print per-run host timing (to stderr — stdout carries only
 * deterministic simulated results, so skip-vs-reference diffs of a
 * bench's stdout stay byte-clean) and emit BENCH_<bench>.json.
 */
inline void
reportTimings(const std::string &bench, const AppRunResults &r)
{
    std::vector<JsonRun> runs;
    std::fprintf(stderr, "\n-- host cost (%d thread%s, %.2fs total) --\n",
                 r.threads, r.threads > 1 ? "s" : "", r.totalWallSeconds);
    for (std::size_t i = 0; i < r.names.size(); ++i) {
        const auto &base = r.pairs[i].base.result;
        const auto &clust = r.pairs[i].clust.result;
        std::fprintf(stderr,
                     "%-14s base  %6.2fs  %9.0f cyc/s   "
                     "clust %6.2fs  %9.0f cyc/s\n",
                     r.names[i].c_str(), r.baseTimings[i].wallSeconds,
                     r.baseTimings[i].cyclesPerSec,
                     r.clustTimings[i].wallSeconds,
                     r.clustTimings[i].cyclesPerSec);
        runs.push_back({r.names[i] + "/base", r.baseTimings[i].wallSeconds,
                        base.cycles, r.baseTimings[i].cyclesPerSec});
        runs.push_back({r.names[i] + "/clust",
                        r.clustTimings[i].wallSeconds, clust.cycles,
                        r.clustTimings[i].cyclesPerSec});
    }
    writeBenchJson(bench, runs, r.threads, r.totalWallSeconds,
                   invocationManifestJson(bench, r));
}

/**
 * Print the model-vs-measured table (predicted per-nest f from
 * Equations 1-4 next to measured MLP) and write the structured twin,
 * MODEL_VS_MEASURED_<bench>.json, beside BENCH_<bench>.json. Both come
 * from the same RunResult histograms, so stdout stays byte-identical
 * across step modes and MPC_OBS settings.
 */
inline void
reportModelVsMeasured(const std::string &bench, const AppRunResults &r)
{
    std::printf("%s\n",
                harness::formatModelVsMeasured(
                    r.names, r.pairs,
                    "model vs measured: predicted f / measured MLP (" +
                        bench + ")")
                    .c_str());
    const std::string path = "MODEL_VS_MEASURED_" + bench + ".json";
    if (!harness::writeModelVsMeasuredJson(
            path, r.names, r.pairs, invocationManifestJson(bench, r)))
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
}

inline const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> names{
        "em3d", "erlebacher", "fft", "lu", "mp3d", "mst", "ocean"};
    return names;
}

} // namespace mpc::bench

#endif // MPC_BENCH_COMMON_HH
