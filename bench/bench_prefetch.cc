/**
 * @file
 * Ablation A5 (Sections 1 and 6): software prefetching vs read-miss
 * clustering vs their combination. The paper argues prefetching is
 * less effective on ILP processors (late prefetches, contention) and
 * its follow-up shows clustering improves prefetching by cutting the
 * number of prefetch instructions and spreading bursts; this bench
 * measures all four variants on the regular applications.
 */

#include "bench_common.hh"

#include "codegen/codegen.hh"
#include "common/logging.hh"
#include "harness/profiler.hh"
#include "transform/driver.hh"

namespace
{

using namespace mpc;

transform::Pipeline
parsePipeline(const std::string &spec)
{
    transform::Pipeline pipeline;
    std::string error;
    if (!transform::Pipeline::parse(spec, pipeline, error))
        fatal("bad pipeline spec: %s", error.c_str());
    return pipeline;
}

Tick
runVariant(const workloads::Workload &w, bool cluster, bool prefetch,
           int distance)
{
    ir::Kernel kernel = w.kernel.clone();
    std::set<std::uint32_t> leading;
    if (cluster) {
        kisa::MemoryImage scratch;
        w.init(scratch);
        const auto base_prog = codegen::lower(kernel);
        mem::CacheConfig geometry;
        geometry.sizeBytes = w.l2Bytes;
        geometry.assoc = 4;
        const auto profile = harness::CacheProfile::measure(
            base_prog, scratch, geometry);
        transform::DriverParams params;
        params.lp = 10;
        params.bodySize = codegen::loweredBodySize;
        params.missRate = [&profile](int id) {
            return profile.missRate(id);
        };
        const auto report =
            parsePipeline(transform::pipelineSpecFromParams(params))
                .run(kernel, params);
        for (int id : report.leadingRefIds)
            leading.insert(static_cast<std::uint32_t>(id));
    }
    if (prefetch) {
        // A second one-pass pipeline composed after the first: the
        // clustered report (and its leading refs) stays authoritative.
        transform::DriverParams prefetch_params;
        prefetch_params.prefetchDistanceLines = distance;
        (void)parsePipeline("prefetch").run(kernel, prefetch_params);
    }

    auto programs = codegen::lowerForCores(kernel, 1, cluster, leading);
    kisa::MemoryImage image;
    w.init(image);
    auto config = harness::scaleConfig(sys::baseConfig(), w);
    sys::System system(config, std::move(programs), image);
    return system.run().cycles;
}

} // namespace

int
main()
{
    const auto size = bench::scaleFromEnv();
    const int distance = 4;   // lines ahead
    std::printf("=== A5: prefetching vs clustering (uniprocessor, "
                "prefetch distance %d lines) ===\n\n",
                distance);
    for (const char *name : {"erlebacher", "lu", "ocean", "em3d"}) {
        const auto w = workloads::makeByName(name, size);
        std::fprintf(stderr, "running %s variants...\n", name);
        const Tick none = runVariant(w, false, false, distance);
        const Tick pf = runVariant(w, false, true, distance);
        const Tick cl = runVariant(w, true, false, distance);
        const Tick both = runVariant(w, true, true, distance);
        auto pct = [none](Tick t) {
            return (1.0 - double(t) / double(none)) * 100.0;
        };
        std::printf("%s:\n", name);
        std::printf("  base              %9llu cycles\n",
                    (unsigned long long)none);
        std::printf("  prefetch only     %9llu cycles  (%5.1f%%)\n",
                    (unsigned long long)pf, pct(pf));
        std::printf("  clustering only   %9llu cycles  (%5.1f%%)\n",
                    (unsigned long long)cl, pct(cl));
        std::printf("  both              %9llu cycles  (%5.1f%%)\n\n",
                    (unsigned long long)both, pct(both));
    }
    return 0;
}
