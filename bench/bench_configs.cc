/**
 * @file
 * Experiment E7 (Tables 1 and 2): print the simulated configurations
 * and workload inputs for provenance — the analogue of the paper's
 * configuration tables for this reproduction.
 */

#include "bench_common.hh"

namespace
{

void
printConfig(const mpc::sys::SystemConfig &cfg)
{
    using mpc::mem::Interleave;
    std::printf("== %s ==\n", cfg.name.c_str());
    std::printf("  clock            %.0f MHz (%.2f ns/cycle)\n",
                1000.0 / cfg.nsPerCycle, cfg.nsPerCycle);
    std::printf("  fetch/issue/ret  %d / %d / %d per cycle\n",
                cfg.core.fetchWidth, cfg.core.issueWidth,
                cfg.core.retireWidth);
    std::printf("  window / memq    %d instructions / %d entries\n",
                cfg.core.windowSize, cfg.core.memQueueSize);
    std::printf("  branches         %d outstanding\n",
                cfg.core.maxBranches);
    std::printf("  FUs              %d ALU, %d FPU, %d address\n",
                cfg.core.numAlus, cfg.core.numFpus,
                cfg.core.numAddrUnits);
    std::printf("  FU latencies     alu %llu, imul %llu, fp %llu, "
                "fdiv %llu, fsqrt %llu\n",
                (unsigned long long)cfg.core.latIntAlu,
                (unsigned long long)cfg.core.latIntMul,
                (unsigned long long)cfg.core.latFpArith,
                (unsigned long long)cfg.core.latFpDiv,
                (unsigned long long)cfg.core.latFpSqrt);
    if (cfg.hier.singleLevel) {
        std::printf("  cache (single)   %llu KB, %d-way, %dB lines, "
                    "%d MSHRs\n",
                    (unsigned long long)(cfg.hier.l1.sizeBytes / 1024),
                    cfg.hier.l1.assoc, cfg.hier.l1.lineBytes,
                    cfg.hier.l1.numMshrs);
    } else {
        std::printf("  L1D              %llu KB, %d-way, %dB lines, "
                    "%d MSHRs, %d ports\n",
                    (unsigned long long)(cfg.hier.l1.sizeBytes / 1024),
                    cfg.hier.l1.assoc, cfg.hier.l1.lineBytes,
                    cfg.hier.l1.numMshrs, cfg.hier.l1.numPorts);
        std::printf("  L2               scaled per app (Table 2), "
                    "%d-way, %dB lines, %d MSHRs\n",
                    cfg.hier.l2.assoc, cfg.hier.l2.lineBytes,
                    cfg.hier.l2.numMshrs);
    }
    std::printf("  memory           %d banks, %s interleave, "
                "%llu-cycle bank access\n",
                cfg.membus.numBanks,
                cfg.membus.interleave == Interleave::Permutation
                    ? "permutation"
                    : cfg.membus.interleave == Interleave::Skewed
                          ? "skewed"
                          : "sequential",
                (unsigned long long)cfg.membus.bankAccessLatency);
    std::printf("  bus              %d bytes wide, 1:%d clock ratio\n",
                cfg.membus.busWidthBytes,
                cfg.membus.cpuCyclesPerBusCycle);
    if (cfg.smpBus)
        std::printf("  interconnect     shared SMP bus\n");
    else
        std::printf("  interconnect     2D mesh, 1:%d clock, "
                    "%d net-cycles/hop\n",
                    cfg.mesh.cpuCyclesPerNetCycle,
                    cfg.mesh.hopDelayNetCycles);
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace mpc;
    std::printf("=== E7: system configurations (paper Table 1) ===\n\n");
    printConfig(sys::baseConfig());
    printConfig(sys::oneGHzConfig());
    printConfig(sys::exemplarConfig());

    std::printf("=== E7: workload inputs (paper Table 2, scaled; "
                "MPC_SCALE=%d) ===\n\n",
                bench::scaleFromEnv().scale);
    const auto size = bench::scaleFromEnv();
    auto print_workload = [](const workloads::Workload &w) {
        std::uint64_t bytes = 0;
        for (const auto &array : w.kernel.arrays)
            bytes += array.sizeBytes();
        std::printf("  %-11s arrays %7llu KB  L2 %5llu KB  procs %2d  "
                    "(%s)\n",
                    w.name.c_str(),
                    (unsigned long long)(bytes / 1024),
                    (unsigned long long)(w.l2Bytes / 1024),
                    w.defaultProcs ? w.defaultProcs : 1,
                    w.pattern.c_str());
    };
    print_workload(workloads::makeLatbench(size));
    for (const auto &w : workloads::makeAllApps(size))
        print_workload(w);
    return 0;
}
