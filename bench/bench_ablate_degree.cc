/**
 * @file
 * Ablation A1: unroll-and-jam degree sweep. Forces degrees 1..16 on
 * the dominant nests of LU and Erlebacher and compares against the
 * driver's model-chosen degree, validating that the f <= alpha*lp
 * stopping rule (Section 3.2.2) lands near the knee: too little
 * unrolling leaves misses serialized; too much adds code, register
 * pressure, and cache conflicts without memory-parallelism headroom.
 */

#include "bench_common.hh"

#include "codegen/codegen.hh"
#include "transform/driver.hh"

namespace
{

using namespace mpc;

/** Run a workload clustered with a forced maximum unroll degree. */
Tick
runForced(const workloads::Workload &w, int max_unroll)
{
    harness::RunSpec spec;
    spec.clustered = max_unroll > 1;
    spec.maxUnroll = max_unroll;
    return harness::runWorkload(w, spec).result.cycles;
}

} // namespace

int
main()
{
    const auto size = bench::scaleFromEnv();
    std::printf("=== A1: unroll-and-jam degree sweep (uniprocessor) "
                "===\n");
    std::printf("degree cap U; the driver picks min(model degree, U), "
                "so the curve flattens at the model's choice\n\n");
    for (const char *name : {"lu", "erlebacher"}) {
        const auto w = workloads::makeByName(name, size);
        const Tick base = runForced(w, 1);
        std::printf("%s (base %llu cycles):\n", name,
                    (unsigned long long)base);
        for (int cap : {1, 2, 4, 8, 12, 16}) {
            std::fprintf(stderr, "  %s cap=%d...\n", name, cap);
            const Tick cycles = runForced(w, cap);
            std::printf("  U=%-2d  %9llu cycles  (%5.1f%% reduction)\n",
                        cap, (unsigned long long)cycles,
                        (1.0 - double(cycles) / double(base)) * 100.0);
        }
        std::printf("\n");
    }
    return 0;
}
