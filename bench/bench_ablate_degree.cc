/**
 * @file
 * Ablation A1: unroll-and-jam degree sweep. Forces degrees 1..16 on
 * the dominant nests of LU and Erlebacher and compares against the
 * driver's model-chosen degree, validating that the f <= alpha*lp
 * stopping rule (Section 3.2.2) lands near the knee: too little
 * unrolling leaves misses serialized; too much adds code, register
 * pressure, and cache conflicts without memory-parallelism headroom.
 */

#include "bench_common.hh"

#include "codegen/codegen.hh"
#include "transform/driver.hh"

namespace
{

using namespace mpc;

/** RunSpec for a forced maximum unroll degree. */
harness::RunSpec
forcedSpec(int max_unroll)
{
    harness::RunSpec spec;
    spec.config = bench::applyStepMode(spec.config);
    spec.clustered = max_unroll > 1;
    spec.maxUnroll = max_unroll;
    return spec;
}

} // namespace

int
main()
{
    const auto size = bench::scaleFromEnv();
    std::printf("=== A1: unroll-and-jam degree sweep (uniprocessor) "
                "===\n");
    std::printf("degree cap U; the driver picks min(model degree, U), "
                "so the curve flattens at the model's choice\n\n");

    static constexpr const char *apps[] = {"lu", "erlebacher"};
    static constexpr int caps[] = {1, 2, 4, 8, 12, 16};
    constexpr std::size_t ncaps = std::size(caps);

    // One workload per app, one run per (app, cap); every run is an
    // independent sim, so the whole grid goes through the pool at once.
    std::vector<workloads::Workload> loads;
    for (const char *name : apps)
        loads.push_back(workloads::makeByName(name, size));
    std::vector<Tick> cycles(std::size(apps) * ncaps, 0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t a = 0; a < std::size(apps); ++a) {
        for (std::size_t c = 0; c < ncaps; ++c) {
            tasks.push_back([&loads, &cycles, a, c] {
                cycles[a * ncaps + c] =
                    harness::runWorkload(loads[a], forcedSpec(caps[c]))
                        .result.cycles;
            });
        }
    }
    std::fprintf(stderr, "running %zu sweep points in parallel...\n",
                 tasks.size());
    harness::ParallelRunner().run(tasks);

    for (std::size_t a = 0; a < std::size(apps); ++a) {
        // U=1 disables clustering, so it doubles as the base run.
        const Tick base = cycles[a * ncaps];
        std::printf("%s (base %llu cycles):\n", apps[a],
                    (unsigned long long)base);
        for (std::size_t c = 0; c < ncaps; ++c) {
            const Tick t = cycles[a * ncaps + c];
            std::printf("  U=%-2d  %9llu cycles  (%5.1f%% reduction)\n",
                        caps[c], (unsigned long long)t,
                        (1.0 - double(t) / double(base)) * 100.0);
        }
        std::printf("\n");
    }
    return 0;
}
