/**
 * @file
 * Experiment E0 (Figures 1 and 2, Section 2): the four matrix
 * traversals of the motivation section, measured on the simulated
 * machine:
 *
 *   (a) row-wise (base)        — locality, no clustering
 *   (b) interchange            — clustering, locality destroyed
 *   (c) strip-mine+interchange — both, via tiling
 *   (d) unroll-and-jam         — both, via jamming (the paper's pick)
 *
 * The paper's Figure 1 story: (b) can lose ALL locality when the
 * matrix has more rows than the cache has lines; (c) and (d) keep the
 * miss count of (a) while overlapping misses; (d) additionally keeps
 * the inner trip count (branch prediction) and enables scalar
 * replacement, which is why Section 2.2 prefers it.
 */

#include "bench_common.hh"

#include "codegen/codegen.hh"
#include "transform/transforms.hh"

namespace
{

using namespace mpc;
using namespace mpc::ir;

Kernel
traversal(std::int64_t rows, std::int64_t cols)
{
    Kernel k;
    k.name = "fig2";
    Array *a = k.addArray("A", ScalType::F64, {rows, cols});
    std::vector<ExprPtr> s1, s2;
    s1.push_back(varref("j"));
    s1.push_back(varref("i"));
    s2.push_back(varref("j"));
    s2.push_back(varref("i"));
    std::vector<StmtPtr> ib;
    ib.push_back(assign(aref(a, std::move(s1)),
                        add(aref(a, std::move(s2)), fconst(1.0))));
    std::vector<StmtPtr> ob;
    ob.push_back(forLoop("i", iconst(0), iconst(cols), std::move(ib)));
    k.body.push_back(forLoop("j", iconst(0), iconst(rows),
                             std::move(ob), 1, /*parallel=*/true));
    assignRefIds(k);
    layoutArrays(k);
    return k;
}

struct Row
{
    const char *label;
    Tick cycles;
    std::uint64_t l2Misses;
    double dataRead;
    double mshr2;
};

Row
simulate(const char *label, const Kernel &k, bool clustered_sched,
         std::uint64_t l2_bytes)
{
    codegen::CodegenOptions options;
    options.clusteredSchedule = clustered_sched;
    std::vector<kisa::Program> programs;
    programs.push_back(codegen::lower(k, options));
    kisa::MemoryImage mem;
    sys::System system(sys::baseConfig(l2_bytes), std::move(programs),
                       mem);
    const auto r = system.run();
    return {label, r.cycles, r.l2.loadMisses + r.l2.writeMisses,
            r.dataReadCycles, r.l2ReadMshr.fracAtLeast(2)};
}

} // namespace

int
main()
{
    const auto size = mpc::bench::scaleFromEnv();
    const std::int64_t rows = size.scale <= 1 ? 128
                              : size.scale == 2 ? 512 : 1024;
    const std::int64_t cols = 128;
    // L2 smaller than one traversal (rows*cols*8) but larger than a
    // column working set, so (b)'s locality loss is visible.
    const std::uint64_t l2 = 64 * 1024;

    std::vector<Row> results;

    // (a) row-wise base.
    results.push_back(
        simulate("(a) row-wise", traversal(rows, cols), false, l2));

    // (b) interchange: column-wise, every access a new line, and the
    // matrix exceeds the cache, so lines are evicted before reuse.
    {
        Kernel k = traversal(rows, cols);
        const bool ok = transform::interchange(k, *k.body[0]);
        if (ok)
            results.push_back(
                simulate("(b) interchange", k, false, l2));
    }

    // (c) strip-mine + interchange, strip = lp = 10.
    {
        Kernel k = traversal(rows, cols);
        transform::stripMine(k, *k.body[0], 10);
        transform::interchange(k, *k.body[0]->body[0]);
        results.push_back(
            simulate("(c) strip+interchange", k, false, l2));
    }

    // (d) unroll-and-jam by lp = 10.
    {
        Kernel k = traversal(rows, cols);
        transform::unrollAndJam(k, *k.body[0], 10);
        results.push_back(
            simulate("(d) unroll-and-jam", k, true, l2));
    }

    std::printf("=== E0 / Figures 1-2: matrix traversal, %lld x %lld "
                "doubles, 64 KB L2 ===\n\n",
                (long long)rows, (long long)cols);
    std::printf("%-22s %12s %10s %12s %10s\n", "traversal", "cycles",
                "L2 misses", "read stall", ">=2 MSHRs");
    for (const auto &r : results) {
        std::printf("%-22s %12llu %10llu %12.0f %9.3f\n", r.label,
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.l2Misses, r.dataRead,
                    r.mshr2);
    }
    std::printf(
        "\nExpected shape (Section 2.2): (b) trades locality for\n"
        "clustering (miss count explodes); (c) and (d) keep (a)'s miss\n"
        "count while overlapping misses; (d) is fastest.\n");
    return 0;
}
