/**
 * @file
 * P2: functional-execution performance of the KISA backends. For every
 * workload it times the three host-bound consumers of functional
 * execution — raw kernel execution, the cache profiler, and the
 * verified pass pipeline — on the tier selected by MPC_EXEC_TIER
 * (default threaded). CI runs it once per tier and feeds the JSON
 * pairs to tools/perfcmp, which demonstrates the threaded tier's
 * speedup and guards it against regression.
 *
 * stdout carries only deterministic results (instruction/access/pass
 * counts and array checksums), so a stdout diff across
 * MPC_EXEC_TIER=interp|threaded is the bit-exactness check; host
 * timing goes to stderr and BENCH_functional.json.
 *
 * When MPC_STORE names a ResultStore, each workload's three rows are
 * served from it when ALL three are present (entries are keyed by
 * kernel hash x row/tier/scale/rep-count, schema "mpc-funcrow-v1");
 * a partial hit runs the whole triple, because profile feeds verify.
 * Served rows print the identical stdout line — the store carries the
 * deterministic items/digest columns, never the wall time.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "codegen/codegen.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "harness/profiler.hh"
#include "harness/store.hh"
#include "ir/eval.hh"
#include "kisa/exec_threaded.hh"
#include "transform/driver.hh"
#include "transform/pipeline.hh"
#include "workloads/workload.hh"

namespace
{

using namespace mpc;
using clock_type = std::chrono::steady_clock;

std::vector<bench::JsonRun> g_runs;
std::unique_ptr<harness::ResultStore> g_store;

/** The deterministic (stdout) part of one row, mirrored for the
 *  store: label, item count, array digest. */
struct StoredRow
{
    std::string label;
    std::uint64_t items = 0;
    std::uint64_t digest = 0;
};
std::vector<StoredRow> g_rows;

// Each row's timed section runs a fixed number of times on fresh
// state (memory image / kernel clone rebuilt outside the timer) and
// the minimum is recorded: run-to-run results are bit-identical, so
// min-of-N only strips scheduler noise from the host timing. The
// counts are fixed — not time-budgeted — so a run does the same work
// on every tier and host.
constexpr int execReps = 5;
constexpr int verifyReps = 3;

double
secondsSince(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/**
 * Record one row: deterministic fields (count, digest) to stdout, the
 * host wall time to stderr and the JSON report.
 */
void
record(const std::string &label, double wall, std::uint64_t items,
       std::uint64_t digest)
{
    std::printf("%-22s %14llu items  digest %016llx\n", label.c_str(),
                static_cast<unsigned long long>(items),
                static_cast<unsigned long long>(digest));
    std::fprintf(stderr, "%-22s %8.3fs\n", label.c_str(), wall);
    const double rate =
        wall > 0.0 ? static_cast<double>(items) / wall : 0.0;
    g_runs.push_back({label, wall, items, rate});
    g_rows.push_back({label, items, digest});
}

/** Store key for one row of one workload on one tier: kernel-IR hash
 *  x (row kind, scale, tier, rep counts — anything that changes the
 *  deterministic columns). */
std::string
rowKey(const workloads::Workload &w, int scale, const char *tier,
       const char *row)
{
    return json::hex64(harness::fnv1a(w.kernel.toString())) +
           json::hex64(harness::fnv1a(strprintf(
               "func|workload=%s|scale=%d|tier=%s|execReps=%d|"
               "verifyReps=%d|row=%s",
               w.name.c_str(), scale, tier, execReps, verifyReps,
               row)));
}

constexpr const char *kRowKinds[] = {"exec", "profile", "verify"};

/**
 * Serve all three of @p w's rows from the store, or none: a row that
 * fails to fetch or parse means the whole triple runs (and the bad
 * entry is quarantined so the rerun repairs it).
 */
bool
serveFromStore(const workloads::Workload &w, int scale, const char *tier)
{
    if (g_store == nullptr)
        return false;
    std::vector<StoredRow> rows;
    for (const char *row : kRowKinds) {
        const std::string key = rowKey(w, scale, tier, row);
        std::string text;
        if (!g_store->get(key, text))
            return false;
        json::Value root;
        if (!json::parse(text, root) ||
            root.t != json::Value::T::Obj ||
            json::strField(root, "schema") != "mpc-funcrow-v1") {
            g_store->quarantine(key);
            return false;
        }
        StoredRow r;
        r.label = json::strField(root, "label");
        r.items = static_cast<std::uint64_t>(
            json::numField(root, "items"));
        r.digest = std::strtoull(
            json::strField(root, "digest").c_str(), nullptr, 16);
        rows.push_back(std::move(r));
    }
    for (const StoredRow &r : rows)
        record(r.label, 0.0, r.items, r.digest);
    return true;
}

/** Publish the rows record() accumulated since @p first. */
void
publishRows(const workloads::Workload &w, int scale, const char *tier,
            std::size_t first)
{
    if (g_store == nullptr)
        return;
    for (std::size_t i = first; i < g_rows.size(); ++i) {
        const StoredRow &r = g_rows[i];
        const char *row = kRowKinds[i - first];
        std::string entry = "{\"schema\": \"mpc-funcrow-v1\", "
                            "\"label\": ";
        json::escape(entry, r.label);
        entry += strprintf(", \"items\": %llu, \"digest\": \"%s\"}\n",
                           static_cast<unsigned long long>(r.items),
                           json::hex64(r.digest).c_str());
        g_store->put(rowKey(w, scale, tier, row), entry);
    }
}

/** exec/<wl>: run the lowered base kernel to completion on the tier. */
void
benchExec(const workloads::Workload &w)
{
    const auto program = codegen::lower(w.kernel);
    double best = 0.0;
    std::uint64_t instrs = 0;
    std::uint64_t digest = 0;
    for (int rep = 0; rep < execReps; ++rep) {
        kisa::MemoryImage mem;
        ir::initKernelMemory(w.kernel, mem, w.init);
        const auto t0 = clock_type::now();
        instrs = kisa::execute(program, mem);
        const double wall = secondsSince(t0);
        best = rep == 0 ? wall : std::min(best, wall);
        digest = ir::checksumArrays(w.kernel, mem);
    }
    record("exec/" + w.name, best, instrs, digest);
}

/** profile/<wl>: the analysis cache profiler over the base kernel. */
harness::CacheProfile
benchProfile(const workloads::Workload &w)
{
    const auto program = codegen::lower(w.kernel);
    mem::CacheConfig geometry;
    geometry.sizeBytes = w.l2Bytes;
    geometry.assoc = 4;
    harness::CacheProfile profile;
    double best = 0.0;
    std::uint64_t digest = 0;
    for (int rep = 0; rep < execReps; ++rep) {
        kisa::MemoryImage scratch;
        ir::initKernelMemory(w.kernel, scratch, w.init);
        const auto t0 = clock_type::now();
        profile =
            harness::CacheProfile::measure(program, scratch, geometry);
        const double wall = secondsSince(t0);
        best = rep == 0 ? wall : std::min(best, wall);
        digest = ir::checksumArrays(w.kernel, scratch);
    }
    // refIds are small dense codegen-assigned ids; summing a fixed
    // range is deterministic regardless of how many exist.
    std::uint64_t accesses = 0;
    for (int id = 0; id < 256; ++id)
        accesses += profile.accesses(id);
    record("profile/" + w.name, best, accesses, digest);
    return profile;
}

/** verify/<wl>: the pass pipeline with per-pass equivalence checks. */
void
benchVerify(const workloads::Workload &w,
            const harness::CacheProfile &profile)
{
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    params.missRate = profile.asFunction();

    transform::Pipeline pipeline;
    std::string error;
    if (!transform::Pipeline::parse(
            transform::pipelineSpecFromParams(params), pipeline, error))
        fatal("bad pipeline spec: %s", error.c_str());
    pipeline.verifyMode = transform::VerifyMode::Panic;
    pipeline.initMemory = w.init;

    ir::Kernel kernel = w.kernel.clone();
    double best = 0.0;
    transform::PipelineReport report;
    for (int rep = 0; rep < verifyReps; ++rep) {
        kernel = w.kernel.clone();
        const auto t0 = clock_type::now();
        report = pipeline.run(kernel, params);
        const double wall = secondsSince(t0);
        best = rep == 0 ? wall : std::min(best, wall);
    }

    // Digest the transformed kernel's result (outside the timed
    // region): identical across tiers and to the base digest only if
    // every pass was semantics-preserving.
    kisa::MemoryImage mem;
    ir::initKernelMemory(kernel, mem, w.init);
    codegen::CodegenOptions options;
    options.clusteredSchedule = true;
    kisa::execute(codegen::lower(kernel, options), mem);
    record("verify/" + w.name, best, report.passes.size(),
           ir::checksumArrays(kernel, mem));
}

} // namespace

int
main()
{
    const auto size = bench::scaleFromEnv();
    const kisa::ExecTier tier = kisa::execTierFromEnv();
    g_store = mpc::harness::ResultStore::fromEnv();
    std::fprintf(stderr, "exec tier: %s, scale %d\n",
                 kisa::execTierName(tier), size.scale);
    std::printf("=== P2: functional execution (per-workload) ===\n");
    std::printf("%-22s %20s  %23s\n", "experiment", "items",
                "array digest");

    std::vector<std::string> names{"latbench"};
    for (const auto &name : bench::allAppNames())
        names.push_back(name);

    const auto t0 = clock_type::now();
    const char *tier_name = kisa::execTierName(tier);
    for (const auto &name : names) {
        const auto w = workloads::makeByName(name, size);
        if (serveFromStore(w, size.scale, tier_name))
            continue;
        const std::size_t first = g_rows.size();
        benchExec(w);
        const auto profile = benchProfile(w);
        benchVerify(w, profile);
        publishRows(w, size.scale, tier_name, first);
    }

    if (g_store != nullptr) {
        const auto s = g_store->stats();
        std::fprintf(stderr, "store: %d hit(s), %d miss(es), %d bad\n",
                     s.hits, s.misses, s.bad);
    }
    bench::writeBenchJson("functional", g_runs, 1, secondsSince(t0));
    std::fprintf(stderr, "wrote BENCH_functional.json\n");
    return 0;
}
