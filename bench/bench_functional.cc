/**
 * @file
 * P2: functional-execution performance of the KISA backends. For every
 * workload it times the three host-bound consumers of functional
 * execution — raw kernel execution, the cache profiler, and the
 * verified pass pipeline — on the tier selected by MPC_EXEC_TIER
 * (default threaded). CI runs it once per tier and feeds the JSON
 * pairs to tools/perfcmp, which demonstrates the threaded tier's
 * speedup and guards it against regression.
 *
 * stdout carries only deterministic results (instruction/access/pass
 * counts and array checksums), so a stdout diff across
 * MPC_EXEC_TIER=interp|threaded is the bit-exactness check; host
 * timing goes to stderr and BENCH_functional.json.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "codegen/codegen.hh"
#include "common/logging.hh"
#include "harness/profiler.hh"
#include "ir/eval.hh"
#include "kisa/exec_threaded.hh"
#include "transform/driver.hh"
#include "transform/pipeline.hh"
#include "workloads/workload.hh"

namespace
{

using namespace mpc;
using clock_type = std::chrono::steady_clock;

std::vector<bench::JsonRun> g_runs;

// Each row's timed section runs a fixed number of times on fresh
// state (memory image / kernel clone rebuilt outside the timer) and
// the minimum is recorded: run-to-run results are bit-identical, so
// min-of-N only strips scheduler noise from the host timing. The
// counts are fixed — not time-budgeted — so a run does the same work
// on every tier and host.
constexpr int execReps = 5;
constexpr int verifyReps = 3;

double
secondsSince(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/**
 * Record one row: deterministic fields (count, digest) to stdout, the
 * host wall time to stderr and the JSON report.
 */
void
record(const std::string &label, double wall, std::uint64_t items,
       std::uint64_t digest)
{
    std::printf("%-22s %14llu items  digest %016llx\n", label.c_str(),
                static_cast<unsigned long long>(items),
                static_cast<unsigned long long>(digest));
    std::fprintf(stderr, "%-22s %8.3fs\n", label.c_str(), wall);
    const double rate =
        wall > 0.0 ? static_cast<double>(items) / wall : 0.0;
    g_runs.push_back({label, wall, items, rate});
}

/** exec/<wl>: run the lowered base kernel to completion on the tier. */
void
benchExec(const workloads::Workload &w)
{
    const auto program = codegen::lower(w.kernel);
    double best = 0.0;
    std::uint64_t instrs = 0;
    std::uint64_t digest = 0;
    for (int rep = 0; rep < execReps; ++rep) {
        kisa::MemoryImage mem;
        ir::initKernelMemory(w.kernel, mem, w.init);
        const auto t0 = clock_type::now();
        instrs = kisa::execute(program, mem);
        const double wall = secondsSince(t0);
        best = rep == 0 ? wall : std::min(best, wall);
        digest = ir::checksumArrays(w.kernel, mem);
    }
    record("exec/" + w.name, best, instrs, digest);
}

/** profile/<wl>: the analysis cache profiler over the base kernel. */
harness::CacheProfile
benchProfile(const workloads::Workload &w)
{
    const auto program = codegen::lower(w.kernel);
    mem::CacheConfig geometry;
    geometry.sizeBytes = w.l2Bytes;
    geometry.assoc = 4;
    harness::CacheProfile profile;
    double best = 0.0;
    std::uint64_t digest = 0;
    for (int rep = 0; rep < execReps; ++rep) {
        kisa::MemoryImage scratch;
        ir::initKernelMemory(w.kernel, scratch, w.init);
        const auto t0 = clock_type::now();
        profile =
            harness::CacheProfile::measure(program, scratch, geometry);
        const double wall = secondsSince(t0);
        best = rep == 0 ? wall : std::min(best, wall);
        digest = ir::checksumArrays(w.kernel, scratch);
    }
    // refIds are small dense codegen-assigned ids; summing a fixed
    // range is deterministic regardless of how many exist.
    std::uint64_t accesses = 0;
    for (int id = 0; id < 256; ++id)
        accesses += profile.accesses(id);
    record("profile/" + w.name, best, accesses, digest);
    return profile;
}

/** verify/<wl>: the pass pipeline with per-pass equivalence checks. */
void
benchVerify(const workloads::Workload &w,
            const harness::CacheProfile &profile)
{
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    params.missRate = profile.asFunction();

    transform::Pipeline pipeline;
    std::string error;
    if (!transform::Pipeline::parse(
            transform::pipelineSpecFromParams(params), pipeline, error))
        fatal("bad pipeline spec: %s", error.c_str());
    pipeline.verifyMode = transform::VerifyMode::Panic;
    pipeline.initMemory = w.init;

    ir::Kernel kernel = w.kernel.clone();
    double best = 0.0;
    transform::PipelineReport report;
    for (int rep = 0; rep < verifyReps; ++rep) {
        kernel = w.kernel.clone();
        const auto t0 = clock_type::now();
        report = pipeline.run(kernel, params);
        const double wall = secondsSince(t0);
        best = rep == 0 ? wall : std::min(best, wall);
    }

    // Digest the transformed kernel's result (outside the timed
    // region): identical across tiers and to the base digest only if
    // every pass was semantics-preserving.
    kisa::MemoryImage mem;
    ir::initKernelMemory(kernel, mem, w.init);
    codegen::CodegenOptions options;
    options.clusteredSchedule = true;
    kisa::execute(codegen::lower(kernel, options), mem);
    record("verify/" + w.name, best, report.passes.size(),
           ir::checksumArrays(kernel, mem));
}

} // namespace

int
main()
{
    const auto size = bench::scaleFromEnv();
    const kisa::ExecTier tier = kisa::execTierFromEnv();
    std::fprintf(stderr, "exec tier: %s, scale %d\n",
                 kisa::execTierName(tier), size.scale);
    std::printf("=== P2: functional execution (per-workload) ===\n");
    std::printf("%-22s %20s  %23s\n", "experiment", "items",
                "array digest");

    std::vector<std::string> names{"latbench"};
    for (const auto &name : bench::allAppNames())
        names.push_back(name);

    const auto t0 = clock_type::now();
    for (const auto &name : names) {
        const auto w = workloads::makeByName(name, size);
        benchExec(w);
        const auto profile = benchProfile(w);
        benchVerify(w, profile);
    }

    bench::writeBenchJson("functional", g_runs, 1, secondsSince(t0));
    std::fprintf(stderr, "wrote BENCH_functional.json\n");
    return 0;
}
