/**
 * @file
 * Ablation A4 (Section 5.3): memory-bank interleaving policy. The
 * paper attributes the LU discrepancy between the simulated system and
 * the Exemplar to their different interleaving schemes (permutation-
 * based vs skewed). This sweep runs LU and FFT under sequential,
 * permutation, and skewed interleaving, base vs clustered.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    std::printf("=== A4: bank-interleaving policy (uniprocessor) "
                "===\n\n");
    const std::pair<mem::Interleave, const char *> policies[] = {
        {mem::Interleave::Sequential, "sequential"},
        {mem::Interleave::Permutation, "permutation (base config)"},
        {mem::Interleave::Skewed, "skewed (Exemplar)"},
    };
    for (const char *name : {"lu", "fft"}) {
        const auto w = workloads::makeByName(name, size);
        std::printf("%s:\n", name);
        for (const auto &[policy, label] : policies) {
            std::fprintf(stderr, "  %s %s...\n", name, label);
            auto config = sys::baseConfig();
            config.membus.interleave = policy;
            const auto pair = harness::runPair(w, config, 1);
            std::printf("  %-26s base %9llu  clust %9llu  "
                        "(%5.1f%% reduction)\n",
                        label,
                        (unsigned long long)pair.base.result.cycles,
                        (unsigned long long)pair.clust.result.cycles,
                        pair.reductionPct());
        }
        std::printf("\n");
    }
    return 0;
}
