/**
 * @file
 * Ablation A4 (Section 5.3): memory-bank interleaving policy. The
 * paper attributes the LU discrepancy between the simulated system and
 * the Exemplar to their different interleaving schemes (permutation-
 * based vs skewed). This sweep runs LU and FFT under sequential,
 * permutation, and skewed interleaving, base vs clustered.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    std::printf("=== A4: bank-interleaving policy (uniprocessor) "
                "===\n\n");
    const std::pair<mem::Interleave, const char *> policies[] = {
        {mem::Interleave::Sequential, "sequential"},
        {mem::Interleave::Permutation, "permutation (base config)"},
        {mem::Interleave::Skewed, "skewed (Exemplar)"},
    };
    std::vector<harness::PairJob> jobs;
    for (const char *name : {"lu", "fft"}) {
        for (const auto &[policy, label] : policies) {
            harness::PairJob job;
            job.label = std::string(name) + "/" + label;
            job.workload = workloads::makeByName(name, size);
            job.config = bench::applyStepMode(sys::baseConfig());
            job.config.membus.interleave = policy;
            job.procs = 1;
            job.scale = size.scale;
            jobs.push_back(std::move(job));
        }
    }
    std::fprintf(stderr, "running %zu sweep points in parallel...\n",
                 jobs.size());
    const auto results = harness::runPairsParallel(jobs);
    std::size_t i = 0;
    for (const char *name : {"lu", "fft"}) {
        std::printf("%s:\n", name);
        for (const auto &[policy, label] : policies) {
            (void)policy;
            const auto &pair = results[i++].pair;
            std::printf("  %-26s base %9llu  clust %9llu  "
                        "(%5.1f%% reduction)\n",
                        label,
                        (unsigned long long)pair.base.result.cycles,
                        (unsigned long long)pair.clust.result.cycles,
                        pair.reductionPct());
        }
        std::printf("\n");
    }
    return 0;
}
