/**
 * @file
 * Experiment E1 (Section 5.1): Latbench per-miss stall time, base vs
 * clustered, on the base simulated configuration and the Exemplar-like
 * configuration. The paper reports 171 ns -> 32 ns (5.34x) simulated
 * and 502 ns -> 87 ns (5.77x) on the Exemplar, with bus and memory-
 * bank utilization exceeding 85% after clustering.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    const auto w = workloads::makeLatbench(size);

    // Every chase dereference misses: chains * length per round.
    const int chains = size.scale <= 1 ? 10 : size.scale == 2 ? 20 : 40;
    const int len = size.scale <= 1 ? 64 : size.scale == 2 ? 400 : 1600;
    const auto misses =
        static_cast<std::uint64_t>(chains) * static_cast<std::uint64_t>(len);

    for (const auto &[config, label] :
         {std::pair<sys::SystemConfig, const char *>{
              sys::baseConfig(), "base 500 MHz system (paper: 171 -> 32 ns, 5.34x)"},
          {sys::exemplarConfig(),
           "Exemplar-like system (paper: 502 -> 87 ns, 5.77x)"}}) {
        std::fprintf(stderr, "running latbench on %s...\n", label);
        const auto pair = harness::runPair(w, config, 1);
        std::printf("%s", harness::formatLatbench(
                              pair, config.nsPerCycle, misses, misses,
                              std::string("E1 Latbench - ") + label)
                              .c_str());
        std::printf("%s\n",
                    harness::formatDriverSummary("latbench",
                                                 pair.clust.report)
                        .c_str());
    }
    return 0;
}
