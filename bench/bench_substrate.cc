/**
 * @file
 * P1: google-benchmark microbenchmarks of the simulator substrate
 * itself — how fast the host simulates the core, caches, and compiler
 * passes. These guard against performance regressions in the simulator
 * (a slow simulator caps the experiment sizes everything else uses).
 */

#include <benchmark/benchmark.h>

#include "analysis/analysis.hh"
#include "codegen/codegen.hh"
#include "kisa/interp.hh"
#include "system/system.hh"
#include "transform/driver.hh"
#include "workloads/workload.hh"

namespace
{

using namespace mpc;

kisa::Program
streamProgram(int iters)
{
    kisa::AsmBuilder b("stream");
    const kisa::Reg r_i = 1, r_n = 2, r_base = 3;
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, iters);
    b.iLoadImm(r_base, 0x100000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(10, r_base, 0);
    b.fAdd(11, 11, 10);
    b.iAddImm(r_base, r_base, 64);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.halt();
    return b.finish();
}

void
BM_InterpreterThroughput(benchmark::State &state)
{
    const auto program = streamProgram(10000);
    for (auto _ : state) {
        kisa::MemoryImage mem;
        kisa::Interpreter interp(mem);
        interp.addCore(program);
        benchmark::DoNotOptimize(interp.run(1u << 26));
    }
    state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_InterpreterThroughput);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        kisa::MemoryImage mem;
        std::vector<kisa::Program> programs;
        programs.push_back(streamProgram(4000));
        sys::System system(sys::baseConfig(), std::move(programs), mem);
        state.ResumeTiming();
        benchmark::DoNotOptimize(system.run().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SimulatorThroughput);

void
BM_AnalysisPass(benchmark::State &state)
{
    workloads::SizeParams size;
    size.scale = 1;
    auto w = workloads::makeOcean(size);
    analysis::AnalysisParams params;
    for (auto _ : state) {
        auto nests = analysis::findLoopNests(w.kernel);
        for (auto &nest : nests) {
            benchmark::DoNotOptimize(
                analysis::analyzeInnerLoop(w.kernel, nest, params));
        }
    }
}
BENCHMARK(BM_AnalysisPass);

void
BM_ClusteringDriver(benchmark::State &state)
{
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeOcean(size);
    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    for (auto _ : state) {
        ir::Kernel kernel = w.kernel.clone();
        benchmark::DoNotOptimize(
            transform::applyClustering(kernel, params));
    }
}
BENCHMARK(BM_ClusteringDriver);

void
BM_Codegen(benchmark::State &state)
{
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeMp3d(size);
    codegen::CodegenOptions options;
    options.clusteredSchedule = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(codegen::lower(w.kernel, options));
}
BENCHMARK(BM_Codegen);

} // namespace

BENCHMARK_MAIN();
