/**
 * @file
 * P1: hand-timed microbenchmarks of the simulator substrate itself —
 * how fast the host runs the event queue, the core model, and the
 * compiler passes. These guard against performance regressions in the
 * simulator (a slow simulator caps the experiment sizes everything
 * else uses). Results go to stdout and BENCH_substrate.json.
 *
 * Usage: bench_substrate [--smoke]
 *   --smoke runs reduced sizes (a few seconds total) for CI.
 *
 * When MPC_STORE names a ResultStore, the full-workload simulation
 * rows (sim/ocean-*) are served from it when present — their items
 * column is deterministic either way; only the wall time (a host
 * measurement, never compared byte-wise) reflects the shortcut.
 */

#include "bench_common.hh"

#include <chrono>
#include <cstring>
#include <memory>

#include "analysis/analysis.hh"
#include "codegen/codegen.hh"
#include "common/logging.hh"
#include "harness/job.hh"
#include "harness/profiler.hh"
#include "harness/runner.hh"
#include "harness/store.hh"
#include "kisa/interp.hh"
#include "mem/eventq.hh"
#include "system/system.hh"
#include "transform/driver.hh"
#include "workloads/workload.hh"

namespace
{

using namespace mpc;
using clock_type = std::chrono::steady_clock;

double
secondsSince(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

std::vector<bench::JsonRun> g_runs;
std::unique_ptr<harness::ResultStore> g_store;

void
record(const std::string &label, double wall, std::uint64_t items)
{
    const double rate = wall > 0.0 ? static_cast<double>(items) / wall : 0.0;
    std::printf("%-26s %8.3fs  %12llu items  %12.0f /s\n", label.c_str(),
                wall, static_cast<unsigned long long>(items), rate);
    g_runs.push_back({label, wall, items, rate});
}

kisa::Program
streamProgram(int iters)
{
    kisa::AsmBuilder b("stream");
    const kisa::Reg r_i = 1, r_n = 2, r_base = 3;
    b.iLoadImm(r_i, 0);
    b.iLoadImm(r_n, iters);
    b.iLoadImm(r_base, 0x100000);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(10, r_base, 0);
    b.fAdd(11, 11, 10);
    b.iAddImm(r_base, r_base, 64);
    b.iAddImm(r_i, r_i, 1);
    b.bLt(r_i, r_n, loop);
    b.halt();
    return b.finish();
}

/** Self-rescheduling event chains through a queue implementation. */
template <typename Queue>
std::uint64_t
eventChurn(std::uint64_t events)
{
    Queue q;
    std::uint64_t fired = 0;
    // Four interleaved chains at staggered short delays (the hot-path
    // shape: hit/fill latencies within the calendar-wheel horizon),
    // plus one long-delay chain exercising the far-future path.
    const Tick deltas[] = {3, 7, 19, 63, 700};
    for (Tick d : deltas) {
        auto chain = [&q, &fired, d, events](auto &&self) -> void {
            if (++fired >= events)
                return;
            q.scheduleIn(d, [self]() mutable { self(self); });
        };
        q.scheduleIn(d, [chain]() mutable { chain(chain); });
    }
    while (!q.empty() && fired < events)
        q.advanceTo(q.nextEventTick());
    return fired;
}

void
benchEventQueues(std::uint64_t events)
{
    auto t0 = clock_type::now();
    const auto fired = eventChurn<mem::EventQueue>(events);
    record("eventq/wheel", secondsSince(t0), fired);

    t0 = clock_type::now();
    const auto fired_heap = eventChurn<mem::HeapEventQueue>(events);
    record("eventq/heap-oracle", secondsSince(t0), fired_heap);
}

void
benchInterpreter(int iters)
{
    const auto program = streamProgram(iters);
    kisa::MemoryImage mem;
    kisa::Interpreter interp(mem);
    interp.addCore(program);
    const auto t0 = clock_type::now();
    interp.run(1u << 26);
    record("interp/stream", secondsSince(t0),
           static_cast<std::uint64_t>(iters) * 5);
}

void
benchSimulator(int iters, bool skip_ahead, const char *label)
{
    kisa::MemoryImage mem;
    std::vector<kisa::Program> programs;
    programs.push_back(streamProgram(iters));
    auto config = sys::baseConfig();
    config.skipAhead = skip_ahead;
    sys::System system(config, std::move(programs), mem);
    const auto t0 = clock_type::now();
    const auto cycles = system.run().cycles;
    record(label, secondsSince(t0), cycles);
}

void
benchOceanRun(bool skip_ahead, const char *label)
{
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeOcean(size);
    harness::RunSpec spec;
    spec.config.skipAhead = skip_ahead;
    const auto t0 = clock_type::now();
    const auto run =
        harness::runStoredWorkload(w, spec, size.scale, g_store.get());
    record(label, secondsSince(t0), run.result.cycles);
}

void
benchShardedStepping(bool smoke)
{
    // Serial/sharded row pairs must stay honestly labeled, so pin the
    // shard count here rather than letting MPC_SHARDS (read by
    // scaleConfig inside runWorkload) relabel half the pair.
    unsetenv("MPC_SHARDS");
    workloads::SizeParams size;
    size.scale = 1;
    const auto w = workloads::makeOcean(size);
    for (int procs : {8, 16}) {
        if (smoke && procs > 8)
            continue;
        for (int shards : {0, 4}) {
            harness::RunSpec spec;
            spec.procs = procs;
            spec.config.shards = shards;
            const auto t0 = clock_type::now();
            const auto run = harness::runWorkload(w, spec);
            char label[64];
            std::snprintf(label, sizeof(label), "sim/ocean%dp-%s",
                          procs, shards > 0 ? "shard4" : "serial");
            record(label, secondsSince(t0), run.result.cycles);
        }
    }
}

void
benchProfiler(int reps)
{
    workloads::SizeParams size;
    size.scale = 2;
    const auto w = workloads::makeOcean(size);
    const auto program = codegen::lower(w.kernel);
    const auto config = harness::scaleConfig(sys::baseConfig(), w);
    const auto t0 = clock_type::now();
    std::uint64_t accesses = 0;
    for (int r = 0; r < reps; ++r) {
        kisa::MemoryImage scratch;
        w.init(scratch);
        const auto profile = harness::CacheProfile::measure(
            program, scratch, config.hier.l2);
        accesses += profile.accesses(0);
    }
    record("profiler/ocean-l2", secondsSince(t0), accesses);
}

void
benchCompiler(int reps)
{
    workloads::SizeParams size;
    size.scale = 1;
    auto w = workloads::makeOcean(size);

    auto t0 = clock_type::now();
    std::uint64_t analyzed = 0;
    for (int r = 0; r < reps; ++r) {
        auto nests = analysis::findLoopNests(w.kernel);
        analysis::AnalysisParams params;
        for (auto &nest : nests) {
            (void)analysis::analyzeInnerLoop(w.kernel, nest, params);
            ++analyzed;
        }
    }
    record("compiler/analysis", secondsSince(t0), analyzed);

    transform::DriverParams params;
    params.bodySize = codegen::loweredBodySize;
    transform::Pipeline pipeline;
    std::string error;
    if (!transform::Pipeline::parse(
            transform::pipelineSpecFromParams(params), pipeline, error))
        fatal("bad pipeline spec: %s", error.c_str());
    t0 = clock_type::now();
    for (int r = 0; r < reps; ++r) {
        ir::Kernel kernel = w.kernel.clone();
        (void)pipeline.run(kernel, params);
    }
    record("compiler/cluster-driver", secondsSince(t0),
           static_cast<std::uint64_t>(reps));
}

void
benchParallelScaling()
{
    workloads::SizeParams size;
    size.scale = 1;
    // Four independent uniprocessor base sims, serial vs pooled.
    std::vector<workloads::Workload> loads;
    for (int i = 0; i < 4; ++i)
        loads.push_back(workloads::makeOcean(size));
    auto tasks_for = [&loads] {
        std::vector<std::function<void()>> tasks;
        for (const auto &w : loads)
            tasks.push_back([&w] {
                harness::RunSpec spec;
                (void)harness::runWorkload(w, spec);
            });
        return tasks;
    };

    auto t0 = clock_type::now();
    harness::ParallelRunner(1).run(tasks_for());
    const double serial = secondsSince(t0);
    record("parallel/4xocean-1thread", serial, loads.size());

    const int threads = harness::ParallelRunner::defaultThreads();
    t0 = clock_type::now();
    harness::ParallelRunner(threads).run(tasks_for());
    const double pooled = secondsSince(t0);
    record("parallel/4xocean-pool", pooled, loads.size());
    std::printf("  pool threads: %d, speedup: %.2fx\n", threads,
                pooled > 0.0 ? serial / pooled : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    g_store = mpc::harness::ResultStore::fromEnv();

    std::printf("=== P1: simulator substrate performance%s ===\n",
                smoke ? " (smoke)" : "");
    std::printf("%-26s %9s  %18s  %14s\n", "experiment", "wall",
                "items (cycles/evts)", "rate");

    benchEventQueues(smoke ? 200000 : 2000000);
    benchInterpreter(smoke ? 10000 : 100000);
    benchSimulator(smoke ? 2000 : 20000, true, "sim/stream-skip");
    benchSimulator(smoke ? 2000 : 20000, false, "sim/stream-reference");
    benchOceanRun(true, "sim/ocean-skip");
    benchOceanRun(false, "sim/ocean-reference");
    benchShardedStepping(smoke);
    benchProfiler(smoke ? 3 : 20);
    benchCompiler(smoke ? 3 : 20);
    benchParallelScaling();

    if (g_store != nullptr) {
        const auto s = g_store->stats();
        std::fprintf(stderr, "store: %d hit(s), %d miss(es), %d bad\n",
                     s.hits, s.misses, s.bad);
    }
    bench::writeBenchJson("substrate", g_runs,
                          harness::ParallelRunner::defaultThreads(), 0.0);
    std::printf("wrote BENCH_substrate.json\n");
    return 0;
}
