/**
 * @file
 * Ablation A3: sensitivity to lp (the number of MSHRs, the hardware
 * resource the transformations aim to fill). The clustered speedup
 * should grow with the MSHR count until another resource (banks, bus)
 * saturates — the bottleneck the paper identifies for Latbench.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    std::printf("=== A3: MSHR-count (lp) sweep, Latbench and LU "
                "(uniprocessor) ===\n\n");
    for (const char *name : {"latbench", "lu"}) {
        const auto w = workloads::makeByName(name, size);
        std::printf("%s:\n", name);
        for (int mshrs : {1, 2, 4, 8, 10, 16}) {
            std::fprintf(stderr, "  %s mshrs=%d...\n", name, mshrs);
            auto config = sys::baseConfig();
            config.hier.l1.numMshrs = mshrs;
            config.hier.l2.numMshrs = mshrs;
            const auto pair = harness::runPair(w, config, 1);
            std::printf("  lp=%-2d  base %9llu  clust %9llu  "
                        "(%5.1f%% reduction)\n",
                        mshrs,
                        (unsigned long long)pair.base.result.cycles,
                        (unsigned long long)pair.clust.result.cycles,
                        pair.reductionPct());
        }
        std::printf("\n");
    }
    return 0;
}
