/**
 * @file
 * Ablation A3: sensitivity to lp (the number of MSHRs, the hardware
 * resource the transformations aim to fill). The clustered speedup
 * should grow with the MSHR count until another resource (banks, bus)
 * saturates — the bottleneck the paper identifies for Latbench.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mpc;
    const auto size = bench::scaleFromEnv();
    std::printf("=== A3: MSHR-count (lp) sweep, Latbench and LU "
                "(uniprocessor) ===\n\n");
    const int mshr_counts[] = {1, 2, 4, 8, 10, 16};
    std::vector<harness::PairJob> jobs;
    for (const char *name : {"latbench", "lu"}) {
        for (int mshrs : mshr_counts) {
            harness::PairJob job;
            job.label = std::string(name) + "/lp" + std::to_string(mshrs);
            job.workload = workloads::makeByName(name, size);
            job.config = bench::applyStepMode(sys::baseConfig());
            job.config.hier.l1.numMshrs = mshrs;
            job.config.hier.l2.numMshrs = mshrs;
            job.procs = 1;
            job.scale = size.scale;
            jobs.push_back(std::move(job));
        }
    }
    std::fprintf(stderr, "running %zu sweep points in parallel...\n",
                 jobs.size());
    const auto results = harness::runPairsParallel(jobs);
    std::size_t i = 0;
    for (const char *name : {"latbench", "lu"}) {
        std::printf("%s:\n", name);
        for (int mshrs : mshr_counts) {
            const auto &pair = results[i++].pair;
            std::printf("  lp=%-2d  base %9llu  clust %9llu  "
                        "(%5.1f%% reduction)\n",
                        mshrs,
                        (unsigned long long)pair.base.result.cycles,
                        (unsigned long long)pair.clust.result.cycles,
                        pair.reductionPct());
        }
        std::printf("\n");
    }
    return 0;
}
