/**
 * @file
 * Integration tests for the store-backed execution path and the
 * experiment farm (harness/job.hh runStoredWorkload, harness/farm.hh):
 * warm runs serve every counter the benches print bit-exactly, a
 * killed sweep resumes with zero re-simulation and byte-identical
 * output, worker crashes retry then quarantine, and the job-stream
 * parser rejects malformed lines with a line number.
 *
 * Subprocess-mode tests exec the real mpcfarm binary (path baked in by
 * CMake as MPCFARM_BIN), exactly what `mpcfarm jobs.txt` does.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "harness/farm.hh"
#include "harness/job.hh"
#include "harness/parallel.hh"
#include "harness/store.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{
namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

Job
latbenchJob(bool clustered)
{
    Job job;
    job.workload = "latbench";
    job.scale = 1;
    job.spec.clustered = clustered;
    return job;
}

std::vector<Job>
pairJobs()
{
    return {latbenchJob(false), latbenchJob(true)};
}

TEST(RunStoredWorkload, WarmRunServesIdenticalCounters)
{
    ResultStore store(freshDir("job_warm"));
    const workloads::SizeParams size{.scale = 1};
    const workloads::Workload w = workloads::makeLatbench(size);
    RunSpec spec;

    bool from_store = true;
    const WorkloadRun cold =
        runStoredWorkload(w, spec, 1, &store, &from_store);
    EXPECT_FALSE(from_store);
    EXPECT_GT(cold.result.cycles, 0u);

    const WorkloadRun warm =
        runStoredWorkload(w, spec, 1, &store, &from_store);
    EXPECT_TRUE(from_store);
    // Everything a figure bench prints must match bit-for-bit.
    EXPECT_EQ(warm.result.cycles, cold.result.cycles);
    EXPECT_EQ(warm.result.instructions, cold.result.instructions);
    EXPECT_EQ(warm.result.busyCycles, cold.result.busyCycles);
    EXPECT_EQ(warm.result.dataReadCycles, cold.result.dataReadCycles);
    EXPECT_EQ(warm.result.busUtilization, cold.result.busUtilization);
    EXPECT_EQ(warm.result.bankUtilization, cold.result.bankUtilization);
    EXPECT_EQ(warm.result.l2ReadMshr.meanLevel(),
              cold.result.l2ReadMshr.meanLevel());
    EXPECT_EQ(warm.result.l2ReadMshr.fracAtLeast(1),
              cold.result.l2ReadMshr.fracAtLeast(1));
    EXPECT_EQ(warm.result.l2TotalMshr.totalTicks(),
              cold.result.l2TotalMshr.totalTicks());
    // The report summary the benches fold in round-trips too.
    EXPECT_EQ(warm.report.toJson(), cold.report.toJson());
    // Manifests match except host, which is blanked in the store.
    EXPECT_EQ(warm.manifestJson, blankManifestHost(cold.manifestJson));
}

TEST(RunJob, UnknownWorkloadFailsSoftly)
{
    Job job;
    job.workload = "no-such-workload";
    const JobResult r = runJob(job, nullptr);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(ParseJobStream, AcceptsJsonlWithCommentsAndNamesBadLines)
{
    std::stringstream good;
    good << "# a comment\n"
         << latbenchJob(false).toJson() << "\n\n"
         << latbenchJob(true).toJson() << "\n";
    std::vector<Job> jobs;
    std::string error;
    ASSERT_TRUE(parseJobStream(good, jobs, error)) << error;
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_FALSE(jobs[0].spec.clustered);
    EXPECT_TRUE(jobs[1].spec.clustered);

    std::stringstream bad;
    bad << latbenchJob(false).toJson() << "\n"
        << "{\"schema\": \"mpc-job-v1\", \"workload\": \"nope\"}\n";
    jobs.clear();
    EXPECT_FALSE(parseJobStream(bad, jobs, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Farm, InProcessColdThenWarmIsByteIdenticalWithZeroResim)
{
    ResultStore store(freshDir("farm_warm"));
    const std::vector<Job> jobs = pairJobs();
    FarmOptions opts;
    opts.inProcess = true;

    const FarmReport cold = runFarm(jobs, store, opts);
    EXPECT_EQ(cold.simulated, 2);
    EXPECT_EQ(cold.hits, 0);
    EXPECT_EQ(cold.failed, 0);
    ASSERT_EQ(cold.jobs.size(), 2u);
    EXPECT_GT(cold.jobs[0].cycles, 0u);

    const FarmReport warm = runFarm(jobs, store, opts);
    EXPECT_EQ(warm.simulated, 0);
    EXPECT_EQ(warm.hits, 2);
    // The merged report is byte-identical — hit/miss state must be
    // invisible in it.
    EXPECT_EQ(warm.toString(jobs), cold.toString(jobs));
}

TEST(Farm, KilledSweepResumesFromStoreWithIdenticalOutput)
{
    ResultStore store(freshDir("farm_resume"));
    const std::vector<Job> jobs = pairJobs();

    // "Kill" after one completion: the maxJobs hook stops dispatch at
    // the same place a SIGKILL mid-sweep would.
    FarmOptions killed;
    killed.inProcess = true;
    killed.maxJobs = 1;
    const FarmReport partial = runFarm(jobs, store, killed);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.simulated, 1);

    // Resume: one hit (the completed job), one fresh simulation,
    // nothing re-simulated.
    FarmOptions resume;
    resume.inProcess = true;
    const FarmReport resumed = runFarm(jobs, store, resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.hits, 1);
    EXPECT_EQ(resumed.simulated, 1);
    EXPECT_EQ(resumed.failed, 0);

    // And the resumed output matches an uninterrupted cold sweep over
    // a fresh store, byte for byte.
    ResultStore fresh(freshDir("farm_resume_fresh"));
    const FarmReport uninterrupted = runFarm(jobs, fresh, resume);
    EXPECT_EQ(resumed.toString(jobs), uninterrupted.toString(jobs));
}

TEST(Farm, SubprocessWorkersProduceTheSameReportAsInProcess)
{
    ResultStore store(freshDir("farm_subproc"));
    const std::vector<Job> jobs = pairJobs();
    FarmOptions opts;
    opts.workers = 2;
    opts.workerBinary = MPCFARM_BIN;

    const FarmReport cold = runFarm(jobs, store, opts);
    EXPECT_EQ(cold.simulated, 2);
    EXPECT_EQ(cold.failed, 0);

    ResultStore fresh(freshDir("farm_subproc_ref"));
    FarmOptions in_process;
    in_process.inProcess = true;
    const FarmReport reference = runFarm(jobs, fresh, in_process);
    EXPECT_EQ(cold.toString(jobs), reference.toString(jobs));

    // Warm subprocess rerun: all hits, no workers even needed.
    const FarmReport warm = runFarm(jobs, store, opts);
    EXPECT_EQ(warm.hits, 2);
    EXPECT_EQ(warm.simulated, 0);
    EXPECT_EQ(warm.toString(jobs), cold.toString(jobs));
}

TEST(Farm, CrashingWorkerRetriesThenQuarantinesWithoutHanging)
{
    ResultStore store(freshDir("farm_crash"));
    const std::vector<Job> jobs = {latbenchJob(false)};
    FarmOptions opts;
    opts.workers = 1;
    opts.retries = 1;
    opts.workerBinary = MPCFARM_BIN;

    ::setenv("MPC_FARM_TEST_CRASH", "latbench", 1);
    const FarmReport report = runFarm(jobs, store, opts);
    ::unsetenv("MPC_FARM_TEST_CRASH");

    EXPECT_EQ(report.failed, 1);
    ASSERT_EQ(report.jobs.size(), 1u);
    EXPECT_FALSE(report.jobs[0].ok);
    EXPECT_TRUE(report.jobs[0].quarantined);
    // 1 + retries dispatches, no more.
    EXPECT_EQ(report.jobs[0].attempts, 2);
    EXPECT_TRUE(std::filesystem::exists(
        store.dir() + "/quarantine/job_" + report.jobs[0].key +
        ".json"));

    // The quarantine is per-run state, not a poison pill: with the
    // crash injection gone the same job file completes.
    const FarmReport healed = runFarm(jobs, store, opts);
    EXPECT_EQ(healed.failed, 0);
    EXPECT_EQ(healed.simulated, 1);
}

TEST(ParallelRunner, StoreBackedPairsAreIdenticalWarmAndCold)
{
    const std::string dir = freshDir("pairs_store");
    ::setenv("MPC_STORE", dir.c_str(), 1);

    const workloads::SizeParams size{.scale = 1};
    const auto make_jobs = [&size] {
        std::vector<PairJob> jobs(1);
        jobs[0].workload = workloads::makeLatbench(size);
        jobs[0].label = "latbench";
        jobs[0].config = sys::baseConfig();
        jobs[0].procs = 1;
        jobs[0].scale = size.scale;
        return jobs;
    };
    auto cold_jobs = make_jobs();
    const auto cold = runPairsParallel(cold_jobs);
    auto warm_jobs = make_jobs();
    const auto warm = runPairsParallel(warm_jobs);
    ::unsetenv("MPC_STORE");

    ASSERT_EQ(cold.size(), 1u);
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_EQ(warm[0].pair.base.result.cycles,
              cold[0].pair.base.result.cycles);
    EXPECT_EQ(warm[0].pair.clust.result.cycles,
              cold[0].pair.clust.result.cycles);
    EXPECT_EQ(warm[0].pair.reductionPct(), cold[0].pair.reductionPct());
    EXPECT_EQ(warm[0].pair.base.result.l2ReadMshr.meanLevel(),
              cold[0].pair.base.result.l2ReadMshr.meanLevel());
}

} // namespace
} // namespace mpc::harness
