/**
 * @file
 * Unit tests for src/common: types helpers, stats containers, RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mpc
{
namespace
{

TEST(Types, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200u);
    EXPECT_EQ(alignDown(0x1200, 64), 0x1200u);
    EXPECT_EQ(alignUp(0x1201, 64), 0x1240u);
    EXPECT_EQ(alignUp(0x1200, 64), 0x1200u);
}

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
}

TEST(Types, PowerOf2AndLog2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_EQ(log2Floor(1), 0);
    EXPECT_EQ(log2Floor(64), 6);
}

TEST(StatSummary, Basics)
{
    StatSummary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(StatSummary, Merge)
{
    StatSummary a, b;
    a.sample(1.0);
    b.sample(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(OccupancyHistogram, FracAtLeast)
{
    OccupancyHistogram h(10);
    h.record(0, 50);
    h.record(2, 30);
    h.record(5, 20);
    EXPECT_EQ(h.totalTicks(), 100u);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(0), 1.0);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(2), 0.5);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(3), 0.2);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(6), 0.0);
}

TEST(OccupancyHistogram, ClampsAboveMax)
{
    OccupancyHistogram h(4);
    h.record(9, 10);  // clamps to level 4
    EXPECT_EQ(h.ticksAt(4), 10u);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(4), 1.0);
}

TEST(OccupancyHistogram, MeanLevel)
{
    OccupancyHistogram h(10);
    h.record(2, 50);
    h.record(4, 50);
    EXPECT_DOUBLE_EQ(h.meanLevel(), 3.0);
}

TEST(OccupancyHistogram, Merge)
{
    OccupancyHistogram a(10), b(10);
    a.record(1, 10);
    b.record(3, 10);
    a.merge(b);
    EXPECT_EQ(a.totalTicks(), 20u);
    EXPECT_DOUBLE_EQ(a.fracAtLeast(2), 0.5);
}

TEST(OccupancyHistogram, MeanLevelAtLeast)
{
    OccupancyHistogram h(10);
    h.record(0, 100);
    h.record(1, 20);
    h.record(2, 90);
    // Conditioned on >= 1: (20*1 + 90*2) / 110.
    EXPECT_DOUBLE_EQ(h.meanLevelAtLeast(1), 200.0 / 110.0);
    // Conditioned on >= 2: all remaining time is at level 2.
    EXPECT_DOUBLE_EQ(h.meanLevelAtLeast(2), 2.0);
    // Nothing at or above 3.
    EXPECT_DOUBLE_EQ(h.meanLevelAtLeast(3), 0.0);
    // Floor 0 is the plain time-weighted mean.
    EXPECT_DOUBLE_EQ(h.meanLevelAtLeast(0), h.meanLevel());
}

TEST(OccupancyHistogram, MeanLevelAtLeastEmpty)
{
    OccupancyHistogram h(4);
    EXPECT_DOUBLE_EQ(h.meanLevelAtLeast(1), 0.0);
}

TEST(CountHistogram, RecordAndQuery)
{
    CountHistogram h;
    h.record(1);
    h.record(2);
    h.record(2);
    h.record(5);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.maxRecorded(), 5);
    EXPECT_EQ(h.countAt(1), 1u);
    EXPECT_EQ(h.countAt(2), 2u);
    EXPECT_EQ(h.countAt(3), 0u);
    EXPECT_EQ(h.countAt(5), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0 / 4.0);
    EXPECT_EQ(h.countAt(-1), 0u);
    EXPECT_EQ(h.countAt(99), 0u);
}

TEST(CountHistogram, ClampsToMaxValueAndNegatives)
{
    CountHistogram h(3);
    h.record(-5);   // clamps to 0
    h.record(7);    // clamps to 3
    EXPECT_EQ(h.countAt(0), 1u);
    EXPECT_EQ(h.countAt(3), 1u);
    EXPECT_EQ(h.maxRecorded(), 3);
}

TEST(CountHistogram, Merge)
{
    CountHistogram a, b;
    a.record(1);
    b.record(1);
    b.record(4);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.countAt(1), 2u);
    EXPECT_EQ(a.countAt(4), 1u);

    // Merging into a clamped histogram clamps the source values too.
    CountHistogram c(2);
    c.merge(b);
    EXPECT_EQ(c.total(), 2u);
    EXPECT_EQ(c.countAt(1), 1u);
    EXPECT_EQ(c.countAt(2), 1u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t;
    t.setHeader({"app", "base", "clust"});
    t.addRow({"LU", "100.0", "78.3"});
    t.addRow({"Erlebacher", "100.0", "69.8"});
    const std::string out = t.render();
    EXPECT_NE(out.find("app"), std::string::npos);
    EXPECT_NE(out.find("Erlebacher"), std::string::npos);
    // Header separator row present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Format, Helpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.1234, 1), "12.3%");
}

} // namespace
} // namespace mpc
