/**
 * @file
 * Unit tests for src/common: types helpers, stats containers, RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mpc
{
namespace
{

TEST(Types, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200u);
    EXPECT_EQ(alignDown(0x1200, 64), 0x1200u);
    EXPECT_EQ(alignUp(0x1201, 64), 0x1240u);
    EXPECT_EQ(alignUp(0x1200, 64), 0x1200u);
}

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
}

TEST(Types, PowerOf2AndLog2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_EQ(log2Floor(1), 0);
    EXPECT_EQ(log2Floor(64), 6);
}

TEST(StatSummary, Basics)
{
    StatSummary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(StatSummary, Merge)
{
    StatSummary a, b;
    a.sample(1.0);
    b.sample(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(OccupancyHistogram, FracAtLeast)
{
    OccupancyHistogram h(10);
    h.record(0, 50);
    h.record(2, 30);
    h.record(5, 20);
    EXPECT_EQ(h.totalTicks(), 100u);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(0), 1.0);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(2), 0.5);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(3), 0.2);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(6), 0.0);
}

TEST(OccupancyHistogram, ClampsAboveMax)
{
    OccupancyHistogram h(4);
    h.record(9, 10);  // clamps to level 4
    EXPECT_EQ(h.ticksAt(4), 10u);
    EXPECT_DOUBLE_EQ(h.fracAtLeast(4), 1.0);
}

TEST(OccupancyHistogram, MeanLevel)
{
    OccupancyHistogram h(10);
    h.record(2, 50);
    h.record(4, 50);
    EXPECT_DOUBLE_EQ(h.meanLevel(), 3.0);
}

TEST(OccupancyHistogram, Merge)
{
    OccupancyHistogram a(10), b(10);
    a.record(1, 10);
    b.record(3, 10);
    a.merge(b);
    EXPECT_EQ(a.totalTicks(), 20u);
    EXPECT_DOUBLE_EQ(a.fracAtLeast(2), 0.5);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t;
    t.setHeader({"app", "base", "clust"});
    t.addRow({"LU", "100.0", "78.3"});
    t.addRow({"Erlebacher", "100.0", "69.8"});
    const std::string out = t.render();
    EXPECT_NE(out.find("app"), std::string::npos);
    EXPECT_NE(out.find("Erlebacher"), std::string::npos);
    // Header separator row present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Format, Helpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.1234, 1), "12.3%");
}

} // namespace
} // namespace mpc
