/**
 * @file
 * Unit tests for the experiment farm's job and store layers
 * (harness/job.hh, harness/store.hh): RunSpec/Job/JobResult JSON
 * round-trips, content-key stability and per-field sensitivity,
 * ResultStore durability semantics (atomic writes, corrupt-entry
 * quarantine, concurrent same-key writers), and store eligibility.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "harness/job.hh"
#include "harness/manifest.hh"
#include "harness/store.hh"
#include "workloads/workload.hh"

namespace mpc::harness
{
namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

workloads::Workload
tinyLatbench()
{
    workloads::SizeParams size;
    size.scale = 1;
    return workloads::makeLatbench(size);
}

// ---------------------------------------------------------------------
// ResultStore semantics.

TEST(ResultStore, PutGetRoundTripWithShardedLayoutAndStats)
{
    ResultStore store(freshDir("store_roundtrip"));
    const std::string key = "a1b2c3d4e5f60718a1b2c3d4e5f60718";
    const std::string value = "{\"cycles\": 42}";

    std::string got;
    EXPECT_FALSE(store.get(key, got));  // cold: miss
    EXPECT_TRUE(store.put(key, value));
    EXPECT_TRUE(store.get(key, got));
    EXPECT_EQ(got, value);

    // Two-level sharding by key prefix.
    EXPECT_EQ(store.pathFor(key),
              store.dir() + "/a1/b2/" + key + ".json");
    EXPECT_TRUE(std::filesystem::exists(store.pathFor(key)));

    const auto s = store.stats();
    EXPECT_EQ(s.hits, 1);
    EXPECT_EQ(s.misses, 1);
    EXPECT_EQ(s.bad, 0);
    EXPECT_EQ(s.writes, 1);
}

TEST(ResultStore, RejectsImplausibleKeys)
{
    EXPECT_TRUE(ResultStore::validKey("0123456789abcdef"));
    EXPECT_FALSE(ResultStore::validKey(""));
    EXPECT_FALSE(ResultStore::validKey("abc"));          // too short
    EXPECT_FALSE(ResultStore::validKey("0123456789ABCDEF")); // upper
    EXPECT_FALSE(ResultStore::validKey("0123456/89abcdef")); // not hex
}

TEST(ResultStore, CorruptEntryIsQuarantinedAndReportedAsMiss)
{
    ResultStore store(freshDir("store_corrupt"));
    const std::string key = "deadbeefdeadbeefdeadbeefdeadbeef";
    ASSERT_TRUE(store.put(key, "{\"ok\": true}"));

    // Truncate the entry in place — a torn write or hand edit.
    {
        std::ofstream out(store.pathFor(key), std::ios::trunc);
        out << "{\"ok\": tru";
    }
    std::string got;
    EXPECT_FALSE(store.get(key, got));
    EXPECT_EQ(store.stats().bad, 1);
    // The damaged file moved aside (evidence, never deleted) and the
    // slot is empty, so a rerun repairs it with a fresh put.
    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
    EXPECT_TRUE(std::filesystem::exists(store.dir() + "/quarantine/" +
                                        key + ".json"));
    EXPECT_TRUE(store.put(key, "{\"ok\": true}"));
    EXPECT_TRUE(store.get(key, got));
}

TEST(ResultStore, ConcurrentSameKeyWritersNeverTearAnEntry)
{
    ResultStore store(freshDir("store_race"));
    const std::string key = "0011223344556677001122334455667788";
    // Two large distinct-but-valid values: if rename were not atomic,
    // a reader would catch a mix and fail to parse.
    std::string a = "{\"who\": \"a\", \"pad\": \"";
    std::string b = "{\"who\": \"b\", \"pad\": \"";
    a += std::string(64 * 1024, 'a') + "\"}";
    b += std::string(64 * 1024, 'b') + "\"}";

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread wa([&] {
        for (int i = 0; i < 50; ++i)
            store.put(key, a);
    });
    std::thread wb([&] {
        for (int i = 0; i < 50; ++i)
            store.put(key, b);
    });
    std::thread reader([&] {
        ResultStore other(store.dir());  // fresh instance, own stats
        while (!stop.load()) {
            std::string got;
            if (!other.get(key, got))
                continue;   // not yet written
            json::Value v;
            if (!json::parse(got, v) || (got != a && got != b))
                ++torn;
        }
    });
    wa.join();
    wb.join();
    stop.store(true);
    reader.join();
    EXPECT_EQ(torn.load(), 0);
    std::string got;
    EXPECT_TRUE(store.get(key, got));
    EXPECT_TRUE(got == a || got == b);
}

// ---------------------------------------------------------------------
// RunSpec / Job serialization.

TEST(JobJson, RunSpecRoundTripsEverySimRelevantField)
{
    RunSpec spec;
    spec.config = sys::exemplarConfig();
    spec.config.skipAhead = false;
    spec.config.hier.l2.numMshrs = 7;
    spec.config.membus.interleave = mem::Interleave::Skewed;
    spec.config.core.numAlus = 3;
    spec.procs = 4;
    spec.clustered = true;
    spec.maxUnroll = 9;
    spec.maxCycles = Tick(12345678901234ull);
    spec.pipeline = "fuse,cluster(maxDegree=4),prefetch(dist=2)";
    spec.dumpIr = "after-cluster";
    spec.execTier = "interp";

    const std::string text = runSpecToJson(spec);
    json::Value v;
    ASSERT_TRUE(json::parse(text, v));
    RunSpec back;
    std::string error;
    ASSERT_TRUE(runSpecFromJson(v, back, error)) << error;

    // Byte-exact re-serialization is the round-trip invariant the farm
    // pipes depend on.
    EXPECT_EQ(runSpecToJson(back), text);
    EXPECT_EQ(back.procs, 4);
    EXPECT_TRUE(back.clustered);
    EXPECT_EQ(back.maxUnroll, 9);
    EXPECT_EQ(back.maxCycles, Tick(12345678901234ull));
    EXPECT_EQ(back.pipeline, spec.pipeline);
    EXPECT_EQ(back.dumpIr, "after-cluster");
    EXPECT_EQ(back.execTier, "interp");
    EXPECT_FALSE(back.config.skipAhead);
    EXPECT_EQ(back.config.hier.l2.numMshrs, 7);
    EXPECT_EQ(back.config.membus.interleave, mem::Interleave::Skewed);
    EXPECT_EQ(back.config.core.numAlus, 3);
    // The config key — everything the simulator reads — must survive.
    EXPECT_EQ(configKey(back.config, 4), configKey(spec.config, 4));
}

TEST(JobJson, JobIsSingleLineAndRoundTrips)
{
    Job job;
    job.workload = "fft";
    job.scale = 1;
    job.spec.procs = 2;
    job.spec.clustered = true;

    const std::string line = job.toJson();
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;

    Job back;
    std::string error;
    ASSERT_TRUE(Job::fromJson(line, back, error)) << error;
    EXPECT_EQ(back.workload, "fft");
    EXPECT_EQ(back.scale, 1);
    EXPECT_EQ(back.spec.procs, 2);
    EXPECT_TRUE(back.spec.clustered);
    EXPECT_EQ(back.toJson(), line);
}

TEST(JobJson, RejectsBadSchemaAndUnknownWorkload)
{
    Job out;
    std::string error;
    EXPECT_FALSE(Job::fromJson("{\"schema\": \"bogus\"}", out, error));
    EXPECT_FALSE(error.empty());
    Job job;
    job.workload = "no-such-workload";
    EXPECT_FALSE(Job::fromJson(job.toJson(), out, error));
    EXPECT_FALSE(Job::fromJson("not json at all", out, error));
}

// ---------------------------------------------------------------------
// Content keys.

TEST(JobKey, GoldenFnvVectorsAnchorTheHash)
{
    // The key halves are FNV-1a digests; these are the canonical
    // vectors, so a drive-by "optimization" of the hash cannot
    // silently orphan every existing store.
    EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(JobKey, ComposedFromKernelAndKeyTextHalves)
{
    const workloads::Workload w = tinyLatbench();
    RunSpec spec;
    const std::string key = jobKeyFor(w, spec, 1);
    ASSERT_EQ(key.size(), 32u);
    EXPECT_TRUE(ResultStore::validKey(key));
    EXPECT_EQ(key, json::hex64(fnv1a(w.kernel.toString())) +
                       json::hex64(fnv1a(jobKeyText(w, spec, 1))));
    // Stable across calls and across the Job-based spelling.
    EXPECT_EQ(key, jobKeyFor(w, spec, 1));
    Job job;
    job.workload = "latbench";
    job.scale = 1;
    job.spec = spec;
    EXPECT_EQ(jobKey(job), key);
}

TEST(JobKey, EverySpecFieldFlipsTheKey)
{
    const workloads::Workload w = tinyLatbench();
    const RunSpec base;
    const std::string key = jobKeyFor(w, base, 1);

    const auto mutated = [&](auto edit) {
        RunSpec spec = base;
        edit(spec);
        return jobKeyFor(w, spec, 1);
    };
    EXPECT_NE(key, mutated([](RunSpec &s) { s.procs = 2; }));
    EXPECT_NE(key, mutated([](RunSpec &s) { s.clustered = true; }));
    EXPECT_NE(key, mutated([](RunSpec &s) { s.maxUnroll = 4; }));
    EXPECT_NE(key, mutated([](RunSpec &s) { s.maxCycles = 1000; }));
    EXPECT_NE(key,
              mutated([](RunSpec &s) { s.pipeline = "fuse,cluster"; }));
    EXPECT_NE(key, mutated([](RunSpec &s) { s.execTier = "interp"; }));
    EXPECT_NE(key,
              mutated([](RunSpec &s) { s.config.skipAhead = false; }));
    EXPECT_NE(key, mutated([](RunSpec &s) {
        s.config.hier.l2.numMshrs = 3;
    }));
    EXPECT_NE(key, mutated([](RunSpec &s) {
        s.config.membus.interleave = mem::Interleave::Skewed;
    }));
    EXPECT_NE(key, mutated([](RunSpec &s) { s.config.core.numAlus = 9; }));
    // Scale and workload land in the key too.
    EXPECT_NE(key, jobKeyFor(w, base, 2));
    workloads::SizeParams size;
    size.scale = 1;
    EXPECT_NE(key, jobKeyFor(workloads::makeFft(size), base, 1));
}

TEST(JobKey, ShardsNeverMoveTheKey)
{
    // Sharded stepping is bit-identical to the single-thread stepper,
    // so — like the obs/validate toggles — the shard count is
    // provenance, not configuration: a warm store hit must serve a
    // result computed at any shard count.
    const workloads::Workload w = tinyLatbench();
    RunSpec base;
    const std::string key = jobKeyFor(w, base, 1);
    for (int shards : {1, 4, 64}) {
        RunSpec spec = base;
        spec.config.shards = shards;
        EXPECT_EQ(jobKeyFor(w, spec, 1), key) << "shards=" << shards;
        EXPECT_EQ(configKey(spec.config, 1), configKey(base.config, 1));
    }
    // ...but it does land in the manifest, as provenance.
    base.config.shards = 4;
    const RunManifest m =
        makeRunManifest("latbench", "", base.config, 1, "none");
    EXPECT_NE(m.toJson().find("\"shards\": 4"), std::string::npos);
}

// ---------------------------------------------------------------------
// JobResult serialization.

TEST(JobResultJson, RoundTripPreservesCountersAndHistograms)
{
    JobResult r;
    r.ok = true;
    r.result.cycles = 123456789;
    r.result.nsPerCycle = 1.25;
    r.result.instructions = 42424242;
    r.result.busyCycles = 1111;
    r.result.dataReadCycles = 2222;
    r.result.dataWriteCycles = 3333;
    r.result.syncCycles = 444;
    r.result.cpuCycles = 5555;
    r.result.instrCycles = 666;
    r.result.busUtilization = 0.375;
    r.result.bankUtilization = 0.1234567890123;
    OccupancyHistogram read_hist(4);
    read_hist.record(0, 10);
    read_hist.record(2, 30);
    read_hist.record(4, 5);
    r.result.l2ReadMshr = read_hist;
    OccupancyHistogram total_hist(2);
    total_hist.record(1, 7);
    r.result.l2TotalMshr = total_hist;
    r.manifestJson =
        makeRunManifest("latbench", "kernel-text", sys::baseConfig(), 1,
                        "")
            .toJson();

    JobResult back;
    ASSERT_TRUE(JobResult::fromJson(r.toJson(), back));
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.result.cycles, r.result.cycles);
    EXPECT_EQ(back.result.instructions, r.result.instructions);
    EXPECT_EQ(back.result.busyCycles, r.result.busyCycles);
    EXPECT_EQ(back.result.dataReadCycles, r.result.dataReadCycles);
    EXPECT_EQ(back.result.dataWriteCycles, r.result.dataWriteCycles);
    EXPECT_EQ(back.result.syncCycles, r.result.syncCycles);
    EXPECT_EQ(back.result.cpuCycles, r.result.cpuCycles);
    EXPECT_EQ(back.result.instrCycles, r.result.instrCycles);
    // Doubles render via %.17g, so they round-trip exactly — the
    // warm/cold stdout byte-identity guarantee rests on this.
    EXPECT_EQ(back.result.nsPerCycle, r.result.nsPerCycle);
    EXPECT_EQ(back.result.busUtilization, r.result.busUtilization);
    EXPECT_EQ(back.result.bankUtilization, r.result.bankUtilization);
    EXPECT_EQ(back.result.l2ReadMshr.maxLevel(), 4);
    EXPECT_EQ(back.result.l2ReadMshr.ticksAt(0), Tick(10));
    EXPECT_EQ(back.result.l2ReadMshr.ticksAt(2), Tick(30));
    EXPECT_EQ(back.result.l2ReadMshr.ticksAt(4), Tick(5));
    EXPECT_EQ(back.result.l2ReadMshr.totalTicks(), Tick(45));
    EXPECT_EQ(back.result.l2TotalMshr.maxLevel(), 2);
    EXPECT_EQ(back.result.l2TotalMshr.ticksAt(1), Tick(7));

    // Serialize-parse-serialize is a fixed point.
    EXPECT_EQ(back.toJson(), r.toJson());
    EXPECT_FALSE(JobResult::fromJson("{\"schema\": \"nope\"}", back));
}

TEST(JobResultJson, FailedResultCarriesTheError)
{
    JobResult r;
    r.ok = false;
    r.error = "worker exploded";
    JobResult back;
    ASSERT_TRUE(JobResult::fromJson(r.toJson(), back));
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, "worker exploded");
}

TEST(BlankManifestHost, BlanksHostAndIsIdentityOnGarbage)
{
    const std::string manifest =
        makeRunManifest("fft", "k", sys::baseConfig(), 1, "").toJson();
    const std::string blanked = blankManifestHost(manifest);
    json::Value v;
    ASSERT_TRUE(json::parse(blanked, v));
    EXPECT_EQ(json::strField(v, "host"), "");
    EXPECT_EQ(json::strField(v, "workload"), "fft");
    EXPECT_EQ(blankManifestHost("not json"), "not json");
}

// ---------------------------------------------------------------------
// Store eligibility.

TEST(StoreEligible, DumpIrAndInstrumentationEnvsBypassTheStore)
{
    RunSpec spec;
    EXPECT_TRUE(storeEligible(spec));
    spec.dumpIr = "after-cluster";
    EXPECT_FALSE(storeEligible(spec));
    spec.dumpIr.clear();

    for (const char *env : {"MPC_VALIDATE", "MPC_OBS", "MPC_TRACE",
                            "MPC_SAMPLE", "MPC_VERIFY_PASSES"}) {
        ASSERT_EQ(std::getenv(env), nullptr)
            << env << " leaked into the test environment";
        ::setenv(env, "1", 1);
        EXPECT_FALSE(storeEligible(spec)) << env;
        ::unsetenv(env);
    }
    EXPECT_TRUE(storeEligible(spec));
}

} // namespace
} // namespace mpc::harness
