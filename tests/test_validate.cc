/**
 * @file
 * Validation-layer tests: clean runs must produce zero failures and
 * bit-identical results with validation on or off, and each injected
 * fault class — corrupted register, leaked MSHR, stale directory
 * sharer, stalled core — must be caught and reported.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/continuation.hh"
#include "kisa/program.hh"
#include "system/system.hh"

namespace mpc
{
namespace
{

using kisa::AsmBuilder;
using kisa::Program;

/** A loop with loads, FP arithmetic, stores, and a loop branch. */
Program
loopProgram(int iters, Addr base)
{
    AsmBuilder b("loop");
    b.iLoadImm(1, static_cast<std::int64_t>(base));
    b.iLoadImm(2, 0);
    b.iLoadImm(3, iters);
    auto loop = b.newLabel();
    b.bind(loop);
    b.ldF(4, 1, 0);
    b.fAdd(4, 4, 4);
    b.stF(1, 8, 4);
    b.iAddImm(1, 1, 64);
    b.iAddImm(2, 2, 1);
    b.bLt(2, 3, loop);
    b.halt();
    return b.finish();
}

/** Per-core loop over a disjoint stripe of a shared array, with reads
 *  of every other core's stripe after a barrier (coherence traffic). */
std::vector<Program>
sharingPrograms(int cores, int iters, Addr base)
{
    std::vector<Program> ps;
    for (int c = 0; c < cores; ++c) {
        AsmBuilder b("share");
        b.iLoadImm(1, static_cast<std::int64_t>(
                          base + static_cast<Addr>(c) * 8192));
        b.iLoadImm(2, 0);
        b.iLoadImm(3, iters);
        auto loop = b.newLabel();
        b.bind(loop);
        b.ldF(4, 1, 0);
        b.fAdd(4, 4, 4);
        b.stF(1, 0, 4);
        b.iAddImm(1, 1, 64);
        b.iAddImm(2, 2, 1);
        b.bLt(2, 3, loop);
        b.barrier();
        // Read the next core's stripe: remote/cache-to-cache misses.
        b.iLoadImm(1, static_cast<std::int64_t>(
                          base + static_cast<Addr>((c + 1) % cores) *
                                     8192));
        b.iLoadImm(2, 0);
        auto loop2 = b.newLabel();
        b.bind(loop2);
        b.ldF(4, 1, 0);
        b.iAddImm(1, 1, 64);
        b.iAddImm(2, 2, 1);
        b.bLt(2, 3, loop2);
        b.barrier();
        b.halt();
        ps.push_back(b.finish());
    }
    return ps;
}

sys::SystemConfig
validatedConfig(bool fail_fast = false)
{
    auto cfg = sys::baseConfig();
    cfg.validate = true;
    cfg.validateFailFast = fail_fast;
    return cfg;
}

TEST(Validate, CleanUniprocessorRunHasNoFailures)
{
    for (const bool skip : {true, false}) {
        kisa::MemoryImage image;
        std::vector<Program> ps;
        ps.push_back(loopProgram(200, 0x100000));
        auto cfg = validatedConfig();
        cfg.skipAhead = skip;
        sys::System s(cfg, std::move(ps), image);
        auto r = s.run();
        ASSERT_NE(s.validator(), nullptr);
        EXPECT_TRUE(s.validator()->failures().empty())
            << s.validator()->report();
        EXPECT_GT(s.validator()->trace().recorded(), 0u);
        EXPECT_GT(r.instructions, 0u);
    }
}

TEST(Validate, CleanMultiprocessorRunHasNoFailures)
{
    for (const bool skip : {true, false}) {
        kisa::MemoryImage image;
        auto cfg = validatedConfig();
        cfg.skipAhead = skip;
        // Audit often so the structural checks actually run mid-flight.
        cfg.validateAuditPeriod = 256;
        sys::System s(cfg, sharingPrograms(4, 100, 0x100000), image);
        s.run();
        EXPECT_TRUE(s.validator()->failures().empty())
            << s.validator()->report();
    }
}

TEST(Validate, ValidationDoesNotPerturbResults)
{
    sys::RunResult results[2];
    for (const bool validate : {false, true}) {
        kisa::MemoryImage image;
        auto cfg = sys::baseConfig();
        cfg.validate = validate;
        cfg.validateFailFast = false;
        sys::System s(cfg, sharingPrograms(4, 100, 0x100000), image);
        results[validate] = s.run();
    }
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].instructions, results[1].instructions);
    EXPECT_EQ(results[0].l2.loadMisses, results[1].l2.loadMisses);
    EXPECT_EQ(results[0].fabric.invalidations,
              results[1].fabric.invalidations);
}

TEST(Validate, InjectedRegisterFaultCaught)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(loopProgram(500, 0x100000));
    sys::System s(validatedConfig(), std::move(ps), image);
    // Flip a bit of the loop counter partway through the run: the
    // golden model must flag the divergence.
    s.core(0).injectRegisterFaultAt(300, 2);
    s.run();
    ASSERT_FALSE(s.validator()->failures().empty());
    EXPECT_NE(s.validator()->failures()[0].what.find("divergence"),
              std::string::npos)
        << s.validator()->report();
}

TEST(Validate, LeakedMshrCaught)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(loopProgram(100, 0x100000));
    sys::System s(validatedConfig(), std::move(ps), image);
    s.run();
    ASSERT_TRUE(s.validator()->failures().empty());
    // Allocate an MSHR that will never fill, then audit far enough in
    // the future that the age check must call it a leak.
    s.hierarchy(0).l2().leakMshrForTest(s.now(), 0x700000);
    s.validator()->auditNow(s.now() + 3'000'000);
    ASSERT_FALSE(s.validator()->failures().empty());
    EXPECT_NE(s.validator()->failures()[0].what.find("MSHR leak"),
              std::string::npos)
        << s.validator()->report();
}

TEST(Validate, LeakedPooledContinuationCaught)
{
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(loopProgram(100, 0x100000));
    sys::System s(validatedConfig(), std::move(ps), image);
    s.run();
    ASSERT_TRUE(s.validator()->failures().empty());
    // Leak an MSHR carrying a pool-backed completion continuation (the
    // capture is 40 bytes, beyond the inline stash): the validator's
    // age audit must still flag the entry, and the continuation must
    // neither fire nor release its pool block while leaked.
    struct Big
    {
        std::uint64_t payload[4];
        bool *fired;
        void operator()(Tick) { *fired = true; }
    };
    static_assert(!Continuation::storedInline<Big>,
                  "capture must exercise the pooled path");
    bool fired = false;
    const auto before = Continuation::poolCounters().blocksInUse;
    s.hierarchy(0).l2().leakMshrForTest(
        s.now(), 0x700000, Big{{1, 2, 3, 4}, &fired});
    EXPECT_EQ(Continuation::poolCounters().blocksInUse, before + 1);
    s.validator()->auditNow(s.now() + 3'000'000);
    ASSERT_FALSE(s.validator()->failures().empty());
    EXPECT_NE(s.validator()->failures()[0].what.find("MSHR leak"),
              std::string::npos)
        << s.validator()->report();
    EXPECT_FALSE(fired);
    EXPECT_EQ(Continuation::poolCounters().blocksInUse, before + 1);
}

TEST(Validate, StaleSharerBitCaught)
{
    kisa::MemoryImage image;
    sys::System s(validatedConfig(), sharingPrograms(2, 50, 0x100000),
                  image);
    s.run();
    ASSERT_TRUE(s.validator()->failures().empty());
    ASSERT_NE(s.fabric(), nullptr);
    // Set a sharer bit on a line no cache holds: depending on the
    // entry's state this breaks "Uncached has no sharers" or "Modified
    // has exactly the owner's bit".
    s.fabric()->corruptSharerForTest(0x500000, 1);
    s.validator()->auditNow(s.now());
    ASSERT_FALSE(s.validator()->failures().empty());
    EXPECT_NE(s.validator()->failures()[0].what.find("directory"),
              std::string::npos)
        << s.validator()->report();
}

TEST(Validate, StalledCoreTripsWatchdog)
{
    // Core 0 waits on a flag nobody ever writes; core 1 finishes. The
    // watchdog must record the stall with diagnostics and stop the run
    // gracefully instead of spinning to the max-cycles fatal.
    kisa::MemoryImage image;
    std::vector<Program> ps;
    {
        AsmBuilder b("stuck");
        b.iLoadImm(1, 0x200000);
        b.iLoadImm(2, 1);
        b.flagWait(1, 0, 2);
        b.halt();
        ps.push_back(b.finish());
    }
    {
        AsmBuilder b("fine");
        b.iLoadImm(1, 7);
        b.halt();
        ps.push_back(b.finish());
    }
    auto cfg = validatedConfig();
    cfg.validateStallTimeout = 20000;
    cfg.validateAuditPeriod = 1024;
    sys::System s(cfg, std::move(ps), image);
    s.run();
    ASSERT_FALSE(s.validator()->failures().empty());
    const std::string &what = s.validator()->failures()[0].what;
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    // The failure carries structured diagnostics, including the stuck
    // core's window contents.
    EXPECT_NE(what.find("diagnostics"), std::string::npos) << what;
    EXPECT_NE(what.find("flagwait"), std::string::npos) << what;
    EXPECT_TRUE(s.validator()->stopRequested());
}

TEST(Validate, TraceDumpedAsChromeJsonOnFailure)
{
    const std::string path = "test_validate_trace.json";
    std::remove(path.c_str());
    kisa::MemoryImage image;
    std::vector<Program> ps;
    ps.push_back(loopProgram(500, 0x100000));
    auto cfg = validatedConfig();
    cfg.validateTracePath = path;
    sys::System s(cfg, std::move(ps), image);
    s.core(0).injectRegisterFaultAt(300, 2);
    s.run();
    ASSERT_FALSE(s.validator()->failures().empty());
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        contents.append(buf, n);
    std::fclose(f);
    EXPECT_NE(contents.find("traceEvents"), std::string::npos);
    EXPECT_NE(contents.find("\"dispatch\""), std::string::npos);
    EXPECT_NE(contents.find("\"retire\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Validate, FlagWaitSynchronizationValidatesCleanly)
{
    // Producer/consumer through a flag: exercises the FlagWait dispatch
    // path of the golden lockstep (the step happens at satisfaction).
    kisa::MemoryImage image;
    std::vector<Program> ps;
    {
        AsmBuilder b("producer");
        b.iLoadImm(1, 0x100000);
        b.iLoadImm(2, 0);
        b.iLoadImm(3, 50);
        auto loop = b.newLabel();
        b.bind(loop);
        b.stI(1, 0, 2);
        b.iAddImm(1, 1, 64);
        b.iAddImm(2, 2, 1);
        b.bLt(2, 3, loop);
        b.iLoadImm(1, 0x200000);
        b.iLoadImm(2, 1);
        b.stI(1, 0, 2);     // raise the flag
        b.halt();
        ps.push_back(b.finish());
    }
    {
        AsmBuilder b("consumer");
        b.iLoadImm(1, 0x200000);
        b.iLoadImm(2, 1);
        b.flagWait(1, 0, 2);
        b.iLoadImm(1, 0x100000);
        b.ldI(3, 1, 0);
        b.halt();
        ps.push_back(b.finish());
    }
    sys::System s(validatedConfig(), std::move(ps), image);
    s.run();
    EXPECT_TRUE(s.validator()->failures().empty())
        << s.validator()->report();
}

} // namespace
} // namespace mpc
