/**
 * @file
 * Workload tests: every kernel builds, lowers, and runs; the clustered
 * variant computes identical results to the base (uniprocessor,
 * bit-exact); multiprocessor partitioned runs match the sequential
 * reference; and the driver makes the decisions the paper's analysis
 * prescribes for each code's dominant pattern.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.hh"
#include "harness/profiler.hh"
#include "harness/runner.hh"
#include "ir/eval.hh"
#include "kisa/interp.hh"
#include "transform/driver.hh"
#include "transform/transforms.hh"
#include "workloads/workload.hh"

namespace mpc::workloads
{
namespace
{

SizeParams
tiny()
{
    SizeParams size;
    size.scale = 1;
    return size;
}

/** Run the base program through the interpreter and checksum arrays. */
std::uint64_t
interpChecksum(const Workload &w, const ir::Kernel &kernel,
               int procs = 1)
{
    kisa::MemoryImage mem;
    w.init(mem);
    kisa::Interpreter interp(mem);
    auto programs = codegen::lowerForCores(kernel, procs, false);
    for (auto &p : programs)
        interp.addCore(p);
    interp.run(1ull << 30);
    return ir::checksumArrays(kernel, mem);
}

/** Clustered-kernel checksum (uniprocessor, with profiling). */
std::uint64_t
clusteredChecksum(const Workload &w)
{
    ir::Kernel kernel = w.kernel.clone();
    kisa::MemoryImage scratch;
    w.init(scratch);
    auto base_prog = codegen::lower(kernel);
    mem::CacheConfig geometry;
    geometry.sizeBytes = w.l2Bytes;
    geometry.assoc = 4;
    const auto profile =
        harness::CacheProfile::measure(base_prog, scratch, geometry);

    transform::DriverParams params;
    params.lp = 10;
    params.bodySize = codegen::loweredBodySize;
    params.missRate = [&profile](int id) { return profile.missRate(id); };
    transform::applyClustering(kernel, params);

    kisa::MemoryImage mem;
    w.init(mem);
    codegen::CodegenOptions options;
    options.clusteredSchedule = true;
    auto program = codegen::lower(kernel, options);
    kisa::Interpreter interp(mem);
    interp.addCore(program);
    interp.run(1ull << 30);
    return ir::checksumArrays(kernel, mem);
}

class WorkloadNames
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadNames, BaseRunsAndTouchesMemory)
{
    Workload w = makeByName(GetParam(), tiny());
    EXPECT_FALSE(w.kernel.body.empty());
    kisa::MemoryImage mem;
    w.init(mem);
    auto program = codegen::lower(w.kernel);
    kisa::Interpreter interp(mem);
    interp.addCore(program);
    const auto instrs = interp.run(1ull << 30);
    EXPECT_GT(instrs, 1000u);
}

TEST_P(WorkloadNames, ClusteredMatchesBaseBitExact)
{
    // The transformation must preserve semantics bit-for-bit on the
    // uniprocessor (same FP operation order per element).
    Workload w = makeByName(GetParam(), tiny());
    EXPECT_EQ(interpChecksum(w, w.kernel), clusteredChecksum(w));
}

TEST_P(WorkloadNames, EvaluatorAgreesWithInterpreter)
{
    // Three-way check at the workload level.
    Workload w = makeByName(GetParam(), tiny());
    kisa::MemoryImage m1;
    w.init(m1);
    ir::Evaluator ev(w.kernel, m1);
    ev.run();
    EXPECT_EQ(ir::checksumArrays(w.kernel, m1),
              interpChecksum(w, w.kernel));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadNames,
                         ::testing::Values("latbench", "em3d",
                                           "erlebacher", "fft", "lu",
                                           "mp3d", "mst", "ocean"));

class ParallelWorkloads
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ParallelWorkloads, PartitionedRunMatchesSequential)
{
    Workload w = makeByName(GetParam(), tiny());
    const std::uint64_t seq = interpChecksum(w, w.kernel, 1);
    ir::Kernel part = w.kernel.clone();
    transform::partitionParallelLoops(part);
    EXPECT_EQ(interpChecksum(w, part, 4), seq) << GetParam();
}

// Mp3d is excluded: its cell-census updates race across processors by
// design (the paper calls it an asynchronous code), so multiprocessor
// results differ from the sequential reference in accumulation order.
INSTANTIATE_TEST_SUITE_P(Parallel, ParallelWorkloads,
                         ::testing::Values("em3d", "erlebacher", "fft",
                                           "lu", "ocean"));

// ---------------------------------------------------------------------
// Driver decisions per the paper's per-application discussion.
// ---------------------------------------------------------------------

transform::DriverReport
decisionsFor(const Workload &w)
{
    ir::Kernel kernel = w.kernel.clone();
    kisa::MemoryImage scratch;
    w.init(scratch);
    auto base_prog = codegen::lower(kernel);
    mem::CacheConfig geometry;
    geometry.sizeBytes = w.l2Bytes;
    geometry.assoc = 4;
    const auto profile =
        harness::CacheProfile::measure(base_prog, scratch, geometry);
    transform::DriverParams params;
    params.lp = 10;
    params.bodySize = codegen::loweredBodySize;
    params.missRate = [&profile](int id) { return profile.missRate(id); };
    return transform::applyClustering(kernel, params);
}

TEST(Decisions, LatbenchJamsTenChases)
{
    // Address recurrence (alpha 1): unroll-and-jam by lp = 10.
    auto report = decisionsFor(makeLatbench(tiny()));
    ASSERT_EQ(report.nests.size(), 1u);
    EXPECT_TRUE(report.nests[0].addressRecurrence);
    EXPECT_EQ(report.nests[0].unrollDegree, 10);
}

TEST(Decisions, MstJamsChains)
{
    auto report = decisionsFor(makeMst(tiny()));
    ASSERT_GE(report.nests.size(), 1u);
    EXPECT_TRUE(report.nests[0].addressRecurrence);
    EXPECT_GT(report.nests[0].unrollDegree, 2);
}

TEST(Decisions, Em3dJamsAndReplacesScalars)
{
    auto report = decisionsFor(makeEm3d(tiny()));
    ASSERT_GE(report.nests.size(), 2u);
    for (const auto &nest : report.nests) {
        EXPECT_GT(nest.unrollDegree, 1);
        EXPECT_GT(nest.scalarsReplaced, 0);  // eval[n] accumulator
    }
}

TEST(Decisions, LuJamsInteriorUpdate)
{
    auto report = decisionsFor(makeLu(tiny()));
    bool interior_jammed = false;
    for (const auto &nest : report.nests) {
        if (nest.loopVar == "j" && nest.unrollDegree > 3 &&
            nest.scalarsReplaced > 0)
            interior_jammed = true;
    }
    EXPECT_TRUE(interior_jammed);
}

TEST(Decisions, Mp3dInnerUnrollsNotJams)
{
    // No address recurrence, large body: the Section 3.3 path.
    auto report = decisionsFor(makeMp3d(tiny()));
    ASSERT_GE(report.nests.size(), 1u);
    EXPECT_EQ(report.nests[0].unrollDegree, 1);
    EXPECT_GT(report.nests[0].innerUnrollDegree, 1);
}

TEST(Decisions, OceanModestDegree)
{
    // The base stencil already has several leading references per
    // iteration, so the chosen degree is well below lp.
    auto report = decisionsFor(makeOcean(tiny()));
    for (const auto &nest : report.nests) {
        EXPECT_GE(nest.unrollDegree, 2);
        EXPECT_LE(nest.unrollDegree, 5);
    }
}

TEST(Decisions, FftTransposeAlreadyClustered)
{
    // The column-major transpose reads miss every iteration; with a
    // small body the window alone reaches f >= lp, so no jamming.
    auto report = decisionsFor(makeFft(tiny()));
    bool transpose_seen = false;
    for (const auto &nest : report.nests) {
        if (nest.loopVar == "i") {
            transpose_seen = true;
            EXPECT_EQ(nest.unrollDegree, 1);
        }
    }
    EXPECT_TRUE(transpose_seen);
}

TEST(Workload, FactoryRejectsUnknown)
{
    EXPECT_DEATH({ auto w = makeByName("nope", tiny()); (void)w; },
                 "unknown workload");
}

TEST(Workload, AllAppsEnumerates)
{
    const auto apps = makeAllApps(tiny());
    EXPECT_EQ(apps.size(), 7u);
}

} // namespace
} // namespace mpc::workloads
